//! Deterministic fault injection.
//!
//! Every robustness claim the daemon makes is only as good as the faults
//! it was tested under, so the fault injector is part of the product: a
//! seeded, *pure* decision function consulted at every persistence and
//! protocol boundary. Determinism matters more than realism here — a
//! chaos run that loses a session must be replayable byte for byte from
//! its seed.
//!
//! # Why decisions are derived, not streamed
//!
//! A single shared RNG stream would make fault placement depend on thread
//! interleaving (whichever connection consults first draws first). Each
//! decision is instead computed from an independent ChaCha8 stream seeded
//! by `(seed, site, key, index)`: the *k*-th consultation of a given site
//! for a given session always gets the same answer, no matter how
//! connections interleave. The injector is therefore lock-free, `Sync`,
//! and reproducible under any scheduler.
//!
//! Sites in the daemon (production sites live in [`REGISTERED_SITES`];
//! `frame.read` is consulted only from test harnesses):
//!
//! | site              | key        | faults                         |
//! |-------------------|------------|--------------------------------|
//! | `persist.session` | session id | io-error, torn write, kill     |
//! | `delta.commit`    | session id | io-error, kill (pre-persist)   |
//! | `frame.read`      | session id | (tests) stall, malformed frame |
//!
//! A `Kill` decision simulates SIGKILL at a persistence boundary: the
//! store writes a *torn prefix* of the staged temporary file and then
//! trips the daemon's kill switch — no further writes anywhere, ever —
//! exactly the on-disk picture a power cut leaves behind.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The central chaos-site registry: every *production* consult site
/// string, in consultation-boundary order. `irgrid-lint` rule S2 checks
/// both directions against this table — a consult site missing here is a
/// typo that silently disables fault injection, and an entry no
/// production code consults is a dead site overstating chaos coverage.
pub const REGISTERED_SITES: &[&str] = &[
    "persist.session", // SnapshotStore::persist, one consult per session write
    "delta.commit",    // SessionManager delta commit, consulted before persist
];

/// Per-site fault probabilities, in parts per million of consultations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Probability of a plain `IoError` fault.
    pub io_error_ppm: u32,
    /// Probability of a torn write (partial temp file, then an error).
    pub torn_ppm: u32,
    /// Probability of a simulated kill at the boundary.
    pub kill_ppm: u32,
}

impl ChaosConfig {
    /// The default mix used by `--chaos`: aggressive enough that a short
    /// smoke run hits every fault class, survivable enough that clients
    /// with retries always finish.
    #[must_use]
    pub fn default_mix() -> ChaosConfig {
        ChaosConfig {
            io_error_ppm: 60_000,
            torn_ppm: 40_000,
            kill_ppm: 15_000,
        }
    }
}

/// What the injector decided for one consultation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Proceed normally.
    None,
    /// Fail the operation with an injected I/O error.
    IoError,
    /// Write only `keep_per_mille`/1000 of the staged bytes, then fail.
    Torn {
        /// Fraction of the payload to keep, in thousandths (0..=999).
        keep_per_mille: u32,
    },
    /// Simulate a crash at this boundary: torn prefix, then a daemon-wide
    /// kill switch.
    Kill {
        /// Fraction of the payload written before the "crash".
        keep_per_mille: u32,
    },
}

/// The seeded fault injector. `Chaos::off()` is free: every decision is
/// [`FaultDecision::None`] without touching an RNG.
#[derive(Debug, Clone, Copy)]
pub struct Chaos {
    seed: Option<u64>,
    epoch: u64,
    config: ChaosConfig,
}

/// FNV-1a over a byte string, the workspace's standard cheap stable hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl Chaos {
    /// No fault injection (production default).
    #[must_use]
    pub fn off() -> Chaos {
        Chaos {
            seed: None,
            epoch: 0,
            config: ChaosConfig::default_mix(),
        }
    }

    /// Seeded injection with the default probability mix.
    #[must_use]
    pub fn seeded(seed: u64) -> Chaos {
        Chaos {
            seed: Some(seed),
            epoch: 0,
            config: ChaosConfig::default_mix(),
        }
    }

    /// Seeded injection with explicit probabilities.
    #[must_use]
    pub fn with_config(seed: u64, config: ChaosConfig) -> Chaos {
        Chaos {
            seed: Some(seed),
            epoch: 0,
            config,
        }
    }

    /// Sets the boot epoch, giving each daemon lifetime its own fault
    /// stream. Restart harnesses bump this on every restart: a session's
    /// per-write consultation index restarts at 0 with the process, and
    /// without an epoch the exact decision that killed the daemon would
    /// replay on the same write after recovery, forever. Still fully
    /// deterministic — placement is a pure function of
    /// `(seed, epoch, site, key, index)`.
    #[must_use]
    pub fn with_epoch(mut self, epoch: u64) -> Chaos {
        self.epoch = epoch;
        self
    }

    /// Whether injection is enabled at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.seed.is_some()
    }

    /// The decision for the `index`-th consultation of `site` for `key`.
    ///
    /// Pure: the same `(seed, site, key, index)` always returns the same
    /// decision, on any thread, in any order.
    #[must_use]
    pub fn decide(&self, site: &str, key: &str, index: u64) -> FaultDecision {
        let Some(seed) = self.seed else {
            return FaultDecision::None;
        };
        let mixed = seed
            ^ fnv1a(site.as_bytes()).rotate_left(17)
            ^ fnv1a(key.as_bytes()).rotate_left(41)
            ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ self.epoch.wrapping_mul(0xd6e8_feb8_6659_fd93);
        let mut rng = ChaCha8Rng::seed_from_u64(mixed);
        let draw = rng.next_u32() % 1_000_000;
        let keep_per_mille = rng.next_u32() % 1000;
        let ChaosConfig {
            io_error_ppm,
            torn_ppm,
            kill_ppm,
        } = self.config;
        if draw < kill_ppm {
            FaultDecision::Kill { keep_per_mille }
        } else if draw < kill_ppm + torn_ppm {
            FaultDecision::Torn { keep_per_mille }
        } else if draw < kill_ppm + torn_ppm + io_error_ppm {
            FaultDecision::IoError
        } else {
            FaultDecision::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_never_faults() {
        let chaos = Chaos::off();
        for index in 0..1000 {
            assert_eq!(
                chaos.decide("persist.session", "s", index),
                FaultDecision::None
            );
        }
    }

    #[test]
    fn decisions_are_deterministic_and_order_free() {
        let chaos = Chaos::seeded(7);
        let forward: Vec<FaultDecision> = (0..200)
            .map(|i| chaos.decide("persist.session", "alice", i))
            .collect();
        let backward: Vec<FaultDecision> = (0..200)
            .rev()
            .map(|i| chaos.decide("persist.session", "alice", i))
            .collect();
        let reversed: Vec<FaultDecision> = backward.into_iter().rev().collect();
        assert_eq!(forward, reversed);
    }

    #[test]
    fn sites_and_keys_get_independent_streams() {
        let chaos = Chaos::with_config(
            3,
            ChaosConfig {
                io_error_ppm: 300_000,
                torn_ppm: 300_000,
                kill_ppm: 300_000,
            },
        );
        let a: Vec<FaultDecision> = (0..64)
            .map(|i| chaos.decide("persist.session", "a", i))
            .collect();
        let b: Vec<FaultDecision> = (0..64)
            .map(|i| chaos.decide("persist.session", "b", i))
            .collect();
        let c: Vec<FaultDecision> = (0..64)
            .map(|i| chaos.decide("frame.read", "a", i))
            .collect();
        assert_ne!(a, b, "keys must not share a fault stream");
        assert_ne!(a, c, "sites must not share a fault stream");
    }

    #[test]
    fn default_mix_produces_every_fault_class() {
        let chaos = Chaos::seeded(11);
        let mut saw = (false, false, false, false);
        for index in 0..20_000 {
            match chaos.decide("persist.session", "mix", index) {
                FaultDecision::None => saw.0 = true,
                FaultDecision::IoError => saw.1 = true,
                FaultDecision::Torn { .. } => saw.2 = true,
                FaultDecision::Kill { .. } => saw.3 = true,
            }
        }
        assert!(saw.0 && saw.1 && saw.2 && saw.3, "mix {saw:?} incomplete");
    }

    #[test]
    fn epochs_change_the_stream() {
        let base = Chaos::seeded(5);
        let rebooted = Chaos::seeded(5).with_epoch(1);
        let a: Vec<FaultDecision> = (0..256)
            .map(|i| base.decide("persist.session", "s", i))
            .collect();
        let b: Vec<FaultDecision> = (0..256)
            .map(|i| rebooted.decide("persist.session", "s", i))
            .collect();
        assert_ne!(a, b, "each boot epoch must draw a fresh fault stream");
    }

    #[test]
    fn seeds_change_the_stream() {
        let a: Vec<FaultDecision> = (0..256)
            .map(|i| Chaos::seeded(1).decide("persist.session", "s", i))
            .collect();
        let b: Vec<FaultDecision> = (0..256)
            .map(|i| Chaos::seeded(2).decide("persist.session", "s", i))
            .collect();
        assert_ne!(a, b);
    }
}
