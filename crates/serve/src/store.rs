//! Crash-safe session persistence: atomic snapshot writes with fault
//! hooks, and hardened loads that treat anything torn as absent.
//!
//! Write protocol (the same tmp+fsync+rename discipline as annealing
//! checkpoints and fleet manifests): stage the full payload in a sibling
//! `*.tmp`, `fsync`, rename over the target. A crash at any point leaves
//! either the old complete snapshot or the new complete snapshot — never
//! a mixture — and at worst a torn `*.tmp` that loads ignore.
//!
//! Every write consults the [`Chaos`] injector first. An injected
//! `IoError` fails before touching the filesystem; `Torn` stages only a
//! prefix and fails (the tmp litter proves recovery ignores it); `Kill`
//! stages a prefix and trips the daemon-wide [`KillSwitch`] — after which
//! every store operation fails fast with [`StoreError::Killed`], modeling
//! a process that is simply gone.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::chaos::{Chaos, FaultDecision};

/// A daemon-wide "the process is dead" flag, tripped by a chaos `Kill`
/// decision (or a real shutdown) and checked before every store write.
///
/// In-process tests use it to model SIGKILL without aborting the test
/// runner: once tripped, nothing is persisted anymore, and the test
/// "restarts the daemon" by building a fresh server over the same state
/// directory.
#[derive(Debug, Clone, Default)]
pub struct KillSwitch {
    flag: Arc<AtomicBool>,
}

impl KillSwitch {
    /// A fresh, untripped switch.
    #[must_use]
    pub fn new() -> KillSwitch {
        KillSwitch::default()
    }

    /// Trips the switch. Idempotent; visible to all clones.
    pub fn trip(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the switch has been tripped.
    #[must_use]
    pub fn is_tripped(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Error from a store operation.
#[derive(Debug)]
pub enum StoreError {
    /// A real (or injected) filesystem failure; the target snapshot is
    /// untouched and the operation may be retried.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The daemon's kill switch is tripped (chaos kill or shutdown); no
    /// further writes will succeed in this process lifetime.
    Killed,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "snapshot i/o failed for `{path}`: {source}")
            }
            StoreError::Killed => write!(f, "daemon kill switch tripped"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Killed => None,
        }
    }
}

fn injected(kind: &str) -> std::io::Error {
    std::io::Error::other(format!("injected chaos fault: {kind}"))
}

/// The session snapshot store rooted at one state directory.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
    chaos: Chaos,
    kill: KillSwitch,
    /// Injected faults drawn so far (all classes), shared across clones.
    /// Chaos tests assert on this to prove they actually exercised
    /// faults; absorbed retries are invisible at the client.
    faults: Arc<AtomicU64>,
}

impl SnapshotStore {
    /// Opens (creating if needed) the store under `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the directory cannot be created.
    pub fn open(dir: &Path, chaos: Chaos, kill: KillSwitch) -> Result<SnapshotStore, StoreError> {
        fs::create_dir_all(dir).map_err(|source| StoreError::Io {
            path: dir.display().to_string(),
            source,
        })?;
        Ok(SnapshotStore {
            dir: dir.to_owned(),
            chaos,
            kill,
            faults: Arc::new(AtomicU64::new(0)),
        })
    }

    /// The kill switch shared with the daemon.
    #[must_use]
    pub fn kill_switch(&self) -> &KillSwitch {
        &self.kill
    }

    /// Injected faults drawn over this store's lifetime (all clones).
    #[must_use]
    pub fn injected_faults(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// The snapshot path for a session id.
    #[must_use]
    pub fn path_for(&self, session_id: &str) -> PathBuf {
        self.dir.join(format!("{session_id}.session.json"))
    }

    /// Consults the chaos injector at a non-write boundary — e.g. the
    /// `delta.commit` point between staging a commit and persisting it.
    /// Nothing is staged on disk: `IoError`/`Torn` decisions fail the
    /// operation (target snapshot untouched, retry allowed), `Kill`
    /// trips the daemon-wide kill switch, exactly as a fault drawn
    /// inside [`write`](Self::write) would.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on an injected fault; [`StoreError::Killed`]
    /// when the kill switch is (or just got) tripped.
    pub fn consult(&self, site: &str, key: &str, index: u64) -> Result<(), StoreError> {
        if self.kill.is_tripped() {
            return Err(StoreError::Killed);
        }
        match self.chaos.decide(site, key, index) {
            FaultDecision::None => Ok(()),
            FaultDecision::IoError | FaultDecision::Torn { .. } => {
                self.faults.fetch_add(1, Ordering::Relaxed);
                Err(StoreError::Io {
                    path: format!("<{site}>"),
                    source: injected(site),
                })
            }
            FaultDecision::Kill { .. } => {
                self.faults.fetch_add(1, Ordering::Relaxed);
                self.kill.trip();
                Err(StoreError::Killed)
            }
        }
    }

    /// Atomically writes `payload` as the snapshot for `session_id`.
    ///
    /// `write_seq` is the session's monotonically increasing write
    /// counter — the chaos consultation index, so fault placement is a
    /// pure function of the session's own history.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on real or injected failure (target snapshot
    /// intact either way); [`StoreError::Killed`] when the kill switch
    /// is (or just got) tripped.
    pub fn write(&self, session_id: &str, payload: &str, write_seq: u64) -> Result<(), StoreError> {
        if self.kill.is_tripped() {
            return Err(StoreError::Killed);
        }
        let path = self.path_for(session_id);
        let tmp = path.with_extension("tmp");
        let io = |source| StoreError::Io {
            path: tmp.display().to_string(),
            source,
        };

        let bytes = payload.as_bytes();
        let staged: &[u8] = match self.chaos.decide("persist.session", session_id, write_seq) {
            FaultDecision::None => bytes,
            FaultDecision::IoError => {
                self.faults.fetch_add(1, Ordering::Relaxed);
                return Err(io(injected("io-error")));
            }
            FaultDecision::Torn { keep_per_mille } => {
                self.faults.fetch_add(1, Ordering::Relaxed);
                let keep = torn_len(bytes.len(), keep_per_mille);
                let _ = fs::write(&tmp, &bytes[..keep]);
                return Err(io(injected("torn-write")));
            }
            FaultDecision::Kill { keep_per_mille } => {
                self.faults.fetch_add(1, Ordering::Relaxed);
                let keep = torn_len(bytes.len(), keep_per_mille);
                let _ = fs::write(&tmp, &bytes[..keep]);
                self.kill.trip();
                return Err(StoreError::Killed);
            }
        };

        {
            let mut file = fs::File::create(&tmp).map_err(io)?;
            file.write_all(staged).map_err(io)?;
            file.sync_all().map_err(io)?;
        }
        fs::rename(&tmp, &path).map_err(|source| StoreError::Io {
            path: path.display().to_string(),
            source,
        })
    }

    /// Reads the snapshot for `session_id`, if one exists. Torn staging
    /// files (`*.tmp`) are never read.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] for real read failures other than
    /// not-found (not-found is `Ok(None)`).
    pub fn read(&self, session_id: &str) -> Result<Option<String>, StoreError> {
        let path = self.path_for(session_id);
        match fs::read_to_string(&path) {
            Ok(text) => Ok(Some(text)),
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(source) => Err(StoreError::Io {
                path: path.display().to_string(),
                source,
            }),
        }
    }

    /// Deletes the snapshot for `session_id` (and any torn staging file).
    ///
    /// # Errors
    ///
    /// [`StoreError::Killed`] when the kill switch is tripped;
    /// [`StoreError::Io`] for real failures other than not-found.
    pub fn remove(&self, session_id: &str) -> Result<(), StoreError> {
        if self.kill.is_tripped() {
            return Err(StoreError::Killed);
        }
        let path = self.path_for(session_id);
        let _ = fs::remove_file(path.with_extension("tmp"));
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(source) => Err(StoreError::Io {
                path: path.display().to_string(),
                source,
            }),
        }
    }

    /// Lists the session ids with a complete snapshot on disk, sorted.
    /// Torn staging files and foreign files are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the directory cannot be read.
    pub fn list(&self) -> Result<Vec<String>, StoreError> {
        let entries = fs::read_dir(&self.dir).map_err(|source| StoreError::Io {
            path: self.dir.display().to_string(),
            source,
        })?;
        let mut ids = Vec::new();
        for entry in entries.filter_map(Result::ok) {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name.strip_suffix(".session.json") else {
                continue;
            };
            if crate::protocol::valid_session_id(stem) {
                ids.push(stem.to_owned());
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }
}

/// Length of the kept prefix of a torn write.
fn torn_len(len: usize, keep_per_mille: u32) -> usize {
    // Never the full payload: a torn write that kept everything would be
    // indistinguishable from success (modulo the missing rename, which
    // this models too — tmp complete, rename never happened).
    let kept = len.saturating_mul(keep_per_mille as usize) / 1000;
    kept.min(len.saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosConfig;

    fn temp_store(tag: &str, chaos: Chaos) -> SnapshotStore {
        let dir = std::env::temp_dir().join(format!("irgrid_serve_store_{tag}"));
        let _ = fs::remove_dir_all(&dir);
        SnapshotStore::open(&dir, chaos, KillSwitch::new()).expect("open store")
    }

    #[test]
    fn write_read_roundtrip_and_no_tmp_litter() {
        let store = temp_store("roundtrip", Chaos::off());
        store.write("alice", "{\"x\":1}", 0).expect("write");
        assert_eq!(store.read("alice").expect("read"), Some("{\"x\":1}".into()));
        assert!(!store.path_for("alice").with_extension("tmp").exists());
        assert_eq!(store.list().expect("list"), vec!["alice".to_owned()]);
        store.remove("alice").expect("remove");
        assert_eq!(store.read("alice").expect("read"), None);
        assert!(store.list().expect("list").is_empty());
    }

    #[test]
    fn injected_io_error_leaves_previous_snapshot_intact() {
        // io_error_ppm = 1_000_000: every write fails.
        let all_fail = Chaos::with_config(
            1,
            ChaosConfig {
                io_error_ppm: 1_000_000,
                torn_ppm: 0,
                kill_ppm: 0,
            },
        );
        let dir = std::env::temp_dir().join("irgrid_serve_store_ioerr");
        let _ = fs::remove_dir_all(&dir);
        let clean = SnapshotStore::open(&dir, Chaos::off(), KillSwitch::new()).expect("open");
        clean.write("s", "old", 0).expect("seed write");
        let faulty = SnapshotStore::open(&dir, all_fail, KillSwitch::new()).expect("open");
        let err = faulty.write("s", "new", 1).expect_err("must fail");
        assert!(matches!(err, StoreError::Io { .. }));
        assert_eq!(clean.read("s").expect("read"), Some("old".into()));
    }

    #[test]
    fn torn_write_leaves_previous_snapshot_and_partial_tmp() {
        let all_torn = Chaos::with_config(
            2,
            ChaosConfig {
                io_error_ppm: 0,
                torn_ppm: 1_000_000,
                kill_ppm: 0,
            },
        );
        let dir = std::env::temp_dir().join("irgrid_serve_store_torn");
        let _ = fs::remove_dir_all(&dir);
        let clean = SnapshotStore::open(&dir, Chaos::off(), KillSwitch::new()).expect("open");
        clean.write("s", "old-complete-snapshot", 0).expect("seed");
        let faulty = SnapshotStore::open(&dir, all_torn, KillSwitch::new()).expect("open");
        let payload = "new-snapshot-that-tears";
        let err = faulty.write("s", payload, 1).expect_err("must tear");
        assert!(matches!(err, StoreError::Io { .. }));
        // The real snapshot is byte-for-byte the old one.
        assert_eq!(
            clean.read("s").expect("read"),
            Some("old-complete-snapshot".into())
        );
        // The torn tmp is a strict prefix, and list() ignores it.
        let tmp = faulty.path_for("s").with_extension("tmp");
        if tmp.exists() {
            let torn = fs::read_to_string(&tmp).expect("tmp readable");
            assert!(torn.len() < payload.len());
            assert!(payload.starts_with(&torn));
        }
        assert_eq!(faulty.list().expect("list"), vec!["s".to_owned()]);
    }

    #[test]
    fn kill_trips_switch_and_blocks_all_further_writes() {
        let all_kill = Chaos::with_config(
            3,
            ChaosConfig {
                io_error_ppm: 0,
                torn_ppm: 0,
                kill_ppm: 1_000_000,
            },
        );
        let store = temp_store("kill", all_kill);
        let err = store.write("s", "doomed", 0).expect_err("must kill");
        assert!(matches!(err, StoreError::Killed));
        assert!(store.kill_switch().is_tripped());
        // Even a would-be-clean write now fails fast.
        let err = store.write("other", "x", 0).expect_err("killed daemon");
        assert!(matches!(err, StoreError::Killed));
        assert_eq!(store.read("s").expect("read"), None);
    }

    #[test]
    fn torn_len_never_keeps_everything() {
        for len in [0usize, 1, 2, 100] {
            for ppm in [0u32, 1, 500, 999] {
                let kept = torn_len(len, ppm);
                if len == 0 {
                    assert_eq!(kept, 0);
                } else {
                    assert!(kept < len, "len={len} ppm={ppm} kept={kept}");
                }
            }
        }
    }

    #[test]
    fn list_skips_foreign_and_invalid_names() {
        let store = temp_store("list", Chaos::off());
        store.write("good-1", "{}", 0).expect("write");
        fs::write(store.path_for("x").with_extension("tmp"), "torn").expect("tmp");
        fs::write(
            store
                .path_for("ignored")
                .parent()
                .expect("dir")
                .join("README"),
            "not a session",
        )
        .expect("write");
        fs::write(
            store
                .path_for("ignored")
                .parent()
                .expect("dir")
                .join("has space.session.json"),
            "{}",
        )
        .expect("write");
        assert_eq!(store.list().expect("list"), vec!["good-1".to_owned()]);
    }
}
