//! Shared LRU score cache, keyed by the full identity of a scoring
//! request rather than a bare digest.
//!
//! PR 6 gave each session a private cache keyed on the 16-hex-char
//! FNV-1a state digest alone. That had two flaws this module fixes:
//!
//! * **Collisions served wrong scores.** FNV-1a is 64 bits and not
//!   collision-resistant; two distinct states hashing to the same
//!   digest would silently alias. [`ScoreKey`] folds in the scoring
//!   model's identity, the canonical state's byte length, and a second
//!   structurally-independent hash (FNV-1a over the *reversed* byte
//!   stream with a different offset basis). Equal-length FNV collisions
//!   are basis-independent — `h(a) ^ h(b)` does not involve the basis —
//!   so a crafted forward collision would survive a merely re-seeded
//!   forward hash; reversing the byte order changes which byte meets
//!   which power of the prime and breaks that construction. A hit
//!   requires every component to match.
//! * **Replicas exploring the same basin re-scored each other's
//!   states.** The cache is now process-wide ([`SharedScoreCache`],
//!   one per [`SessionManager`](crate::SessionManager)), so concurrent
//!   sessions — e.g. fleet replicas probing neighboring floorplans —
//!   share work. The model id in the key keeps pipelines with different
//!   numeric contracts (full Simpson vs Q32 delta, different grid
//!   pitches) from cross-contaminating.
//!
//! The map itself stays a plain `Vec` in recency order — O(capacity)
//! per touch, irrelevant at the capacities the daemon uses, and the
//! iteration/eviction order depends only on the access sequence (no
//! hasher state, no allocation-order effects).

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use serde::Serialize;

/// The complete identity of a cached score. Every field must match for
/// a hit; the digest alone is never trusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoreKey {
    /// Scoring-pipeline identity, e.g. `irregular@p30` or
    /// `irregular-delta@p30` — see [`model_id`].
    pub model: String,
    /// 16-hex-char FNV-1a digest of the canonical JSON state (the same
    /// digest reported in [`EvalResult`](crate::EvalResult)).
    pub digest: String,
    /// Byte length of the canonical JSON the digest was computed over.
    pub state_len: u64,
    /// Verification hash: FNV-1a over the reversed byte stream with a
    /// different offset basis.
    pub check: u64,
}

/// The scoring-pipeline component of a [`ScoreKey`]. Two pipelines that
/// can return different bits for the same state must have different
/// ids; grid pitch changes the score, so it is part of the id.
#[must_use]
pub fn model_id(kind: &str, pitch_um: i64) -> String {
    format!("{kind}@p{pitch_um}")
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// Arbitrary alternative basis for the reversed check hash.
const CHECK_BASIS: u64 = 0x2545_f491_4f6c_dd1d;

fn fnv1a(bytes: impl Iterator<Item = u8>, basis: u64) -> u64 {
    let mut hash = basis;
    for byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Builds the [`ScoreKey`] for scoring `state` with pipeline `model`,
/// serializing once. The digest component matches
/// [`state_digest`](irgrid_fleet::state_digest) byte for byte.
#[must_use]
pub fn score_key<S: Serialize>(model: &str, state: &S) -> ScoreKey {
    // irgrid-lint: allow(P1): serializing a plain owned data struct cannot fail
    let json = serde_json::to_string(state).expect("digest serialization is infallible");
    key_for_canonical_json(model, &json)
}

/// [`score_key`] over an already-serialized canonical JSON state.
#[must_use]
pub fn key_for_canonical_json(model: &str, json: &str) -> ScoreKey {
    let bytes = json.as_bytes();
    let digest = format!("{:016x}", fnv1a(bytes.iter().copied(), FNV_BASIS));
    let check = fnv1a(bytes.iter().rev().copied(), CHECK_BASIS);
    ScoreKey {
        model: model.to_string(),
        digest,
        state_len: bytes.len() as u64,
        check,
    }
}

/// A bounded least-recently-used `ScoreKey -> f64` map.
#[derive(Debug, Clone)]
pub struct LruCache {
    /// Most recently used last.
    entries: Vec<(ScoreKey, f64)>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl LruCache {
    /// A cache holding at most `capacity` scores; 0 disables caching.
    #[must_use]
    pub fn new(capacity: usize) -> LruCache {
        LruCache {
            entries: Vec::with_capacity(capacity.min(1024)),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a key, refreshing its recency on hit.
    pub fn get(&mut self, key: &ScoreKey) -> Option<f64> {
        let Some(position) = self.entries.iter().position(|(k, _)| k == key) else {
            self.misses += 1;
            return None;
        };
        self.hits += 1;
        let entry = self.entries.remove(position);
        let score = entry.1;
        self.entries.push(entry);
        Some(score)
    }

    /// Inserts (or refreshes) a score, evicting the least recently used
    /// entry when full. A no-op at capacity 0.
    pub fn put(&mut self, key: ScoreKey, score: f64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(position) = self.entries.iter().position(|(k, _)| k == &key) {
            self.entries.remove(position);
        } else if self.entries.len() >= self.capacity {
            self.entries.remove(0);
        }
        self.entries.push((key, score));
    }

    /// Cache hits since construction.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses since construction.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Current entry count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A cloneable handle to one process-wide [`LruCache`], shared by every
/// session a manager owns. Lock poisoning is recovered — the cache
/// holds plain values, so a panicking peer cannot leave it logically
/// torn.
#[derive(Debug, Clone)]
pub struct SharedScoreCache {
    inner: Arc<Mutex<LruCache>>,
}

impl SharedScoreCache {
    /// A shared cache bounded to `capacity` entries across *all*
    /// sessions; 0 disables caching process-wide.
    #[must_use]
    pub fn new(capacity: usize) -> SharedScoreCache {
        SharedScoreCache {
            inner: Arc::new(Mutex::new(LruCache::new(capacity))),
        }
    }

    fn lock(&self) -> MutexGuard<'_, LruCache> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up a score, refreshing recency on a hit.
    pub fn get(&self, key: &ScoreKey) -> Option<f64> {
        self.lock().get(key)
    }

    /// Inserts (or refreshes) a score.
    pub fn put(&self, key: ScoreKey, score: f64) {
        self.lock().put(key, score);
    }

    /// Hits since creation, summed over all sessions.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.lock().hits()
    }

    /// Live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(model: &str, digest: &str, len: u64, check: u64) -> ScoreKey {
        ScoreKey {
            model: model.to_string(),
            digest: digest.to_string(),
            state_len: len,
            check,
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = LruCache::new(2);
        cache.put(key("m", "a", 1, 1), 1.0);
        cache.put(key("m", "b", 2, 2), 2.0);
        assert_eq!(cache.get(&key("m", "a", 1, 1)), Some(1.0)); // refresh a; b is now LRU
        cache.put(key("m", "c", 3, 3), 3.0); // evicts b
        assert_eq!(cache.get(&key("m", "b", 2, 2)), None);
        assert_eq!(cache.get(&key("m", "a", 1, 1)), Some(1.0));
        assert_eq!(cache.get(&key("m", "c", 3, 3)), Some(3.0));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = LruCache::new(0);
        cache.put(key("m", "a", 1, 1), 1.0);
        assert_eq!(cache.get(&key("m", "a", 1, 1)), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn put_refreshes_existing_key() {
        let mut cache = LruCache::new(2);
        cache.put(key("m", "a", 1, 1), 1.0);
        cache.put(key("m", "b", 2, 2), 2.0);
        cache.put(key("m", "a", 1, 1), 9.0); // refresh + overwrite; b is LRU
        cache.put(key("m", "c", 3, 3), 3.0); // evicts b
        assert_eq!(cache.get(&key("m", "a", 1, 1)), Some(9.0));
        assert_eq!(cache.get(&key("m", "b", 2, 2)), None);
    }

    #[test]
    fn hit_and_miss_counters() {
        let mut cache = LruCache::new(4);
        cache.put(key("m", "a", 1, 1), 1.0);
        let _ = cache.get(&key("m", "a", 1, 1));
        let _ = cache.get(&key("m", "a", 1, 1));
        let _ = cache.get(&key("m", "nope", 1, 1));
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn crafted_digest_collision_does_not_alias() {
        // Regression for the PR 6 key: two distinct states whose 16-hex
        // FNV digests collide. Mining a real 64-bit FNV collision is
        // impractical in a unit test, but the composite key must refuse
        // the hit when *any* other component differs — which is exactly
        // what a real collision looks like (same digest string, but
        // different length, check hash, or model).
        let mut cache = LruCache::new(8);
        let digest = "00000000deadbeef";
        cache.put(key("irregular@p30", digest, 100, 7), 1.5);
        // Same digest, different serialized length: miss.
        assert_eq!(cache.get(&key("irregular@p30", digest, 101, 7)), None);
        // Same digest and length, different check hash: miss.
        assert_eq!(cache.get(&key("irregular@p30", digest, 100, 8)), None);
        // Same state digest, different scoring pipeline: miss.
        assert_eq!(cache.get(&key("irregular-delta@p30", digest, 100, 7)), None);
        // The genuine key still hits.
        assert_eq!(cache.get(&key("irregular@p30", digest, 100, 7)), Some(1.5));
    }

    #[test]
    fn score_key_components_are_consistent_and_independent() {
        let state_a = vec![1_i64, 2, 3];
        let state_b = vec![1_i64, 2, 4];
        let a = score_key("m", &state_a);
        let b = score_key("m", &state_b);
        assert_eq!(a, score_key("m", &state_a), "key is deterministic");
        assert_ne!(a.digest, b.digest);
        assert_ne!(a.check, b.check);
        assert_eq!(a.digest, irgrid_fleet::state_digest(&state_a));
        assert_eq!(a.state_len, 7, "canonical JSON is `[1,2,3]`");
        // The check hash is not the digest recomputed: reversed stream,
        // different basis.
        assert_ne!(format!("{:016x}", a.check), a.digest);
    }

    #[test]
    fn shared_cache_is_visible_across_clones() {
        let shared = SharedScoreCache::new(4);
        let peer = shared.clone();
        shared.put(key("m", "a", 1, 1), 9.0);
        assert_eq!(peer.get(&key("m", "a", 1, 1)), Some(9.0));
        assert_eq!(shared.hits(), 1);
        assert_eq!(peer.len(), 1);
    }
}
