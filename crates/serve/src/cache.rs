//! A small deterministic LRU cache for congestion scores.
//!
//! Keys are state digests (16-hex-char FNV-1a strings), values the
//! full-fidelity irregular-grid scores. The implementation is a plain
//! `Vec` in recency order — O(capacity) per touch, which is irrelevant at
//! the double-digit capacities sessions use, and guarantees iteration
//! and eviction order depend only on the access sequence (no hasher
//! state, no allocation-order effects).

/// An LRU map from state digest to congestion score.
#[derive(Debug, Clone)]
pub struct LruCache {
    /// Most recently used last.
    entries: Vec<(String, f64)>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl LruCache {
    /// A cache holding at most `capacity` scores; 0 disables caching.
    #[must_use]
    pub fn new(capacity: usize) -> LruCache {
        LruCache {
            entries: Vec::with_capacity(capacity.min(1024)),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a digest, refreshing its recency on hit.
    pub fn get(&mut self, digest: &str) -> Option<f64> {
        let Some(position) = self.entries.iter().position(|(k, _)| k == digest) else {
            self.misses += 1;
            return None;
        };
        self.hits += 1;
        let entry = self.entries.remove(position);
        let score = entry.1;
        self.entries.push(entry);
        Some(score)
    }

    /// Inserts (or refreshes) a score, evicting the least recently used
    /// entry when full. A no-op at capacity 0.
    pub fn put(&mut self, digest: &str, score: f64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(position) = self.entries.iter().position(|(k, _)| k == digest) {
            self.entries.remove(position);
        } else if self.entries.len() >= self.capacity {
            self.entries.remove(0);
        }
        self.entries.push((digest.to_owned(), score));
    }

    /// Cache hits since construction.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Current entry count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = LruCache::new(2);
        cache.put("a", 1.0);
        cache.put("b", 2.0);
        assert_eq!(cache.get("a"), Some(1.0)); // refresh a; b is now LRU
        cache.put("c", 3.0); // evicts b
        assert_eq!(cache.get("b"), None);
        assert_eq!(cache.get("a"), Some(1.0));
        assert_eq!(cache.get("c"), Some(3.0));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = LruCache::new(0);
        cache.put("a", 1.0);
        assert_eq!(cache.get("a"), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn put_refreshes_existing_key() {
        let mut cache = LruCache::new(2);
        cache.put("a", 1.0);
        cache.put("b", 2.0);
        cache.put("a", 9.0); // refresh + overwrite; b is LRU
        cache.put("c", 3.0); // evicts b
        assert_eq!(cache.get("a"), Some(9.0));
        assert_eq!(cache.get("b"), None);
    }

    #[test]
    fn hit_and_miss_counters() {
        let mut cache = LruCache::new(4);
        cache.put("a", 1.0);
        let _ = cache.get("a");
        let _ = cache.get("a");
        let _ = cache.get("nope");
        assert_eq!(cache.hits(), 2);
    }
}
