//! Frame transport: bounded JSONL lines and the negotiated
//! length-prefixed binary framing.
//!
//! Both the daemon ([`server`](crate::server)) and the
//! [`Client`](crate::Client) read frames through [`read_frame`], so the
//! frame bound ([`Limits::max_frame_bytes`](crate::Limits)) is enforced
//! *before buffering* on both ends: an oversized frame is drained in
//! bounded chunks and reported as [`FrameReadError::TooLarge`] without
//! ever holding more than one `BufRead` buffer of it in memory. (PR 6's
//! client read responses with an unbounded `read_line`; that path is
//! gone.)
//!
//! # Negotiation
//!
//! A connection starts in JSONL mode. A client that wants binary frames
//! sends the 8-byte [`BINARY_MAGIC`] preamble as its very first bytes;
//! the server peeks the first byte (`{` or whitespace means JSONL — a
//! JSON request can never start with `I`) and switches the whole
//! connection. The choice is per-connection and permanent.
//!
//! # Binary frame layout
//!
//! ```text
//! frame   := u32-le payload-length, payload
//! payload := value
//! value   := 0x00                      (null)
//!          | 0x01 | 0x02               (false / true)
//!          | 0x03 i64-le               (int)
//!          | 0x04 u64-le               (uint)
//!          | 0x05 f64-bits-le          (float, bit-exact)
//!          | 0x06 u32-le utf8-bytes    (string)
//!          | 0x07 u32-le value*        (sequence)
//!          | 0x08 u32-le (string value)*  (map, field order preserved)
//! ```
//!
//! The payload is the request/response's serde value tree — the same
//! tree the JSONL codec prints — so the two framings are bit-equivalent
//! in content (floats travel as raw bits in both: the JSON writer
//! round-trips `f64` exactly).

use std::io::BufRead;

use serde::{Deserialize, Serialize, Value};

use crate::protocol::{Request, Response};

/// First bytes of a connection that opts into binary framing.
pub const BINARY_MAGIC: [u8; 8] = *b"IRGBIN1\n";

/// Nesting depth bound for binary decoding (a hostile frame could
/// otherwise recurse the stack); protocol values are ≤ 6 deep.
const MAX_DEPTH: u32 = 64;

/// How frames are laid out on one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrameCodec {
    /// One JSON object per `\n`-terminated line (the default).
    #[default]
    Jsonl,
    /// Length-prefixed binary value frames.
    Binary,
}

/// One received frame, still encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FramePayload {
    /// A complete JSONL line (without the newline).
    Jsonl(String),
    /// A complete binary payload (without the length prefix).
    Binary(Vec<u8>),
}

/// Why [`read_frame`] returned no frame.
#[derive(Debug)]
pub enum FrameReadError {
    /// The frame exceeded the limit. The stream has been resynced past
    /// the offending frame (JSONL: skipped to the newline; binary: the
    /// declared payload drained in chunks), so the connection can
    /// continue with a typed `FrameTooLarge` reply.
    TooLarge,
    /// Clean end of stream between frames.
    Closed,
    /// The `keep_waiting` callback asked to stop (server shutdown).
    Aborted,
    /// Hard transport error; the connection is unusable.
    Transport(std::io::Error),
}

/// Fills the reader's buffer, handling read-timeout polling: on
/// `WouldBlock`/`TimedOut` the `keep_waiting` callback decides whether
/// to keep blocking (clients) or abort (server shutdown).
fn fill<'a, R: BufRead>(
    reader: &'a mut R,
    keep_waiting: &mut dyn FnMut() -> bool,
) -> Result<&'a [u8], FrameReadError> {
    loop {
        // Polonius workaround: probe with a non-borrow-extending call
        // first, then do the real fill_buf outside the error path.
        match reader.fill_buf() {
            Ok(_) => break,
            Err(err)
                if err.kind() == std::io::ErrorKind::WouldBlock
                    || err.kind() == std::io::ErrorKind::TimedOut =>
            {
                if !keep_waiting() {
                    return Err(FrameReadError::Aborted);
                }
            }
            Err(err) => return Err(FrameReadError::Transport(err)),
        }
    }
    reader.fill_buf().map_err(FrameReadError::Transport)
}

/// Reads one frame of at most `max` bytes in the connection's codec.
///
/// # Errors
///
/// [`FrameReadError::TooLarge`] for an over-limit frame (stream
/// resynced, connection survives), [`FrameReadError::Closed`] on clean
/// EOF, [`FrameReadError::Aborted`] when `keep_waiting` returns false
/// during a read timeout, [`FrameReadError::Transport`] otherwise.
pub fn read_frame<R: BufRead>(
    reader: &mut R,
    codec: FrameCodec,
    max: usize,
    keep_waiting: &mut dyn FnMut() -> bool,
) -> Result<FramePayload, FrameReadError> {
    match codec {
        FrameCodec::Jsonl => read_jsonl_frame(reader, max, keep_waiting).map(FramePayload::Jsonl),
        FrameCodec::Binary => {
            read_binary_frame(reader, max, keep_waiting).map(FramePayload::Binary)
        }
    }
}

/// Reads one `\n`-terminated line, enforcing `max` before buffering.
fn read_jsonl_frame<R: BufRead>(
    reader: &mut R,
    max: usize,
    keep_waiting: &mut dyn FnMut() -> bool,
) -> Result<String, FrameReadError> {
    let mut line = Vec::new();
    loop {
        let buffer = fill(reader, keep_waiting)?;
        if buffer.is_empty() {
            // EOF. A partial unterminated line is a torn frame; drop it.
            return Err(FrameReadError::Closed);
        }
        let (chunk, terminated) = match buffer.iter().position(|&b| b == b'\n') {
            Some(newline) => (newline + 1, true),
            None => (buffer.len(), false),
        };
        if line.len() + chunk > max {
            // Consume to the newline (or all buffered) so the connection
            // can resync on the next frame — without ever accumulating
            // the oversized line.
            reader.consume(chunk);
            if terminated {
                return Err(FrameReadError::TooLarge);
            }
            loop {
                let buffer = fill(reader, keep_waiting)?;
                if buffer.is_empty() {
                    return Err(FrameReadError::Closed);
                }
                match buffer.iter().position(|&b| b == b'\n') {
                    Some(newline) => {
                        reader.consume(newline + 1);
                        return Err(FrameReadError::TooLarge);
                    }
                    None => {
                        let len = buffer.len();
                        reader.consume(len);
                    }
                }
            }
        }
        line.extend_from_slice(&buffer[..chunk]);
        reader.consume(chunk);
        if terminated {
            let text = String::from_utf8_lossy(&line).into_owned();
            return Ok(text.trim_end_matches(['\n', '\r']).to_owned());
        }
    }
}

/// Reads exactly `want` bytes through the polling fill. `sink` receives
/// each chunk; pass a draining sink to discard oversized payloads
/// without buffering them.
fn read_exact_chunked<R: BufRead>(
    reader: &mut R,
    mut want: usize,
    keep_waiting: &mut dyn FnMut() -> bool,
    sink: &mut dyn FnMut(&[u8]),
) -> Result<(), FrameReadError> {
    while want > 0 {
        let buffer = fill(reader, keep_waiting)?;
        if buffer.is_empty() {
            return Err(FrameReadError::Closed);
        }
        let take = buffer.len().min(want);
        sink(&buffer[..take]);
        reader.consume(take);
        want -= take;
    }
    Ok(())
}

/// Reads one length-prefixed binary frame, enforcing `max` against the
/// declared length *before* reading the payload.
fn read_binary_frame<R: BufRead>(
    reader: &mut R,
    max: usize,
    keep_waiting: &mut dyn FnMut() -> bool,
) -> Result<Vec<u8>, FrameReadError> {
    // The length prefix. EOF before any prefix byte is a clean close;
    // EOF inside it is a torn frame, also treated as close (parity with
    // the JSONL reader's torn-line handling).
    let mut prefix = [0_u8; 4];
    let mut got = 0_usize;
    while got < prefix.len() {
        let buffer = fill(reader, keep_waiting)?;
        if buffer.is_empty() {
            return Err(FrameReadError::Closed);
        }
        let take = buffer.len().min(prefix.len() - got);
        prefix[got..got + take].copy_from_slice(&buffer[..take]);
        reader.consume(take);
        got += take;
    }
    let declared = u32::from_le_bytes(prefix) as usize;
    if declared > max {
        // Refuse before buffering: drain the declared payload in
        // `BufRead`-buffer-sized chunks so the connection can resync.
        read_exact_chunked(reader, declared, keep_waiting, &mut |_| {})?;
        return Err(FrameReadError::TooLarge);
    }
    let mut payload = Vec::with_capacity(declared);
    read_exact_chunked(reader, declared, keep_waiting, &mut |chunk| {
        payload.extend_from_slice(chunk);
    })?;
    Ok(payload)
}

/// Server-side codec negotiation: peeks the connection's first byte and
/// consumes the [`BINARY_MAGIC`] preamble when present.
///
/// # Errors
///
/// Propagates [`read_frame`]-style errors; a first byte of `I` followed
/// by a non-magic sequence is a [`FrameReadError::Transport`] error
/// (the peer speaks neither framing).
pub fn negotiate<R: BufRead>(
    reader: &mut R,
    keep_waiting: &mut dyn FnMut() -> bool,
) -> Result<FrameCodec, FrameReadError> {
    let buffer = fill(reader, keep_waiting)?;
    if buffer.is_empty() {
        return Err(FrameReadError::Closed);
    }
    if buffer[0] != BINARY_MAGIC[0] {
        return Ok(FrameCodec::Jsonl);
    }
    let mut magic = [0_u8; BINARY_MAGIC.len()];
    let mut got = 0_usize;
    while got < magic.len() {
        let buffer = fill(reader, keep_waiting)?;
        if buffer.is_empty() {
            return Err(FrameReadError::Closed);
        }
        let take = buffer.len().min(magic.len() - got);
        magic[got..got + take].copy_from_slice(&buffer[..take]);
        reader.consume(take);
        got += take;
    }
    if magic == BINARY_MAGIC {
        Ok(FrameCodec::Binary)
    } else {
        Err(FrameReadError::Transport(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "first bytes are neither JSON nor the binary-framing magic",
        )))
    }
}

/// Encodes a serde value tree in the binary layout.
fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(0x00),
        Value::Bool(false) => out.push(0x01),
        Value::Bool(true) => out.push(0x02),
        Value::Int(v) => {
            out.push(0x03);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::UInt(v) => {
            out.push(0x04);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::Float(v) => {
            out.push(0x05);
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Value::Str(text) => {
            out.push(0x06);
            encode_bytes(text.as_bytes(), out);
        }
        Value::Seq(items) => {
            out.push(0x07);
            encode_len(items.len(), out);
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Map(entries) => {
            out.push(0x08);
            encode_len(entries.len(), out);
            for (key, item) in entries {
                encode_bytes(key.as_bytes(), out);
                encode_value(item, out);
            }
        }
    }
}

fn encode_len(len: usize, out: &mut Vec<u8>) {
    // Frames are bounded to max_frame_bytes (< 4 GiB) long before any
    // collection could exceed u32.
    // irgrid-lint: allow(P1): lengths inside a bounded frame fit u32
    let len = u32::try_from(len).expect("frame collection length fits u32");
    out.extend_from_slice(&len.to_le_bytes());
}

fn encode_bytes(bytes: &[u8], out: &mut Vec<u8>) {
    encode_len(bytes.len(), out);
    out.extend_from_slice(bytes);
}

/// A byte cursor for binary decoding.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, count: usize) -> Result<&'a [u8], String> {
        let end = self
            .at
            .checked_add(count)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| format!("truncated frame: need {count} bytes at {}", self.at))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn take_u32(&mut self) -> Result<u32, String> {
        let bytes = self.take(4)?;
        // irgrid-lint: allow(P1): take(4) returned exactly 4 bytes
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    fn take_u64(&mut self) -> Result<u64, String> {
        let bytes = self.take(8)?;
        // irgrid-lint: allow(P1): take(8) returned exactly 8 bytes
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    fn take_string(&mut self) -> Result<String, String> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|err| format!("invalid utf-8 in frame: {err}"))
    }

    fn take_value(&mut self, depth: u32) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err(format!("frame nests deeper than {MAX_DEPTH}"));
        }
        let tag = self.take(1)?[0];
        Ok(match tag {
            0x00 => Value::Null,
            0x01 => Value::Bool(false),
            0x02 => Value::Bool(true),
            0x03 => Value::Int(i64::from_le_bytes(
                // irgrid-lint: allow(P1): take(8) returned exactly 8 bytes
                self.take(8)?.try_into().expect("8 bytes"),
            )),
            0x04 => Value::UInt(self.take_u64()?),
            0x05 => Value::Float(f64::from_bits(self.take_u64()?)),
            0x06 => Value::Str(self.take_string()?),
            0x07 => {
                let count = self.take_u32()? as usize;
                // Bound pre-allocation by what the payload can hold.
                let mut items = Vec::with_capacity(count.min(self.bytes.len() - self.at));
                for _ in 0..count {
                    items.push(self.take_value(depth + 1)?);
                }
                Value::Seq(items)
            }
            0x08 => {
                let count = self.take_u32()? as usize;
                let mut entries = Vec::with_capacity(count.min(self.bytes.len() - self.at));
                for _ in 0..count {
                    let key = self.take_string()?;
                    entries.push((key, self.take_value(depth + 1)?));
                }
                Value::Map(entries)
            }
            other => return Err(format!("unknown value tag 0x{other:02x}")),
        })
    }
}

/// Decodes one binary payload into a serde value tree.
///
/// # Errors
///
/// Returns a description of the malformation (truncation, bad tag, bad
/// UTF-8, over-deep nesting, trailing garbage).
pub fn decode_value(bytes: &[u8]) -> Result<Value, String> {
    let mut cursor = Cursor { bytes, at: 0 };
    let value = cursor.take_value(0)?;
    if cursor.at != bytes.len() {
        return Err(format!(
            "{} trailing bytes after the value",
            bytes.len() - cursor.at
        ));
    }
    Ok(value)
}

/// Encodes any protocol message as one frame in the given codec.
fn message_frame<T: Serialize>(codec: FrameCodec, message: &T) -> Vec<u8> {
    match codec {
        FrameCodec::Jsonl => {
            let serialized = serde_json::to_string(message);
            // irgrid-lint: allow(P1): serializing a plain owned data struct cannot fail
            let mut text = serialized.expect("message serialization is infallible");
            text.push('\n');
            text.into_bytes()
        }
        FrameCodec::Binary => {
            let mut payload = Vec::new();
            encode_value(&message.to_value(), &mut payload);
            let mut frame = Vec::with_capacity(payload.len() + 4);
            encode_len(payload.len(), &mut frame);
            frame.extend_from_slice(&payload);
            frame
        }
    }
}

/// Encodes a [`Request`] as one frame.
#[must_use]
pub fn request_frame(codec: FrameCodec, request: &Request) -> Vec<u8> {
    message_frame(codec, request)
}

/// Encodes a [`Response`] as one frame.
#[must_use]
pub fn response_frame(codec: FrameCodec, response: &Response) -> Vec<u8> {
    message_frame(codec, response)
}

fn payload_value(payload: &FramePayload) -> Result<Value, String> {
    match payload {
        FramePayload::Jsonl(line) => serde_json::from_str(line).map_err(|err| err.to_string()),
        FramePayload::Binary(bytes) => decode_value(bytes),
    }
}

/// Parses a received frame as a [`Request`].
///
/// # Errors
///
/// Returns the parse failure text for a `MalformedFrame` reply.
pub fn parse_request_payload(payload: &FramePayload) -> Result<Request, String> {
    let value = payload_value(payload)?;
    Request::from_value(&value).map_err(|err| err.to_string())
}

/// Parses a received frame as a [`Response`].
///
/// # Errors
///
/// Returns the parse failure text.
pub fn parse_response_payload(payload: &FramePayload) -> Result<Response, String> {
    let value = payload_value(payload)?;
    Response::from_value(&value).map_err(|err| err.to_string())
}

/// Best-effort recovery of the `id` field from a frame that failed to
/// parse as a full [`Request`], so the error reply can be matched.
#[must_use]
pub fn recover_payload_id(payload: &FramePayload) -> String {
    match payload_value(payload) {
        Ok(value) => match value.get("id") {
            Some(Value::Str(id)) => id.clone(),
            _ => String::new(),
        },
        Err(_) => String::new(),
    }
}

/// Whether an empty frame should be skipped (blank JSONL lines keep the
/// connection; binary frames are never blank-skippable).
#[must_use]
pub fn is_blank(payload: &FramePayload) -> bool {
    match payload {
        FramePayload::Jsonl(line) => line.trim().is_empty(),
        FramePayload::Binary(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{FloorplanState, RequestOp, ResponsePayload, SessionConfig};
    use std::io::BufReader;

    fn keep() -> impl FnMut() -> bool {
        || true
    }

    fn demo_request() -> Request {
        Request {
            id: "r-1".into(),
            session: "alice".into(),
            op: RequestOp::Propose {
                state: FloorplanState {
                    chip: [600, 400],
                    segments: vec![[0, 0, 10, 20], [5, 5, 600, 400]],
                },
            },
        }
    }

    #[test]
    fn binary_value_roundtrip_is_bit_exact() {
        let request = demo_request();
        let mut payload = Vec::new();
        encode_value(&request.to_value(), &mut payload);
        let back = decode_value(&payload).expect("decode");
        assert_eq!(Request::from_value(&back).expect("from value"), request);

        // Floats travel as raw bits: a value JSON would print lossily
        // rounds nowhere in binary.
        let tricky = Value::Float(f64::from_bits(0x3FF0_0000_0000_0001));
        let mut bytes = Vec::new();
        encode_value(&tricky, &mut bytes);
        match decode_value(&bytes).expect("decode") {
            Value::Float(f) => assert_eq!(f.to_bits(), 0x3FF0_0000_0000_0001),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn binary_decode_rejects_malformed_frames() {
        assert!(decode_value(&[]).is_err(), "empty payload");
        assert!(decode_value(&[0xFF]).is_err(), "unknown tag");
        assert!(decode_value(&[0x03, 1, 2]).is_err(), "truncated int");
        assert!(decode_value(&[0x00, 0x00]).is_err(), "trailing garbage");
        // String declaring more bytes than present.
        assert!(decode_value(&[0x06, 10, 0, 0, 0, b'a']).is_err());
        // A nesting bomb: seqs of seqs past MAX_DEPTH.
        let mut bomb = vec![[0x07_u8, 1, 0, 0, 0]; 80]
            .into_iter()
            .flatten()
            .collect::<Vec<u8>>();
        bomb.push(0x00);
        assert!(decode_value(&bomb).is_err(), "over-deep nesting");
    }

    #[test]
    fn request_and_response_frames_roundtrip_in_both_codecs() {
        let request = demo_request();
        let response = Response::ok(
            "r-1",
            ResponsePayload::Proposed {
                digest: "abcd".into(),
                score: 1.25,
            },
        );
        for codec in [FrameCodec::Jsonl, FrameCodec::Binary] {
            let bytes = request_frame(codec, &request);
            let mut reader = BufReader::new(bytes.as_slice());
            let payload = read_frame(&mut reader, codec, 1 << 20, &mut keep()).expect("frame");
            assert_eq!(parse_request_payload(&payload).expect("parse"), request);

            let bytes = response_frame(codec, &response);
            let mut reader = BufReader::new(bytes.as_slice());
            let payload = read_frame(&mut reader, codec, 1 << 20, &mut keep()).expect("frame");
            assert_eq!(parse_response_payload(&payload).expect("parse"), response);
        }
    }

    #[test]
    fn negotiation_picks_the_codec_from_the_first_bytes() {
        let mut jsonl = BufReader::new(&b"{\"id\":\"a\"}\n"[..]);
        assert!(matches!(
            negotiate(&mut jsonl, &mut keep()),
            Ok(FrameCodec::Jsonl)
        ));
        // The JSONL bytes were not consumed.
        let payload =
            read_frame(&mut jsonl, FrameCodec::Jsonl, 1 << 20, &mut keep()).expect("frame");
        assert_eq!(payload, FramePayload::Jsonl("{\"id\":\"a\"}".into()));

        let mut framed = BINARY_MAGIC.to_vec();
        framed.extend_from_slice(&request_frame(FrameCodec::Binary, &demo_request()));
        let mut binary = BufReader::new(framed.as_slice());
        assert!(matches!(
            negotiate(&mut binary, &mut keep()),
            Ok(FrameCodec::Binary)
        ));
        let payload =
            read_frame(&mut binary, FrameCodec::Binary, 1 << 20, &mut keep()).expect("frame");
        assert_eq!(
            parse_request_payload(&payload).expect("parse"),
            demo_request()
        );

        let mut broken = BufReader::new(&b"IRGNOPE\n"[..]);
        assert!(matches!(
            negotiate(&mut broken, &mut keep()),
            Err(FrameReadError::Transport(_))
        ));
    }

    #[test]
    fn oversized_frames_are_refused_and_resynced_in_both_codecs() {
        // JSONL: a long line, then a small valid one.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(format!("{{\"pad\":\"{}\"}}\n", "x".repeat(512)).as_bytes());
        bytes.extend_from_slice(b"{\"id\":\"ok\"}\n");
        let mut reader = BufReader::with_capacity(16, bytes.as_slice());
        assert!(matches!(
            read_frame(&mut reader, FrameCodec::Jsonl, 64, &mut keep()),
            Err(FrameReadError::TooLarge)
        ));
        let next = read_frame(&mut reader, FrameCodec::Jsonl, 64, &mut keep()).expect("resync");
        assert_eq!(next, FramePayload::Jsonl("{\"id\":\"ok\"}".into()));

        // Binary: declared length over the limit is drained, next frame
        // parses. The tiny BufReader capacity proves the payload is
        // never held whole.
        let mut huge = Vec::new();
        encode_value(&Value::Str("y".repeat(512)), &mut huge);
        let mut bytes = Vec::new();
        encode_len(huge.len(), &mut bytes);
        bytes.extend_from_slice(&huge);
        let mut small = Vec::new();
        encode_value(&Value::Bool(true), &mut small);
        encode_len(small.len(), &mut bytes);
        bytes.extend_from_slice(&small);
        let mut reader = BufReader::with_capacity(16, bytes.as_slice());
        assert!(matches!(
            read_frame(&mut reader, FrameCodec::Binary, 64, &mut keep()),
            Err(FrameReadError::TooLarge)
        ));
        let next = read_frame(&mut reader, FrameCodec::Binary, 64, &mut keep()).expect("resync");
        assert_eq!(
            decode_value(&match next {
                FramePayload::Binary(b) => b,
                other => panic!("expected binary, got {other:?}"),
            })
            .expect("decode"),
            Value::Bool(true)
        );
    }

    #[test]
    fn just_under_the_limit_passes() {
        let line = format!("{}\n", "a".repeat(63));
        let mut reader = BufReader::new(line.as_bytes());
        assert!(read_frame(&mut reader, FrameCodec::Jsonl, 64, &mut keep()).is_ok());

        let config_request = Request {
            id: "x".into(),
            session: "s".into(),
            op: RequestOp::OpenDelta {
                config: SessionConfig::default_config(),
            },
        };
        let frame = request_frame(FrameCodec::Binary, &config_request);
        let payload_len = frame.len() - 4;
        let mut reader = BufReader::new(frame.as_slice());
        let payload = read_frame(&mut reader, FrameCodec::Binary, payload_len, &mut keep())
            .expect("exactly at the limit passes");
        assert_eq!(
            parse_request_payload(&payload).expect("parse"),
            config_request
        );
    }

    #[test]
    fn eof_between_frames_is_closed_not_error() {
        let mut reader = BufReader::new(&b""[..]);
        assert!(matches!(
            read_frame(&mut reader, FrameCodec::Jsonl, 64, &mut keep()),
            Err(FrameReadError::Closed)
        ));
        let mut reader = BufReader::new(&b""[..]);
        assert!(matches!(
            read_frame(&mut reader, FrameCodec::Binary, 64, &mut keep()),
            Err(FrameReadError::Closed)
        ));
        // Torn binary prefix: also a close.
        let mut reader = BufReader::new(&[0x05_u8, 0x00][..]);
        assert!(matches!(
            read_frame(&mut reader, FrameCodec::Binary, 64, &mut keep()),
            Err(FrameReadError::Closed)
        ));
    }
}
