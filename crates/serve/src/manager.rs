//! The session manager: request dispatch, idempotent retries, load-based
//! degradation, and the persist-then-reply commit discipline.
//!
//! # Commit discipline
//!
//! An `Evaluate` mutates the session's persistent record (counters and
//! the idempotency ring). The manager clones that record before the
//! mutation, persists the new record through the [`SnapshotStore`], and
//! only then releases the response. If persistence fails, the in-memory
//! record rolls back to the clone and the client gets a retryable
//! `PersistFailed` — so the daemon never acknowledges work it could
//! forget. Combined with the idempotency ring, a client that retries on
//! every retryable error reaches a final state byte-identical to an
//! uninterrupted run.
//!
//! # Degradation ladder
//!
//! Load is the number of `Evaluate` requests in flight across all
//! connections. The [`DegradePolicy`] maps it to a scoring rung:
//! below `lz_at` the paper's irregular-grid model, then the L/Z-shape
//! model, then the fixed grid, and past `reject_at` an explicit
//! `Backpressure` error — bounded work, never an unbounded queue.
//! Degraded responses carry `degraded: true`, are never cached, and are
//! never recorded for replay: a retry re-scores at full fidelity.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use irgrid_anneal::RunControl;
use irgrid_fleet::state_digest;

use crate::protocol::{
    valid_session_id, ErrorKind, Limits, Request, RequestOp, Response, ResponsePayload,
    SessionConfig,
};
use crate::session::{DegradeRung, Session, SessionState};
use crate::store::{SnapshotStore, StoreError};

/// Load thresholds for the degradation ladder, in concurrent in-flight
/// `Evaluate` requests. A request's own slot counts: the first request
/// sees load 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradePolicy {
    /// Loads at or above this degrade to the L/Z-shape model.
    pub lz_at: usize,
    /// Loads at or above this degrade to the fixed-grid model.
    pub fixed_at: usize,
    /// Loads at or above this are refused with `Backpressure`.
    pub reject_at: usize,
}

impl Default for DegradePolicy {
    fn default() -> DegradePolicy {
        DegradePolicy {
            lz_at: 9,
            fixed_at: 17,
            reject_at: 33,
        }
    }
}

impl DegradePolicy {
    /// The rung for a given in-flight load, or `None` for refusal.
    #[must_use]
    pub fn rung_for(&self, load: usize) -> Option<DegradeRung> {
        if load >= self.reject_at {
            None
        } else if load >= self.fixed_at {
            Some(DegradeRung::Fixed)
        } else if load >= self.lz_at {
            Some(DegradeRung::Lz)
        } else {
            Some(DegradeRung::Full)
        }
    }
}

/// Decrements the load gauge when an `Evaluate` finishes, however it
/// finishes.
struct LoadGuard<'a>(&'a AtomicUsize);

impl Drop for LoadGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The daemon's session table and request dispatcher. One instance is
/// shared (via `Arc`) by every connection thread.
#[derive(Debug)]
pub struct SessionManager {
    store: SnapshotStore,
    limits: Limits,
    policy: DegradePolicy,
    workers: usize,
    sessions: Mutex<BTreeMap<String, Arc<Mutex<Session>>>>,
    /// Per-session persistence attempt counters — the chaos consultation
    /// indices. Kept here (not in the `Session`) so every attempt draws
    /// a fresh index even when the session object is discarded, e.g. a
    /// retried `Open` whose birth write failed: tying the index to the
    /// session would replay the identical injected fault forever.
    write_seqs: Mutex<BTreeMap<String, u64>>,
    load: AtomicUsize,
    shutting_down: AtomicBool,
}

/// Unwraps a mutex guard, recovering from poisoning (a panicked peer
/// thread must not wedge every other connection).
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl SessionManager {
    /// Creates a manager over `store`, fanning full-fidelity batches over
    /// `workers` pool threads (`<= 1` evaluates inline and retained).
    #[must_use]
    pub fn new(
        store: SnapshotStore,
        limits: Limits,
        policy: DegradePolicy,
        workers: usize,
    ) -> SessionManager {
        SessionManager {
            store,
            limits,
            policy,
            workers: workers.max(1),
            sessions: Mutex::new(BTreeMap::new()),
            write_seqs: Mutex::new(BTreeMap::new()),
            load: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
        }
    }

    /// The next persistence attempt index for `session_id` (monotonic
    /// across session object lifetimes within this process).
    fn next_seq(&self, session_id: &str) -> u64 {
        let mut seqs = lock(&self.write_seqs);
        let counter = seqs.entry(session_id.to_owned()).or_insert(0);
        let seq = *counter;
        *counter += 1;
        seq
    }

    /// Whether `Shutdown` has been requested (the accept loop polls this).
    #[must_use]
    pub fn shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Acquire)
    }

    /// Requests a graceful shutdown.
    pub fn request_shutdown(&self) {
        self.shutting_down.store(true, Ordering::Release);
    }

    /// Session ids with a snapshot on disk (resumable via `Open`).
    ///
    /// # Errors
    ///
    /// Forwards [`StoreError`] when the state directory cannot be read.
    pub fn resumable(&self) -> Result<Vec<String>, StoreError> {
        self.store.list()
    }

    /// The limits this manager enforces.
    #[must_use]
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// Injected chaos faults drawn by this manager's store.
    #[must_use]
    pub fn injected_faults(&self) -> u64 {
        self.store.injected_faults()
    }

    /// Handles one request. `request_control` carries the per-request
    /// deadline the transport layer chose; the manager itself never
    /// touches the clock.
    pub fn handle(&self, request: &Request, request_control: &RunControl) -> Response {
        match &request.op {
            RequestOp::Ping => Response::ok(&request.id, ResponsePayload::Pong),
            RequestOp::Shutdown => {
                self.request_shutdown();
                Response::ok(&request.id, ResponsePayload::Bye)
            }
            _ if self.shutting_down() => Response::error(
                &request.id,
                ErrorKind::ShuttingDown,
                "daemon is shutting down",
                true,
            ),
            RequestOp::Open { config } => self.handle_open(request, *config),
            RequestOp::Evaluate { states } => {
                self.handle_evaluate(request, states, request_control)
            }
            RequestOp::Stat => self.with_session(request, |session| {
                Response::ok(
                    &request.id,
                    ResponsePayload::Stats {
                        stat: session.stat(),
                    },
                )
            }),
            RequestOp::Close => self.handle_close(request),
        }
    }

    fn handle_open(&self, request: &Request, config: SessionConfig) -> Response {
        if !valid_session_id(&request.session) {
            return Response::error(
                &request.id,
                ErrorKind::InvalidRequest,
                format!("invalid session id `{}`", request.session),
                false,
            );
        }
        if config.pitch_um <= 0 {
            return Response::error(
                &request.id,
                ErrorKind::InvalidRequest,
                format!("pitch_um {} must be positive", config.pitch_um),
                false,
            );
        }

        // Fast path: the session is already live.
        {
            let sessions = lock(&self.sessions);
            if let Some(slot) = sessions.get(&request.session) {
                let session = lock(slot);
                if session.state.config == config {
                    return Response::ok(
                        &request.id,
                        ResponsePayload::Opened {
                            resumed: false,
                            stat: session.stat(),
                        },
                    );
                }
                return Response::error(
                    &request.id,
                    ErrorKind::InvalidRequest,
                    "session is open with a different config",
                    false,
                );
            }
            if sessions.len() >= self.limits.max_sessions {
                return Response::error(
                    &request.id,
                    ErrorKind::Backpressure,
                    format!("session table full ({} sessions)", sessions.len()),
                    true,
                );
            }
        }

        // Resume from disk, or create fresh and persist the birth record
        // before acknowledging (a restart must know the session exists).
        let resumed = match self.store.read(&request.session) {
            Ok(Some(text)) => match SessionState::from_json(&text, &request.session) {
                Ok(state) => {
                    if state.config != config {
                        return Response::error(
                            &request.id,
                            ErrorKind::InvalidRequest,
                            "checkpoint on disk has a different config",
                            false,
                        );
                    }
                    Some(state)
                }
                Err(why) => {
                    // A complete-but-unreadable snapshot is a loud error:
                    // silently recreating the session would lose history.
                    return Response::error(
                        &request.id,
                        ErrorKind::PersistFailed,
                        format!("session checkpoint unreadable: {why}"),
                        false,
                    );
                }
            },
            Ok(None) => None,
            Err(err) => {
                return self.store_failure(&request.id, &err);
            }
        };

        let was_resumed = resumed.is_some();
        let session = match resumed {
            Some(state) => Session::from_state(state, self.limits.completed_ring),
            None => Session::create(&request.session, config, self.limits.completed_ring),
        };
        if !was_resumed {
            let payload = session.state.to_json();
            let seq = self.next_seq(&request.session);
            if let Err(err) = self.store.write(&request.session, &payload, seq) {
                return self.store_failure(&request.id, &err);
            }
        }

        let slot = Arc::new(Mutex::new(session));
        let mut sessions = lock(&self.sessions);
        // A racing Open may have inserted meanwhile; keep the first.
        let entry = sessions
            .entry(request.session.clone())
            .or_insert_with(|| slot)
            .clone();
        drop(sessions);
        let stat = {
            let session = lock(&entry);
            if session.state.config != config {
                return Response::error(
                    &request.id,
                    ErrorKind::InvalidRequest,
                    "session is open with a different config",
                    false,
                );
            }
            session.stat()
        };
        Response::ok(
            &request.id,
            ResponsePayload::Opened {
                resumed: was_resumed,
                stat,
            },
        )
    }

    fn handle_evaluate(
        &self,
        request: &Request,
        states: &[crate::protocol::FloorplanState],
        request_control: &RunControl,
    ) -> Response {
        if states.len() > self.limits.max_batch {
            return Response::error(
                &request.id,
                ErrorKind::BatchTooLarge,
                format!(
                    "batch of {} exceeds max_batch {}",
                    states.len(),
                    self.limits.max_batch
                ),
                false,
            );
        }
        if let Some(over) = states
            .iter()
            .find(|s| s.segments.len() > self.limits.max_segments)
        {
            return Response::error(
                &request.id,
                ErrorKind::BatchTooLarge,
                format!(
                    "state with {} segments exceeds max_segments {}",
                    over.segments.len(),
                    self.limits.max_segments
                ),
                false,
            );
        }

        let load = self.load.fetch_add(1, Ordering::AcqRel) + 1;
        let _guard = LoadGuard(&self.load);
        let Some(rung) = self.policy.rung_for(load) else {
            return Response::error(
                &request.id,
                ErrorKind::Backpressure,
                format!("{load} evaluate requests in flight; retry later"),
                true,
            );
        };

        let batch_digest = state_digest(&states);
        self.with_session(request, |session| {
            // Idempotent retry: replay the recorded response verbatim.
            if let Some(record) = session.recorded(&request.id) {
                if record.batch_digest == batch_digest {
                    let mut response = Response::ok(
                        &request.id,
                        ResponsePayload::Evaluated {
                            results: record.results.clone(),
                        },
                    );
                    response.replayed = true;
                    return response;
                }
                return Response::error(
                    &request.id,
                    ErrorKind::IdempotencyViolation,
                    "request id reused with a different state batch",
                    false,
                );
            }

            let rollback = session.state.clone();
            let results = match session.evaluate(
                &request.id,
                &batch_digest,
                states,
                rung,
                request_control,
                self.workers,
            ) {
                Ok(results) => results,
                Err(failure) => {
                    return Response::error(
                        &request.id,
                        failure.kind,
                        failure.message,
                        failure.retryable,
                    );
                }
            };

            // Persist before acknowledging; roll back if the disk refused.
            let payload = session.state.to_json();
            let seq = self.next_seq(&session.state.session_id);
            if let Err(err) = self.store.write(&session.state.session_id, &payload, seq) {
                session.state = rollback;
                return self.store_failure(&request.id, &err);
            }

            let mut response = Response::ok(&request.id, ResponsePayload::Evaluated { results });
            response.degraded = rung.is_degraded();
            response
        })
    }

    fn handle_close(&self, request: &Request) -> Response {
        let slot = lock(&self.sessions).remove(&request.session);
        if slot.is_none() {
            return Response::error(
                &request.id,
                ErrorKind::UnknownSession,
                format!("session `{}` is not open", request.session),
                false,
            );
        }
        match self.store.remove(&request.session) {
            Ok(()) => Response::ok(&request.id, ResponsePayload::Closed),
            Err(err) => self.store_failure(&request.id, &err),
        }
    }

    /// Runs `body` with the named session locked, or replies
    /// `UnknownSession`.
    fn with_session(
        &self,
        request: &Request,
        body: impl FnOnce(&mut Session) -> Response,
    ) -> Response {
        let slot = lock(&self.sessions).get(&request.session).cloned();
        match slot {
            Some(slot) => body(&mut lock(&slot)),
            None => Response::error(
                &request.id,
                ErrorKind::UnknownSession,
                format!(
                    "session `{}` is not open (Open resumes checkpoints)",
                    request.session
                ),
                false,
            ),
        }
    }

    fn store_failure(&self, id: &str, err: &StoreError) -> Response {
        match err {
            StoreError::Io { .. } => Response::error(
                id,
                ErrorKind::PersistFailed,
                format!("checkpoint write failed, state rolled back: {err}"),
                true,
            ),
            StoreError::Killed => {
                self.request_shutdown();
                Response::error(id, ErrorKind::ShuttingDown, "daemon killed", true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{Chaos, ChaosConfig};
    use crate::protocol::FloorplanState;
    use crate::store::KillSwitch;

    fn temp_manager(tag: &str, chaos: Chaos, policy: DegradePolicy) -> SessionManager {
        let dir = std::env::temp_dir().join(format!("irgrid_serve_mgr_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::open(&dir, chaos, KillSwitch::new()).expect("store");
        SessionManager::new(store, Limits::default(), policy, 1)
    }

    fn open(manager: &SessionManager, id: &str, session: &str) -> Response {
        manager.handle(
            &Request {
                id: id.into(),
                session: session.into(),
                op: RequestOp::Open {
                    config: SessionConfig::default_config(),
                },
            },
            &RunControl::unlimited(),
        )
    }

    fn evaluate(
        manager: &SessionManager,
        id: &str,
        session: &str,
        states: Vec<FloorplanState>,
    ) -> Response {
        manager.handle(
            &Request {
                id: id.into(),
                session: session.into(),
                op: RequestOp::Evaluate { states },
            },
            &RunControl::unlimited(),
        )
    }

    fn states(count: usize) -> Vec<FloorplanState> {
        (0..count as i64)
            .map(|k| FloorplanState {
                chip: [500, 500],
                segments: vec![[10 + k, 10, 480, 480], [10, 480, 480 - k, 10]],
            })
            .collect()
    }

    #[test]
    fn open_evaluate_stat_close_lifecycle() {
        let manager = temp_manager("lifecycle", Chaos::off(), DegradePolicy::default());
        let opened = open(&manager, "r1", "alice");
        assert!(opened.ok, "{opened:?}");
        assert!(matches!(
            opened.payload,
            ResponsePayload::Opened { resumed: false, .. }
        ));

        let evaluated = evaluate(&manager, "r2", "alice", states(2));
        assert!(evaluated.ok, "{evaluated:?}");
        assert!(!evaluated.degraded);
        let ResponsePayload::Evaluated { results } = &evaluated.payload else {
            panic!("wrong payload {evaluated:?}");
        };
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].model, "irregular");

        let stat = manager.handle(
            &Request {
                id: "r3".into(),
                session: "alice".into(),
                op: RequestOp::Stat,
            },
            &RunControl::unlimited(),
        );
        let ResponsePayload::Stats { stat } = &stat.payload else {
            panic!("wrong payload {stat:?}");
        };
        assert_eq!(stat.evals_done, 2);

        let closed = manager.handle(
            &Request {
                id: "r4".into(),
                session: "alice".into(),
                op: RequestOp::Close,
            },
            &RunControl::unlimited(),
        );
        assert!(closed.ok);
        assert!(manager.resumable().expect("list").is_empty());
    }

    #[test]
    fn unknown_session_and_invalid_ids_are_typed_errors() {
        let manager = temp_manager("unknown", Chaos::off(), DegradePolicy::default());
        let response = evaluate(&manager, "r1", "ghost", states(1));
        assert!(!response.ok);
        assert!(matches!(
            response.payload,
            ResponsePayload::Error {
                kind: ErrorKind::UnknownSession,
                ..
            }
        ));
        let response = open(&manager, "r2", "../escape");
        assert!(matches!(
            response.payload,
            ResponsePayload::Error {
                kind: ErrorKind::InvalidRequest,
                ..
            }
        ));
    }

    #[test]
    fn reopen_is_idempotent_but_config_changes_are_refused() {
        let manager = temp_manager("reopen", Chaos::off(), DegradePolicy::default());
        assert!(open(&manager, "r1", "s").ok);
        assert!(open(&manager, "r2", "s").ok);
        let different = manager.handle(
            &Request {
                id: "r3".into(),
                session: "s".into(),
                op: RequestOp::Open {
                    config: SessionConfig {
                        pitch_um: 60,
                        ..SessionConfig::default_config()
                    },
                },
            },
            &RunControl::unlimited(),
        );
        assert!(matches!(
            different.payload,
            ResponsePayload::Error {
                kind: ErrorKind::InvalidRequest,
                ..
            }
        ));
    }

    #[test]
    fn retry_replays_the_recorded_response_bit_for_bit() {
        let manager = temp_manager("retry", Chaos::off(), DegradePolicy::default());
        assert!(open(&manager, "r1", "s").ok);
        let batch = states(2);
        let first = evaluate(&manager, "e1", "s", batch.clone());
        assert!(first.ok && !first.replayed);
        let second = evaluate(&manager, "e1", "s", batch.clone());
        assert!(second.ok && second.replayed);
        let (ResponsePayload::Evaluated { results: a }, ResponsePayload::Evaluated { results: b }) =
            (&first.payload, &second.payload)
        else {
            panic!("wrong payloads");
        };
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
        // Same id, different batch: refused.
        let conflict = evaluate(&manager, "e1", "s", states(3));
        assert!(matches!(
            conflict.payload,
            ResponsePayload::Error {
                kind: ErrorKind::IdempotencyViolation,
                ..
            }
        ));
        // The replay did not double-count evaluations.
        let ResponsePayload::Stats { stat } = manager
            .handle(
                &Request {
                    id: "r9".into(),
                    session: "s".into(),
                    op: RequestOp::Stat,
                },
                &RunControl::unlimited(),
            )
            .payload
        else {
            panic!("stat");
        };
        assert_eq!(stat.evals_done, 2);
    }

    #[test]
    fn degrade_thresholds_at_zero_force_degraded_or_backpressure() {
        // lz_at 0: every request degrades (load >= 0 is always true).
        let manager = temp_manager(
            "degrade",
            Chaos::off(),
            DegradePolicy {
                lz_at: 0,
                fixed_at: 100,
                reject_at: 200,
            },
        );
        assert!(open(&manager, "r1", "s").ok);
        let response = evaluate(&manager, "e1", "s", states(1));
        assert!(response.ok);
        assert!(response.degraded, "{response:?}");
        let ResponsePayload::Evaluated { results } = &response.payload else {
            panic!("payload");
        };
        assert_eq!(results[0].model, "lz");

        // reject_at 0 (and the rest 0): every request is refused.
        let manager = temp_manager(
            "reject",
            Chaos::off(),
            DegradePolicy {
                lz_at: 0,
                fixed_at: 0,
                reject_at: 0,
            },
        );
        assert!(open(&manager, "r1", "s").ok);
        let response = evaluate(&manager, "e1", "s", states(1));
        assert!(matches!(
            response.payload,
            ResponsePayload::Error {
                kind: ErrorKind::Backpressure,
                retryable: true,
                ..
            }
        ));
    }

    #[test]
    fn degraded_responses_are_not_recorded_so_retries_rescore_full() {
        let dir = std::env::temp_dir().join("irgrid_serve_mgr_degrade_retry");
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::open(&dir, Chaos::off(), KillSwitch::new()).expect("store");
        let degrade_all = SessionManager::new(
            store.clone(),
            Limits::default(),
            DegradePolicy {
                lz_at: 0,
                fixed_at: 100,
                reject_at: 200,
            },
            1,
        );
        assert!(open(&degrade_all, "r1", "s").ok);
        let batch = states(1);
        let degraded = evaluate(&degrade_all, "e1", "s", batch.clone());
        assert!(degraded.degraded);

        // Same state dir, healthy policy: the same request id re-scores
        // at full fidelity instead of replaying the degraded answer.
        let healthy = SessionManager::new(store, Limits::default(), DegradePolicy::default(), 1);
        assert!(open(&healthy, "r2", "s").ok);
        let retry = evaluate(&healthy, "e1", "s", batch);
        assert!(retry.ok && !retry.replayed && !retry.degraded);
        let ResponsePayload::Evaluated { results } = &retry.payload else {
            panic!("payload");
        };
        assert_eq!(results[0].model, "irregular");
    }

    #[test]
    fn persist_failure_rolls_back_and_is_retryable() {
        let dir = std::env::temp_dir().join("irgrid_serve_mgr_persistfail");
        let _ = std::fs::remove_dir_all(&dir);
        // Chaos stream for this session: seed 100, consultations 0.. —
        // pick a seed whose consultation 1 (the first evaluate persist;
        // consultation 0 is the Open birth write) is a fault. Easier:
        // every write fails.
        let all_fail = Chaos::with_config(
            0,
            ChaosConfig {
                io_error_ppm: 1_000_000,
                torn_ppm: 0,
                kill_ppm: 0,
            },
        );
        let clean_store =
            SnapshotStore::open(&dir, Chaos::off(), KillSwitch::new()).expect("store");
        let healthy = SessionManager::new(
            clean_store.clone(),
            Limits::default(),
            DegradePolicy::default(),
            1,
        );
        assert!(open(&healthy, "r1", "s").ok);
        let before = clean_store.read("s").expect("read").expect("snapshot");

        let faulty_store = SnapshotStore::open(&dir, all_fail, KillSwitch::new()).expect("store");
        let faulty =
            SessionManager::new(faulty_store, Limits::default(), DegradePolicy::default(), 1);
        assert!(open(&faulty, "r2", "s").ok, "resume reads, doesn't write");
        let response = evaluate(&faulty, "e1", "s", states(1));
        assert!(matches!(
            response.payload,
            ResponsePayload::Error {
                kind: ErrorKind::PersistFailed,
                retryable: true,
                ..
            }
        ));
        // On-disk snapshot is untouched; in-memory counters rolled back.
        let after = clean_store.read("s").expect("read").expect("snapshot");
        assert_eq!(before, after);
        let ResponsePayload::Stats { stat } = faulty
            .handle(
                &Request {
                    id: "r9".into(),
                    session: "s".into(),
                    op: RequestOp::Stat,
                },
                &RunControl::unlimited(),
            )
            .payload
        else {
            panic!("stat");
        };
        assert_eq!(stat.evals_done, 0, "rolled back");
    }

    #[test]
    fn restart_resumes_from_checkpoint() {
        let dir = std::env::temp_dir().join("irgrid_serve_mgr_restart");
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::open(&dir, Chaos::off(), KillSwitch::new()).expect("store");
        let first = SessionManager::new(
            store.clone(),
            Limits::default(),
            DegradePolicy::default(),
            1,
        );
        assert!(open(&first, "r1", "s").ok);
        assert!(evaluate(&first, "e1", "s", states(2)).ok);
        drop(first);

        let second = SessionManager::new(store, Limits::default(), DegradePolicy::default(), 1);
        assert_eq!(second.resumable().expect("list"), vec!["s".to_owned()]);
        let reopened = open(&second, "r2", "s");
        let ResponsePayload::Opened { resumed, stat } = &reopened.payload else {
            panic!("payload {reopened:?}");
        };
        assert!(resumed);
        assert_eq!(stat.evals_done, 2);
        // The idempotency ring survived the restart.
        let replay = evaluate(&second, "e1", "s", states(2));
        assert!(replay.ok && replay.replayed);
    }

    #[test]
    fn shutdown_refuses_new_work_but_answers_ping() {
        let manager = temp_manager("shutdown", Chaos::off(), DegradePolicy::default());
        assert!(open(&manager, "r1", "s").ok);
        let bye = manager.handle(
            &Request {
                id: "r2".into(),
                session: String::new(),
                op: RequestOp::Shutdown,
            },
            &RunControl::unlimited(),
        );
        assert!(bye.ok);
        assert!(manager.shutting_down());
        let refused = evaluate(&manager, "e1", "s", states(1));
        assert!(matches!(
            refused.payload,
            ResponsePayload::Error {
                kind: ErrorKind::ShuttingDown,
                ..
            }
        ));
        let pong = manager.handle(
            &Request {
                id: "r3".into(),
                session: String::new(),
                op: RequestOp::Ping,
            },
            &RunControl::unlimited(),
        );
        assert!(pong.ok);
    }

    #[test]
    fn batch_limits_are_enforced() {
        let dir = std::env::temp_dir().join("irgrid_serve_mgr_limits");
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::open(&dir, Chaos::off(), KillSwitch::new()).expect("store");
        let limits = Limits {
            max_batch: 2,
            max_segments: 3,
            ..Limits::default()
        };
        let manager = SessionManager::new(store, limits, DegradePolicy::default(), 1);
        assert!(open(&manager, "r1", "s").ok);
        let response = evaluate(&manager, "e1", "s", states(3));
        assert!(matches!(
            response.payload,
            ResponsePayload::Error {
                kind: ErrorKind::BatchTooLarge,
                ..
            }
        ));
        let fat = vec![FloorplanState {
            chip: [100, 100],
            segments: vec![[0, 0, 1, 1]; 4],
        }];
        let response = evaluate(&manager, "e2", "s", fat);
        assert!(matches!(
            response.payload,
            ResponsePayload::Error {
                kind: ErrorKind::BatchTooLarge,
                ..
            }
        ));
    }
}
