//! The session manager: request dispatch, idempotent retries, load-based
//! degradation, and the persist-then-reply commit discipline — for both
//! session kinds (batch-shaped full sessions and move-shaped delta
//! sessions).
//!
//! # Commit discipline
//!
//! An `Evaluate` on a full session mutates the session's persistent
//! record (counters and the idempotency ring). The manager clones that
//! record before the mutation, persists the new record through the
//! [`SnapshotStore`], and only then releases the response. If
//! persistence fails, the in-memory record rolls back to the clone and
//! the client gets a retryable `PersistFailed` — so the daemon never
//! acknowledges work it could forget. Combined with the idempotency
//! ring, a client that retries on every retryable error reaches a final
//! state byte-identical to an uninterrupted run.
//!
//! Delta sessions sharpen the same discipline: `Propose`, `Undo`, and
//! `Evaluate` are pure (nothing to persist), and `Commit` is staged by
//! [`DeltaSession::prepare_commit`] *before* anything mutates — persist
//! the staged snapshot, then apply. A failed persist needs no rollback
//! because nothing moved, and the armed proposal survives for the
//! retry. The chaos injector is consulted at the dedicated
//! `delta.commit` site between staging and persisting, so kill-point
//! tests cover the propose → commit → persist window explicitly.
//!
//! # Degradation ladder
//!
//! Load is the number of scoring requests (`Evaluate` or `Propose`) in
//! flight across all connections, tracked by an RAII [`LoadGuard`]
//! whose *constructor* performs the increment — there is no window in
//! which an early return (or panic) can leak a gauge slot, on any error
//! path. The [`DegradePolicy`] maps load to a scoring rung: below
//! `lz_at` the paper's irregular-grid model, then the L/Z-shape model,
//! then the fixed grid, and past `reject_at` an explicit `Backpressure`
//! error — bounded work, never an unbounded queue. Degraded responses
//! carry `degraded: true`, are never cached, and are never recorded for
//! replay: a retry re-scores at full fidelity. A degraded `Propose`
//! additionally never arms a commit — the committed map only advances
//! through the exact delta pipeline.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use irgrid_anneal::RunControl;
use irgrid_fleet::state_digest;

use crate::cache::SharedScoreCache;
use crate::delta::{CommitOutcome, DeltaSession, DeltaSessionState};
use crate::protocol::{
    valid_session_id, ErrorKind, FloorplanState, Limits, Request, RequestOp, Response,
    ResponsePayload, SessionConfig, SessionStat,
};
use crate::session::{DegradeRung, Session, SessionState};
use crate::store::{SnapshotStore, StoreError};

/// Load thresholds for the degradation ladder, in concurrent in-flight
/// scoring requests. A request's own slot counts: the first request
/// sees load 1, so with the defaults loads 1..=8 score at full
/// fidelity, 9..=16 on the L/Z model, 17..=32 on the fixed grid, and
/// 33+ are refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradePolicy {
    /// Loads at or above this degrade to the L/Z-shape model.
    pub lz_at: usize,
    /// Loads at or above this degrade to the fixed-grid model.
    pub fixed_at: usize,
    /// Loads at or above this are refused with `Backpressure`.
    pub reject_at: usize,
}

impl Default for DegradePolicy {
    fn default() -> DegradePolicy {
        DegradePolicy {
            lz_at: 9,
            fixed_at: 17,
            reject_at: 33,
        }
    }
}

impl DegradePolicy {
    /// The rung for a given in-flight load, or `None` for refusal.
    /// Thresholds are inclusive: `load == lz_at` already degrades, and
    /// `load == reject_at` is already refused.
    #[must_use]
    pub fn rung_for(&self, load: usize) -> Option<DegradeRung> {
        if load >= self.reject_at {
            None
        } else if load >= self.fixed_at {
            Some(DegradeRung::Fixed)
        } else if load >= self.lz_at {
            Some(DegradeRung::Lz)
        } else {
            Some(DegradeRung::Full)
        }
    }
}

/// An occupied slot in the load gauge. Acquisition *is* construction —
/// the increment happens inside [`LoadGuard::acquire`], so every exit
/// from the enclosing scope (success, typed error, or panic) runs the
/// matching decrement in `Drop`. Auditing the gauge therefore reduces
/// to auditing that every handler increments only through `acquire`.
struct LoadGuard<'a> {
    gauge: &'a AtomicUsize,
    /// The load this request observed, its own slot included.
    load: usize,
}

impl<'a> LoadGuard<'a> {
    fn acquire(gauge: &'a AtomicUsize) -> LoadGuard<'a> {
        let load = gauge.fetch_add(1, Ordering::AcqRel) + 1;
        LoadGuard { gauge, load }
    }
}

impl Drop for LoadGuard<'_> {
    fn drop(&mut self) {
        self.gauge.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Which session kind a request addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessionKind {
    Full,
    Delta,
}

impl SessionKind {
    fn open_op(self) -> &'static str {
        match self {
            SessionKind::Full => "Open",
            SessionKind::Delta => "OpenDelta",
        }
    }
}

/// A live session of either kind, behind one slot in the session table.
#[derive(Debug)]
pub enum AnySession {
    /// A batch-shaped full session.
    Full(Box<Session>),
    /// A move-shaped delta session.
    Delta(Box<DeltaSession>),
}

impl AnySession {
    fn kind(&self) -> SessionKind {
        match self {
            AnySession::Full(_) => SessionKind::Full,
            AnySession::Delta(_) => SessionKind::Delta,
        }
    }

    fn config(&self) -> &SessionConfig {
        match self {
            AnySession::Full(session) => &session.state.config,
            AnySession::Delta(session) => &session.state.config,
        }
    }

    fn stat(&self) -> SessionStat {
        match self {
            AnySession::Full(session) => session.stat(),
            AnySession::Delta(session) => session.stat(),
        }
    }

    fn snapshot_json(&self) -> String {
        match self {
            AnySession::Full(session) => session.state.to_json(),
            AnySession::Delta(session) => session.state.to_json(),
        }
    }
}

/// The daemon's session table and request dispatcher. One instance is
/// shared (via `Arc`) by every connection thread.
#[derive(Debug)]
pub struct SessionManager {
    store: SnapshotStore,
    limits: Limits,
    policy: DegradePolicy,
    workers: usize,
    /// The process-wide score cache every cache-enabled session shares.
    cache: SharedScoreCache,
    sessions: Mutex<BTreeMap<String, Arc<Mutex<AnySession>>>>,
    /// Per-session persistence attempt counters — the chaos consultation
    /// indices. Kept here (not in the `Session`) so every attempt draws
    /// a fresh index even when the session object is discarded, e.g. a
    /// retried `Open` whose birth write failed: tying the index to the
    /// session would replay the identical injected fault forever.
    write_seqs: Mutex<BTreeMap<String, u64>>,
    /// Per-session `delta.commit` consultation counters, separate from
    /// `write_seqs` so the pre-commit site does not shift the persist
    /// site's deterministic fault placement.
    commit_seqs: Mutex<BTreeMap<String, u64>>,
    load: AtomicUsize,
    shutting_down: AtomicBool,
}

/// Unwraps a mutex guard, recovering from poisoning (a panicked peer
/// thread must not wedge every other connection).
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn next_in(map: &Mutex<BTreeMap<String, u64>>, key: &str) -> u64 {
    let mut seqs = lock(map);
    let counter = seqs.entry(key.to_owned()).or_insert(0);
    let seq = *counter;
    *counter += 1;
    seq
}

impl SessionManager {
    /// Creates a manager over `store`, fanning full-fidelity batches over
    /// `workers` pool threads (`<= 1` evaluates inline and retained).
    /// The shared score cache is sized by `limits.shared_cache_capacity`.
    #[must_use]
    pub fn new(
        store: SnapshotStore,
        limits: Limits,
        policy: DegradePolicy,
        workers: usize,
    ) -> SessionManager {
        SessionManager {
            store,
            cache: SharedScoreCache::new(limits.shared_cache_capacity),
            limits,
            policy,
            workers: workers.max(1),
            sessions: Mutex::new(BTreeMap::new()),
            write_seqs: Mutex::new(BTreeMap::new()),
            commit_seqs: Mutex::new(BTreeMap::new()),
            load: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
        }
    }

    /// The next persistence attempt index for `session_id` (monotonic
    /// across session object lifetimes within this process).
    fn next_seq(&self, session_id: &str) -> u64 {
        next_in(&self.write_seqs, session_id)
    }

    /// Whether `Shutdown` has been requested (the accept loop polls this).
    #[must_use]
    pub fn shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Acquire)
    }

    /// Requests a graceful shutdown.
    pub fn request_shutdown(&self) {
        self.shutting_down.store(true, Ordering::Release);
    }

    /// Session ids with a snapshot on disk (resumable via `Open` /
    /// `OpenDelta`, matching the kind that wrote them).
    ///
    /// # Errors
    ///
    /// Forwards [`StoreError`] when the state directory cannot be read.
    pub fn resumable(&self) -> Result<Vec<String>, StoreError> {
        self.store.list()
    }

    /// The limits this manager enforces.
    #[must_use]
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// Injected chaos faults drawn by this manager's store.
    #[must_use]
    pub fn injected_faults(&self) -> u64 {
        self.store.injected_faults()
    }

    /// The scoring requests currently in flight (the degradation
    /// ladder's input). Zero whenever the daemon is idle — every exit
    /// path of every handler releases its slot.
    #[must_use]
    pub fn load(&self) -> usize {
        self.load.load(Ordering::Acquire)
    }

    /// Cache hits observed by the process-wide shared score cache.
    #[must_use]
    pub fn shared_cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Handles one request. `request_control` carries the per-request
    /// deadline the transport layer chose; the manager itself never
    /// touches the clock.
    pub fn handle(&self, request: &Request, request_control: &RunControl) -> Response {
        match &request.op {
            RequestOp::Ping => Response::ok(&request.id, ResponsePayload::Pong),
            RequestOp::Shutdown => {
                self.request_shutdown();
                Response::ok(&request.id, ResponsePayload::Bye)
            }
            _ if self.shutting_down() => Response::error(
                &request.id,
                ErrorKind::ShuttingDown,
                "daemon is shutting down",
                true,
            ),
            RequestOp::Open { config } => self.handle_open(request, *config, SessionKind::Full),
            RequestOp::OpenDelta { config } => {
                self.handle_open(request, *config, SessionKind::Delta)
            }
            RequestOp::Evaluate { states } => {
                self.handle_evaluate(request, states, request_control)
            }
            RequestOp::Propose { state } => self.handle_propose(request, state, request_control),
            RequestOp::Commit { digest } => self.handle_commit(request, digest),
            RequestOp::Undo => self.handle_undo(request),
            RequestOp::Stat => self.with_session(request, |session| {
                Response::ok(
                    &request.id,
                    ResponsePayload::Stats {
                        stat: session.stat(),
                    },
                )
            }),
            RequestOp::Close => self.handle_close(request),
        }
    }

    fn wrong_kind(&self, id: &str, have: SessionKind, want: SessionKind) -> Response {
        Response::error(
            id,
            ErrorKind::WrongSessionKind,
            format!(
                "session was opened with {} but this op needs an {} session",
                have.open_op(),
                want.open_op()
            ),
            false,
        )
    }

    fn handle_open(&self, request: &Request, config: SessionConfig, kind: SessionKind) -> Response {
        if !valid_session_id(&request.session) {
            return Response::error(
                &request.id,
                ErrorKind::InvalidRequest,
                format!("invalid session id `{}`", request.session),
                false,
            );
        }
        if config.pitch_um <= 0 {
            return Response::error(
                &request.id,
                ErrorKind::InvalidRequest,
                format!("pitch_um {} must be positive", config.pitch_um),
                false,
            );
        }

        // Fast path: the session is already live.
        {
            let sessions = lock(&self.sessions);
            if let Some(slot) = sessions.get(&request.session) {
                let session = lock(slot);
                if session.kind() != kind {
                    return self.wrong_kind(&request.id, session.kind(), kind);
                }
                if *session.config() == config {
                    return Response::ok(
                        &request.id,
                        ResponsePayload::Opened {
                            resumed: false,
                            stat: session.stat(),
                        },
                    );
                }
                return Response::error(
                    &request.id,
                    ErrorKind::InvalidRequest,
                    "session is open with a different config",
                    false,
                );
            }
            if sessions.len() >= self.limits.max_sessions {
                return Response::error(
                    &request.id,
                    ErrorKind::Backpressure,
                    format!("session table full ({} sessions)", sessions.len()),
                    true,
                );
            }
        }

        // Resume from disk, or create fresh and persist the birth record
        // before acknowledging (a restart must know the session exists).
        let on_disk = match self.store.read(&request.session) {
            Ok(text) => text,
            Err(err) => return self.store_failure(&request.id, &err),
        };
        let was_resumed = on_disk.is_some();
        let session = match on_disk {
            Some(text) => match self.resume(request, &text, config, kind) {
                Ok(session) => session,
                Err(response) => return response,
            },
            None => match kind {
                SessionKind::Full => AnySession::Full(Box::new(Session::create(
                    &request.session,
                    config,
                    self.limits.completed_ring,
                    self.cache.clone(),
                ))),
                SessionKind::Delta => AnySession::Delta(Box::new(DeltaSession::create(
                    &request.session,
                    config,
                    self.limits.completed_ring,
                    self.cache.clone(),
                ))),
            },
        };
        if !was_resumed {
            let payload = session.snapshot_json();
            let seq = self.next_seq(&request.session);
            if let Err(err) = self.store.write(&request.session, &payload, seq) {
                return self.store_failure(&request.id, &err);
            }
        }

        let slot = Arc::new(Mutex::new(session));
        let mut sessions = lock(&self.sessions);
        // A racing Open may have inserted meanwhile; keep the first.
        let entry = sessions
            .entry(request.session.clone())
            .or_insert_with(|| slot)
            .clone();
        drop(sessions);
        let stat = {
            let session = lock(&entry);
            if session.kind() != kind {
                return self.wrong_kind(&request.id, session.kind(), kind);
            }
            if *session.config() != config {
                return Response::error(
                    &request.id,
                    ErrorKind::InvalidRequest,
                    "session is open with a different config",
                    false,
                );
            }
            session.stat()
        };
        Response::ok(
            &request.id,
            ResponsePayload::Opened {
                resumed: was_resumed,
                stat,
            },
        )
    }

    /// Rebuilds a session of the requested kind from checkpoint text,
    /// diagnosing kind mismatches loudly (the two snapshot schemas are
    /// disjoint, so a checkpoint parses as exactly one kind).
    fn resume(
        &self,
        request: &Request,
        text: &str,
        config: SessionConfig,
        kind: SessionKind,
    ) -> Result<AnySession, Response> {
        let config_mismatch = || {
            Response::error(
                &request.id,
                ErrorKind::InvalidRequest,
                "checkpoint on disk has a different config",
                false,
            )
        };
        match kind {
            SessionKind::Full => match SessionState::from_json(text, &request.session) {
                Ok(state) => {
                    if state.config != config {
                        return Err(config_mismatch());
                    }
                    Ok(AnySession::Full(Box::new(Session::from_state(
                        state,
                        self.limits.completed_ring,
                        self.cache.clone(),
                    ))))
                }
                Err(why) => Err(self.unreadable(request, text, kind, &why)),
            },
            SessionKind::Delta => match DeltaSessionState::from_json(text, &request.session) {
                Ok(state) => {
                    if state.config != config {
                        return Err(config_mismatch());
                    }
                    DeltaSession::from_state(state, self.limits.completed_ring, self.cache.clone())
                        .map(|session| AnySession::Delta(Box::new(session)))
                        .map_err(|why| {
                            // The replayed map failed bit-identity
                            // verification — refuse loudly instead of
                            // serving from a diverged map.
                            Response::error(
                                &request.id,
                                ErrorKind::PersistFailed,
                                format!("delta checkpoint failed recovery verification: {why}"),
                                false,
                            )
                        })
                }
                Err(why) => Err(self.unreadable(request, text, kind, &why)),
            },
        }
    }

    /// A checkpoint that did not parse as the requested kind: either it
    /// belongs to the *other* kind (typed `WrongSessionKind` so the
    /// client can switch ops) or it is genuinely unreadable (a loud
    /// error — silently recreating the session would lose history).
    fn unreadable(&self, request: &Request, text: &str, kind: SessionKind, why: &str) -> Response {
        let other_kind_parses = match kind {
            SessionKind::Full => DeltaSessionState::from_json(text, &request.session).is_ok(),
            SessionKind::Delta => SessionState::from_json(text, &request.session).is_ok(),
        };
        if other_kind_parses {
            let other = match kind {
                SessionKind::Full => SessionKind::Delta,
                SessionKind::Delta => SessionKind::Full,
            };
            return Response::error(
                &request.id,
                ErrorKind::WrongSessionKind,
                format!(
                    "checkpoint on disk is a {} session; resume it with {}",
                    match other {
                        SessionKind::Full => "full",
                        SessionKind::Delta => "delta",
                    },
                    other.open_op()
                ),
                false,
            );
        }
        Response::error(
            &request.id,
            ErrorKind::PersistFailed,
            format!("session checkpoint unreadable: {why}"),
            false,
        )
    }

    fn handle_evaluate(
        &self,
        request: &Request,
        states: &[FloorplanState],
        request_control: &RunControl,
    ) -> Response {
        if states.len() > self.limits.max_batch {
            return Response::error(
                &request.id,
                ErrorKind::BatchTooLarge,
                format!(
                    "batch of {} exceeds max_batch {}",
                    states.len(),
                    self.limits.max_batch
                ),
                false,
            );
        }
        if let Some(over) = states
            .iter()
            .find(|s| s.segments.len() > self.limits.max_segments)
        {
            return Response::error(
                &request.id,
                ErrorKind::BatchTooLarge,
                format!(
                    "state with {} segments exceeds max_segments {}",
                    over.segments.len(),
                    self.limits.max_segments
                ),
                false,
            );
        }

        let guard = LoadGuard::acquire(&self.load);
        let Some(rung) = self.policy.rung_for(guard.load) else {
            return Response::error(
                &request.id,
                ErrorKind::Backpressure,
                format!("{} evaluate requests in flight; retry later", guard.load),
                true,
            );
        };

        let batch_digest = state_digest(&states);
        self.with_session(request, |session| match session {
            AnySession::Full(session) => self.evaluate_full(
                request,
                session,
                states,
                &batch_digest,
                rung,
                request_control,
            ),
            AnySession::Delta(session) => {
                // Read-only fast path through the session-resident delta
                // evaluator: deterministic, budget-free, nothing to
                // persist or record.
                match session.evaluate(states, rung, request_control) {
                    Ok(results) => {
                        let mut response =
                            Response::ok(&request.id, ResponsePayload::Evaluated { results });
                        response.degraded = rung.is_degraded();
                        response
                    }
                    Err(failure) => Response::error(
                        &request.id,
                        failure.kind,
                        failure.message,
                        failure.retryable,
                    ),
                }
            }
        })
    }

    fn evaluate_full(
        &self,
        request: &Request,
        session: &mut Session,
        states: &[FloorplanState],
        batch_digest: &str,
        rung: DegradeRung,
        request_control: &RunControl,
    ) -> Response {
        // Idempotent retry: replay the recorded response verbatim.
        if let Some(record) = session.recorded(&request.id) {
            if record.batch_digest == batch_digest {
                let mut response = Response::ok(
                    &request.id,
                    ResponsePayload::Evaluated {
                        results: record.results.clone(),
                    },
                );
                response.replayed = true;
                return response;
            }
            return Response::error(
                &request.id,
                ErrorKind::IdempotencyViolation,
                "request id reused with a different state batch",
                false,
            );
        }

        let rollback = session.state.clone();
        let results = match session.evaluate(
            &request.id,
            batch_digest,
            states,
            rung,
            request_control,
            self.workers,
        ) {
            Ok(results) => results,
            Err(failure) => {
                return Response::error(
                    &request.id,
                    failure.kind,
                    failure.message,
                    failure.retryable,
                );
            }
        };

        // Persist before acknowledging; roll back if the disk refused.
        let payload = session.state.to_json();
        let seq = self.next_seq(&session.state.session_id);
        if let Err(err) = self.store.write(&session.state.session_id, &payload, seq) {
            session.state = rollback;
            return self.store_failure(&request.id, &err);
        }

        let mut response = Response::ok(&request.id, ResponsePayload::Evaluated { results });
        response.degraded = rung.is_degraded();
        response
    }

    fn handle_propose(
        &self,
        request: &Request,
        state: &FloorplanState,
        request_control: &RunControl,
    ) -> Response {
        if state.segments.len() > self.limits.max_segments {
            return Response::error(
                &request.id,
                ErrorKind::BatchTooLarge,
                format!(
                    "state with {} segments exceeds max_segments {}",
                    state.segments.len(),
                    self.limits.max_segments
                ),
                false,
            );
        }

        // Proposes are scoring work: they occupy a ladder slot exactly
        // like Evaluate and are refused past reject_at.
        let guard = LoadGuard::acquire(&self.load);
        let Some(rung) = self.policy.rung_for(guard.load) else {
            return Response::error(
                &request.id,
                ErrorKind::Backpressure,
                format!("{} evaluate requests in flight; retry later", guard.load),
                true,
            );
        };

        self.with_session(request, |session| {
            let AnySession::Delta(session) = session else {
                return self.wrong_kind(&request.id, SessionKind::Full, SessionKind::Delta);
            };
            match session.propose(state, rung, request_control) {
                Ok((digest, score, degraded)) => {
                    let mut response =
                        Response::ok(&request.id, ResponsePayload::Proposed { digest, score });
                    response.degraded = degraded;
                    response
                }
                Err(failure) => Response::error(
                    &request.id,
                    failure.kind,
                    failure.message,
                    failure.retryable,
                ),
            }
        })
    }

    fn handle_commit(&self, request: &Request, digest: &str) -> Response {
        self.with_session(request, |session| {
            let AnySession::Delta(session) = session else {
                return self.wrong_kind(&request.id, SessionKind::Full, SessionKind::Delta);
            };
            let prepared = match session.prepare_commit(&request.id, digest) {
                Ok(CommitOutcome::Replayed { digest, score, seq }) => {
                    let mut response = Response::ok(
                        &request.id,
                        ResponsePayload::Committed {
                            digest,
                            score,
                            commit_seq: seq,
                        },
                    );
                    response.replayed = true;
                    return response;
                }
                Ok(CommitOutcome::Prepared(prepared)) => prepared,
                Err(failure) => {
                    return Response::error(
                        &request.id,
                        failure.kind,
                        failure.message,
                        failure.retryable,
                    );
                }
            };

            // Kill point between staging and persisting: a chaos fault
            // here models a crash after the commit was validated but
            // before anything durable (or in-memory) changed. The armed
            // proposal survives, so the client's retry succeeds.
            let session_id = session.state.session_id.clone();
            let commit_index = next_in(&self.commit_seqs, &session_id);
            if let Err(err) = self
                .store
                .consult("delta.commit", &session_id, commit_index)
            {
                return self.store_failure(&request.id, &err);
            }

            // Persist the staged snapshot, then apply — persist-then-
            // reply, with no rollback path because nothing mutated yet.
            let seq = self.next_seq(&session_id);
            if let Err(err) = self
                .store
                .write(&session_id, &prepared.snapshot_json(), seq)
            {
                return self.store_failure(&request.id, &err);
            }
            let (digest, score, commit_seq) = session.apply_commit(prepared);
            Response::ok(
                &request.id,
                ResponsePayload::Committed {
                    digest,
                    score,
                    commit_seq,
                },
            )
        })
    }

    fn handle_undo(&self, request: &Request) -> Response {
        self.with_session(request, |session| {
            let AnySession::Delta(session) = session else {
                return self.wrong_kind(&request.id, SessionKind::Full, SessionKind::Delta);
            };
            let score = session.undo();
            Response::ok(&request.id, ResponsePayload::Undone { score })
        })
    }

    fn handle_close(&self, request: &Request) -> Response {
        let slot = lock(&self.sessions).remove(&request.session);
        if slot.is_none() {
            return Response::error(
                &request.id,
                ErrorKind::UnknownSession,
                format!("session `{}` is not open", request.session),
                false,
            );
        }
        match self.store.remove(&request.session) {
            Ok(()) => Response::ok(&request.id, ResponsePayload::Closed),
            Err(err) => self.store_failure(&request.id, &err),
        }
    }

    /// Runs `body` with the named session locked, or replies
    /// `UnknownSession`.
    fn with_session(
        &self,
        request: &Request,
        body: impl FnOnce(&mut AnySession) -> Response,
    ) -> Response {
        let slot = lock(&self.sessions).get(&request.session).cloned();
        match slot {
            Some(slot) => body(&mut lock(&slot)),
            None => Response::error(
                &request.id,
                ErrorKind::UnknownSession,
                format!(
                    "session `{}` is not open (Open/OpenDelta resumes checkpoints)",
                    request.session
                ),
                false,
            ),
        }
    }

    fn store_failure(&self, id: &str, err: &StoreError) -> Response {
        match err {
            StoreError::Io { .. } => Response::error(
                id,
                ErrorKind::PersistFailed,
                format!("checkpoint write failed, state rolled back: {err}"),
                true,
            ),
            StoreError::Killed => {
                self.request_shutdown();
                Response::error(id, ErrorKind::ShuttingDown, "daemon killed", true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{Chaos, ChaosConfig};
    use crate::store::KillSwitch;

    fn temp_manager(tag: &str, chaos: Chaos, policy: DegradePolicy) -> SessionManager {
        let dir = std::env::temp_dir().join(format!("irgrid_serve_mgr_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::open(&dir, chaos, KillSwitch::new()).expect("store");
        SessionManager::new(store, Limits::default(), policy, 1)
    }

    fn request(id: &str, session: &str, op: RequestOp) -> Request {
        Request {
            id: id.into(),
            session: session.into(),
            op,
        }
    }

    fn open(manager: &SessionManager, id: &str, session: &str) -> Response {
        manager.handle(
            &request(
                id,
                session,
                RequestOp::Open {
                    config: SessionConfig::default_config(),
                },
            ),
            &RunControl::unlimited(),
        )
    }

    fn open_delta(manager: &SessionManager, id: &str, session: &str) -> Response {
        manager.handle(
            &request(
                id,
                session,
                RequestOp::OpenDelta {
                    config: SessionConfig::default_config(),
                },
            ),
            &RunControl::unlimited(),
        )
    }

    fn evaluate(
        manager: &SessionManager,
        id: &str,
        session: &str,
        states: Vec<FloorplanState>,
    ) -> Response {
        manager.handle(
            &request(id, session, RequestOp::Evaluate { states }),
            &RunControl::unlimited(),
        )
    }

    fn propose(
        manager: &SessionManager,
        id: &str,
        session: &str,
        state: FloorplanState,
    ) -> Response {
        manager.handle(
            &request(id, session, RequestOp::Propose { state }),
            &RunControl::unlimited(),
        )
    }

    fn commit(manager: &SessionManager, id: &str, session: &str, digest: &str) -> Response {
        manager.handle(
            &request(
                id,
                session,
                RequestOp::Commit {
                    digest: digest.to_owned(),
                },
            ),
            &RunControl::unlimited(),
        )
    }

    fn proposed_digest(response: &Response) -> String {
        let ResponsePayload::Proposed { digest, .. } = &response.payload else {
            panic!("expected Proposed, got {response:?}");
        };
        digest.clone()
    }

    fn states(count: usize) -> Vec<FloorplanState> {
        (0..count as i64)
            .map(|k| FloorplanState {
                chip: [500, 500],
                segments: vec![[10 + k, 10, 480, 480], [10, 480, 480 - k, 10]],
            })
            .collect()
    }

    #[test]
    fn open_evaluate_stat_close_lifecycle() {
        let manager = temp_manager("lifecycle", Chaos::off(), DegradePolicy::default());
        let opened = open(&manager, "r1", "alice");
        assert!(opened.ok, "{opened:?}");
        assert!(matches!(
            opened.payload,
            ResponsePayload::Opened { resumed: false, .. }
        ));

        let evaluated = evaluate(&manager, "r2", "alice", states(2));
        assert!(evaluated.ok, "{evaluated:?}");
        assert!(!evaluated.degraded);
        let ResponsePayload::Evaluated { results } = &evaluated.payload else {
            panic!("wrong payload {evaluated:?}");
        };
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].model, "irregular");

        let stat = manager.handle(
            &request("r3", "alice", RequestOp::Stat),
            &RunControl::unlimited(),
        );
        let ResponsePayload::Stats { stat } = &stat.payload else {
            panic!("wrong payload {stat:?}");
        };
        assert_eq!(stat.evals_done, 2);

        let closed = manager.handle(
            &request("r4", "alice", RequestOp::Close),
            &RunControl::unlimited(),
        );
        assert!(closed.ok);
        assert!(manager.resumable().expect("list").is_empty());
    }

    #[test]
    fn unknown_session_and_invalid_ids_are_typed_errors() {
        let manager = temp_manager("unknown", Chaos::off(), DegradePolicy::default());
        let response = evaluate(&manager, "r1", "ghost", states(1));
        assert!(!response.ok);
        assert!(matches!(
            response.payload,
            ResponsePayload::Error {
                kind: ErrorKind::UnknownSession,
                ..
            }
        ));
        let response = open(&manager, "r2", "../escape");
        assert!(matches!(
            response.payload,
            ResponsePayload::Error {
                kind: ErrorKind::InvalidRequest,
                ..
            }
        ));
    }

    #[test]
    fn reopen_is_idempotent_but_config_changes_are_refused() {
        let manager = temp_manager("reopen", Chaos::off(), DegradePolicy::default());
        assert!(open(&manager, "r1", "s").ok);
        assert!(open(&manager, "r2", "s").ok);
        let different = manager.handle(
            &request(
                "r3",
                "s",
                RequestOp::Open {
                    config: SessionConfig {
                        pitch_um: 60,
                        ..SessionConfig::default_config()
                    },
                },
            ),
            &RunControl::unlimited(),
        );
        assert!(matches!(
            different.payload,
            ResponsePayload::Error {
                kind: ErrorKind::InvalidRequest,
                ..
            }
        ));
    }

    #[test]
    fn retry_replays_the_recorded_response_bit_for_bit() {
        let manager = temp_manager("retry", Chaos::off(), DegradePolicy::default());
        assert!(open(&manager, "r1", "s").ok);
        let batch = states(2);
        let first = evaluate(&manager, "e1", "s", batch.clone());
        assert!(first.ok && !first.replayed);
        let second = evaluate(&manager, "e1", "s", batch.clone());
        assert!(second.ok && second.replayed);
        let (ResponsePayload::Evaluated { results: a }, ResponsePayload::Evaluated { results: b }) =
            (&first.payload, &second.payload)
        else {
            panic!("wrong payloads");
        };
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
        // Same id, different batch: refused.
        let conflict = evaluate(&manager, "e1", "s", states(3));
        assert!(matches!(
            conflict.payload,
            ResponsePayload::Error {
                kind: ErrorKind::IdempotencyViolation,
                ..
            }
        ));
        // The replay did not double-count evaluations.
        let ResponsePayload::Stats { stat } = manager
            .handle(
                &request("r9", "s", RequestOp::Stat),
                &RunControl::unlimited(),
            )
            .payload
        else {
            panic!("stat");
        };
        assert_eq!(stat.evals_done, 2);
    }

    #[test]
    fn rung_thresholds_are_boundary_exact() {
        let policy = DegradePolicy::default();
        // Defaults: lz_at 9, fixed_at 17, reject_at 33. Thresholds are
        // inclusive (>=): the boundary load itself already degrades.
        assert_eq!(policy.rung_for(1), Some(DegradeRung::Full));
        assert_eq!(policy.rung_for(8), Some(DegradeRung::Full), "lz_at - 1");
        assert_eq!(policy.rung_for(9), Some(DegradeRung::Lz), "exactly lz_at");
        assert_eq!(policy.rung_for(16), Some(DegradeRung::Lz), "fixed_at - 1");
        assert_eq!(
            policy.rung_for(17),
            Some(DegradeRung::Fixed),
            "exactly fixed_at"
        );
        assert_eq!(
            policy.rung_for(32),
            Some(DegradeRung::Fixed),
            "reject_at - 1"
        );
        assert_eq!(policy.rung_for(33), None, "exactly reject_at");
        assert_eq!(policy.rung_for(1000), None);
        // Degenerate ladder: everything at 0 refuses even the first
        // request (its own slot makes load 1 >= 0).
        let zero = DegradePolicy {
            lz_at: 0,
            fixed_at: 0,
            reject_at: 0,
        };
        assert_eq!(zero.rung_for(1), None);
    }

    #[test]
    fn load_gauge_returns_to_zero_on_every_error_path() {
        // Backpressure refusal.
        let rejecting = temp_manager(
            "gauge_reject",
            Chaos::off(),
            DegradePolicy {
                lz_at: 0,
                fixed_at: 0,
                reject_at: 0,
            },
        );
        assert!(open(&rejecting, "r1", "s").ok);
        assert!(!evaluate(&rejecting, "e1", "s", states(1)).ok);
        assert!(!propose(&rejecting, "e2", "s", states(1).remove(0)).ok);
        assert_eq!(rejecting.load(), 0, "backpressure path leaked a slot");

        let manager = temp_manager("gauge", Chaos::off(), DegradePolicy::default());
        assert!(open(&manager, "r1", "s").ok);
        // Unknown session.
        assert!(!evaluate(&manager, "e1", "ghost", states(1)).ok);
        // Invalid geometry (single bad state fails the batch).
        let bad = FloorplanState {
            chip: [100, 100],
            segments: vec![[0, 0, 101, 50]],
        };
        assert!(!evaluate(&manager, "e2", "s", vec![bad.clone()]).ok);
        // Wrong session kind for Propose.
        assert!(!propose(&manager, "e3", "s", states(1).remove(0)).ok);
        // Expired deadline.
        let expired = RunControl::unlimited().with_time_limit(std::time::Duration::ZERO);
        let timeout = manager.handle(
            &request("e4", "s", RequestOp::Evaluate { states: states(1) }),
            &expired,
        );
        assert!(!timeout.ok);
        assert_eq!(manager.load(), 0, "an error path leaked a gauge slot");

        // Persist failure (all writes fault) on both Evaluate and the
        // delta Propose/Commit path.
        let all_fail = Chaos::with_config(
            0,
            ChaosConfig {
                io_error_ppm: 1_000_000,
                torn_ppm: 0,
                kill_ppm: 0,
            },
        );
        let dir = std::env::temp_dir().join("irgrid_serve_mgr_gauge_persist");
        let _ = std::fs::remove_dir_all(&dir);
        let clean = SnapshotStore::open(&dir, Chaos::off(), KillSwitch::new()).expect("store");
        let healthy = SessionManager::new(
            clean.clone(),
            Limits::default(),
            DegradePolicy::default(),
            1,
        );
        assert!(open(&healthy, "r1", "s").ok);
        let faulty_store = SnapshotStore::open(&dir, all_fail, KillSwitch::new()).expect("store");
        let faulty =
            SessionManager::new(faulty_store, Limits::default(), DegradePolicy::default(), 1);
        assert!(open(&faulty, "r2", "s").ok, "resume reads, doesn't write");
        assert!(!evaluate(&faulty, "e9", "s", states(1)).ok);
        assert_eq!(faulty.load(), 0, "persist-failure path leaked a slot");
        // Success paths also return to zero.
        assert!(evaluate(&healthy, "e1", "s", states(1)).ok);
        assert_eq!(healthy.load(), 0);
    }

    #[test]
    fn degrade_thresholds_at_zero_force_degraded_or_backpressure() {
        // lz_at 0: every request degrades (load >= 0 is always true).
        let manager = temp_manager(
            "degrade",
            Chaos::off(),
            DegradePolicy {
                lz_at: 0,
                fixed_at: 100,
                reject_at: 200,
            },
        );
        assert!(open(&manager, "r1", "s").ok);
        let response = evaluate(&manager, "e1", "s", states(1));
        assert!(response.ok);
        assert!(response.degraded, "{response:?}");
        let ResponsePayload::Evaluated { results } = &response.payload else {
            panic!("payload");
        };
        assert_eq!(results[0].model, "lz");

        // reject_at 0 (and the rest 0): every request is refused.
        let manager = temp_manager(
            "reject",
            Chaos::off(),
            DegradePolicy {
                lz_at: 0,
                fixed_at: 0,
                reject_at: 0,
            },
        );
        assert!(open(&manager, "r1", "s").ok);
        let response = evaluate(&manager, "e1", "s", states(1));
        assert!(matches!(
            response.payload,
            ResponsePayload::Error {
                kind: ErrorKind::Backpressure,
                retryable: true,
                ..
            }
        ));
    }

    #[test]
    fn degraded_responses_are_not_recorded_so_retries_rescore_full() {
        let dir = std::env::temp_dir().join("irgrid_serve_mgr_degrade_retry");
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::open(&dir, Chaos::off(), KillSwitch::new()).expect("store");
        let degrade_all = SessionManager::new(
            store.clone(),
            Limits::default(),
            DegradePolicy {
                lz_at: 0,
                fixed_at: 100,
                reject_at: 200,
            },
            1,
        );
        assert!(open(&degrade_all, "r1", "s").ok);
        let batch = states(1);
        let degraded = evaluate(&degrade_all, "e1", "s", batch.clone());
        assert!(degraded.degraded);

        // Same state dir, healthy policy: the same request id re-scores
        // at full fidelity instead of replaying the degraded answer.
        let healthy = SessionManager::new(store, Limits::default(), DegradePolicy::default(), 1);
        assert!(open(&healthy, "r2", "s").ok);
        let retry = evaluate(&healthy, "e1", "s", batch);
        assert!(retry.ok && !retry.replayed && !retry.degraded);
        let ResponsePayload::Evaluated { results } = &retry.payload else {
            panic!("payload");
        };
        assert_eq!(results[0].model, "irregular");
    }

    #[test]
    fn persist_failure_rolls_back_and_is_retryable() {
        let dir = std::env::temp_dir().join("irgrid_serve_mgr_persistfail");
        let _ = std::fs::remove_dir_all(&dir);
        let all_fail = Chaos::with_config(
            0,
            ChaosConfig {
                io_error_ppm: 1_000_000,
                torn_ppm: 0,
                kill_ppm: 0,
            },
        );
        let clean_store =
            SnapshotStore::open(&dir, Chaos::off(), KillSwitch::new()).expect("store");
        let healthy = SessionManager::new(
            clean_store.clone(),
            Limits::default(),
            DegradePolicy::default(),
            1,
        );
        assert!(open(&healthy, "r1", "s").ok);
        let before = clean_store.read("s").expect("read").expect("snapshot");

        let faulty_store = SnapshotStore::open(&dir, all_fail, KillSwitch::new()).expect("store");
        let faulty =
            SessionManager::new(faulty_store, Limits::default(), DegradePolicy::default(), 1);
        assert!(open(&faulty, "r2", "s").ok, "resume reads, doesn't write");
        let response = evaluate(&faulty, "e1", "s", states(1));
        assert!(matches!(
            response.payload,
            ResponsePayload::Error {
                kind: ErrorKind::PersistFailed,
                retryable: true,
                ..
            }
        ));
        // On-disk snapshot is untouched; in-memory counters rolled back.
        let after = clean_store.read("s").expect("read").expect("snapshot");
        assert_eq!(before, after);
        let ResponsePayload::Stats { stat } = faulty
            .handle(
                &request("r9", "s", RequestOp::Stat),
                &RunControl::unlimited(),
            )
            .payload
        else {
            panic!("stat");
        };
        assert_eq!(stat.evals_done, 0, "rolled back");
    }

    #[test]
    fn restart_resumes_from_checkpoint() {
        let dir = std::env::temp_dir().join("irgrid_serve_mgr_restart");
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::open(&dir, Chaos::off(), KillSwitch::new()).expect("store");
        let first = SessionManager::new(
            store.clone(),
            Limits::default(),
            DegradePolicy::default(),
            1,
        );
        assert!(open(&first, "r1", "s").ok);
        assert!(evaluate(&first, "e1", "s", states(2)).ok);
        drop(first);

        let second = SessionManager::new(store, Limits::default(), DegradePolicy::default(), 1);
        assert_eq!(second.resumable().expect("list"), vec!["s".to_owned()]);
        let reopened = open(&second, "r2", "s");
        let ResponsePayload::Opened { resumed, stat } = &reopened.payload else {
            panic!("payload {reopened:?}");
        };
        assert!(resumed);
        assert_eq!(stat.evals_done, 2);
        // The idempotency ring survived the restart.
        let replay = evaluate(&second, "e1", "s", states(2));
        assert!(replay.ok && replay.replayed);
    }

    #[test]
    fn shutdown_refuses_new_work_but_answers_ping() {
        let manager = temp_manager("shutdown", Chaos::off(), DegradePolicy::default());
        assert!(open(&manager, "r1", "s").ok);
        let bye = manager.handle(
            &request("r2", "", RequestOp::Shutdown),
            &RunControl::unlimited(),
        );
        assert!(bye.ok);
        assert!(manager.shutting_down());
        let refused = evaluate(&manager, "e1", "s", states(1));
        assert!(matches!(
            refused.payload,
            ResponsePayload::Error {
                kind: ErrorKind::ShuttingDown,
                ..
            }
        ));
        let pong = manager.handle(
            &request("r3", "", RequestOp::Ping),
            &RunControl::unlimited(),
        );
        assert!(pong.ok);
    }

    #[test]
    fn batch_limits_are_enforced() {
        let dir = std::env::temp_dir().join("irgrid_serve_mgr_limits");
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::open(&dir, Chaos::off(), KillSwitch::new()).expect("store");
        let limits = Limits {
            max_batch: 2,
            max_segments: 3,
            ..Limits::default()
        };
        let manager = SessionManager::new(store, limits, DegradePolicy::default(), 1);
        assert!(open(&manager, "r1", "s").ok);
        let response = evaluate(&manager, "e1", "s", states(3));
        assert!(matches!(
            response.payload,
            ResponsePayload::Error {
                kind: ErrorKind::BatchTooLarge,
                ..
            }
        ));
        let fat = vec![FloorplanState {
            chip: [100, 100],
            segments: vec![[0, 0, 1, 1]; 4],
        }];
        let response = evaluate(&manager, "e2", "s", fat.clone());
        assert!(matches!(
            response.payload,
            ResponsePayload::Error {
                kind: ErrorKind::BatchTooLarge,
                ..
            }
        ));
        // Propose enforces max_segments too.
        assert!(open_delta(&manager, "r2", "d").ok);
        let response = propose(&manager, "e3", "d", fat.into_iter().next().expect("state"));
        assert!(matches!(
            response.payload,
            ResponsePayload::Error {
                kind: ErrorKind::BatchTooLarge,
                ..
            }
        ));
    }

    #[test]
    fn delta_lifecycle_propose_commit_undo_evaluate() {
        let manager = temp_manager("delta_lifecycle", Chaos::off(), DegradePolicy::default());
        let opened = open_delta(&manager, "r1", "d");
        assert!(opened.ok, "{opened:?}");

        let batch = states(2);
        let proposed = propose(&manager, "p1", "d", batch[0].clone());
        assert!(proposed.ok && !proposed.degraded, "{proposed:?}");
        let digest = proposed_digest(&proposed);

        let committed = commit(&manager, "c1", "d", &digest);
        assert!(committed.ok, "{committed:?}");
        let ResponsePayload::Committed {
            commit_seq, score, ..
        } = &committed.payload
        else {
            panic!("wrong payload {committed:?}");
        };
        assert_eq!(*commit_seq, 1);
        let committed_score = *score;

        // Rejected move: propose then undo returns the committed cost.
        let second = propose(&manager, "p2", "d", batch[1].clone());
        assert!(second.ok);
        let undone = manager.handle(
            &request("u1", "d", RequestOp::Undo),
            &RunControl::unlimited(),
        );
        let ResponsePayload::Undone { score } = &undone.payload else {
            panic!("wrong payload {undone:?}");
        };
        assert_eq!(score.to_bits(), committed_score.to_bits());

        // Evaluate on a delta session: read-only fast path, no budget,
        // and the snapshot on disk is untouched by it.
        let before = manager.store.read("d").expect("read").expect("snapshot");
        let evaluated = evaluate(&manager, "e1", "d", batch.clone());
        assert!(evaluated.ok, "{evaluated:?}");
        let ResponsePayload::Evaluated { results } = &evaluated.payload else {
            panic!("wrong payload {evaluated:?}");
        };
        assert_eq!(results[0].model, "irregular-delta");
        let after = manager.store.read("d").expect("read").expect("snapshot");
        assert_eq!(before, after, "read-only evaluate must not persist");

        let ResponsePayload::Stats { stat } = manager
            .handle(
                &request("r9", "d", RequestOp::Stat),
                &RunControl::unlimited(),
            )
            .payload
        else {
            panic!("stat");
        };
        assert_eq!(stat.evals_done, 1, "only the commit consumed budget");
    }

    #[test]
    fn delta_commit_replay_is_idempotent() {
        let manager = temp_manager("delta_replay", Chaos::off(), DegradePolicy::default());
        assert!(open_delta(&manager, "r1", "d").ok);
        let state = states(1).remove(0);
        let digest = proposed_digest(&propose(&manager, "p1", "d", state));
        let first = commit(&manager, "c1", "d", &digest);
        assert!(first.ok && !first.replayed);
        let second = commit(&manager, "c1", "d", &digest);
        assert!(second.ok && second.replayed, "{second:?}");
        let (
            ResponsePayload::Committed { score: a, .. },
            ResponsePayload::Committed { score: b, .. },
        ) = (&first.payload, &second.payload)
        else {
            panic!("wrong payloads");
        };
        assert_eq!(a.to_bits(), b.to_bits());
        // A commit without a matching proposal is a typed error.
        let stale = commit(&manager, "c2", "d", &"0".repeat(16));
        assert!(matches!(
            stale.payload,
            ResponsePayload::Error {
                kind: ErrorKind::NoPendingProposal,
                ..
            }
        ));
    }

    #[test]
    fn wrong_session_kind_is_a_typed_error_everywhere() {
        let manager = temp_manager("wrong_kind", Chaos::off(), DegradePolicy::default());
        assert!(open(&manager, "r1", "full").ok);
        assert!(open_delta(&manager, "r2", "delta").ok);

        // Delta ops on a full session.
        for response in [
            propose(&manager, "p1", "full", states(1).remove(0)),
            commit(&manager, "c1", "full", "00"),
            manager.handle(
                &request("u1", "full", RequestOp::Undo),
                &RunControl::unlimited(),
            ),
        ] {
            assert!(matches!(
                response.payload,
                ResponsePayload::Error {
                    kind: ErrorKind::WrongSessionKind,
                    ..
                }
            ));
        }

        // Opening a live session as the other kind.
        let response = open_delta(&manager, "r3", "full");
        assert!(matches!(
            response.payload,
            ResponsePayload::Error {
                kind: ErrorKind::WrongSessionKind,
                ..
            }
        ));
        let response = open(&manager, "r4", "delta");
        assert!(matches!(
            response.payload,
            ResponsePayload::Error {
                kind: ErrorKind::WrongSessionKind,
                ..
            }
        ));
    }

    #[test]
    fn checkpoint_kind_mismatch_is_diagnosed_across_restart() {
        let dir = std::env::temp_dir().join("irgrid_serve_mgr_kinddisk");
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::open(&dir, Chaos::off(), KillSwitch::new()).expect("store");
        let first = SessionManager::new(
            store.clone(),
            Limits::default(),
            DegradePolicy::default(),
            1,
        );
        assert!(open_delta(&first, "r1", "d").ok);
        drop(first);

        // A fresh manager (restart) resolves the kind from disk.
        let second = SessionManager::new(store, Limits::default(), DegradePolicy::default(), 1);
        let response = open(&second, "r2", "d");
        assert!(
            matches!(
                response.payload,
                ResponsePayload::Error {
                    kind: ErrorKind::WrongSessionKind,
                    ..
                }
            ),
            "{response:?}"
        );
        assert!(open_delta(&second, "r3", "d").ok, "right kind resumes");
    }

    #[test]
    fn delta_restart_resumes_verified_and_replays_commits() {
        let dir = std::env::temp_dir().join("irgrid_serve_mgr_delta_restart");
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::open(&dir, Chaos::off(), KillSwitch::new()).expect("store");
        let first = SessionManager::new(
            store.clone(),
            Limits::default(),
            DegradePolicy::default(),
            1,
        );
        assert!(open_delta(&first, "r1", "d").ok);
        let state = states(1).remove(0);
        let digest = proposed_digest(&propose(&first, "p1", "d", state.clone()));
        let committed = commit(&first, "c1", "d", &digest);
        assert!(committed.ok);
        drop(first);

        let second = SessionManager::new(store, Limits::default(), DegradePolicy::default(), 1);
        let reopened = open_delta(&second, "r2", "d");
        let ResponsePayload::Opened { resumed, stat } = &reopened.payload else {
            panic!("payload {reopened:?}");
        };
        assert!(resumed, "resumed from checkpoint (verified bit-identical)");
        assert_eq!(stat.evals_done, 1);
        // The commit idempotency ring survived the restart...
        let replay = commit(&second, "c1", "d", &digest);
        assert!(replay.ok && replay.replayed, "{replay:?}");
        // ...but the (volatile) pending proposal did not: a *new*
        // commit id needs a fresh propose first.
        let fresh = commit(&second, "c2", "d", &digest);
        assert!(matches!(
            fresh.payload,
            ResponsePayload::Error {
                kind: ErrorKind::NoPendingProposal,
                ..
            }
        ));
    }

    #[test]
    fn delta_commit_fault_keeps_proposal_armed_for_retry() {
        let dir = std::env::temp_dir().join("irgrid_serve_mgr_delta_fault");
        let _ = std::fs::remove_dir_all(&dir);
        let clean = SnapshotStore::open(&dir, Chaos::off(), KillSwitch::new()).expect("store");
        let healthy = SessionManager::new(
            clean.clone(),
            Limits::default(),
            DegradePolicy::default(),
            1,
        );
        assert!(open_delta(&healthy, "r1", "d").ok);
        let before = clean.read("d").expect("read").expect("snapshot");

        // Every chaos consultation faults with an io-error: the commit
        // fails at the delta.commit site, before anything mutated.
        let all_fail = Chaos::with_config(
            0,
            ChaosConfig {
                io_error_ppm: 1_000_000,
                torn_ppm: 0,
                kill_ppm: 0,
            },
        );
        let faulty_store = SnapshotStore::open(&dir, all_fail, KillSwitch::new()).expect("store");
        let faulty =
            SessionManager::new(faulty_store, Limits::default(), DegradePolicy::default(), 1);
        assert!(open_delta(&faulty, "r2", "d").ok, "resume reads, no write");
        let state = states(1).remove(0);
        let digest = proposed_digest(&propose(&faulty, "p1", "d", state));
        let failed = commit(&faulty, "c1", "d", &digest);
        assert!(matches!(
            failed.payload,
            ResponsePayload::Error {
                kind: ErrorKind::PersistFailed,
                retryable: true,
                ..
            }
        ));
        // Nothing durable or in-memory moved; the proposal is still
        // armed, so a healthy retry of the same commit succeeds.
        assert_eq!(
            clean.read("d").expect("read").expect("snapshot"),
            before,
            "failed commit must not touch the snapshot"
        );
        let ResponsePayload::Stats { stat } = faulty
            .handle(
                &request("r9", "d", RequestOp::Stat),
                &RunControl::unlimited(),
            )
            .payload
        else {
            panic!("stat");
        };
        assert_eq!(stat.evals_done, 0, "commit not counted");

        // Kill decision at the same site trips the daemon-wide switch.
        let all_kill = Chaos::with_config(
            0,
            ChaosConfig {
                io_error_ppm: 0,
                torn_ppm: 0,
                kill_ppm: 1_000_000,
            },
        );
        let kill_store = SnapshotStore::open(&dir, all_kill, KillSwitch::new()).expect("store");
        let killed =
            SessionManager::new(kill_store, Limits::default(), DegradePolicy::default(), 1);
        assert!(open_delta(&killed, "r3", "d").ok);
        let state = states(2).remove(1);
        let digest = proposed_digest(&propose(&killed, "p2", "d", state));
        let response = commit(&killed, "c2", "d", &digest);
        assert!(matches!(
            response.payload,
            ResponsePayload::Error {
                kind: ErrorKind::ShuttingDown,
                ..
            }
        ));
        assert!(killed.shutting_down(), "kill at delta.commit shuts down");
    }

    #[test]
    fn shared_cache_crosses_sessions_of_the_same_pipeline() {
        let manager = temp_manager("shared_cache", Chaos::off(), DegradePolicy::default());
        assert!(open(&manager, "r1", "a").ok);
        assert!(open(&manager, "r2", "b").ok);
        let batch = states(1);
        assert!(evaluate(&manager, "e1", "a", batch.clone()).ok);
        // Session b scores the identical state: served from the shared
        // cache, bit-identically.
        let second = evaluate(&manager, "e2", "b", batch);
        assert!(second.ok);
        let ResponsePayload::Evaluated { results } = &second.payload else {
            panic!("payload");
        };
        assert!(results[0].cached, "cross-session hit expected");
        assert!(manager.shared_cache_hits() >= 1);
    }
}
