//! The wire protocol: JSONL (default) or length-prefixed binary frames
//! over a Unix or TCP socket.
//!
//! In JSONL mode every frame is one JSON object on one `\n`-terminated
//! line. Clients send [`Request`]s, the daemon answers each with exactly
//! one [`Response`] carrying the same `id`, in request order per
//! connection. Frames are bounded ([`Limits::max_frame_bytes`]) and the
//! bound is enforced *before* buffering (see [`frame`](crate::frame));
//! an oversized or malformed frame gets a typed error reply instead of
//! killing the connection, so one bad client frame never tears down a
//! session. A client may switch the whole connection to the binary
//! framing by sending the [`frame::BINARY_MAGIC`](crate::frame)
//! preamble as its first bytes; JSONL remains the default.
//!
//! # Grammar (JSONL)
//!
//! ```text
//! frame     := json-object "\n"
//! request   := { "id": string, "session": string, "op": op }
//! op        := "Ping" | "Stat" | "Close" | "Shutdown" | "Undo"
//!            | { "Open":      { "config": session-config } }
//!            | { "OpenDelta": { "config": session-config } }
//!            | { "Evaluate":  { "states": [ floorplan-state* ] } }
//!            | { "Propose":   { "state": floorplan-state } }
//!            | { "Commit":    { "digest": string } }
//! response  := { "id": string, "ok": bool, "degraded": bool,
//!                "replayed": bool, "payload": payload }
//! ```
//!
//! Enum encodings follow the workspace's serde conventions: unit
//! variants are strings, payload variants single-entry maps.
//!
//! # Delta sessions
//!
//! `OpenDelta` opens (or resumes) a session holding a session-resident
//! [`IrDeltaEvaluator`](irgrid_core::congestion::IrDeltaEvaluator)
//! scoring through the exact Q32 delta pipeline. `Propose` scores one
//! state incrementally against the committed snapshot (pure, nothing
//! persisted — a retry recomputes bit-identically); `Commit` promotes
//! the pending proposal (persist-then-reply, idempotent by request id);
//! `Undo` drops it. `Evaluate` on a delta session is a read-only
//! fast path: each state is scored as propose + undo, leaving the
//! committed state and any pending proposal untouched.

use serde::{Deserialize, Serialize};

/// Newest protocol version; [`Request`]s do not carry it (the daemon and
/// clients ship together), but session snapshots on disk do.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard resource bounds the daemon enforces per frame / session / daemon.
///
/// Every bound produces an explicit typed error reply when exceeded —
/// backpressure is always visible to the client, never silent queueing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Longest accepted request line, bytes (including the newline).
    pub max_frame_bytes: usize,
    /// Most floorplan states in one `Evaluate` batch.
    pub max_batch: usize,
    /// Most live sessions the daemon will hold.
    pub max_sessions: usize,
    /// Most concurrent client connections; further connects get a
    /// `Backpressure` reply and are closed.
    pub max_clients: usize,
    /// Most segments in one floorplan state.
    pub max_segments: usize,
    /// Idempotency records retained per session (oldest evicted first).
    pub completed_ring: usize,
    /// Capacity of the manager-wide shared score cache (entries across
    /// *all* sessions); `0` disables caching daemon-wide.
    pub shared_cache_capacity: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_frame_bytes: 1 << 20,
            max_batch: 64,
            max_sessions: 256,
            max_clients: 64,
            max_segments: 100_000,
            completed_ring: 32,
            shared_cache_capacity: 4096,
        }
    }
}

/// Per-session configuration fixed at `Open`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Evaluation grid pitch in µm (strictly positive).
    pub pitch_um: i64,
    /// Total evaluation budget across the session's lifetime; `0` means
    /// unlimited. Enforced through
    /// [`RunControl::with_move_budget`](irgrid_anneal::RunControl::with_move_budget).
    pub budget: u64,
    /// Score-cache participation. The cache itself is daemon-wide
    /// (bounded by [`Limits::shared_cache_capacity`]); any non-zero
    /// value opts this session in, `0` opts it out. The historical name
    /// is kept for wire compatibility with PR 6 clients.
    pub cache_capacity: u64,
}

impl SessionConfig {
    /// A sane default: 30 µm pitch, unlimited budget, 128-entry cache.
    #[must_use]
    pub fn default_config() -> SessionConfig {
        SessionConfig {
            pitch_um: 30,
            budget: 0,
            cache_capacity: 128,
        }
    }
}

/// One floorplan snapshot to score: the packed chip extent plus the
/// MST-decomposed 2-pin segments, all in µm.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FloorplanState {
    /// Chip width and height; the lower-left corner is the origin.
    pub chip: [i64; 2],
    /// Segments as `[x1, y1, x2, y2]`.
    pub segments: Vec<[i64; 4]>,
}

/// What a request asks the daemon to do.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RequestOp {
    /// Create the named session (or resume it from its checkpoint if the
    /// daemon restarted). Opening an existing live session with the same
    /// config is idempotent.
    /// [idempotency: idempotent for an identical config; a different
    /// config for a live session is `InvalidRequest`]
    Open {
        /// The session's fixed configuration.
        config: SessionConfig,
    },
    /// Create the named *delta* session (or resume it from its
    /// checkpoint): a session-resident incremental evaluator scoring
    /// through the exact Q32 delta pipeline. Idempotent like `Open`.
    /// [idempotency: idempotent for an identical config, like `Open`]
    OpenDelta {
        /// The session's fixed configuration.
        config: SessionConfig,
    },
    /// Score a batch of floorplan states in the named session. On a
    /// delta session this is a read-only fast path (propose + undo per
    /// state); it leaves the committed state and any pending proposal
    /// untouched and consumes no budget.
    /// [idempotency: deduplicated by request id — a retry replays the
    /// recorded response and spends no additional budget]
    Evaluate {
        /// The states to score, answered in order.
        states: Vec<FloorplanState>,
    },
    /// Score one state incrementally against the delta session's
    /// committed snapshot and leave it pending for `Commit`. Pure:
    /// nothing is persisted, and a retry recomputes bit-identically.
    /// [idempotency: naturally idempotent — a retry recomputes the same
    /// digest and score bit-identically]
    Propose {
        /// The proposed floorplan.
        state: FloorplanState,
    },
    /// Promote the pending proposal with the given state digest to the
    /// committed snapshot. Persist-then-reply; idempotent by request id.
    /// [idempotency: deduplicated by request id; a replayed commit of an
    /// already-committed digest reports the committed score]
    Commit {
        /// The digest `Propose` returned for the proposal to commit.
        digest: String,
    },
    /// Discard the pending proposal (if any) and report the committed
    /// score. Pure; always safe to retry.
    /// [idempotency: naturally idempotent — discarding nothing is a
    /// no-op]
    Undo,
    /// Report the session's counters without evaluating anything.
    /// [idempotency: read-only]
    Stat,
    /// Close the session and delete its checkpoint.
    /// [idempotency: naturally idempotent — closing a closed session is
    /// `UnknownSession`, which callers treat as success]
    Close,
    /// Liveness probe; needs no session.
    /// [idempotency: read-only]
    Ping,
    /// Ask the daemon to stop accepting and exit cleanly (used by tests
    /// and the CI smoke harness; needs no session).
    /// [idempotency: naturally idempotent — a second shutdown finds the
    /// daemon already stopping]
    Shutdown,
}

/// One client request frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen request id; echoed in the response and used as the
    /// idempotency key for `Evaluate` retries.
    pub id: String,
    /// Session name; `[A-Za-z0-9_-]{1,64}`. Ignored by `Ping`/`Shutdown`.
    pub session: String,
    /// The operation.
    pub op: RequestOp,
}

/// Why a request was refused. `retryable` in the carrying
/// [`ResponsePayload::Error`] says whether the same frame may simply be
/// sent again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The daemon (or one of its bounded queues) is full; retry later.
    /// [retry: always — transient load, back off and resend unchanged]
    Backpressure,
    /// The session's evaluation budget is exhausted.
    /// [retry: never — the budget is spent; open a new session]
    BudgetExhausted,
    /// The frame was not a valid request object.
    /// [retry: never — resending the same bytes fails the same way]
    MalformedFrame,
    /// The frame exceeded [`Limits::max_frame_bytes`].
    /// [retry: never — the daemon's limits are fixed for its lifetime]
    FrameTooLarge,
    /// The `Evaluate` batch exceeded [`Limits::max_batch`] or a state
    /// exceeded [`Limits::max_segments`].
    /// [retry: never — split the batch instead]
    BatchTooLarge,
    /// `Evaluate`/`Stat`/`Close` named a session that was never opened.
    /// [retry: conditional — valid after an `Open` re-establishes it]
    UnknownSession,
    /// The request named an invalid session id or config.
    /// [retry: never — the request itself is wrong]
    InvalidRequest,
    /// A request id was reused with a different payload digest.
    /// [retry: never — pick a fresh request id]
    IdempotencyViolation,
    /// The per-request evaluation deadline passed mid-batch.
    /// [retry: always — no state changed; the retry re-evaluates]
    Timeout,
    /// Persisting the session checkpoint failed; state was rolled back,
    /// retry the request.
    /// [retry: always — the rollback restored the pre-request state]
    PersistFailed,
    /// The daemon is shutting down (or a chaos kill point fired).
    /// [retry: conditional — against the restarted daemon, not this one]
    ShuttingDown,
    /// A delta-only op (`Propose`/`Commit`/`Undo`) was sent to a full
    /// session, or `Open`/`OpenDelta` named a session of the other
    /// kind.
    /// [retry: never — the session kind does not change; fix the caller]
    WrongSessionKind,
    /// `Commit` named a digest with no matching pending proposal (e.g.
    /// the daemon restarted since the propose). Re-send the `Propose`,
    /// then retry the commit.
    /// [retry: conditional — only after re-proposing the same state]
    NoPendingProposal,
}

/// One scored floorplan state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalResult {
    /// FNV-1a digest of the state's canonical JSON (the cache key).
    pub digest: String,
    /// The congestion score (higher = more congested).
    pub score: f64,
    /// Which model produced the score: `"irregular"`, `"lz"`, or
    /// `"fixed"` — the degradation ladder, top first.
    pub model: String,
    /// Whether the score came from the session's congestion-map cache.
    pub cached: bool,
}

/// Session counters reported by `Stat` (and embedded in `Opened`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionStat {
    /// States evaluated over the session's lifetime (across restarts).
    pub evals_done: u64,
    /// Remaining evaluation budget; `0` with a zero-budget config means
    /// unlimited.
    pub budget_left: u64,
    /// Cache hits over this process's lifetime (not persisted).
    pub cache_hits: u64,
    /// Idempotency records currently retained.
    pub completed: u64,
}

/// The response body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResponsePayload {
    /// `Open` succeeded.
    Opened {
        /// Whether the session was resumed from a checkpoint on disk.
        resumed: bool,
        /// Counters at open time.
        stat: SessionStat,
    },
    /// `Evaluate` succeeded; one result per requested state, in order.
    Evaluated {
        /// The scores.
        results: Vec<EvalResult>,
    },
    /// `Propose` succeeded; the proposal is pending in the session.
    Proposed {
        /// FNV-1a digest of the proposed state (pass to `Commit`).
        digest: String,
        /// The proposal's congestion score (exact Q32 delta pipeline).
        score: f64,
    },
    /// `Commit` succeeded; the proposal is now the committed snapshot,
    /// durably persisted.
    Committed {
        /// Digest of the now-committed state.
        digest: String,
        /// The committed score.
        score: f64,
        /// Monotone commit counter (1 for the session's first commit).
        commit_seq: u64,
    },
    /// `Undo` succeeded; any pending proposal was discarded.
    Undone {
        /// The committed score (`0.0` before the first commit).
        score: f64,
    },
    /// `Stat` succeeded.
    Stats {
        /// The counters.
        stat: SessionStat,
    },
    /// `Close` succeeded.
    Closed,
    /// `Ping` reply.
    Pong,
    /// `Shutdown` acknowledged; the daemon stops accepting.
    Bye,
    /// The request failed.
    Error {
        /// The failure class.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
        /// Whether resending the identical frame can succeed.
        retryable: bool,
    },
}

/// One daemon response frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// The request id this answers (empty when the frame was too broken
    /// to recover an id).
    pub id: String,
    /// Whether the operation succeeded.
    pub ok: bool,
    /// `true` when load shedding downgraded the scoring model below the
    /// session's irregular-grid default. Degraded scores are never
    /// cached and never recorded for idempotent replay.
    pub degraded: bool,
    /// `true` when this is a recorded response replayed for an
    /// idempotent retry (same request id and payload digest).
    pub replayed: bool,
    /// The body.
    pub payload: ResponsePayload,
}

impl Response {
    /// A success response with the given payload.
    #[must_use]
    pub fn ok(id: &str, payload: ResponsePayload) -> Response {
        Response {
            id: id.to_owned(),
            ok: true,
            degraded: false,
            replayed: false,
            payload,
        }
    }

    /// An error response.
    #[must_use]
    pub fn error(
        id: &str,
        kind: ErrorKind,
        message: impl Into<String>,
        retryable: bool,
    ) -> Response {
        Response {
            id: id.to_owned(),
            ok: false,
            degraded: false,
            replayed: false,
            payload: ResponsePayload::Error {
                kind,
                message: message.into(),
                retryable,
            },
        }
    }

    /// Serializes to one JSONL frame (newline included).
    #[must_use]
    pub fn to_frame(&self) -> String {
        // irgrid-lint: allow(P1): serializing a plain owned data struct cannot fail
        let mut text = serde_json::to_string(self).expect("response serialization is infallible");
        text.push('\n');
        text
    }
}

/// Validates a session id: `[A-Za-z0-9_-]{1,64}` (safe as a file stem).
#[must_use]
pub fn valid_session_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// Parses one request frame.
///
/// # Errors
///
/// Returns the parse failure text for a [`ErrorKind::MalformedFrame`]
/// reply; the caller recovers the `id` for the reply when possible.
pub fn parse_request(line: &str) -> Result<Request, String> {
    serde_json::from_str(line).map_err(|err| err.to_string())
}

/// Best-effort recovery of the `id` field from a frame that failed to
/// parse as a full [`Request`], so the error reply can still be matched.
#[must_use]
pub fn recover_id(line: &str) -> String {
    let value: Result<serde::Value, _> = serde_json::from_str(line);
    match value {
        Ok(value) => match value.get("id") {
            Some(serde::Value::Str(id)) => id.clone(),
            _ => String::new(),
        },
        Err(_) => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let request = Request {
            id: "r-1".into(),
            session: "alice".into(),
            op: RequestOp::Evaluate {
                states: vec![FloorplanState {
                    chip: [600, 400],
                    segments: vec![[0, 0, 10, 20], [5, 5, 600, 400]],
                }],
            },
        };
        let text = serde_json::to_string(&request).expect("serialize");
        let back: Request = serde_json::from_str(&text).expect("parse");
        assert_eq!(request, back);
    }

    #[test]
    fn response_roundtrip_and_frame_shape() {
        let response = Response::ok(
            "r-2",
            ResponsePayload::Evaluated {
                results: vec![EvalResult {
                    digest: "abc".into(),
                    score: 1.5,
                    model: "irregular".into(),
                    cached: false,
                }],
            },
        );
        let frame = response.to_frame();
        assert!(frame.ends_with('\n'));
        assert_eq!(frame.matches('\n').count(), 1);
        let back: Response = serde_json::from_str(frame.trim_end()).expect("parse");
        assert_eq!(response, back);
    }

    #[test]
    fn delta_ops_and_payloads_roundtrip() {
        let state = FloorplanState {
            chip: [600, 400],
            segments: vec![[0, 0, 10, 20]],
        };
        for op in [
            RequestOp::OpenDelta {
                config: SessionConfig::default_config(),
            },
            RequestOp::Propose {
                state: state.clone(),
            },
            RequestOp::Commit {
                digest: "abcd".into(),
            },
            RequestOp::Undo,
        ] {
            let request = Request {
                id: "d-1".into(),
                session: "delta".into(),
                op,
            };
            let text = serde_json::to_string(&request).expect("serialize");
            let back: Request = serde_json::from_str(&text).expect("parse");
            assert_eq!(request, back);
        }
        for payload in [
            ResponsePayload::Proposed {
                digest: "abcd".into(),
                score: 1.25,
            },
            ResponsePayload::Committed {
                digest: "abcd".into(),
                score: 1.25,
                commit_seq: 3,
            },
            ResponsePayload::Undone { score: 0.5 },
        ] {
            let response = Response::ok("d-2", payload);
            let back: Response =
                serde_json::from_str(response.to_frame().trim_end()).expect("parse");
            assert_eq!(response, back);
        }
    }

    #[test]
    fn error_kinds_roundtrip() {
        for kind in [
            ErrorKind::Backpressure,
            ErrorKind::BudgetExhausted,
            ErrorKind::MalformedFrame,
            ErrorKind::FrameTooLarge,
            ErrorKind::BatchTooLarge,
            ErrorKind::UnknownSession,
            ErrorKind::InvalidRequest,
            ErrorKind::IdempotencyViolation,
            ErrorKind::Timeout,
            ErrorKind::PersistFailed,
            ErrorKind::ShuttingDown,
            ErrorKind::WrongSessionKind,
            ErrorKind::NoPendingProposal,
        ] {
            let response = Response::error("x", kind, "m", true);
            let back: Response =
                serde_json::from_str(response.to_frame().trim_end()).expect("parse");
            assert_eq!(response, back);
        }
    }

    #[test]
    fn session_id_validation() {
        assert!(valid_session_id("alice-01_B"));
        assert!(!valid_session_id(""));
        assert!(!valid_session_id("has space"));
        assert!(!valid_session_id("dot.dot"));
        assert!(!valid_session_id("../escape"));
        assert!(!valid_session_id(&"x".repeat(65)));
    }

    #[test]
    fn recover_id_from_partial_frames() {
        assert_eq!(recover_id(r#"{"id":"r9","op":"Nonsense"}"#), "r9");
        assert_eq!(recover_id("not json at all"), "");
        assert_eq!(recover_id(r#"{"op":"Ping"}"#), "");
    }

    #[test]
    fn malformed_frames_are_errors_not_panics() {
        for bad in [
            "",
            "{",
            "null",
            "[1,2,3]",
            r#"{"id":"a","session":"s","op":{"Evaluate":{"states":"nope"}}}"#,
            r#"{"id":"a","session":"s"}"#,
        ] {
            assert!(parse_request(bad).is_err(), "frame {bad:?} must not parse");
        }
    }
}
