//! Session-resident incremental evaluation: the serve-side wrapper
//! around [`IrDeltaEvaluator`].
//!
//! A delta session mirrors the full session's split between a small
//! **persistent** record ([`DeltaSessionState`]) and deterministic
//! runtime machinery, but the contract is move-shaped rather than
//! batch-shaped: `Propose` scores one candidate against the committed
//! floorplan through the exact Q32 delta pipeline, `Commit` makes the
//! pending proposal the new committed state, and `Undo` drops it. Only
//! `Commit` mutates persistent state; `Propose`/`Undo`/`Evaluate` are
//! pure, which is what lets the daemon skip a persist round-trip on the
//! (overwhelmingly common) rejected-move path.
//!
//! # Crash recovery
//!
//! The snapshot stores the committed [`FloorplanState`] plus a bounded
//! **commit journal** whose tail pins the committed map's identity: the
//! commit's score bits and a fingerprint of the evaluator's exact cut
//! vectors and Q32 totals ([`IrDeltaEvaluator::committed_fingerprint`]).
//! [`DeltaSession::from_state`] replays the committed state through a
//! fresh evaluator and refuses to resume unless both match — a restored
//! session is therefore *verified* bit-identical to the one that
//! persisted, not assumed.
//!
//! # Commit ordering
//!
//! Commits are split into [`DeltaSession::prepare_commit`] (pure:
//! builds the next persistent record) and
//! [`DeltaSession::apply_commit`] (advances the evaluator). The manager
//! persists *between* the two, so a failed persist leaves both the
//! evaluator and the pending proposal untouched and the client can
//! simply retry the commit — no rollback path exists because nothing
//! was mutated.

use irgrid_anneal::RunControl;
use irgrid_core::{
    CongestionModel, DeltaCongestion, DeltaCongestionSession, FixedGridModel, IrDeltaEvaluator,
    IrregularGridModel, LzShapeModel,
};
use irgrid_fleet::state_digest;
use irgrid_geom::Um;
use serde::{Deserialize, Serialize};

use crate::cache::{model_id, score_key, SharedScoreCache};
use crate::protocol::{ErrorKind, EvalResult, FloorplanState, SessionConfig, SessionStat};
use crate::session::{deadline_failure, timed_out, to_geometry, DegradeRung, EvalFailure};

/// Delta-snapshot format version written by this library.
pub const DELTA_SNAPSHOT_VERSION: u32 = 1;

/// The model name delta sessions report in [`EvalResult::model`].
pub const DELTA_MODEL_NAME: &str = "irregular-delta";

/// One committed move, oldest first in the journal. The tail record
/// pins the committed map: recovery re-derives the map from the stored
/// [`FloorplanState`] and must reproduce `score` bit for bit and
/// `fingerprint` exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaCommitRecord {
    /// 1-based commit sequence number (== `commits_done` at commit time).
    pub seq: u64,
    /// Digest of the committed state.
    pub digest: String,
    /// The committed map's cost, bit-exact.
    pub score: f64,
    /// 16-hex-char fingerprint of the committed snapshot's cut vectors,
    /// Q32 totals, and cost bits (hex so the u64 never rides through a
    /// JSON float).
    pub fingerprint: String,
}

/// One remembered `Commit` response, for idempotent retries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaCompletedRecord {
    /// The client's request id.
    pub request_id: String,
    /// The digest the commit was issued against; a retry must match it.
    pub digest: String,
    /// The recorded score, replayed verbatim.
    pub score: f64,
    /// The recorded commit sequence number.
    pub seq: u64,
}

/// The persistent part of a delta session — everything crash recovery
/// needs. Field names are disjoint from the full session's
/// [`SessionState`](crate::SessionState) (`commits_done`/`journal`
/// vs `evals_done`), so a snapshot parses as exactly one kind and a
/// session id can never silently change kind across a restart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaSessionState {
    /// Snapshot format version ([`DELTA_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The session id, cross-checked on load.
    pub session_id: String,
    /// The fixed configuration from `OpenDelta`. `budget` counts
    /// *commits* (proposes and undos are free).
    pub config: SessionConfig,
    /// Commits over the session's lifetime.
    pub commits_done: u64,
    /// The committed floorplan (`None` until the first commit).
    pub committed: Option<FloorplanState>,
    /// Bounded commit journal, oldest first; the tail verifies recovery.
    pub journal: Vec<DeltaCommitRecord>,
    /// Idempotency ring for commits, oldest first.
    pub completed: Vec<DeltaCompletedRecord>,
}

impl DeltaSessionState {
    /// Serializes to pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        // irgrid-lint: allow(P1): serializing a plain owned data struct cannot fail
        serde_json::to_string_pretty(self).expect("delta snapshot serialization is infallible")
    }

    /// Parses a snapshot, validating version, id, and journal shape.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the text is torn/garbage or
    /// internally inconsistent (version, id, pitch, or a journal that
    /// does not agree with `commits_done`/`committed`).
    pub fn from_json(text: &str, expect_id: &str) -> Result<DeltaSessionState, String> {
        let state: DeltaSessionState = serde_json::from_str(text)
            .map_err(|err| format!("delta snapshot did not parse: {err}"))?;
        if state.version != DELTA_SNAPSHOT_VERSION {
            return Err(format!(
                "delta snapshot version {} unsupported (expected {DELTA_SNAPSHOT_VERSION})",
                state.version
            ));
        }
        if state.session_id != expect_id {
            return Err(format!(
                "delta snapshot names session `{}`, expected `{expect_id}`",
                state.session_id
            ));
        }
        if state.config.pitch_um <= 0 {
            return Err("delta snapshot config has a non-positive pitch".to_owned());
        }
        if state.commits_done == 0 {
            if state.committed.is_some() || !state.journal.is_empty() {
                return Err("delta snapshot has commit data but commits_done = 0".to_owned());
            }
        } else {
            if state.committed.is_none() {
                return Err(format!(
                    "delta snapshot records {} commit(s) but no committed state",
                    state.commits_done
                ));
            }
            let Some(tail) = state.journal.last() else {
                return Err("delta snapshot has commits but an empty journal".to_owned());
            };
            if tail.seq != state.commits_done {
                return Err(format!(
                    "journal tail seq {} does not match commits_done {}",
                    tail.seq, state.commits_done
                ));
            }
            let increasing = state.journal.windows(2).all(|w| w[0].seq < w[1].seq);
            if !increasing || state.journal.iter().any(|r| r.seq == 0) {
                return Err("journal seq numbers are not strictly increasing from 1".to_owned());
            }
        }
        if state.completed.iter().any(|r| r.seq > state.commits_done) {
            return Err("completed ring references a commit past commits_done".to_owned());
        }
        Ok(state)
    }
}

/// The proposal currently armed for commit. Mirrors the evaluator's
/// internal proposed snapshot — re-armed by re-proposing after a
/// read-only `Evaluate` borrows the evaluator.
#[derive(Debug, Clone)]
struct PendingProposal {
    state: FloorplanState,
    digest: String,
    score: f64,
}

/// A live delta session: persistent record plus the session-resident
/// [`IrDeltaEvaluator`] and degradation fallbacks.
#[derive(Debug)]
pub struct DeltaSession {
    /// The persistent record (the manager persists this via
    /// [`prepare_commit`](Self::prepare_commit)).
    pub state: DeltaSessionState,
    evaluator: IrDeltaEvaluator,
    lz: LzShapeModel,
    fixed: FixedGridModel,
    cache: SharedScoreCache,
    cache_enabled: bool,
    cache_hits: u64,
    cache_model: String,
    completed_ring: usize,
    pending: Option<PendingProposal>,
}

/// What [`DeltaSession::prepare_commit`] decided.
#[derive(Debug)]
pub enum CommitOutcome {
    /// The request id was already recorded; replay the remembered ack
    /// (nothing to persist or apply).
    Replayed {
        /// Recorded state digest.
        digest: String,
        /// Recorded score, bit-exact.
        score: f64,
        /// Recorded commit sequence number.
        seq: u64,
    },
    /// A new commit: persist [`PreparedCommit::snapshot_json`], then
    /// [`apply_commit`](DeltaSession::apply_commit).
    Prepared(PreparedCommit),
}

/// A commit that has been validated and staged but not yet applied.
/// Holds the *next* persistent record; the session is untouched until
/// [`DeltaSession::apply_commit`] consumes this.
#[derive(Debug)]
pub struct PreparedCommit {
    next: DeltaSessionState,
    digest: String,
    score: f64,
    seq: u64,
}

impl PreparedCommit {
    /// The snapshot JSON the manager must persist before applying.
    #[must_use]
    pub fn snapshot_json(&self) -> String {
        self.next.to_json()
    }

    /// The commit sequence number this prepared commit will ack with.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

impl DeltaSession {
    /// Creates a fresh delta session for `config`.
    #[must_use]
    pub fn create(
        session_id: &str,
        config: SessionConfig,
        completed_ring: usize,
        cache: SharedScoreCache,
    ) -> DeltaSession {
        let state = DeltaSessionState {
            version: DELTA_SNAPSHOT_VERSION,
            session_id: session_id.to_owned(),
            config,
            commits_done: 0,
            committed: None,
            journal: Vec::new(),
            completed: Vec::new(),
        };
        DeltaSession::from_state(state, completed_ring, cache)
            .unwrap_or_else(|why| unreachable!("fresh delta state cannot fail recovery: {why}"))
    }

    /// Rebuilds a session around recovered persistent state, replaying
    /// the committed floorplan through a fresh evaluator and verifying
    /// it against the journal tail.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the committed state is
    /// unparseable geometry or the replayed map's cost bits or
    /// fingerprint disagree with what the journal recorded — a loud
    /// refusal, since serving from a diverged map would silently break
    /// the bit-identity contract.
    pub fn from_state(
        state: DeltaSessionState,
        completed_ring: usize,
        cache: SharedScoreCache,
    ) -> Result<DeltaSession, String> {
        let pitch = Um(state.config.pitch_um.max(1));
        let model = IrregularGridModel::new(pitch);
        let mut evaluator = model.delta_session();
        if let Some(committed) = &state.committed {
            let (chip, segments) = to_geometry(committed)
                .map_err(|why| format!("recovered committed state is invalid: {why}"))?;
            let cost = evaluator.rebase(&chip, &segments);
            let tail = state
                .journal
                .last()
                .ok_or_else(|| "committed state without a journal tail".to_owned())?;
            if cost.to_bits() != tail.score.to_bits() {
                return Err(format!(
                    "replayed committed map cost {cost:?} (bits {:016x}) does not match \
                     journal tail score {:?} (bits {:016x})",
                    cost.to_bits(),
                    tail.score,
                    tail.score.to_bits()
                ));
            }
            let fingerprint = format!("{:016x}", evaluator.committed_fingerprint());
            if fingerprint != tail.fingerprint {
                return Err(format!(
                    "replayed committed map fingerprint {fingerprint} does not match \
                     journal tail fingerprint {}",
                    tail.fingerprint
                ));
            }
        }
        Ok(DeltaSession {
            evaluator,
            lz: LzShapeModel::new(pitch),
            fixed: FixedGridModel::new(pitch),
            cache,
            cache_enabled: state.config.cache_capacity > 0,
            cache_hits: 0,
            cache_model: model_id(DELTA_MODEL_NAME, pitch.0),
            completed_ring: completed_ring.max(1),
            pending: None,
            state,
        })
    }

    /// The budget control this session's config induces (`budget`
    /// bounds commits; 0 means unlimited).
    #[must_use]
    pub fn budget_control(&self) -> RunControl {
        let control = RunControl::unlimited();
        if self.state.config.budget > 0 {
            control.with_move_budget(self.state.config.budget)
        } else {
            control
        }
    }

    /// Current counters. `evals_done` reports commits — the only
    /// budget-metered operation on a delta session.
    #[must_use]
    pub fn stat(&self) -> SessionStat {
        let budget = self.state.config.budget;
        SessionStat {
            evals_done: self.state.commits_done,
            budget_left: budget.saturating_sub(self.state.commits_done),
            cache_hits: self.cache_hits,
            completed: self.state.completed.len() as u64,
        }
    }

    /// The recorded commit ack for `request_id`, if any.
    #[must_use]
    pub fn recorded(&self, request_id: &str) -> Option<&DeltaCompletedRecord> {
        self.state
            .completed
            .iter()
            .find(|record| record.request_id == request_id)
    }

    /// The digest of the pending proposal, if one is armed.
    #[must_use]
    pub fn pending_digest(&self) -> Option<&str> {
        self.pending.as_ref().map(|pending| pending.digest.as_str())
    }

    /// Scores one candidate against the committed floorplan and (at
    /// full fidelity) arms it for commit. Pure with respect to
    /// persistent state — nothing to persist, nothing to record.
    ///
    /// At a degraded rung the score comes from the stateless fallback
    /// models and the proposal is **not** commit-eligible: the
    /// committed map only ever advances through the exact delta
    /// pipeline, so a degraded propose leaves any previously armed
    /// proposal in place.
    ///
    /// # Errors
    ///
    /// [`EvalFailure`] on invalid geometry or an expired deadline.
    pub fn propose(
        &mut self,
        state: &FloorplanState,
        rung: DegradeRung,
        control: &RunControl,
    ) -> Result<(String, f64, bool), EvalFailure> {
        let (chip, segments) = to_geometry(state)
            .map_err(|why| EvalFailure::new(ErrorKind::InvalidRequest, why, false))?;
        if timed_out(control) {
            return Err(deadline_failure());
        }
        if rung.is_degraded() {
            let score = match rung {
                DegradeRung::Lz => self.lz.evaluate(&chip, &segments),
                _ => self.fixed.evaluate(&chip, &segments),
            };
            return Ok((state_digest(state), score, true));
        }
        let key = score_key(&self.cache_model, state);
        let digest = key.digest.clone();
        let score = self.evaluator.propose(&chip, &segments);
        if self.cache_enabled {
            self.cache.put(key, score);
        }
        self.pending = Some(PendingProposal {
            state: state.clone(),
            digest: digest.clone(),
            score,
        });
        Ok((digest, score, false))
    }

    /// Validates a commit and stages the next persistent record without
    /// mutating the session. The manager persists the staged snapshot,
    /// then calls [`apply_commit`](Self::apply_commit); on persist
    /// failure it simply drops the [`PreparedCommit`] and the pending
    /// proposal stays armed for a retry.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::NoPendingProposal`] when no proposal (or a
    /// different one) is armed, [`ErrorKind::BudgetExhausted`] when the
    /// commit budget is spent, [`ErrorKind::InvalidRequest`] when a
    /// recorded request id is retried with a different digest.
    pub fn prepare_commit(
        &self,
        request_id: &str,
        digest: &str,
    ) -> Result<CommitOutcome, EvalFailure> {
        if let Some(record) = self.recorded(request_id) {
            if record.digest != digest {
                return Err(EvalFailure::new(
                    ErrorKind::InvalidRequest,
                    format!(
                        "request id `{request_id}` was recorded for digest {} but retried \
                         with {digest}",
                        record.digest
                    ),
                    false,
                ));
            }
            return Ok(CommitOutcome::Replayed {
                digest: record.digest.clone(),
                score: record.score,
                seq: record.seq,
            });
        }
        let Some(pending) = &self.pending else {
            return Err(EvalFailure::new(
                ErrorKind::NoPendingProposal,
                "no pending proposal in this session (propose, then commit)",
                false,
            ));
        };
        if pending.digest != digest {
            return Err(EvalFailure::new(
                ErrorKind::NoPendingProposal,
                format!(
                    "pending proposal has digest {}, not {digest} (propose, then commit)",
                    pending.digest
                ),
                false,
            ));
        }
        if self.budget_control().budget_hit(self.state.commits_done) {
            return Err(EvalFailure::new(
                ErrorKind::BudgetExhausted,
                format!(
                    "budget {} cannot cover another commit after {}",
                    self.state.config.budget, self.state.commits_done
                ),
                false,
            ));
        }
        let seq = self.state.commits_done + 1;
        let mut next = self.state.clone();
        next.commits_done = seq;
        next.committed = Some(pending.state.clone());
        next.journal.push(DeltaCommitRecord {
            seq,
            digest: pending.digest.clone(),
            score: pending.score,
            // The proposal's fingerprint IS the post-commit committed
            // fingerprint (commit only swaps buffers), which is what
            // lets the record be persisted before the commit applies.
            fingerprint: format!("{:016x}", self.evaluator.proposed_fingerprint()),
        });
        while next.journal.len() > self.completed_ring {
            next.journal.remove(0);
        }
        next.completed.push(DeltaCompletedRecord {
            request_id: request_id.to_owned(),
            digest: pending.digest.clone(),
            score: pending.score,
            seq,
        });
        while next.completed.len() > self.completed_ring {
            next.completed.remove(0);
        }
        Ok(CommitOutcome::Prepared(PreparedCommit {
            next,
            digest: pending.digest.clone(),
            score: pending.score,
            seq,
        }))
    }

    /// Applies a persisted commit: advances the evaluator's committed
    /// snapshot and installs the staged persistent record. Returns the
    /// `(digest, score, seq)` ack.
    pub fn apply_commit(&mut self, prepared: PreparedCommit) -> (String, f64, u64) {
        self.evaluator.commit();
        self.state = prepared.next;
        self.pending = None;
        (prepared.digest, prepared.score, prepared.seq)
    }

    /// Drops any pending proposal and returns the committed cost (0
    /// before the first commit). Pure with respect to persistent state.
    pub fn undo(&mut self) -> f64 {
        self.pending = None;
        self.evaluator.undo()
    }

    /// Read-only batch scoring through the delta pipeline — the
    /// `Evaluate` fast path on a delta session. Consumes no budget and
    /// records nothing (it is deterministic, so a retry recomputes the
    /// identical bits); each uncached state is scored by a propose +
    /// undo pair and any previously armed proposal is re-armed
    /// afterwards, bit-identically.
    ///
    /// # Errors
    ///
    /// [`EvalFailure`] on invalid geometry (whole batch, before any
    /// work) or an expired deadline.
    pub fn evaluate(
        &mut self,
        states: &[FloorplanState],
        rung: DegradeRung,
        control: &RunControl,
    ) -> Result<Vec<EvalResult>, EvalFailure> {
        let mut geometries = Vec::with_capacity(states.len());
        for (index, state) in states.iter().enumerate() {
            let geometry = to_geometry(state).map_err(|why| {
                EvalFailure::new(
                    ErrorKind::InvalidRequest,
                    format!("state {index}: {why}"),
                    false,
                )
            })?;
            geometries.push(geometry);
        }
        if rung.is_degraded() {
            let mut results = Vec::with_capacity(states.len());
            for (state, (chip, segments)) in states.iter().zip(&geometries) {
                if timed_out(control) {
                    return Err(deadline_failure());
                }
                let score = match rung {
                    DegradeRung::Lz => self.lz.evaluate(chip, segments),
                    _ => self.fixed.evaluate(chip, segments),
                };
                results.push(EvalResult {
                    digest: state_digest(state),
                    score,
                    model: rung.model_name().to_owned(),
                    cached: false,
                });
            }
            return Ok(results);
        }

        let saved = self.pending.take();
        let mut results = Vec::with_capacity(states.len());
        for (state, (chip, segments)) in states.iter().zip(&geometries) {
            if timed_out(control) {
                self.rearm(saved);
                return Err(deadline_failure());
            }
            let key = score_key(&self.cache_model, state);
            let digest = key.digest.clone();
            let hit = if self.cache_enabled {
                self.cache.get(&key)
            } else {
                None
            };
            let (score, cached) = match hit {
                Some(score) => {
                    self.cache_hits += 1;
                    (score, true)
                }
                None => {
                    let score = self.evaluator.propose(chip, segments);
                    self.evaluator.undo();
                    if self.cache_enabled {
                        self.cache.put(key, score);
                    }
                    (score, false)
                }
            };
            results.push(EvalResult {
                digest,
                score,
                model: DELTA_MODEL_NAME.to_owned(),
                cached,
            });
        }
        self.rearm(saved);
        Ok(results)
    }

    /// Re-installs a proposal taken before a read-only evaluate. The
    /// state was validated at propose time, and re-proposing it rebuilds
    /// the identical proposed snapshot (delta evaluation is
    /// deterministic), so the commit that follows sees the same bits.
    fn rearm(&mut self, saved: Option<PendingProposal>) {
        let Some(pending) = saved else { return };
        if let Ok((chip, segments)) = to_geometry(&pending.state) {
            self.evaluator.propose(&chip, &segments);
            self.pending = Some(pending);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionState;

    fn demo_states(count: usize) -> Vec<FloorplanState> {
        (0..count)
            .map(|k| {
                let k = k as i64;
                FloorplanState {
                    chip: [600, 600],
                    segments: vec![
                        [30 + k * 7, 30, 540, 540 - k * 5],
                        [30, 540, 540 - k * 3, 30],
                        [10, 10 + k, 590, 300],
                    ],
                }
            })
            .collect()
    }

    fn shared() -> SharedScoreCache {
        SharedScoreCache::new(256)
    }

    fn session() -> DeltaSession {
        DeltaSession::create("t", SessionConfig::default_config(), 8, shared())
    }

    /// Score of `state` through a fresh from-scratch delta rebase — the
    /// reference the serving path must match bit for bit.
    fn fresh_rebase(state: &FloorplanState) -> f64 {
        let (chip, segments) = to_geometry(state).expect("geometry");
        let model = IrregularGridModel::new(Um(30));
        model.delta_session().rebase(&chip, &segments)
    }

    fn commit(session: &mut DeltaSession, request_id: &str, digest: &str) -> (String, f64, u64) {
        match session.prepare_commit(request_id, digest).expect("prepare") {
            CommitOutcome::Prepared(prepared) => session.apply_commit(prepared),
            CommitOutcome::Replayed { digest, score, seq } => (digest, score, seq),
        }
    }

    #[test]
    fn propose_commit_undo_lifecycle() {
        let mut session = session();
        let states = demo_states(2);

        let (d1, s1, degraded) = session
            .propose(&states[0], DegradeRung::Full, &RunControl::unlimited())
            .expect("propose");
        assert!(!degraded);
        assert_eq!(s1.to_bits(), fresh_rebase(&states[0]).to_bits());
        assert_eq!(session.pending_digest(), Some(d1.as_str()));

        let (digest, score, seq) = commit(&mut session, "r1", &d1);
        assert_eq!((digest.as_str(), seq), (d1.as_str(), 1));
        assert_eq!(score.to_bits(), s1.to_bits());
        assert_eq!(session.state.commits_done, 1);
        assert_eq!(session.pending_digest(), None);
        assert_eq!(session.state.journal.last().expect("tail").seq, 1);

        // Rejected move: propose, then undo back to the committed cost.
        let (_, s2, _) = session
            .propose(&states[1], DegradeRung::Full, &RunControl::unlimited())
            .expect("propose 2");
        assert_ne!(s2.to_bits(), s1.to_bits());
        assert_eq!(session.undo().to_bits(), s1.to_bits());
        assert_eq!(session.state.commits_done, 1, "undo persists nothing");
    }

    #[test]
    fn commit_without_matching_proposal_is_refused() {
        let mut session = session();
        let states = demo_states(2);
        let err = session
            .prepare_commit("r1", "feedbeef00000000")
            .expect_err("nothing pending");
        assert_eq!(err.kind, ErrorKind::NoPendingProposal);

        let (d1, _, _) = session
            .propose(&states[0], DegradeRung::Full, &RunControl::unlimited())
            .expect("propose");
        let err = session
            .prepare_commit("r1", "feedbeef00000000")
            .expect_err("wrong digest");
        assert_eq!(err.kind, ErrorKind::NoPendingProposal);
        // The armed proposal survives the refusal.
        assert_eq!(session.pending_digest(), Some(d1.as_str()));
    }

    #[test]
    fn degraded_propose_scores_but_never_arms() {
        let mut session = session();
        let states = demo_states(1);
        let (digest, _, degraded) = session
            .propose(&states[0], DegradeRung::Lz, &RunControl::unlimited())
            .expect("degraded propose");
        assert!(degraded);
        assert_eq!(session.pending_digest(), None);
        let err = session
            .prepare_commit("r1", &digest)
            .expect_err("degraded proposals are not commit-eligible");
        assert_eq!(err.kind, ErrorKind::NoPendingProposal);
    }

    #[test]
    fn commit_replay_is_idempotent_and_digest_checked() {
        let mut session = session();
        let states = demo_states(1);
        let (d1, _, _) = session
            .propose(&states[0], DegradeRung::Full, &RunControl::unlimited())
            .expect("propose");
        let first = commit(&mut session, "r1", &d1);
        // Retry with the same id: replayed ack, no second commit.
        let outcome = session.prepare_commit("r1", &d1).expect("replay");
        let CommitOutcome::Replayed { digest, score, seq } = outcome else {
            panic!("expected a replayed ack");
        };
        assert_eq!(
            (digest, score.to_bits(), seq),
            (first.0, first.1.to_bits(), first.2)
        );
        assert_eq!(session.state.commits_done, 1);
        // Same id, different digest: loud refusal.
        let err = session
            .prepare_commit("r1", "feedbeef00000000")
            .expect_err("digest mismatch on replay");
        assert_eq!(err.kind, ErrorKind::InvalidRequest);
    }

    #[test]
    fn budget_meters_commits_not_proposes() {
        let config = SessionConfig {
            budget: 1,
            ..SessionConfig::default_config()
        };
        let mut session = DeltaSession::create("b", config, 8, shared());
        let states = demo_states(2);
        // Proposes and undos are free.
        for _ in 0..3 {
            session
                .propose(&states[0], DegradeRung::Full, &RunControl::unlimited())
                .expect("free propose");
            session.undo();
        }
        let (d1, _, _) = session
            .propose(&states[0], DegradeRung::Full, &RunControl::unlimited())
            .expect("propose");
        commit(&mut session, "r1", &d1);
        assert_eq!(session.stat().budget_left, 0);
        let (d2, _, _) = session
            .propose(&states[1], DegradeRung::Full, &RunControl::unlimited())
            .expect("propose 2");
        let err = session
            .prepare_commit("r2", &d2)
            .expect_err("budget exhausted");
        assert_eq!(err.kind, ErrorKind::BudgetExhausted);
        assert!(!err.retryable);
        assert_eq!(session.state.commits_done, 1);
    }

    #[test]
    fn failed_persist_leaves_commit_retryable() {
        let mut session = session();
        let states = demo_states(1);
        let (d1, s1, _) = session
            .propose(&states[0], DegradeRung::Full, &RunControl::unlimited())
            .expect("propose");
        // Prepare, then "fail the persist" by dropping the prepared
        // commit: nothing was mutated, so the retry succeeds.
        let CommitOutcome::Prepared(prepared) = session.prepare_commit("r1", &d1).expect("prepare")
        else {
            panic!("fresh id cannot replay");
        };
        drop(prepared);
        assert_eq!(session.state.commits_done, 0);
        assert_eq!(session.pending_digest(), Some(d1.as_str()));
        let (_, score, seq) = commit(&mut session, "r1", &d1);
        assert_eq!((score.to_bits(), seq), (s1.to_bits(), 1));
    }

    #[test]
    fn readonly_evaluate_matches_fresh_rebase_and_preserves_pending() {
        let mut session = session();
        let states = demo_states(3);
        let (d0, _, _) = session
            .propose(&states[0], DegradeRung::Full, &RunControl::unlimited())
            .expect("propose");
        commit(&mut session, "r0", &d0);

        // Arm a proposal, interleave a read-only evaluate, then commit
        // the armed proposal — bit-identical to the uninterleaved run.
        let (d1, s1, _) = session
            .propose(&states[1], DegradeRung::Full, &RunControl::unlimited())
            .expect("propose");
        let results = session
            .evaluate(&states[2..], DegradeRung::Full, &RunControl::unlimited())
            .expect("read-only evaluate");
        assert_eq!(results.len(), 1);
        assert_eq!(
            results[0].score.to_bits(),
            fresh_rebase(&states[2]).to_bits()
        );
        assert_eq!(results[0].model, DELTA_MODEL_NAME);
        assert_eq!(session.state.commits_done, 1, "evaluate consumes no budget");
        assert_eq!(
            session.pending_digest(),
            Some(d1.as_str()),
            "pending re-armed"
        );
        let (_, score, seq) = commit(&mut session, "r1", &d1);
        assert_eq!((score.to_bits(), seq), (s1.to_bits(), 2));

        // Second evaluate of the same state hits the shared cache.
        let again = session
            .evaluate(&states[2..], DegradeRung::Full, &RunControl::unlimited())
            .expect("cached evaluate");
        assert!(again[0].cached);
        assert_eq!(again[0].score.to_bits(), results[0].score.to_bits());
        assert_eq!(session.stat().cache_hits, 1);
    }

    #[test]
    fn snapshot_roundtrip_validation_and_kind_separation() {
        let mut session = session();
        let states = demo_states(2);
        for (k, state) in states.iter().enumerate() {
            let (digest, _, _) = session
                .propose(state, DegradeRung::Full, &RunControl::unlimited())
                .expect("propose");
            commit(&mut session, &format!("r{k}"), &digest);
        }
        let json = session.state.to_json();
        let back = DeltaSessionState::from_json(&json, "t").expect("parse");
        assert_eq!(back, session.state);
        assert_eq!(
            back.journal[1].score.to_bits(),
            session.state.journal[1].score.to_bits(),
            "scores survive bit-exactly"
        );

        assert!(DeltaSessionState::from_json(&json, "other").is_err());
        assert!(DeltaSessionState::from_json("{torn", "t").is_err());
        let mut wrong = session.state.clone();
        wrong.version = 99;
        assert!(DeltaSessionState::from_json(&wrong.to_json(), "t").is_err());
        let mut torn = session.state.clone();
        torn.journal.clear();
        assert!(
            DeltaSessionState::from_json(&torn.to_json(), "t").is_err(),
            "commits without a journal tail are refused"
        );

        // Kind separation: a full-session snapshot never parses as a
        // delta snapshot, and vice versa.
        let full =
            crate::session::Session::create("t", SessionConfig::default_config(), 8, shared());
        assert!(DeltaSessionState::from_json(&full.state.to_json(), "t").is_err());
        assert!(SessionState::from_json(&json, "t").is_err());
    }

    #[test]
    fn resumed_session_is_verified_and_continues_bit_identically() {
        let states = demo_states(3);

        // Uninterrupted reference: three commits in one lifetime.
        let mut reference = session();
        for (k, state) in states.iter().enumerate() {
            let (digest, _, _) = reference
                .propose(state, DegradeRung::Full, &RunControl::unlimited())
                .expect("propose");
            commit(&mut reference, &format!("r{k}"), &digest);
        }

        // Interrupted: two commits, snapshot, "restart", third commit.
        let mut first = session();
        for (k, state) in states[..2].iter().enumerate() {
            let (digest, _, _) = first
                .propose(state, DegradeRung::Full, &RunControl::unlimited())
                .expect("propose");
            commit(&mut first, &format!("r{k}"), &digest);
        }
        let snapshot = first.state.to_json();
        let recovered = DeltaSessionState::from_json(&snapshot, "t").expect("parse");
        let mut resumed = DeltaSession::from_state(recovered, 8, shared()).expect("verified");
        let (digest, _, _) = resumed
            .propose(&states[2], DegradeRung::Full, &RunControl::unlimited())
            .expect("propose");
        commit(&mut resumed, "r2", &digest);

        assert_eq!(resumed.state, reference.state, "recovered state diverged");
        assert_eq!(
            resumed.state.to_json(),
            reference.state.to_json(),
            "snapshots must be byte-identical"
        );
    }

    #[test]
    fn resume_refuses_a_diverged_committed_state() {
        let mut session = session();
        let states = demo_states(1);
        let (digest, _, _) = session
            .propose(&states[0], DegradeRung::Full, &RunControl::unlimited())
            .expect("propose");
        commit(&mut session, "r1", &digest);
        // Tamper with the committed floorplan but keep the journal: the
        // replayed map no longer matches the recorded identity. The move
        // is several grid pitches, so the congestion map really changes
        // (a sub-pitch nudge could legitimately snap to the same map).
        let mut tampered = session.state.clone();
        let committed = tampered.committed.as_mut().expect("committed");
        committed.segments[0][0] += 120;
        let err = DeltaSession::from_state(tampered, 8, shared())
            .expect_err("diverged state must be refused");
        assert!(
            err.contains("does not match"),
            "error should name the mismatch: {err}"
        );
    }
}
