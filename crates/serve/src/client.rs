//! The reference client for the daemon.
//!
//! This is the client the chaos tests, the CI smoke harness, and
//! `repro serve-bench` all share. Its retry loop implements the
//! protocol's contract: any response marked `retryable` may be resent
//! verbatim, and the idempotency ring guarantees a retried `Evaluate`
//! or `Commit` never double-counts. Transport failures (daemon killed
//! mid-request) reconnect and resend the same frame for the same reason.
//!
//! The client reads responses through the same bounded frame reader as
//! the server ([`frame`](crate::frame)) — a hostile or broken daemon
//! cannot make it buffer an unbounded line — and speaks either framing:
//! [`Client::with_codec`] with [`FrameCodec::Binary`] sends the magic
//! preamble on connect and switches the whole connection to
//! length-prefixed binary frames.
//!
//! Like the server's transport layer, this file is connection-side code:
//! the only wall-clock it touches is retry backoff.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration; // irgrid-lint: allow(D1): client retry backoff is connection-layer wall-clock

use crate::frame::{
    parse_response_payload, read_frame, request_frame, FrameCodec, FrameReadError, BINARY_MAGIC,
};
use crate::protocol::{Limits, Request, Response, ResponsePayload};
use crate::server::Transport;

/// Why a client call failed for good.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed and reconnecting kept failing.
    Transport(std::io::Error),
    /// The daemon's reply was not a valid response frame.
    Protocol(String),
    /// Every attempt got a retryable error; the last response is inside.
    RetriesExhausted(Box<Response>),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(err) => write!(f, "transport failed: {err}"),
            ClientError::Protocol(why) => write!(f, "protocol violation: {why}"),
            ClientError::RetriesExhausted(response) => {
                write!(
                    f,
                    "retries exhausted; last response: {:?}",
                    response.payload
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

enum ClientStream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ClientStream::Unix(s) => s.read(buf),
            ClientStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ClientStream::Unix(s) => s.write(buf),
            ClientStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ClientStream::Unix(s) => s.flush(),
            ClientStream::Tcp(s) => s.flush(),
        }
    }
}

/// A connected (or lazily reconnecting) daemon client.
pub struct Client {
    transport: Transport,
    codec: FrameCodec,
    /// Response frames larger than this are a protocol violation.
    max_frame_bytes: usize,
    connection: Option<(ClientStream, BufReader<ClientStream>)>,
}

impl Client {
    /// A JSONL client for `transport`; connects lazily on first call.
    #[must_use]
    pub fn new(transport: Transport) -> Client {
        Client::with_codec(transport, FrameCodec::Jsonl)
    }

    /// A client speaking the given framing. Binary clients send the
    /// negotiation magic as the first bytes of every (re)connection.
    #[must_use]
    pub fn with_codec(transport: Transport, codec: FrameCodec) -> Client {
        Client {
            transport,
            codec,
            max_frame_bytes: Limits::default().max_frame_bytes,
            connection: None,
        }
    }

    /// The framing this client speaks.
    #[must_use]
    pub fn codec(&self) -> FrameCodec {
        self.codec
    }

    fn connect(&mut self) -> std::io::Result<()> {
        if self.connection.is_some() {
            return Ok(());
        }
        let (mut writer, reader) = match &self.transport {
            Transport::Unix(path) => {
                let stream = UnixStream::connect(path)?;
                let clone = stream.try_clone()?;
                (ClientStream::Unix(stream), ClientStream::Unix(clone))
            }
            Transport::Tcp(address) => {
                let stream = TcpStream::connect(address.as_str())?;
                let clone = stream.try_clone()?;
                (ClientStream::Tcp(stream), ClientStream::Tcp(clone))
            }
        };
        if self.codec == FrameCodec::Binary {
            writer.write_all(&BINARY_MAGIC)?;
        }
        self.connection = Some((writer, BufReader::new(reader)));
        Ok(())
    }

    /// Drops the connection so the next call reconnects.
    pub fn disconnect(&mut self) {
        self.connection = None;
    }

    /// Sends one request and reads its response. No retries.
    ///
    /// # Errors
    ///
    /// [`ClientError::Transport`] when the socket fails (the connection
    /// is dropped so the next call reconnects), [`ClientError::Protocol`]
    /// when the reply is not a response frame.
    pub fn call_once(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.connect().map_err(ClientError::Transport)?;
        let codec = self.codec;
        let max = self.max_frame_bytes;
        // irgrid-lint: allow(P1): connect() above just guaranteed the connection
        let (writer, reader) = self.connection.as_mut().expect("connected");

        let frame = request_frame(codec, request);
        let send = writer.write_all(&frame).and_then(|()| writer.flush());
        if let Err(err) = send {
            self.disconnect();
            return Err(ClientError::Transport(err));
        }

        // Bounded read: the client never buffers more than the frame
        // limit of a response, however broken the peer.
        match read_frame(reader, codec, max, &mut || true) {
            Ok(payload) => {
                let response = parse_response_payload(&payload)
                    .map_err(|why| ClientError::Protocol(format!("bad response frame: {why}")))?;
                if response.id != request.id && !response.id.is_empty() {
                    return Err(ClientError::Protocol(format!(
                        "response id `{}` does not match request id `{}`",
                        response.id, request.id
                    )));
                }
                Ok(response)
            }
            Err(FrameReadError::TooLarge) => {
                self.disconnect();
                Err(ClientError::Protocol(format!(
                    "daemon sent a response frame over {max} bytes"
                )))
            }
            Err(FrameReadError::Closed | FrameReadError::Aborted) => {
                self.disconnect();
                Err(ClientError::Transport(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "daemon closed the connection",
                )))
            }
            Err(FrameReadError::Transport(err)) => {
                self.disconnect();
                Err(ClientError::Transport(err))
            }
        }
    }

    /// Sends a request, retrying retryable errors and transport failures
    /// (with reconnect) up to `attempts` times total.
    ///
    /// This is the loop that makes chaos survivable: an injected
    /// `PersistFailed` rolled the daemon back, so resending the identical
    /// frame either re-does the work or replays the recorded response —
    /// both converge on the uninterrupted outcome.
    ///
    /// # Errors
    ///
    /// The terminal [`ClientError`] after `attempts` tries, or
    /// immediately for non-retryable error responses (those are returned
    /// as `Ok` — the caller inspects `response.ok`).
    pub fn call(&mut self, request: &Request, attempts: u32) -> Result<Response, ClientError> {
        let mut last_transport: Option<ClientError> = None;
        let mut last_response: Option<Response> = None;
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(Duration::from_millis(u64::from(attempt.min(20))));
            }
            match self.call_once(request) {
                Ok(response) => {
                    let retryable = matches!(
                        response.payload,
                        ResponsePayload::Error {
                            retryable: true,
                            ..
                        }
                    );
                    if !retryable {
                        return Ok(response);
                    }
                    last_response = Some(response);
                }
                Err(ClientError::Transport(err)) => {
                    last_transport = Some(ClientError::Transport(err));
                }
                Err(err) => return Err(err),
            }
        }
        if let Some(response) = last_response {
            return Err(ClientError::RetriesExhausted(Box::new(response)));
        }
        // irgrid-lint: allow(P1): attempts >= 1, so one arm above always ran
        Err(last_transport.expect("at least one attempt happened"))
    }
}
