//! `irgrid-serve` — a fault-tolerant congestion-evaluation daemon.
//!
//! The annealing stack scores floorplans in-process; this crate turns the
//! same retained evaluation machinery into a long-running service:
//! concurrent clients hold named sessions, each wrapping a retained
//! [`CongestionEvaluator`](irgrid_core::CongestionEvaluator) plus a
//! score cache, and drive it with JSONL (or negotiated length-prefixed
//! binary, [`frame`]) request frames over a Unix (or TCP) socket.
//!
//! Two session kinds share one session table: `Open` sessions score
//! independent batches through the retained evaluator, and `OpenDelta`
//! sessions ([`delta`]) hold a session-resident incremental evaluator
//! driven move-by-move with `Propose`/`Commit`/`Undo` — the daemon-side
//! mirror of the annealer's inner loop, bit-identical to a full rebuild
//! by construction.
//!
//! The design goal is *robustness you can prove*, not raw throughput:
//!
//! - **Crash consistency.** Every session mutation is persisted with the
//!   workspace's tmp+fsync+rename discipline before the client sees the
//!   response; a killed daemon resumes every session bit-identically
//!   ([`store`], [`session`]).
//! - **Idempotent retries.** `Evaluate` responses are recorded in a
//!   bounded per-session ring keyed by request id and batch digest, so a
//!   client that resends after any retryable failure converges on the
//!   same final state as an uninterrupted run ([`manager`]).
//! - **Bounded everything.** Frames, batches, sessions, and connections
//!   all have hard limits with explicit typed refusals — backpressure is
//!   visible, queues never grow without bound ([`protocol::Limits`]).
//! - **Graceful degradation.** Under load the scoring model steps down
//!   the ladder irregular-grid → L/Z-shape → fixed-grid, flagged
//!   `degraded: true`, before load sheds as `Backpressure`
//!   ([`manager::DegradePolicy`]).
//! - **Deterministic chaos.** A seeded fault injector ([`chaos`])
//!   exercises every persistence boundary with I/O errors, torn writes,
//!   and simulated kills — replayable byte for byte from its seed, and
//!   enabled only by `--chaos` or the test API.
//!
//! Everything below the socket layer is clock-free: wall time lives only
//! in [`server`] (timeouts) and [`client`] (retry backoff), which keeps
//! the evaluation path inside the workspace's determinism lint scope.
//!
//! See DESIGN.md §3e for the architecture and protocol grammar.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod client;
pub mod delta;
pub mod frame;
pub mod manager;
pub mod protocol;
pub mod server;
pub mod session;
pub mod store;

pub use cache::SharedScoreCache;
pub use chaos::{Chaos, ChaosConfig};
pub use client::{Client, ClientError};
pub use delta::{DeltaSession, DeltaSessionState, DELTA_MODEL_NAME};
pub use frame::{FrameCodec, BINARY_MAGIC};
pub use manager::{DegradePolicy, SessionManager};
pub use protocol::{
    ErrorKind, EvalResult, FloorplanState, Limits, Request, RequestOp, Response, ResponsePayload,
    SessionConfig, SessionStat, PROTOCOL_VERSION,
};
pub use server::{serve, ServerHandle, ServerOptions, Transport};
pub use store::{KillSwitch, SnapshotStore, StoreError};
