//! `irgrid-serve` — the daemon binary.
//!
//! ```text
//! irgrid-serve --socket /tmp/irgrid.sock --state-dir ./serve-state
//! irgrid-serve --tcp 127.0.0.1:9917 --workers 4
//! irgrid-serve --socket /tmp/irgrid.sock --chaos 42        # fault injection (testing)
//! ```
//!
//! Flags:
//!
//! | flag                    | default              | meaning                             |
//! |-------------------------|----------------------|-------------------------------------|
//! | `--socket PATH`         | `./irgrid-serve.sock`| listen on a Unix socket             |
//! | `--tcp ADDR`            | —                    | listen on TCP instead (`host:port`) |
//! | `--state-dir DIR`       | `./irgrid-serve-state` | session checkpoint directory      |
//! | `--workers N`           | `1`                  | pool threads per full-fidelity batch|
//! | `--request-timeout-ms N`| `30000`              | per-request deadline; `0` disables  |
//! | `--chaos SEED`          | off                  | seeded fault injection (testing)    |
//! | `--lz-at N`             | `9`                  | degrade to L/Z at this load         |
//! | `--fixed-at N`          | `17`                 | degrade to fixed grid at this load  |
//! | `--reject-at N`         | `33`                 | refuse (`Backpressure`) at this load|
//! | `--max-clients N`       | `64`                 | concurrent connection cap           |
//!
//! The process exits 0 after a client sends `Shutdown`, and 1 if the
//! chaos kill switch fires (simulated crash — restart to recover).

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration; // irgrid-lint: allow(D1): CLI timeout flag, transport-layer wall-clock

use irgrid_serve::{
    serve, Chaos, DegradePolicy, KillSwitch, Limits, ServerOptions, SessionManager, SnapshotStore,
    Transport,
};

fn die(message: &str) -> ExitCode {
    eprintln!("irgrid-serve: {message}");
    eprintln!("usage: irgrid-serve [--socket PATH | --tcp ADDR] [--state-dir DIR] [--workers N]");
    eprintln!("                    [--request-timeout-ms N] [--chaos SEED]");
    eprintln!("                    [--lz-at N] [--fixed-at N] [--reject-at N] [--max-clients N]");
    ExitCode::from(2)
}

struct Flags {
    socket: PathBuf,
    tcp: Option<String>,
    state_dir: PathBuf,
    workers: usize,
    request_timeout_ms: u64,
    chaos_seed: Option<u64>,
    policy: DegradePolicy,
    max_clients: usize,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        socket: PathBuf::from("./irgrid-serve.sock"),
        tcp: None,
        state_dir: PathBuf::from("./irgrid-serve-state"),
        workers: 1,
        request_timeout_ms: 30_000,
        chaos_seed: None,
        policy: DegradePolicy::default(),
        max_clients: Limits::default().max_clients,
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            iter.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--socket" => flags.socket = PathBuf::from(value("--socket")?),
            "--tcp" => flags.tcp = Some(value("--tcp")?.clone()),
            "--state-dir" => flags.state_dir = PathBuf::from(value("--state-dir")?),
            "--workers" => {
                flags.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_owned())?;
            }
            "--request-timeout-ms" => {
                flags.request_timeout_ms = value("--request-timeout-ms")?
                    .parse()
                    .map_err(|_| "--request-timeout-ms needs an integer".to_owned())?;
            }
            "--chaos" => {
                let seed = value("--chaos")?
                    .parse()
                    .map_err(|_| "--chaos needs a u64 seed".to_owned())?;
                flags.chaos_seed = Some(seed);
            }
            "--lz-at" => {
                flags.policy.lz_at = value("--lz-at")?
                    .parse()
                    .map_err(|_| "--lz-at needs an integer".to_owned())?;
            }
            "--fixed-at" => {
                flags.policy.fixed_at = value("--fixed-at")?
                    .parse()
                    .map_err(|_| "--fixed-at needs an integer".to_owned())?;
            }
            "--reject-at" => {
                flags.policy.reject_at = value("--reject-at")?
                    .parse()
                    .map_err(|_| "--reject-at needs an integer".to_owned())?;
            }
            "--max-clients" => {
                flags.max_clients = value("--max-clients")?
                    .parse()
                    .map_err(|_| "--max-clients needs an integer".to_owned())?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(flags)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = match parse_flags(&args) {
        Ok(flags) => flags,
        Err(message) => return die(&message),
    };

    let chaos = match flags.chaos_seed {
        Some(seed) => {
            eprintln!("irgrid-serve: CHAOS MODE, seed {seed} — injected faults are intentional");
            Chaos::seeded(seed)
        }
        None => Chaos::off(),
    };
    let kill = KillSwitch::new();
    let store = match SnapshotStore::open(&flags.state_dir, chaos, kill.clone()) {
        Ok(store) => store,
        Err(err) => return die(&format!("cannot open state dir: {err}")),
    };

    let limits = Limits {
        max_clients: flags.max_clients,
        ..Limits::default()
    };
    let manager = Arc::new(SessionManager::new(
        store,
        limits,
        flags.policy,
        flags.workers,
    ));
    match manager.resumable() {
        Ok(ids) if !ids.is_empty() => {
            eprintln!(
                "irgrid-serve: {} session checkpoint(s) on disk: {}",
                ids.len(),
                ids.join(", ")
            );
        }
        Ok(_) => {}
        Err(err) => return die(&format!("cannot list state dir: {err}")),
    }

    let transport = match &flags.tcp {
        Some(address) => Transport::Tcp(address.clone()),
        None => Transport::Unix(flags.socket.clone()),
    };
    let options = ServerOptions {
        request_timeout: match flags.request_timeout_ms {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        },
    };

    let handle = match serve(transport, Arc::clone(&manager), options) {
        Ok(handle) => handle,
        Err(err) => return die(&format!("cannot bind: {err}")),
    };
    match handle.transport() {
        Transport::Unix(path) => eprintln!("irgrid-serve: listening on {}", path.display()),
        Transport::Tcp(address) => eprintln!("irgrid-serve: listening on tcp {address}"),
    }

    handle.join();
    if kill.is_tripped() {
        eprintln!("irgrid-serve: chaos kill switch tripped; restart to recover sessions");
        return ExitCode::from(1);
    }
    eprintln!("irgrid-serve: clean shutdown");
    ExitCode::SUCCESS
}
