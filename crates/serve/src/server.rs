//! The socket front end: accept loop, codec negotiation, and connection
//! threads.
//!
//! This module is the daemon's *only* wall-clock boundary. Socket read
//! timeouts and per-request deadlines are chosen here and handed to the
//! [`SessionManager`] as an opaque [`RunControl`]; everything below this
//! layer is clock-free and therefore deterministic.
//!
//! Frames are read through the shared bounded reader in
//! [`frame`](crate::frame) — the same code path the client uses — so the
//! frame limit is enforced before buffering on both ends. Each
//! connection starts in JSONL framing and may switch to length-prefixed
//! binary frames by sending [`BINARY_MAGIC`](crate::frame::BINARY_MAGIC)
//! as its first bytes; the choice is per-connection and permanent.
//!
//! Connections are one thread each, bounded by
//! [`Limits::max_clients`](crate::protocol::Limits): the accept loop
//! counts live connections and answers excess connects with a single
//! `Backpressure` frame before closing — explicit refusal, never an
//! unbounded accept queue.

use std::io::{BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration; // irgrid-lint: allow(D1): transport layer owns all socket timeouts

use irgrid_anneal::RunControl;

use crate::frame::{
    is_blank, negotiate, parse_request_payload, read_frame, recover_payload_id, response_frame,
    FrameCodec, FrameReadError,
};
use crate::manager::SessionManager;
use crate::protocol::{ErrorKind, Response, ResponsePayload};

/// How long a connection thread blocks on a read before re-checking the
/// shutdown flag.
const POLL_READ: Duration = Duration::from_millis(50);

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    /// A Unix-domain socket at this path (the default).
    Unix(PathBuf),
    /// A TCP socket (fallback for hosts without Unix sockets), e.g.
    /// `127.0.0.1:9917`.
    Tcp(String),
}

/// Server tuning that lives above the manager: per-request deadline.
#[derive(Debug, Clone, Copy)]
pub struct ServerOptions {
    /// Wall-clock budget per request; `None` means no deadline.
    pub request_timeout: Option<Duration>,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            request_timeout: Some(Duration::from_secs(30)),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn set_read_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(Some(timeout)),
            Stream::Tcp(s) => s.set_read_timeout(Some(timeout)),
        }
    }

    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A running daemon; dropping the handle does **not** stop it — call
/// [`ServerHandle::join`] after a `Shutdown` request (or
/// [`SessionManager::request_shutdown`]).
pub struct ServerHandle {
    manager: Arc<SessionManager>,
    accept_thread: Option<thread::JoinHandle<()>>,
    transport: Transport,
}

impl ServerHandle {
    /// The shared manager (tests use it to trip shutdown directly).
    #[must_use]
    pub fn manager(&self) -> &Arc<SessionManager> {
        &self.manager
    }

    /// Where the daemon is listening.
    #[must_use]
    pub fn transport(&self) -> &Transport {
        &self.transport
    }

    /// Waits for the accept loop (and so all connection threads it
    /// spawned and joined) to finish. Call after requesting shutdown.
    pub fn join(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        if let Transport::Unix(path) = &self.transport {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Binds the transport and spawns the accept loop.
///
/// # Errors
///
/// Returns the bind error (address in use, bad path, ...).
pub fn serve(
    transport: Transport,
    manager: Arc<SessionManager>,
    options: ServerOptions,
) -> std::io::Result<ServerHandle> {
    let listener = match &transport {
        Transport::Unix(path) => {
            remove_stale_socket(path)?;
            Listener::Unix(UnixListener::bind(path)?)
        }
        Transport::Tcp(address) => Listener::Tcp(TcpListener::bind(address.as_str())?),
    };
    // Non-blocking accept so the loop can poll the shutdown flag.
    match &listener {
        Listener::Unix(l) => l.set_nonblocking(true)?,
        Listener::Tcp(l) => l.set_nonblocking(true)?,
    }
    let bound = match (&transport, &listener) {
        (Transport::Tcp(_), Listener::Tcp(l)) => Transport::Tcp(l.local_addr()?.to_string()),
        _ => transport.clone(),
    };

    let accept_manager = Arc::clone(&manager);
    let accept_thread = thread::Builder::new()
        .name("irgrid-serve-accept".to_owned())
        .spawn(move || accept_loop(&listener, &accept_manager, options))?;

    Ok(ServerHandle {
        manager,
        accept_thread: Some(accept_thread),
        transport: bound,
    })
}

/// Unlinks a leftover socket file only if nothing is listening on it.
fn remove_stale_socket(path: &Path) -> std::io::Result<()> {
    if !path.exists() {
        return Ok(());
    }
    if UnixStream::connect(path).is_ok() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::AddrInUse,
            format!("`{}` already has a live daemon", path.display()),
        ));
    }
    std::fs::remove_file(path)
}

fn accept_loop(listener: &Listener, manager: &Arc<SessionManager>, options: ServerOptions) {
    let live = Arc::new(AtomicUsize::new(0));
    let mut connection_threads = Vec::new();
    loop {
        if manager.shutting_down() {
            break;
        }
        let accepted = match listener {
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        };
        let stream = match accepted {
            Ok(stream) => stream,
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(POLL_READ);
                continue;
            }
            Err(_) => continue,
        };

        if live.load(Ordering::Acquire) >= manager.limits().max_clients {
            refuse(stream);
            continue;
        }

        live.fetch_add(1, Ordering::AcqRel);
        let thread_live = Arc::clone(&live);
        let manager = Arc::clone(manager);
        let spawned = thread::Builder::new()
            .name("irgrid-serve-conn".to_owned())
            .spawn(move || {
                connection_loop(stream, &manager, options);
                thread_live.fetch_sub(1, Ordering::AcqRel);
            });
        match spawned {
            Ok(handle) => connection_threads.push(handle),
            Err(_) => {
                live.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }
    for handle in connection_threads {
        let _ = handle.join();
    }
}

/// Answers an over-limit connect with one Backpressure frame and closes.
/// Refusal happens before codec negotiation, so it is always JSONL — a
/// binary client sees a short unparseable read and treats it as a
/// transport failure, which its retry loop already handles.
fn refuse(mut stream: Stream) {
    let response = Response::error(
        "",
        ErrorKind::Backpressure,
        "client limit reached; retry later",
        true,
    );
    let _ = stream.write_all(&response_frame(FrameCodec::Jsonl, &response));
}

fn connection_loop(stream: Stream, manager: &Arc<SessionManager>, options: ServerOptions) {
    if stream.set_read_timeout(POLL_READ).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    let max_frame = manager.limits().max_frame_bytes;
    let mut keep_waiting = || !manager.shutting_down();

    // A connection's very first bytes pick its framing; a client may
    // legitimately connect and idle, so the wait polls shutdown like
    // every other read.
    let codec = match negotiate(&mut reader, &mut keep_waiting) {
        Ok(codec) => codec,
        Err(_) => return,
    };

    loop {
        let payload = match read_frame(&mut reader, codec, max_frame, &mut keep_waiting) {
            Ok(payload) => payload,
            Err(FrameReadError::TooLarge) => {
                // The reader already resynced past the oversized frame;
                // report and keep the connection.
                let response = Response::error(
                    "",
                    ErrorKind::FrameTooLarge,
                    format!("frame exceeds {max_frame} bytes"),
                    false,
                );
                if writer.write_all(&response_frame(codec, &response)).is_err() {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        if is_blank(&payload) {
            continue;
        }

        let response = match parse_request_payload(&payload) {
            Ok(request) => {
                let control = match options.request_timeout {
                    Some(limit) => RunControl::unlimited().with_time_limit(limit),
                    None => RunControl::unlimited(),
                };
                manager.handle(&request, &control)
            }
            Err(why) => Response::error(
                &recover_payload_id(&payload),
                ErrorKind::MalformedFrame,
                format!("unparseable request frame: {why}"),
                false,
            ),
        };
        let is_bye = matches!(response.payload, ResponsePayload::Bye);
        if writer.write_all(&response_frame(codec, &response)).is_err() {
            return;
        }
        let _ = writer.flush();
        if is_bye {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::Chaos;
    use crate::frame::{parse_response_payload, request_frame, BINARY_MAGIC};
    use crate::manager::DegradePolicy;
    use crate::protocol::{Limits, Request, RequestOp};
    use crate::store::{KillSwitch, SnapshotStore};
    use std::io::BufRead;

    fn temp_server(tag: &str, limits: Limits) -> ServerHandle {
        let dir = std::env::temp_dir().join(format!("irgrid_serve_srv_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::open(&dir, Chaos::off(), KillSwitch::new()).expect("store");
        let manager = Arc::new(SessionManager::new(
            store,
            limits,
            DegradePolicy::default(),
            1,
        ));
        serve(
            Transport::Tcp("127.0.0.1:0".to_owned()),
            manager,
            ServerOptions::default(),
        )
        .expect("serve")
    }

    fn connect(handle: &ServerHandle) -> TcpStream {
        let Transport::Tcp(address) = handle.transport() else {
            panic!("tcp expected");
        };
        TcpStream::connect(address.as_str()).expect("connect")
    }

    fn roundtrip(stream: &mut TcpStream, frame: &str) -> Response {
        stream.write_all(frame.as_bytes()).expect("send");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply");
        serde_json::from_str(line.trim_end()).expect("parse response")
    }

    fn simple(id: &str, op: RequestOp) -> Request {
        Request {
            id: id.into(),
            session: String::new(),
            op,
        }
    }

    fn binary_roundtrip(
        stream: &mut TcpStream,
        reader: &mut BufReader<TcpStream>,
        request: &Request,
    ) -> Response {
        stream
            .write_all(&request_frame(FrameCodec::Binary, request))
            .expect("send");
        let payload = read_frame(reader, FrameCodec::Binary, 1 << 20, &mut || true)
            .unwrap_or_else(|err| panic!("binary reply: {err:?}"));
        parse_response_payload(&payload).expect("parse response")
    }

    #[test]
    fn ping_shutdown_over_tcp() {
        let handle = temp_server("ping", Limits::default());
        let mut stream = connect(&handle);
        let pong = roundtrip(
            &mut stream,
            "{\"id\":\"p1\",\"session\":\"\",\"op\":\"Ping\"}\n",
        );
        assert!(pong.ok, "{pong:?}");
        let bye = roundtrip(
            &mut stream,
            "{\"id\":\"p2\",\"session\":\"\",\"op\":\"Shutdown\"}\n",
        );
        assert!(bye.ok);
        handle.join();
    }

    #[test]
    fn malformed_and_oversized_frames_get_typed_errors_not_disconnects() {
        let handle = temp_server(
            "badframes",
            Limits {
                max_frame_bytes: 256,
                ..Limits::default()
            },
        );
        let mut stream = connect(&handle);

        let bad = roundtrip(&mut stream, "{\"id\":\"b1\",\"nope\":true}\n");
        assert!(!bad.ok);
        assert_eq!(bad.id, "b1", "id recovered from the broken frame");
        assert!(matches!(
            bad.payload,
            ResponsePayload::Error {
                kind: ErrorKind::MalformedFrame,
                ..
            }
        ));

        let huge = format!("{{\"id\":\"b2\",\"pad\":\"{}\"}}\n", "x".repeat(512));
        let too_large = roundtrip(&mut stream, &huge);
        assert!(matches!(
            too_large.payload,
            ResponsePayload::Error {
                kind: ErrorKind::FrameTooLarge,
                ..
            }
        ));

        // The connection survived both: a normal request still works.
        let pong = roundtrip(
            &mut stream,
            "{\"id\":\"b3\",\"session\":\"\",\"op\":\"Ping\"}\n",
        );
        assert!(pong.ok);

        roundtrip(
            &mut stream,
            "{\"id\":\"b4\",\"session\":\"\",\"op\":\"Shutdown\"}\n",
        );
        handle.join();
    }

    #[test]
    fn binary_framing_negotiates_and_roundtrips() {
        let handle = temp_server("binary", Limits::default());
        let mut stream = connect(&handle);
        stream.write_all(&BINARY_MAGIC).expect("magic");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));

        let pong = binary_roundtrip(&mut stream, &mut reader, &simple("p1", RequestOp::Ping));
        assert!(pong.ok, "{pong:?}");
        assert!(matches!(pong.payload, ResponsePayload::Pong));

        // A full Open/Evaluate exchange over binary frames.
        let open = Request {
            id: "p2".into(),
            session: "alice".into(),
            op: RequestOp::Open {
                config: crate::protocol::SessionConfig::default_config(),
            },
        };
        let opened = binary_roundtrip(&mut stream, &mut reader, &open);
        assert!(opened.ok, "{opened:?}");

        let bye = binary_roundtrip(&mut stream, &mut reader, &simple("p3", RequestOp::Shutdown));
        assert!(bye.ok);
        handle.join();
    }

    #[test]
    fn oversized_binary_frames_get_typed_errors_not_disconnects() {
        let handle = temp_server(
            "binhuge",
            Limits {
                max_frame_bytes: 256,
                ..Limits::default()
            },
        );
        let mut stream = connect(&handle);
        stream.write_all(&BINARY_MAGIC).expect("magic");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));

        // A request whose binary frame exceeds the 256-byte limit.
        let fat = Request {
            id: "h1".into(),
            session: "x".repeat(400),
            op: RequestOp::Ping,
        };
        let frame = request_frame(FrameCodec::Binary, &fat);
        assert!(frame.len() > 256 + 4, "fixture must exceed the limit");
        stream.write_all(&frame).expect("send");
        let payload = read_frame(&mut reader, FrameCodec::Binary, 1 << 20, &mut || true)
            .unwrap_or_else(|err| panic!("reply: {err:?}"));
        let refusal = parse_response_payload(&payload).expect("parse");
        assert!(matches!(
            refusal.payload,
            ResponsePayload::Error {
                kind: ErrorKind::FrameTooLarge,
                ..
            }
        ));

        // The connection resynced: a normal request still works.
        let pong = binary_roundtrip(&mut stream, &mut reader, &simple("h2", RequestOp::Ping));
        assert!(pong.ok);
        binary_roundtrip(&mut stream, &mut reader, &simple("h3", RequestOp::Shutdown));
        handle.join();
    }

    #[test]
    fn client_limit_refuses_with_backpressure() {
        let handle = temp_server(
            "climit",
            Limits {
                max_clients: 1,
                ..Limits::default()
            },
        );
        // First connection occupies the only slot...
        let mut first = connect(&handle);
        let pong = roundtrip(
            &mut first,
            "{\"id\":\"c1\",\"session\":\"\",\"op\":\"Ping\"}\n",
        );
        assert!(pong.ok);
        // ...the second gets one Backpressure frame and EOF.
        let second = connect(&handle);
        let mut reader = BufReader::new(second);
        let mut line = String::new();
        reader.read_line(&mut line).expect("refusal frame");
        let refusal: Response = serde_json::from_str(line.trim_end()).expect("parse");
        assert!(matches!(
            refusal.payload,
            ResponsePayload::Error {
                kind: ErrorKind::Backpressure,
                retryable: true,
                ..
            }
        ));
        roundtrip(
            &mut first,
            "{\"id\":\"c2\",\"session\":\"\",\"op\":\"Shutdown\"}\n",
        );
        handle.join();
    }

    #[test]
    fn unix_socket_end_to_end() {
        let dir = std::env::temp_dir().join("irgrid_serve_srv_unix");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("dir");
        let socket = dir.join("daemon.sock");
        let store = SnapshotStore::open(&dir.join("state"), Chaos::off(), KillSwitch::new())
            .expect("store");
        let manager = Arc::new(SessionManager::new(
            store,
            Limits::default(),
            DegradePolicy::default(),
            1,
        ));
        let handle = serve(
            Transport::Unix(socket.clone()),
            manager,
            ServerOptions::default(),
        )
        .expect("serve");

        let mut stream = UnixStream::connect(&socket).expect("connect");
        stream
            .write_all(
                b"{\"id\":\"u1\",\"session\":\"alice\",\"op\":{\"Open\":{\"config\":{\"pitch_um\":30,\"budget\":0,\"cache_capacity\":8}}}}\n",
            )
            .expect("send");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply");
        let opened: Response = serde_json::from_str(line.trim_end()).expect("parse");
        assert!(opened.ok, "{opened:?}");

        stream
            .write_all(b"{\"id\":\"u2\",\"session\":\"\",\"op\":\"Shutdown\"}\n")
            .expect("send");
        line.clear();
        reader.read_line(&mut line).expect("reply");
        handle.join();
        assert!(!socket.exists(), "socket unlinked on join");
    }
}
