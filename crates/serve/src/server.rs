//! The socket front end: accept loop, bounded frame reader, and
//! connection threads.
//!
//! This module is the daemon's *only* wall-clock boundary. Socket read
//! timeouts and per-request deadlines are chosen here and handed to the
//! [`SessionManager`] as an opaque [`RunControl`]; everything below this
//! layer is clock-free and therefore deterministic.
//!
//! Connections are one thread each, bounded by
//! [`Limits::max_clients`](crate::protocol::Limits): the accept loop
//! counts live connections and answers excess connects with a single
//! `Backpressure` frame before closing — explicit refusal, never an
//! unbounded accept queue.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration; // irgrid-lint: allow(D1): transport layer owns all socket timeouts

use irgrid_anneal::RunControl;

use crate::manager::SessionManager;
use crate::protocol::{parse_request, recover_id, ErrorKind, Response};

/// How long a connection thread blocks on a read before re-checking the
/// shutdown flag.
const POLL_READ: Duration = Duration::from_millis(50);

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    /// A Unix-domain socket at this path (the default).
    Unix(PathBuf),
    /// A TCP socket (fallback for hosts without Unix sockets), e.g.
    /// `127.0.0.1:9917`.
    Tcp(String),
}

/// Server tuning that lives above the manager: per-request deadline.
#[derive(Debug, Clone, Copy)]
pub struct ServerOptions {
    /// Wall-clock budget per request; `None` means no deadline.
    pub request_timeout: Option<Duration>,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            request_timeout: Some(Duration::from_secs(30)),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn set_read_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(Some(timeout)),
            Stream::Tcp(s) => s.set_read_timeout(Some(timeout)),
        }
    }

    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A running daemon; dropping the handle does **not** stop it — call
/// [`ServerHandle::join`] after a `Shutdown` request (or
/// [`SessionManager::request_shutdown`]).
pub struct ServerHandle {
    manager: Arc<SessionManager>,
    accept_thread: Option<thread::JoinHandle<()>>,
    transport: Transport,
}

impl ServerHandle {
    /// The shared manager (tests use it to trip shutdown directly).
    #[must_use]
    pub fn manager(&self) -> &Arc<SessionManager> {
        &self.manager
    }

    /// Where the daemon is listening.
    #[must_use]
    pub fn transport(&self) -> &Transport {
        &self.transport
    }

    /// Waits for the accept loop (and so all connection threads it
    /// spawned and joined) to finish. Call after requesting shutdown.
    pub fn join(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        if let Transport::Unix(path) = &self.transport {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Binds the transport and spawns the accept loop.
///
/// # Errors
///
/// Returns the bind error (address in use, bad path, ...).
pub fn serve(
    transport: Transport,
    manager: Arc<SessionManager>,
    options: ServerOptions,
) -> std::io::Result<ServerHandle> {
    let listener = match &transport {
        Transport::Unix(path) => {
            remove_stale_socket(path)?;
            Listener::Unix(UnixListener::bind(path)?)
        }
        Transport::Tcp(address) => Listener::Tcp(TcpListener::bind(address.as_str())?),
    };
    // Non-blocking accept so the loop can poll the shutdown flag.
    match &listener {
        Listener::Unix(l) => l.set_nonblocking(true)?,
        Listener::Tcp(l) => l.set_nonblocking(true)?,
    }
    let bound = match (&transport, &listener) {
        (Transport::Tcp(_), Listener::Tcp(l)) => Transport::Tcp(l.local_addr()?.to_string()),
        _ => transport.clone(),
    };

    let accept_manager = Arc::clone(&manager);
    let accept_thread = thread::Builder::new()
        .name("irgrid-serve-accept".to_owned())
        .spawn(move || accept_loop(&listener, &accept_manager, options))?;

    Ok(ServerHandle {
        manager,
        accept_thread: Some(accept_thread),
        transport: bound,
    })
}

/// Unlinks a leftover socket file only if nothing is listening on it.
fn remove_stale_socket(path: &Path) -> std::io::Result<()> {
    if !path.exists() {
        return Ok(());
    }
    if UnixStream::connect(path).is_ok() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::AddrInUse,
            format!("`{}` already has a live daemon", path.display()),
        ));
    }
    std::fs::remove_file(path)
}

fn accept_loop(listener: &Listener, manager: &Arc<SessionManager>, options: ServerOptions) {
    let live = Arc::new(AtomicUsize::new(0));
    let mut connection_threads = Vec::new();
    loop {
        if manager.shutting_down() {
            break;
        }
        let accepted = match listener {
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        };
        let stream = match accepted {
            Ok(stream) => stream,
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(POLL_READ);
                continue;
            }
            Err(_) => continue,
        };

        if live.load(Ordering::Acquire) >= manager.limits().max_clients {
            refuse(stream);
            continue;
        }

        live.fetch_add(1, Ordering::AcqRel);
        let thread_live = Arc::clone(&live);
        let manager = Arc::clone(manager);
        let spawned = thread::Builder::new()
            .name("irgrid-serve-conn".to_owned())
            .spawn(move || {
                connection_loop(stream, &manager, options);
                thread_live.fetch_sub(1, Ordering::AcqRel);
            });
        match spawned {
            Ok(handle) => connection_threads.push(handle),
            Err(_) => {
                live.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }
    for handle in connection_threads {
        let _ = handle.join();
    }
}

/// Answers an over-limit connect with one Backpressure frame and closes.
fn refuse(mut stream: Stream) {
    let response = Response::error(
        "",
        ErrorKind::Backpressure,
        "client limit reached; retry later",
        true,
    );
    let _ = stream.write_all(response.to_frame().as_bytes());
}

/// Reads one `\n`-terminated frame of at most `max` bytes.
///
/// Returns `Ok(None)` on clean EOF, `Err(true)` for over-long frames
/// (reported, connection survives by skipping to the next newline),
/// `Err(false)` for hard transport errors (connection drops).
fn read_frame(
    reader: &mut BufReader<Stream>,
    max: usize,
    manager: &SessionManager,
) -> Result<Option<String>, bool> {
    let mut line = Vec::new();
    loop {
        let buffer = match reader.fill_buf() {
            Ok(buffer) => buffer,
            Err(err)
                if err.kind() == std::io::ErrorKind::WouldBlock
                    || err.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Read timeout: poll shutdown, keep waiting. A client may
                // legitimately idle between requests (chaos "stalled
                // client"); only shutdown ends the wait.
                if manager.shutting_down() {
                    return Ok(None);
                }
                continue;
            }
            Err(_) => return Err(false),
        };
        if buffer.is_empty() {
            // EOF. A partial unterminated line is a torn frame; drop it.
            return Ok(None);
        }
        let (chunk, terminated) = match buffer.iter().position(|&b| b == b'\n') {
            Some(newline) => (newline + 1, true),
            None => (buffer.len(), false),
        };
        if line.len() + chunk > max {
            // Consume to the newline (or all buffered) so the connection
            // can resync on the next frame.
            reader.consume(chunk);
            if terminated {
                return Err(true);
            }
            // Skip the rest of the oversized line.
            loop {
                let buffer = match reader.fill_buf() {
                    Ok(b) => b,
                    Err(err)
                        if err.kind() == std::io::ErrorKind::WouldBlock
                            || err.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        if manager.shutting_down() {
                            return Ok(None);
                        }
                        continue;
                    }
                    Err(_) => return Err(false),
                };
                if buffer.is_empty() {
                    return Ok(None);
                }
                match buffer.iter().position(|&b| b == b'\n') {
                    Some(newline) => {
                        reader.consume(newline + 1);
                        return Err(true);
                    }
                    None => {
                        let len = buffer.len();
                        reader.consume(len);
                    }
                }
            }
        }
        line.extend_from_slice(&buffer[..chunk]);
        reader.consume(chunk);
        if terminated {
            let text = String::from_utf8_lossy(&line).into_owned();
            return Ok(Some(text));
        }
    }
}

fn connection_loop(stream: Stream, manager: &Arc<SessionManager>, options: ServerOptions) {
    if stream.set_read_timeout(POLL_READ).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    let max_frame = manager.limits().max_frame_bytes;

    loop {
        let line = match read_frame(&mut reader, max_frame, manager) {
            Ok(Some(line)) => line,
            Ok(None) => return,
            Err(true) => {
                let response = Response::error(
                    "",
                    ErrorKind::FrameTooLarge,
                    format!("frame exceeds {max_frame} bytes"),
                    false,
                );
                if writer.write_all(response.to_frame().as_bytes()).is_err() {
                    return;
                }
                continue;
            }
            Err(false) => return,
        };
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() {
            continue;
        }

        let response = match parse_request(trimmed) {
            Ok(request) => {
                let control = match options.request_timeout {
                    Some(limit) => RunControl::unlimited().with_time_limit(limit),
                    None => RunControl::unlimited(),
                };
                manager.handle(&request, &control)
            }
            Err(why) => Response::error(
                &recover_id(trimmed),
                ErrorKind::MalformedFrame,
                format!("unparseable request frame: {why}"),
                false,
            ),
        };
        let is_bye = matches!(response.payload, crate::protocol::ResponsePayload::Bye);
        if writer.write_all(response.to_frame().as_bytes()).is_err() {
            return;
        }
        let _ = writer.flush();
        if is_bye {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::Chaos;
    use crate::manager::DegradePolicy;
    use crate::protocol::Limits;
    use crate::store::{KillSwitch, SnapshotStore};

    fn temp_server(tag: &str, limits: Limits) -> ServerHandle {
        let dir = std::env::temp_dir().join(format!("irgrid_serve_srv_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::open(&dir, Chaos::off(), KillSwitch::new()).expect("store");
        let manager = Arc::new(SessionManager::new(
            store,
            limits,
            DegradePolicy::default(),
            1,
        ));
        serve(
            Transport::Tcp("127.0.0.1:0".to_owned()),
            manager,
            ServerOptions::default(),
        )
        .expect("serve")
    }

    fn connect(handle: &ServerHandle) -> TcpStream {
        let Transport::Tcp(address) = handle.transport() else {
            panic!("tcp expected");
        };
        TcpStream::connect(address.as_str()).expect("connect")
    }

    fn roundtrip(stream: &mut TcpStream, frame: &str) -> Response {
        stream.write_all(frame.as_bytes()).expect("send");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply");
        serde_json::from_str(line.trim_end()).expect("parse response")
    }

    #[test]
    fn ping_shutdown_over_tcp() {
        let handle = temp_server("ping", Limits::default());
        let mut stream = connect(&handle);
        let pong = roundtrip(
            &mut stream,
            "{\"id\":\"p1\",\"session\":\"\",\"op\":\"Ping\"}\n",
        );
        assert!(pong.ok, "{pong:?}");
        let bye = roundtrip(
            &mut stream,
            "{\"id\":\"p2\",\"session\":\"\",\"op\":\"Shutdown\"}\n",
        );
        assert!(bye.ok);
        handle.join();
    }

    #[test]
    fn malformed_and_oversized_frames_get_typed_errors_not_disconnects() {
        let handle = temp_server(
            "badframes",
            Limits {
                max_frame_bytes: 256,
                ..Limits::default()
            },
        );
        let mut stream = connect(&handle);

        let bad = roundtrip(&mut stream, "{\"id\":\"b1\",\"nope\":true}\n");
        assert!(!bad.ok);
        assert_eq!(bad.id, "b1", "id recovered from the broken frame");
        assert!(matches!(
            bad.payload,
            crate::protocol::ResponsePayload::Error {
                kind: ErrorKind::MalformedFrame,
                ..
            }
        ));

        let huge = format!("{{\"id\":\"b2\",\"pad\":\"{}\"}}\n", "x".repeat(512));
        let too_large = roundtrip(&mut stream, &huge);
        assert!(matches!(
            too_large.payload,
            crate::protocol::ResponsePayload::Error {
                kind: ErrorKind::FrameTooLarge,
                ..
            }
        ));

        // The connection survived both: a normal request still works.
        let pong = roundtrip(
            &mut stream,
            "{\"id\":\"b3\",\"session\":\"\",\"op\":\"Ping\"}\n",
        );
        assert!(pong.ok);

        roundtrip(
            &mut stream,
            "{\"id\":\"b4\",\"session\":\"\",\"op\":\"Shutdown\"}\n",
        );
        handle.join();
    }

    #[test]
    fn client_limit_refuses_with_backpressure() {
        let handle = temp_server(
            "climit",
            Limits {
                max_clients: 1,
                ..Limits::default()
            },
        );
        // First connection occupies the only slot...
        let mut first = connect(&handle);
        let pong = roundtrip(
            &mut first,
            "{\"id\":\"c1\",\"session\":\"\",\"op\":\"Ping\"}\n",
        );
        assert!(pong.ok);
        // ...the second gets one Backpressure frame and EOF.
        let second = connect(&handle);
        let mut reader = BufReader::new(second);
        let mut line = String::new();
        reader.read_line(&mut line).expect("refusal frame");
        let refusal: Response = serde_json::from_str(line.trim_end()).expect("parse");
        assert!(matches!(
            refusal.payload,
            crate::protocol::ResponsePayload::Error {
                kind: ErrorKind::Backpressure,
                retryable: true,
                ..
            }
        ));
        roundtrip(
            &mut first,
            "{\"id\":\"c2\",\"session\":\"\",\"op\":\"Shutdown\"}\n",
        );
        handle.join();
    }

    #[test]
    fn unix_socket_end_to_end() {
        let dir = std::env::temp_dir().join("irgrid_serve_srv_unix");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("dir");
        let socket = dir.join("daemon.sock");
        let store = SnapshotStore::open(&dir.join("state"), Chaos::off(), KillSwitch::new())
            .expect("store");
        let manager = Arc::new(SessionManager::new(
            store,
            Limits::default(),
            DegradePolicy::default(),
            1,
        ));
        let handle = serve(
            Transport::Unix(socket.clone()),
            manager,
            ServerOptions::default(),
        )
        .expect("serve");

        let mut stream = UnixStream::connect(&socket).expect("connect");
        stream
            .write_all(
                b"{\"id\":\"u1\",\"session\":\"alice\",\"op\":{\"Open\":{\"config\":{\"pitch_um\":30,\"budget\":0,\"cache_capacity\":8}}}}\n",
            )
            .expect("send");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply");
        let opened: Response = serde_json::from_str(line.trim_end()).expect("parse");
        assert!(opened.ok, "{opened:?}");

        stream
            .write_all(b"{\"id\":\"u2\",\"session\":\"\",\"op\":\"Shutdown\"}\n")
            .expect("send");
        line.clear();
        reader.read_line(&mut line).expect("reply");
        handle.join();
        assert!(!socket.exists(), "socket unlinked on join");
    }
}
