//! One client's retained evaluation session.
//!
//! A session pairs a small **persistent** state record ([`SessionState`],
//! snapshotted atomically after every mutation) with ephemeral runtime
//! machinery: the retained irregular-grid evaluator (scratch reused
//! across requests, the whole point of a session), the degradation-ladder
//! fallback models, and a handle to the manager-wide
//! [`SharedScoreCache`]. Everything that matters for crash recovery
//! lives in `SessionState`; everything else is reconstructed
//! deterministically from it, so a daemon restart resumes the session
//! bit-identically.
//!
//! # Mutation discipline
//!
//! [`Session::evaluate`] never mutates persistent state on a failed
//! request: budget checks happen before work, deadline aborts happen
//! before the commit, and the *caller* (the session manager) persists the
//! new state before releasing the response — rolling the in-memory record
//! back if persistence fails. A client therefore observes a success only
//! after the state that remembers it is durable, which is what makes
//! retries idempotent and recovery bit-identical.

use irgrid_anneal::RunControl;
use irgrid_core::{
    CongestionEvaluator, CongestionModel, FixedGridModel, IrregularGridModel, LzShapeModel,
    RetainedCongestion,
};
use irgrid_fleet::pool;
use irgrid_fleet::state_digest;
use irgrid_geom::{Point, Rect, Um};
use serde::{Deserialize, Serialize};

use crate::cache::{model_id, score_key, SharedScoreCache};
use crate::protocol::{ErrorKind, EvalResult, FloorplanState, SessionConfig, SessionStat};

/// Snapshot format version written by this library.
pub const SNAPSHOT_VERSION: u32 = 1;

/// One remembered `Evaluate` response, for idempotent retries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletedRecord {
    /// The client's request id.
    pub request_id: String,
    /// Digest of the request's state batch; a retry must match it.
    pub batch_digest: String,
    /// The recorded results, replayed verbatim.
    pub results: Vec<EvalResult>,
}

/// The persistent part of a session — everything crash recovery needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionState {
    /// Snapshot format version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The session id (redundant with the file name; cross-checked on
    /// load so a renamed or copied snapshot cannot impersonate another
    /// session).
    pub session_id: String,
    /// The fixed configuration from `Open`.
    pub config: SessionConfig,
    /// States evaluated over the session's lifetime.
    pub evals_done: u64,
    /// Idempotency ring, oldest first.
    pub completed: Vec<CompletedRecord>,
}

impl SessionState {
    /// Serializes to pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        // irgrid-lint: allow(P1): serializing a plain owned data struct cannot fail
        serde_json::to_string_pretty(self).expect("session snapshot serialization is infallible")
    }

    /// Parses a snapshot, validating version and id.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the text is torn/garbage,
    /// the version is foreign, or the embedded id does not match.
    pub fn from_json(text: &str, expect_id: &str) -> Result<SessionState, String> {
        let state: SessionState =
            serde_json::from_str(text).map_err(|err| format!("snapshot did not parse: {err}"))?;
        if state.version != SNAPSHOT_VERSION {
            return Err(format!(
                "snapshot version {} unsupported (expected {SNAPSHOT_VERSION})",
                state.version
            ));
        }
        if state.session_id != expect_id {
            return Err(format!(
                "snapshot names session `{}`, expected `{expect_id}`",
                state.session_id
            ));
        }
        if state.config.pitch_um <= 0 {
            return Err("snapshot config has a non-positive pitch".to_owned());
        }
        Ok(state)
    }
}

/// A rung of the graceful-degradation ladder, cheapest last.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeRung {
    /// Full fidelity: the paper's irregular-grid model (cached).
    Full,
    /// First fallback: the L/Z-shape model.
    Lz,
    /// Last resort: the uniform fixed-grid model.
    Fixed,
}

impl DegradeRung {
    /// The model name reported in [`EvalResult::model`].
    #[must_use]
    pub fn model_name(&self) -> &'static str {
        match self {
            DegradeRung::Full => "irregular",
            DegradeRung::Lz => "lz",
            DegradeRung::Fixed => "fixed",
        }
    }

    /// Whether this rung flags the response as degraded.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        !matches!(self, DegradeRung::Full)
    }
}

/// A failed evaluation, mapped to a protocol error by the manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalFailure {
    /// The protocol error class.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
    /// Whether resending the identical request can succeed.
    pub retryable: bool,
}

impl EvalFailure {
    pub(crate) fn new(kind: ErrorKind, message: impl Into<String>, retryable: bool) -> EvalFailure {
        EvalFailure {
            kind,
            message: message.into(),
            retryable,
        }
    }
}

/// A live session: persistent state plus retained runtime machinery.
#[derive(Debug)]
pub struct Session {
    /// The persistent record (the manager snapshots and rolls back this).
    pub state: SessionState,
    evaluator: CongestionEvaluator,
    model: IrregularGridModel,
    lz: LzShapeModel,
    fixed: FixedGridModel,
    /// Handle to the manager-wide score cache.
    cache: SharedScoreCache,
    /// Whether this session participates in the shared cache
    /// (`config.cache_capacity > 0`).
    cache_enabled: bool,
    /// Hits observed by *this* session (the shared counter aggregates
    /// all sessions).
    cache_hits: u64,
    /// The scoring-pipeline id this session caches under.
    cache_model: String,
    completed_ring: usize,
}

impl Session {
    /// Creates a fresh session for `config`, caching scores in `cache`.
    #[must_use]
    pub fn create(
        session_id: &str,
        config: SessionConfig,
        completed_ring: usize,
        cache: SharedScoreCache,
    ) -> Session {
        let state = SessionState {
            version: SNAPSHOT_VERSION,
            session_id: session_id.to_owned(),
            config,
            evals_done: 0,
            completed: Vec::new(),
        };
        Session::from_state(state, completed_ring, cache)
    }

    /// Rebuilds a session around recovered persistent state.
    #[must_use]
    pub fn from_state(
        state: SessionState,
        completed_ring: usize,
        cache: SharedScoreCache,
    ) -> Session {
        let pitch = Um(state.config.pitch_um.max(1));
        let model = IrregularGridModel::new(pitch);
        Session {
            evaluator: model.session(),
            model,
            lz: LzShapeModel::new(pitch),
            fixed: FixedGridModel::new(pitch),
            cache,
            cache_enabled: state.config.cache_capacity > 0,
            cache_hits: 0,
            cache_model: model_id("irregular", pitch.0),
            completed_ring: completed_ring.max(1),
            state,
        }
    }

    /// The budget control this session's config induces.
    #[must_use]
    pub fn budget_control(&self) -> RunControl {
        let control = RunControl::unlimited();
        if self.state.config.budget > 0 {
            control.with_move_budget(self.state.config.budget)
        } else {
            control
        }
    }

    /// Current counters.
    #[must_use]
    pub fn stat(&self) -> SessionStat {
        let budget = self.state.config.budget;
        SessionStat {
            evals_done: self.state.evals_done,
            budget_left: budget.saturating_sub(self.state.evals_done),
            cache_hits: self.cache_hits,
            completed: self.state.completed.len() as u64,
        }
    }

    /// The recorded response for `request_id`, if any.
    #[must_use]
    pub fn recorded(&self, request_id: &str) -> Option<&CompletedRecord> {
        self.state
            .completed
            .iter()
            .find(|record| record.request_id == request_id)
    }

    /// Scores a batch of states at the given rung.
    ///
    /// On success the session's `evals_done` advances and (at
    /// [`DegradeRung::Full`] only) the response is recorded for
    /// idempotent replay — the caller must persist the state before
    /// releasing the response, rolling back on failure. On error nothing
    /// is mutated except the (non-persistent, always-safe) score cache.
    ///
    /// # Errors
    ///
    /// [`EvalFailure`] with the protocol error class: budget exhaustion,
    /// invalid geometry, or a tripped per-request deadline.
    pub fn evaluate(
        &mut self,
        request_id: &str,
        batch_digest: &str,
        states: &[FloorplanState],
        rung: DegradeRung,
        request_control: &RunControl,
        workers: usize,
    ) -> Result<Vec<EvalResult>, EvalFailure> {
        let budget = self.budget_control();
        let asked = states.len() as u64;
        if asked > 0 && budget.budget_hit(self.state.evals_done + asked - 1) {
            return Err(EvalFailure::new(
                ErrorKind::BudgetExhausted,
                format!(
                    "budget {} cannot cover {asked} more evaluation(s) after {}",
                    self.state.config.budget, self.state.evals_done
                ),
                false,
            ));
        }

        // Validate geometry up front so a bad state fails the whole batch
        // before any work (keeps evals_done all-or-nothing per request).
        let mut geometries = Vec::with_capacity(states.len());
        for (index, state) in states.iter().enumerate() {
            let geometry = to_geometry(state).map_err(|why| {
                EvalFailure::new(
                    ErrorKind::InvalidRequest,
                    format!("state {index}: {why}"),
                    false,
                )
            })?;
            geometries.push(geometry);
        }

        let results = match rung {
            DegradeRung::Full => {
                self.evaluate_full(states, &geometries, request_control, workers)?
            }
            DegradeRung::Lz | DegradeRung::Fixed => {
                self.evaluate_degraded(states, &geometries, rung, request_control)?
            }
        };

        self.state.evals_done += asked;
        if rung == DegradeRung::Full {
            // Normalize `cached` before recording: whether a score came
            // from the (non-persistent, never-rolled-back) cache is
            // runtime observability, and letting it into the durable
            // record would make snapshot bytes depend on retry history.
            let recorded = results
                .iter()
                .map(|result| EvalResult {
                    cached: false,
                    ..result.clone()
                })
                .collect();
            self.state.completed.push(CompletedRecord {
                request_id: request_id.to_owned(),
                batch_digest: batch_digest.to_owned(),
                results: recorded,
            });
            while self.state.completed.len() > self.completed_ring {
                self.state.completed.remove(0);
            }
        }
        Ok(results)
    }

    /// Full-fidelity scoring: cache lookups, then the uncached remainder
    /// fanned over the deterministic worker pool (inline and retained
    /// when `workers <= 1`).
    fn evaluate_full(
        &mut self,
        states: &[FloorplanState],
        geometries: &[(Rect, Vec<(Point, Point)>)],
        request_control: &RunControl,
        workers: usize,
    ) -> Result<Vec<EvalResult>, EvalFailure> {
        let mut results: Vec<Option<EvalResult>> = Vec::with_capacity(states.len());
        let mut keys = Vec::with_capacity(states.len());
        let mut pending: Vec<usize> = Vec::new();
        for (index, state) in states.iter().enumerate() {
            let key = score_key(&self.cache_model, state);
            let hit = if self.cache_enabled {
                self.cache.get(&key)
            } else {
                None
            };
            match hit {
                Some(score) => {
                    self.cache_hits += 1;
                    results.push(Some(EvalResult {
                        digest: key.digest.clone(),
                        score,
                        model: DegradeRung::Full.model_name().to_owned(),
                        cached: true,
                    }));
                }
                None => {
                    results.push(Some(EvalResult {
                        digest: key.digest.clone(),
                        score: 0.0,
                        model: DegradeRung::Full.model_name().to_owned(),
                        cached: false,
                    }));
                    pending.push(index);
                }
            }
            keys.push(key);
        }

        if timed_out(request_control) {
            return Err(deadline_failure());
        }

        if pending.len() < 2 || workers <= 1 {
            // Inline path: the session's own retained evaluator.
            for &index in &pending {
                if timed_out(request_control) {
                    return Err(deadline_failure());
                }
                let (chip, segments) = &geometries[index];
                let score = self.evaluator.evaluate(chip, segments);
                set_score(&mut results, index, score);
            }
        } else {
            // Pool path: per-worker retained evaluators; outputs return in
            // job order, so scores land bit-identically to the inline path
            // (the evaluator's session contract guarantees score equality).
            let jobs: Vec<usize> = pending.clone();
            let model = &self.model;
            let scored: Vec<Option<(usize, f64)>> = pool::run_ordered(
                workers,
                jobs,
                |_| model.session(),
                |evaluator, _, index| {
                    if timed_out(request_control) {
                        return None;
                    }
                    let (chip, segments) = &geometries[index];
                    Some((index, evaluator.evaluate(chip, segments)))
                },
            );
            for slot in scored {
                let Some((index, score)) = slot else {
                    return Err(deadline_failure());
                };
                set_score(&mut results, index, score);
            }
        }

        let results: Vec<EvalResult> = results.into_iter().flatten().collect();
        if self.cache_enabled {
            for (result, key) in results.iter().zip(keys) {
                if !result.cached {
                    self.cache.put(key, result.score);
                }
            }
        }
        Ok(results)
    }

    /// Degraded scoring: always inline (the cheap models are the load
    /// valve, there is nothing to parallelize), never cached.
    fn evaluate_degraded(
        &mut self,
        states: &[FloorplanState],
        geometries: &[(Rect, Vec<(Point, Point)>)],
        rung: DegradeRung,
        request_control: &RunControl,
    ) -> Result<Vec<EvalResult>, EvalFailure> {
        let mut results = Vec::with_capacity(states.len());
        for (state, (chip, segments)) in states.iter().zip(geometries) {
            if timed_out(request_control) {
                return Err(deadline_failure());
            }
            let score = match rung {
                DegradeRung::Lz => self.lz.evaluate(chip, segments),
                _ => self.fixed.evaluate(chip, segments),
            };
            results.push(EvalResult {
                digest: state_digest(state),
                score,
                model: rung.model_name().to_owned(),
                cached: false,
            });
        }
        Ok(results)
    }
}

fn set_score(results: &mut [Option<EvalResult>], index: usize, score: f64) {
    if let Some(Some(result)) = results.get_mut(index) {
        result.score = score;
    }
}

pub(crate) fn timed_out(control: &RunControl) -> bool {
    control.deadline_hit() || control.cancel_hit()
}

pub(crate) fn deadline_failure() -> EvalFailure {
    EvalFailure::new(
        ErrorKind::Timeout,
        "per-request evaluation deadline passed mid-batch",
        true,
    )
}

/// Converts a wire state into model geometry, validating bounds.
pub(crate) fn to_geometry(state: &FloorplanState) -> Result<(Rect, Vec<(Point, Point)>), String> {
    let [width, height] = state.chip;
    if width <= 0 || height <= 0 {
        return Err(format!("chip extent {width}x{height} is not positive"));
    }
    let chip = Rect::from_origin_size(Point::ORIGIN, Um(width), Um(height));
    let mut segments = Vec::with_capacity(state.segments.len());
    for (index, &[x1, y1, x2, y2]) in state.segments.iter().enumerate() {
        for (axis, value, max) in [
            ("x", x1, width),
            ("y", y1, height),
            ("x", x2, width),
            ("y", y2, height),
        ] {
            if value < 0 || value > max {
                return Err(format!(
                    "segment {index}: {axis} coordinate {value} outside chip 0..={max}"
                ));
            }
        }
        segments.push((Point::new(Um(x1), Um(y1)), Point::new(Um(x2), Um(y2))));
    }
    Ok((chip, segments))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_states(count: usize) -> Vec<FloorplanState> {
        (0..count)
            .map(|k| {
                let k = k as i64;
                FloorplanState {
                    chip: [600, 600],
                    segments: vec![
                        [30 + k * 7, 30, 540, 540 - k * 5],
                        [30, 540, 540 - k * 3, 30],
                        [10, 10 + k, 590, 300],
                    ],
                }
            })
            .collect()
    }

    fn shared() -> SharedScoreCache {
        SharedScoreCache::new(256)
    }

    fn session() -> Session {
        Session::create("t", SessionConfig::default_config(), 8, shared())
    }

    #[test]
    fn full_evaluation_matches_the_stateless_model_bit_for_bit() {
        let mut session = session();
        let states = demo_states(3);
        let results = session
            .evaluate(
                "r1",
                "d1",
                &states,
                DegradeRung::Full,
                &RunControl::unlimited(),
                1,
            )
            .expect("evaluate");
        let model = IrregularGridModel::new(Um(30));
        for (state, result) in states.iter().zip(&results) {
            let (chip, segments) = to_geometry(state).expect("geometry");
            let expected = model.evaluate(&chip, &segments);
            assert_eq!(result.score.to_bits(), expected.to_bits());
            assert_eq!(result.model, "irregular");
            assert!(!result.cached);
        }
        assert_eq!(session.state.evals_done, 3);
    }

    #[test]
    fn pool_path_matches_inline_path_bit_for_bit() {
        let states = demo_states(6);
        let mut inline = session();
        let a = inline
            .evaluate(
                "r",
                "d",
                &states,
                DegradeRung::Full,
                &RunControl::unlimited(),
                1,
            )
            .expect("inline");
        let mut pooled = session();
        let b = pooled
            .evaluate(
                "r",
                "d",
                &states,
                DegradeRung::Full,
                &RunControl::unlimited(),
                4,
            )
            .expect("pooled");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.score.to_bits(), y.score.to_bits());
            assert_eq!(x.digest, y.digest);
        }
    }

    #[test]
    fn repeat_states_hit_the_cache_with_identical_scores() {
        let mut session = session();
        let states = demo_states(2);
        let first = session
            .evaluate(
                "r1",
                "d1",
                &states,
                DegradeRung::Full,
                &RunControl::unlimited(),
                1,
            )
            .expect("first");
        let second = session
            .evaluate(
                "r2",
                "d2",
                &states,
                DegradeRung::Full,
                &RunControl::unlimited(),
                1,
            )
            .expect("second");
        for (a, b) in first.iter().zip(&second) {
            assert!(!a.cached);
            assert!(b.cached);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        assert_eq!(session.stat().cache_hits, 2);
    }

    #[test]
    fn degraded_rungs_flag_and_skip_recording() {
        let mut session = session();
        let states = demo_states(1);
        for (rung, name) in [(DegradeRung::Lz, "lz"), (DegradeRung::Fixed, "fixed")] {
            let results = session
                .evaluate("r1", "d1", &states, rung, &RunControl::unlimited(), 1)
                .expect("evaluate");
            assert_eq!(results[0].model, name);
            assert!(rung.is_degraded());
        }
        // Degraded responses are not recorded for replay.
        assert!(session.recorded("r1").is_none());
        // But they do advance the (client-deterministic) eval counter.
        assert_eq!(session.state.evals_done, 2);
    }

    #[test]
    fn budget_rejects_whole_batches_without_partial_spend() {
        let config = SessionConfig {
            budget: 4,
            ..SessionConfig::default_config()
        };
        let mut session = Session::create("b", config, 8, shared());
        let states = demo_states(3);
        session
            .evaluate(
                "r1",
                "d1",
                &states,
                DegradeRung::Full,
                &RunControl::unlimited(),
                1,
            )
            .expect("first batch fits");
        let err = session
            .evaluate(
                "r2",
                "d2",
                &states,
                DegradeRung::Full,
                &RunControl::unlimited(),
                1,
            )
            .expect_err("second batch exceeds budget");
        assert_eq!(err.kind, ErrorKind::BudgetExhausted);
        assert!(!err.retryable);
        assert_eq!(session.state.evals_done, 3, "no partial spend");
        // A batch that exactly fits still passes.
        let one = demo_states(1);
        session
            .evaluate(
                "r3",
                "d3",
                &one,
                DegradeRung::Full,
                &RunControl::unlimited(),
                1,
            )
            .expect("exact fit");
        assert_eq!(session.stat().budget_left, 0);
    }

    #[test]
    fn invalid_geometry_is_rejected_atomically() {
        let mut session = session();
        let states = vec![
            demo_states(1).remove(0),
            FloorplanState {
                chip: [100, 100],
                segments: vec![[0, 0, 101, 50]],
            },
        ];
        let err = session
            .evaluate(
                "r1",
                "d1",
                &states,
                DegradeRung::Full,
                &RunControl::unlimited(),
                1,
            )
            .expect_err("out-of-chip coordinate");
        assert_eq!(err.kind, ErrorKind::InvalidRequest);
        assert_eq!(session.state.evals_done, 0);

        let err = to_geometry(&FloorplanState {
            chip: [0, 100],
            segments: vec![],
        })
        .expect_err("degenerate chip");
        assert!(err.contains("not positive"));
    }

    #[test]
    fn expired_deadline_aborts_before_mutation() {
        let mut session = session();
        let states = demo_states(2);
        let expired = RunControl::unlimited().with_time_limit(std::time::Duration::ZERO);
        let err = session
            .evaluate("r1", "d1", &states, DegradeRung::Full, &expired, 1)
            .expect_err("deadline already passed");
        assert_eq!(err.kind, ErrorKind::Timeout);
        assert!(err.retryable);
        assert_eq!(session.state.evals_done, 0);
        assert!(session.recorded("r1").is_none());
    }

    #[test]
    fn completed_ring_is_bounded_and_replayable() {
        let mut session = Session::create("r", SessionConfig::default_config(), 2, shared());
        for k in 0..4 {
            let states = demo_states(1);
            session
                .evaluate(
                    &format!("req-{k}"),
                    &format!("digest-{k}"),
                    &states,
                    DegradeRung::Full,
                    &RunControl::unlimited(),
                    1,
                )
                .expect("evaluate");
        }
        assert_eq!(session.state.completed.len(), 2);
        assert!(session.recorded("req-0").is_none(), "oldest evicted");
        let record = session.recorded("req-3").expect("newest kept");
        assert_eq!(record.batch_digest, "digest-3");
    }

    #[test]
    fn snapshot_roundtrip_and_validation() {
        let mut session = session();
        let states = demo_states(2);
        session
            .evaluate(
                "r1",
                "d1",
                &states,
                DegradeRung::Full,
                &RunControl::unlimited(),
                1,
            )
            .expect("evaluate");
        let json = session.state.to_json();
        let back = SessionState::from_json(&json, "t").expect("parse");
        assert_eq!(back, session.state);
        // Result scores survive bit-exactly.
        assert_eq!(
            back.completed[0].results[0].score.to_bits(),
            session.state.completed[0].results[0].score.to_bits()
        );

        assert!(SessionState::from_json(&json, "other").is_err(), "id check");
        assert!(SessionState::from_json("{torn", "t").is_err());
        let mut wrong = session.state.clone();
        wrong.version = 99;
        assert!(SessionState::from_json(&wrong.to_json(), "t").is_err());
    }

    #[test]
    fn resumed_session_continues_bit_identically() {
        let states = demo_states(3);
        // Uninterrupted reference: two batches in one lifetime.
        let mut reference = session();
        reference
            .evaluate(
                "r1",
                "d1",
                &states[..2],
                DegradeRung::Full,
                &RunControl::unlimited(),
                1,
            )
            .expect("batch 1");
        reference
            .evaluate(
                "r2",
                "d2",
                &states[2..],
                DegradeRung::Full,
                &RunControl::unlimited(),
                1,
            )
            .expect("batch 2");

        // Interrupted: batch 1, snapshot, "restart", batch 2.
        let mut first = session();
        first
            .evaluate(
                "r1",
                "d1",
                &states[..2],
                DegradeRung::Full,
                &RunControl::unlimited(),
                1,
            )
            .expect("batch 1");
        let snapshot = first.state.to_json();
        let recovered = SessionState::from_json(&snapshot, "t").expect("parse");
        let mut resumed = Session::from_state(recovered, 8, shared());
        resumed
            .evaluate(
                "r2",
                "d2",
                &states[2..],
                DegradeRung::Full,
                &RunControl::unlimited(),
                1,
            )
            .expect("batch 2");

        assert_eq!(resumed.state, reference.state, "recovered state diverged");
        assert_eq!(
            resumed.state.to_json(),
            reference.state.to_json(),
            "snapshots must be byte-identical"
        );
    }
}
