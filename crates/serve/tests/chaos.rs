//! Chaos suite: synthetic clients drive the daemon through injected
//! I/O errors, torn writes, and simulated kills, and the final state
//! must be **byte-identical** to an uninterrupted run.
//!
//! The core harness runs the same deterministic client scripts twice:
//!
//! 1. against a clean daemon (chaos off) — the reference run;
//! 2. against a chaotic daemon, restarting it (fresh process model: new
//!    kill switch, bumped chaos epoch, same state directory) every time
//!    an injected kill fires, with clients retrying per protocol.
//!
//! Afterwards every session snapshot in the chaotic state directory must
//! equal the reference snapshot byte for byte — zero lost sessions, zero
//! corrupted sessions, zero double-counted evaluations.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use irgrid_serve::{
    serve, Chaos, ChaosConfig, Client, ClientError, DegradePolicy, ErrorKind, FloorplanState,
    KillSwitch, Limits, Request, RequestOp, Response, ResponsePayload, ServerHandle, ServerOptions,
    SessionConfig, SessionManager, SnapshotStore, Transport,
};

const CLIENTS: usize = 4;
const STEPS: usize = 12;
const ATTEMPTS_PER_ROUND: u32 = 4;
const MAX_RESTARTS: usize = 200;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("irgrid_serve_chaos_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> SessionConfig {
    SessionConfig {
        pitch_um: 30,
        budget: 0,
        cache_capacity: 32,
    }
}

/// The deterministic geometry client `c` evaluates at script step `s`.
fn states_for(client: usize, step: usize) -> Vec<FloorplanState> {
    let (c, s) = (client as i64, step as i64);
    let count = 1 + (client + step) % 2;
    (0..count as i64)
        .map(|k| FloorplanState {
            chip: [700, 600],
            segments: vec![
                [20 + 13 * c + 7 * s + k, 15, 680 - 9 * s, 585 - 11 * c],
                [20, 585 - 7 * s, 680 - 5 * c - k, 15],
                [350, 10 + 3 * k, 350 + 17 * c, 590],
            ],
        })
        .collect()
}

/// One client's full request script, in order.
fn script_for(client: usize) -> Vec<Request> {
    let session = format!("client-{client}");
    let mut script = vec![Request {
        id: format!("c{client}-open"),
        session: session.clone(),
        op: RequestOp::Open { config: config() },
    }];
    for step in 0..STEPS {
        script.push(Request {
            id: format!("c{client}-eval-{step}"),
            session: session.clone(),
            op: RequestOp::Evaluate {
                states: states_for(client, step),
            },
        });
    }
    script
}

struct TestDaemon {
    handle: ServerHandle,
    kill: KillSwitch,
}

fn start_daemon(state_dir: &Path, chaos: Chaos, workers: usize) -> TestDaemon {
    let kill = KillSwitch::new();
    let store = SnapshotStore::open(state_dir, chaos, kill.clone()).expect("open store");
    let manager = Arc::new(SessionManager::new(
        store,
        Limits::default(),
        DegradePolicy::default(),
        workers,
    ));
    let handle = serve(
        Transport::Tcp("127.0.0.1:0".to_owned()),
        manager,
        ServerOptions::default(),
    )
    .expect("serve");
    TestDaemon { handle, kill }
}

fn stop_daemon(daemon: TestDaemon) {
    daemon.handle.manager().request_shutdown();
    daemon.handle.join();
}

fn snapshots(state_dir: &Path) -> BTreeMap<String, String> {
    let store = SnapshotStore::open(state_dir, Chaos::off(), KillSwitch::new()).expect("open");
    let mut map = BTreeMap::new();
    for id in store.list().expect("list") {
        let text = store.read(&id).expect("read").expect("snapshot exists");
        map.insert(id, text);
    }
    map
}

/// Runs every client script to completion against a clean daemon,
/// returning each response in order per client.
fn run_reference(state_dir: &Path) -> Vec<Vec<Response>> {
    let daemon = start_daemon(state_dir, Chaos::off(), 1);
    let mut transcripts = Vec::new();
    for client_index in 0..CLIENTS {
        let mut client = Client::new(daemon.handle.transport().clone());
        let mut responses = Vec::new();
        for request in script_for(client_index) {
            let response = client.call(&request, 3).expect("clean run never faults");
            assert!(response.ok, "clean run failed: {response:?}");
            responses.push(response);
        }
        transcripts.push(responses);
    }
    stop_daemon(daemon);
    transcripts
}

/// Drives every script against a chaotic daemon, restarting on kills.
/// Returns the first successful response per request id, plus the number
/// of restarts survived and injected faults drawn across all lifetimes.
fn run_chaotic(state_dir: &Path, seed: u64) -> (BTreeMap<String, Response>, usize, u64) {
    // An aggressive mix so a short scripted run reliably draws every
    // fault class (still deterministic: same seed, same decisions).
    let mix = ChaosConfig {
        io_error_ppm: 150_000,
        torn_ppm: 100_000,
        kill_ppm: 60_000,
    };
    let chaos_for = |epoch: u64| Chaos::with_config(seed, mix).with_epoch(epoch);
    let mut daemon = start_daemon(state_dir, chaos_for(0), 1);
    let mut clients: Vec<Client> = (0..CLIENTS)
        .map(|_| Client::new(daemon.handle.transport().clone()))
        .collect();
    let scripts: Vec<Vec<Request>> = (0..CLIENTS).map(script_for).collect();
    let mut positions = [0usize; CLIENTS];
    // Set after a daemon restart: the rebooted daemon only resumes a
    // session when the client re-sends `Open`.
    let mut needs_reopen = [false; CLIENTS];
    let mut outcomes: BTreeMap<String, Response> = BTreeMap::new();
    let mut restarts = 0usize;
    let mut injected_failures = 0usize;
    let mut injected_faults = 0u64;

    while positions
        .iter()
        .zip(&scripts)
        .any(|(&p, script)| p < script.len())
    {
        // Round-robin one request per client, retrying in place.
        for client_index in 0..CLIENTS {
            let position = positions[client_index];
            let Some(request) = scripts[client_index].get(position) else {
                continue;
            };
            if needs_reopen[client_index] && position > 0 {
                match clients[client_index].call(&scripts[client_index][0], ATTEMPTS_PER_ROUND) {
                    Ok(response) if response.ok => needs_reopen[client_index] = false,
                    Ok(response) => panic!("reopen refused: {response:?}"),
                    Err(ClientError::Transport(_) | ClientError::RetriesExhausted(_)) => {
                        injected_failures += 1;
                        continue;
                    }
                    Err(err) => panic!("protocol violation under chaos: {err}"),
                }
            }
            match clients[client_index].call(request, ATTEMPTS_PER_ROUND) {
                Ok(response) if response.ok => {
                    outcomes.insert(request.id.clone(), response);
                    positions[client_index] += 1;
                }
                Ok(response) => {
                    panic!("non-retryable failure in chaos run: {response:?}");
                }
                Err(ClientError::Transport(_) | ClientError::RetriesExhausted(_)) => {
                    injected_failures += 1;
                }
                Err(err) => panic!("protocol violation under chaos: {err}"),
            }
        }

        if daemon.kill.is_tripped() {
            // Simulated SIGKILL: tear the daemon down and "reboot" it
            // over the same state directory with a fresh kill switch and
            // the next chaos epoch.
            restarts += 1;
            assert!(
                restarts <= MAX_RESTARTS,
                "daemon not making progress after {restarts} restarts"
            );
            injected_faults += daemon.handle.manager().injected_faults();
            stop_daemon(daemon);
            daemon = start_daemon(state_dir, chaos_for(restarts as u64), 1);
            for client in &mut clients {
                client.disconnect();
            }
            let transport = daemon.handle.transport().clone();
            clients = (0..CLIENTS)
                .map(|_| Client::new(transport.clone()))
                .collect();
            needs_reopen = [true; CLIENTS];
        }
    }

    injected_faults += daemon.handle.manager().injected_faults();
    stop_daemon(daemon);
    let _ = injected_failures;
    (outcomes, restarts, injected_faults)
}

#[test]
fn chaotic_run_converges_to_the_uninterrupted_state_byte_for_byte() {
    let reference_dir = temp_dir("reference");
    let reference = run_reference(&reference_dir);
    let reference_snapshots = snapshots(&reference_dir);
    assert_eq!(
        reference_snapshots.len(),
        CLIENTS,
        "one snapshot per session"
    );

    // A seed that demonstrably injects faults (asserted below).
    let chaotic_dir = temp_dir("chaotic");
    let (outcomes, restarts, injected_faults) = run_chaotic(&chaotic_dir, 0xC0FFEE);
    let chaotic_snapshots = snapshots(&chaotic_dir);

    // The run must actually have been chaotic, or this test proves
    // nothing. Faults absorbed by client-side retries are invisible at
    // the harness, so count them at the store.
    assert!(
        injected_faults > 0,
        "chaos seed injected nothing; the suite is not exercising faults"
    );
    eprintln!("chaos run: {injected_faults} injected fault(s), {restarts} restart(s)");

    // Zero lost, zero extra, zero corrupted sessions...
    assert_eq!(
        chaotic_snapshots.keys().collect::<Vec<_>>(),
        reference_snapshots.keys().collect::<Vec<_>>()
    );
    // ...and every snapshot byte-identical to the uninterrupted run.
    for (id, reference_text) in &reference_snapshots {
        assert_eq!(
            &chaotic_snapshots[id], reference_text,
            "session `{id}` diverged from the uninterrupted run"
        );
    }

    // Every score the chaotic clients saw matches the reference run
    // bit for bit (replays included).
    for (client_index, responses) in reference.iter().enumerate() {
        for (request, reference_response) in script_for(client_index).iter().zip(responses) {
            let chaotic_response = &outcomes[&request.id];
            let (
                ResponsePayload::Evaluated { results: want },
                ResponsePayload::Evaluated { results: got },
            ) = (&reference_response.payload, &chaotic_response.payload)
            else {
                continue;
            };
            assert_eq!(want.len(), got.len());
            for (a, b) in want.iter().zip(got) {
                assert_eq!(a.digest, b.digest);
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "score diverged for {}",
                    request.id
                );
                assert_eq!(
                    a.model, b.model,
                    "chaos run must not leave degraded results"
                );
            }
        }
    }
}

#[test]
fn concurrent_chaotic_clients_lose_no_sessions() {
    // Real thread-per-client concurrency; io-error + torn faults only
    // (kills need the restart choreography covered above). Every client
    // retries until its script completes; afterwards every session must
    // be present, parseable, and fully counted.
    let dir = temp_dir("concurrent");
    let kill = KillSwitch::new();
    let chaos = Chaos::with_config(
        99,
        ChaosConfig {
            io_error_ppm: 120_000,
            torn_ppm: 80_000,
            kill_ppm: 0,
        },
    );
    let store = SnapshotStore::open(&dir, chaos, kill.clone()).expect("store");
    let manager = Arc::new(SessionManager::new(
        store,
        Limits::default(),
        DegradePolicy::default(),
        2,
    ));
    let handle = serve(
        Transport::Tcp("127.0.0.1:0".to_owned()),
        manager,
        ServerOptions::default(),
    )
    .expect("serve");

    let transport = handle.transport().clone();
    std::thread::scope(|scope| {
        for client_index in 0..8 {
            let transport = transport.clone();
            scope.spawn(move || {
                let mut client = Client::new(transport);
                for request in script_for(client_index) {
                    let response = client.call(&request, 64).expect("retries must converge");
                    assert!(response.ok, "{response:?}");
                }
            });
        }
    });
    handle.manager().request_shutdown();
    handle.join();
    assert!(!kill.is_tripped());

    let expected_evals: u64 = (0..8)
        .map(|c| {
            (0..STEPS)
                .map(|s| states_for(c, s).len() as u64)
                .sum::<u64>()
        })
        .sum();
    let recovered = snapshots(&dir);
    assert_eq!(recovered.len(), 8, "no session lost or corrupted");
    let mut total_evals = 0u64;
    for client_index in 0..8 {
        let id = format!("client-{client_index}");
        let text = &recovered[&id];
        let value: serde::Value = serde_json::from_str(text).expect("snapshot parses");
        let Some(serde::Value::Int(done)) = value.get("evals_done") else {
            panic!("snapshot for `{id}` has no evals_done: {text}");
        };
        total_evals += u64::try_from(*done).expect("non-negative");
    }
    assert_eq!(
        total_evals, expected_evals,
        "retries double-counted or dropped evaluations"
    );
}

#[test]
fn killed_daemon_resumes_sessions_bit_identically_after_restart() {
    // Focused kill-only scenario: run half a script, force a kill on the
    // next persist, restart, finish — and compare against one continuous
    // run in a separate directory.
    let continuous_dir = temp_dir("kill_continuous");
    {
        let daemon = start_daemon(&continuous_dir, Chaos::off(), 1);
        let mut client = Client::new(daemon.handle.transport().clone());
        for request in script_for(0) {
            assert!(client.call(&request, 3).expect("call").ok);
        }
        stop_daemon(daemon);
    }

    let interrupted_dir = temp_dir("kill_interrupted");
    let script = script_for(0);
    let half = script.len() / 2;
    {
        let daemon = start_daemon(&interrupted_dir, Chaos::off(), 1);
        let mut client = Client::new(daemon.handle.transport().clone());
        for request in &script[..half] {
            assert!(client.call(request, 3).expect("call").ok);
        }
        // Chaos kill on every write from here on: the very next evaluate
        // trips the kill switch mid-persist and is rolled back.
        let kill_all = Chaos::with_config(
            1,
            ChaosConfig {
                io_error_ppm: 0,
                torn_ppm: 0,
                kill_ppm: 1_000_000,
            },
        );
        let kill_store =
            SnapshotStore::open(&interrupted_dir, kill_all, daemon.kill.clone()).expect("store");
        let killed_manager = Arc::new(SessionManager::new(
            kill_store,
            Limits::default(),
            DegradePolicy::default(),
            1,
        ));
        // Resume the session in the doomed manager (reads only, no
        // persist), then evaluate: that persist draws the injected kill.
        let reopened = killed_manager.handle(&script[0], &irgrid_anneal::RunControl::unlimited());
        assert!(reopened.ok, "{reopened:?}");
        let refused = killed_manager.handle(&script[half], &irgrid_anneal::RunControl::unlimited());
        assert!(!refused.ok, "kill-injected persist must fail: {refused:?}");
        assert!(daemon.kill.is_tripped());
        stop_daemon(daemon);
    }
    // "Reboot" and run the remainder of the script, retries included.
    {
        let daemon = start_daemon(&interrupted_dir, Chaos::off(), 1);
        let mut client = Client::new(daemon.handle.transport().clone());
        // Re-open, then resend everything from the failed request on.
        assert!(client.call(&script[0], 3).expect("reopen").ok);
        for request in &script[half..] {
            assert!(client.call(request, 3).expect("call").ok);
        }
        stop_daemon(daemon);
    }

    let continuous = snapshots(&continuous_dir);
    let recovered = snapshots(&interrupted_dir);
    assert_eq!(
        recovered, continuous,
        "post-kill recovery diverged from the continuous run"
    );
    // No stale staging litter indistinguishable from a snapshot: the torn
    // tmp may exist, but it is ignored by list/read, which is what the
    // equality above proves. Belt and braces: the tmp never parses as a
    // complete snapshot.
    let tmp = interrupted_dir.join("client-0.session.tmp");
    if let Ok(text) = std::fs::read_to_string(&tmp) {
        assert!(
            serde_json::from_str::<serde::Value>(&text).is_err(),
            "torn staging file unexpectedly parses as complete JSON"
        );
    }
}

// ---------------------------------------------------------------------
// Delta-session chaos: the same byte-identity discipline for the
// move-shaped Propose/Commit/Undo pipeline. A delta session's snapshot
// carries the committed floorplan, the commit journal (sequence,
// digest, score, map fingerprint), and the commit idempotency ring —
// all of which must survive kills at the new `delta.commit` site and at
// the persist boundary, byte for byte.
// ---------------------------------------------------------------------

fn delta_session_name(client: usize) -> String {
    format!("delta-{client}")
}

fn delta_open(client: usize) -> Request {
    Request {
        id: format!("d{client}-open"),
        session: delta_session_name(client),
        op: RequestOp::OpenDelta { config: config() },
    }
}

/// The single move-candidate state client `c` proposes at step `s`.
fn delta_state_for(client: usize, step: usize) -> FloorplanState {
    states_for(client, step).remove(0)
}

/// Whether step `s` is a rejected move (propose → undo) or an accepted
/// one (propose → commit).
fn step_is_rejected(step: usize) -> bool {
    step % 3 == 2
}

/// How one attempt at a delta step (or reopen) ended.
enum StepOutcome {
    Done,
    /// Transient failure (transport, retries exhausted, lost pending):
    /// re-run the whole step — propose is pure, commit is idempotent.
    Retry,
    /// The daemon restarted and forgot the live session: re-send
    /// `OpenDelta` (which resumes and verifies the checkpoint) first.
    Reopen,
}

/// Runs one full delta step — propose, then commit or undo — recording
/// every score it sees. Request ids are stable per step, so a commit
/// whose reply was lost replays from the idempotency ring on re-send.
fn drive_delta_step(
    client: &mut Client,
    client_index: usize,
    step: usize,
    attempts: u32,
    scores: &mut BTreeMap<String, f64>,
) -> StepOutcome {
    let session = delta_session_name(client_index);
    let propose = Request {
        id: format!("d{client_index}-prop-{step}"),
        session: session.clone(),
        op: RequestOp::Propose {
            state: delta_state_for(client_index, step),
        },
    };
    let response = match client.call(&propose, attempts) {
        Ok(response) => response,
        Err(ClientError::Transport(_) | ClientError::RetriesExhausted(_)) => {
            return StepOutcome::Retry;
        }
        Err(err) => panic!("protocol violation under chaos: {err}"),
    };
    let digest = match &response.payload {
        ResponsePayload::Proposed { digest, score } => {
            scores.insert(propose.id.clone(), *score);
            digest.clone()
        }
        ResponsePayload::Error {
            kind: ErrorKind::UnknownSession,
            ..
        } => return StepOutcome::Reopen,
        other => panic!("non-retryable propose failure: {other:?}"),
    };

    let followup = if step_is_rejected(step) {
        Request {
            id: format!("d{client_index}-undo-{step}"),
            session,
            op: RequestOp::Undo,
        }
    } else {
        Request {
            id: format!("d{client_index}-commit-{step}"),
            session,
            op: RequestOp::Commit { digest },
        }
    };
    let response = match client.call(&followup, attempts) {
        Ok(response) => response,
        Err(ClientError::Transport(_) | ClientError::RetriesExhausted(_)) => {
            return StepOutcome::Retry;
        }
        Err(err) => panic!("protocol violation under chaos: {err}"),
    };
    match &response.payload {
        ResponsePayload::Committed { score, .. } | ResponsePayload::Undone { score } => {
            scores.insert(followup.id.clone(), *score);
            StepOutcome::Done
        }
        ResponsePayload::Error {
            kind: ErrorKind::UnknownSession,
            ..
        } => StepOutcome::Reopen,
        // The daemon restarted between propose and commit: the pending
        // proposal is volatile by design. Re-propose, then re-commit.
        ResponsePayload::Error {
            kind: ErrorKind::NoPendingProposal,
            ..
        } => StepOutcome::Retry,
        other => panic!("non-retryable {} failure: {other:?}", followup.id),
    }
}

/// Runs every delta client script to completion against a clean daemon.
fn run_delta_reference(state_dir: &Path) -> BTreeMap<String, f64> {
    let daemon = start_daemon(state_dir, Chaos::off(), 1);
    let mut scores = BTreeMap::new();
    for client_index in 0..CLIENTS {
        let mut client = Client::new(daemon.handle.transport().clone());
        let opened = client.call(&delta_open(client_index), 3).expect("open");
        assert!(opened.ok, "{opened:?}");
        for step in 0..STEPS {
            match drive_delta_step(&mut client, client_index, step, 3, &mut scores) {
                StepOutcome::Done => {}
                _ => panic!("clean delta run must not fault (client {client_index} step {step})"),
            }
        }
    }
    stop_daemon(daemon);
    scores
}

/// Drives every delta script against a chaotic daemon, restarting on
/// kills, with the full retry contract (reopen on `UnknownSession`,
/// re-propose on `NoPendingProposal`, resend on anything retryable).
fn run_delta_chaotic(state_dir: &Path, seed: u64) -> (BTreeMap<String, f64>, usize, u64) {
    let mix = ChaosConfig {
        io_error_ppm: 150_000,
        torn_ppm: 100_000,
        kill_ppm: 60_000,
    };
    let chaos_for = |epoch: u64| Chaos::with_config(seed, mix).with_epoch(epoch);
    let mut daemon = start_daemon(state_dir, chaos_for(0), 1);
    let mut clients: Vec<Client> = (0..CLIENTS)
        .map(|_| Client::new(daemon.handle.transport().clone()))
        .collect();
    let mut positions = [0usize; CLIENTS];
    let mut opened = [false; CLIENTS];
    let mut scores: BTreeMap<String, f64> = BTreeMap::new();
    let mut restarts = 0usize;
    let mut injected_faults = 0u64;

    while positions.iter().any(|&p| p < STEPS) {
        for client_index in 0..CLIENTS {
            if positions[client_index] >= STEPS {
                continue;
            }
            if !opened[client_index] {
                match clients[client_index].call(&delta_open(client_index), ATTEMPTS_PER_ROUND) {
                    Ok(response) if response.ok => opened[client_index] = true,
                    Ok(response) => panic!("delta reopen refused: {response:?}"),
                    Err(ClientError::Transport(_) | ClientError::RetriesExhausted(_)) => continue,
                    Err(err) => panic!("protocol violation under chaos: {err}"),
                }
            }
            match drive_delta_step(
                &mut clients[client_index],
                client_index,
                positions[client_index],
                ATTEMPTS_PER_ROUND,
                &mut scores,
            ) {
                StepOutcome::Done => positions[client_index] += 1,
                StepOutcome::Retry => {}
                StepOutcome::Reopen => opened[client_index] = false,
            }
        }

        if daemon.kill.is_tripped() {
            restarts += 1;
            assert!(
                restarts <= MAX_RESTARTS,
                "daemon not making progress after {restarts} restarts"
            );
            injected_faults += daemon.handle.manager().injected_faults();
            stop_daemon(daemon);
            daemon = start_daemon(state_dir, chaos_for(restarts as u64), 1);
            let transport = daemon.handle.transport().clone();
            clients = (0..CLIENTS)
                .map(|_| Client::new(transport.clone()))
                .collect();
            opened = [false; CLIENTS];
        }
    }

    injected_faults += daemon.handle.manager().injected_faults();
    stop_daemon(daemon);
    (scores, restarts, injected_faults)
}

#[test]
fn chaotic_delta_sessions_converge_to_the_uninterrupted_state_byte_for_byte() {
    let reference_dir = temp_dir("delta_reference");
    let reference = run_delta_reference(&reference_dir);
    let reference_snapshots = snapshots(&reference_dir);
    assert_eq!(reference_snapshots.len(), CLIENTS);

    let chaotic_dir = temp_dir("delta_chaotic");
    let (scores, restarts, injected_faults) = run_delta_chaotic(&chaotic_dir, 0x0DE17A);
    assert!(
        injected_faults > 0,
        "chaos seed injected nothing; the suite is not exercising faults"
    );
    eprintln!("delta chaos run: {injected_faults} injected fault(s), {restarts} restart(s)");

    // Committed maps, commit journals (digests, scores, map
    // fingerprints), and idempotency rings: all byte-identical.
    let chaotic_snapshots = snapshots(&chaotic_dir);
    assert_eq!(
        chaotic_snapshots.keys().collect::<Vec<_>>(),
        reference_snapshots.keys().collect::<Vec<_>>()
    );
    for (id, reference_text) in &reference_snapshots {
        assert_eq!(
            &chaotic_snapshots[id], reference_text,
            "delta session `{id}` diverged from the uninterrupted run"
        );
    }

    // Every propose/commit/undo score matches the clean run bit for bit.
    for (request_id, want) in &reference {
        let got = scores
            .get(request_id)
            .unwrap_or_else(|| panic!("chaotic run never completed {request_id}"));
        assert_eq!(
            want.to_bits(),
            got.to_bits(),
            "score diverged for {request_id}"
        );
    }
}

#[test]
fn killed_delta_daemon_recovers_committed_map_and_journal_bit_identically() {
    // The focused propose → kill → restart scenario, with the kill
    // injected deterministically at the dedicated `delta.commit` site
    // (after the commit is staged, before anything durable changes).
    let continuous_dir = temp_dir("delta_kill_continuous");
    let mut continuous_scores = BTreeMap::new();
    {
        let daemon = start_daemon(&continuous_dir, Chaos::off(), 1);
        let mut client = Client::new(daemon.handle.transport().clone());
        assert!(client.call(&delta_open(0), 3).expect("open").ok);
        for step in 0..STEPS {
            assert!(matches!(
                drive_delta_step(&mut client, 0, step, 3, &mut continuous_scores),
                StepOutcome::Done
            ));
        }
        stop_daemon(daemon);
    }

    let interrupted_dir = temp_dir("delta_kill_interrupted");
    let half = STEPS / 2;
    let mut recovered_scores = BTreeMap::new();
    {
        let daemon = start_daemon(&interrupted_dir, Chaos::off(), 1);
        let mut client = Client::new(daemon.handle.transport().clone());
        assert!(client.call(&delta_open(0), 3).expect("open").ok);
        for step in 0..half {
            assert!(matches!(
                drive_delta_step(&mut client, 0, step, 3, &mut recovered_scores),
                StepOutcome::Done
            ));
        }
        // A manager whose every chaos consultation draws a kill: the
        // propose succeeds (pure, no store traffic), and the commit dies
        // at the `delta.commit` site with nothing staged on disk.
        let kill_all = Chaos::with_config(
            2,
            ChaosConfig {
                io_error_ppm: 0,
                torn_ppm: 0,
                kill_ppm: 1_000_000,
            },
        );
        let kill_store =
            SnapshotStore::open(&interrupted_dir, kill_all, daemon.kill.clone()).expect("store");
        let killed_manager = Arc::new(SessionManager::new(
            kill_store,
            Limits::default(),
            DegradePolicy::default(),
            1,
        ));
        let control = irgrid_anneal::RunControl::unlimited();
        let reopened = killed_manager.handle(&delta_open(0), &control);
        assert!(reopened.ok, "{reopened:?}");
        let before = snapshots(&interrupted_dir);
        let propose = Request {
            id: format!("d0-prop-{half}"),
            session: delta_session_name(0),
            op: RequestOp::Propose {
                state: delta_state_for(0, half),
            },
        };
        let proposed = killed_manager.handle(&propose, &control);
        assert!(proposed.ok, "propose is pure, kill cannot touch it");
        let ResponsePayload::Proposed { digest, .. } = &proposed.payload else {
            panic!("payload {proposed:?}");
        };
        let commit = Request {
            id: format!("d0-commit-{half}"),
            session: delta_session_name(0),
            op: RequestOp::Commit {
                digest: digest.clone(),
            },
        };
        let refused = killed_manager.handle(&commit, &control);
        assert!(!refused.ok, "kill-injected commit must fail: {refused:?}");
        assert!(daemon.kill.is_tripped(), "delta.commit site must kill");
        assert_eq!(
            snapshots(&interrupted_dir),
            before,
            "the killed commit must leave the snapshot untouched"
        );
        stop_daemon(daemon);
    }
    // "Reboot" over the same state directory and finish the script. The
    // resume path rebuilds the evaluator, replays the committed map, and
    // verifies cost bits + map fingerprint before serving; the whole
    // interrupted step re-runs (the pending proposal was volatile).
    {
        let daemon = start_daemon(&interrupted_dir, Chaos::off(), 1);
        let mut client = Client::new(daemon.handle.transport().clone());
        assert!(client.call(&delta_open(0), 3).expect("reopen").ok);
        for step in half..STEPS {
            assert!(matches!(
                drive_delta_step(&mut client, 0, step, 3, &mut recovered_scores),
                StepOutcome::Done
            ));
        }
        stop_daemon(daemon);
    }

    assert_eq!(
        snapshots(&interrupted_dir),
        snapshots(&continuous_dir),
        "post-kill delta recovery diverged from the continuous run"
    );
    for (request_id, want) in &continuous_scores {
        assert_eq!(
            want.to_bits(),
            recovered_scores[request_id].to_bits(),
            "score diverged for {request_id}"
        );
    }
}

#[test]
fn degradation_ladder_flags_and_recovers_over_the_socket() {
    let dir = temp_dir("degrade");
    let store = SnapshotStore::open(&dir, Chaos::off(), KillSwitch::new()).expect("store");
    // lz_at 0: every evaluate degrades to the L/Z model.
    let manager = Arc::new(SessionManager::new(
        store.clone(),
        Limits::default(),
        DegradePolicy {
            lz_at: 0,
            fixed_at: 1_000,
            reject_at: 2_000,
        },
        1,
    ));
    let handle = serve(
        Transport::Tcp("127.0.0.1:0".to_owned()),
        manager,
        ServerOptions::default(),
    )
    .expect("serve");
    let mut client = Client::new(handle.transport().clone());
    let script = script_for(0);
    assert!(client.call(&script[0], 3).expect("open").ok);
    let degraded = client.call(&script[1], 3).expect("evaluate");
    assert!(degraded.ok);
    assert!(
        degraded.degraded,
        "must flag the downgraded model: {degraded:?}"
    );
    let ResponsePayload::Evaluated { results } = &degraded.payload else {
        panic!("payload {degraded:?}");
    };
    assert!(results.iter().all(|r| r.model == "lz"));
    handle.manager().request_shutdown();
    handle.join();

    // Healthy daemon over the same state dir: the same request id is NOT
    // replayed from the ring (degraded responses are never recorded) and
    // re-scores at full fidelity.
    let manager = Arc::new(SessionManager::new(
        store,
        Limits::default(),
        DegradePolicy::default(),
        1,
    ));
    let handle = serve(
        Transport::Tcp("127.0.0.1:0".to_owned()),
        manager,
        ServerOptions::default(),
    )
    .expect("serve");
    let mut client = Client::new(handle.transport().clone());
    assert!(client.call(&script[0], 3).expect("reopen").ok);
    let retried = client.call(&script[1], 3).expect("retry");
    assert!(
        retried.ok && !retried.degraded && !retried.replayed,
        "{retried:?}"
    );
    let ResponsePayload::Evaluated { results } = &retried.payload else {
        panic!("payload {retried:?}");
    };
    assert!(results.iter().all(|r| r.model == "irregular"));
    handle.manager().request_shutdown();
    handle.join();
}
