//! `irgrid` — the Irregular-Grid floorplan congestion model (DATE 2004)
//! and the complete floorplanning stack it is evaluated in.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`geom`] — micron geometry ([`irgrid_geom`]);
//! * [`netlist`] — circuits, benchmarks, MST decomposition
//!   ([`irgrid_netlist`]);
//! * [`floorplan`] — normalized Polish expressions, packing, pins,
//!   wirelength ([`irgrid_floorplan`]);
//! * [`anneal`] — the simulated-annealing engine ([`irgrid_anneal`]);
//! * [`fleet`] — deterministic multi-replica annealing orchestration
//!   ([`irgrid_fleet`]);
//! * [`congestion`] — the fixed-grid baseline and the Irregular-Grid
//!   model ([`irgrid_core`]);
//! * [`models`] — structural congestion predictors: pin density, net
//!   demand, Rent's rule, span demand ([`irgrid_models`]);
//! * [`serve`] — the fault-tolerant congestion-evaluation daemon
//!   ([`irgrid_serve`]);
//! * [`floorplanner`] — the composition: a routability-driven annealing
//!   floorplanner with cost `α·Area + β·Wire + γ·Congestion` (§5 of the
//!   paper).
//!
//! # Quickstart
//!
//! Optimize a benchmark floorplan with congestion in the loop and judge
//! the result with the paper's 10 µm fixed-grid judging model:
//!
//! ```
//! use irgrid::congestion::{CongestionModel, FixedGridModel, IrregularGridModel};
//! use irgrid::floorplanner::{FloorplanProblem, Weights};
//! use irgrid::anneal::{Annealer, Schedule};
//! use irgrid::geom::Um;
//! use irgrid::netlist::generator::CircuitGenerator;
//!
//! let circuit = CircuitGenerator::new("demo", 8, 20).seed(1).generate()?;
//! let problem = FloorplanProblem::new(
//!     &circuit,
//!     Um(30),
//!     Weights::balanced(),
//!     Some(IrregularGridModel::new(Um(30))),
//! );
//! let result = Annealer::new(Schedule::quick()).run(&problem, 7);
//! let eval = problem.evaluate(&result.best);
//! assert!(eval.placement.check_consistency().is_none());
//!
//! // Judge with the reference model.
//! let judging = FixedGridModel::judging();
//! let judged = judging.evaluate(&eval.placement.chip(), &eval.segments);
//! assert!(judged >= 0.0);
//! # Ok::<(), irgrid::netlist::BuildCircuitError>(())
//! ```
//!
//! # Incremental evaluation
//!
//! For long annealing runs, swap `run` for
//! [`run_delta`](anneal::Annealer::run_delta): the
//! [`FloorplanProblem`](floorplanner::FloorplanProblem) then re-evaluates
//! only the nets each move touched, and the Irregular-Grid model scores
//! them through its exact fixed-point delta session
//! ([`congestion::IrDeltaEvaluator`], wired in via
//! [`congestion::DeltaCongestion`]) — about twice the SA throughput on
//! the MCNC circuits, with results that are bit-identical to
//! from-scratch evaluation of every visited floorplan.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod floorplanner;
pub mod viz;

/// Micron geometry primitives (re-export of [`irgrid_geom`]).
pub mod geom {
    pub use irgrid_geom::*;
}

/// Circuits, benchmarks and MST decomposition (re-export of
/// [`irgrid_netlist`]).
pub mod netlist {
    pub use irgrid_netlist::*;
}

/// Slicing floorplans (re-export of [`irgrid_floorplan`]).
pub mod floorplan {
    pub use irgrid_floorplan::*;
}

/// Simulated annealing (re-export of [`irgrid_anneal`]).
pub mod anneal {
    pub use irgrid_anneal::*;
}

/// Deterministic multi-replica annealing orchestration (re-export of
/// [`irgrid_fleet`]): worker pools, temperature-ladder exchange, crash
/// recovery, and run telemetry. Pairs with
/// [`floorplanner::FloorplanSpec`] as the per-worker problem factory.
pub mod fleet {
    pub use irgrid_fleet::*;
}

/// Congestion models (re-export of [`irgrid_core`]).
pub mod congestion {
    pub use irgrid_core::*;
}

/// Structural congestion predictors — pin density, standard/weighted
/// net demand, Rent's-rule demand, span demand (re-export of
/// [`irgrid_models`]): the cheap baselines the `repro compare-all`
/// harness races against the probabilistic models and routed ground
/// truth.
pub mod models {
    pub use irgrid_models::*;
}

/// The capacitated global router used as validation ground truth
/// (re-export of [`irgrid_route`]).
pub mod route {
    pub use irgrid_route::*;
}

/// The fault-tolerant congestion-evaluation daemon and its JSONL client
/// (re-export of [`irgrid_serve`]): concurrent retained sessions over a
/// Unix or TCP socket with checkpointing, idempotent retries, graceful
/// degradation, and deterministic fault injection.
pub mod serve {
    pub use irgrid_serve::*;
}
