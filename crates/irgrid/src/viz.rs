//! SVG rendering of floorplans and congestion maps.
//!
//! Dependency-free string generation: the output is plain SVG 1.1 that
//! any browser renders. Intended for debugging floorplans, illustrating
//! results (the paper's figures 3–5 are exactly these pictures), and
//! embedding in reports.
//!
//! # Examples
//!
//! ```
//! use irgrid::floorplan::{pack, PolishExpr};
//! use irgrid::netlist::mcnc::McncCircuit;
//! use irgrid::viz;
//!
//! let circuit = McncCircuit::Hp.circuit();
//! let placement = pack(&PolishExpr::initial(circuit.modules().len()), &circuit);
//! let svg = viz::placement_svg(&circuit, &placement);
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.contains("</svg>"));
//! ```

use irgrid_core::{FixedCongestionMap, IrCongestionMap};
use irgrid_floorplan::Placement;
use irgrid_geom::Rect;
use irgrid_netlist::Circuit;

/// Maps a normalized intensity `t ∈ [0, 1]` to a white→yellow→red heat
/// color.
fn heat_color(t: f64) -> String {
    let t = t.clamp(0.0, 1.0);
    // white (1,1,1) -> yellow (1,0.85,0.2) -> red (0.85,0.1,0.1)
    let (r, g, b) = if t < 0.5 {
        let u = t * 2.0;
        (1.0, 1.0 - 0.15 * u, 1.0 - 0.8 * u)
    } else {
        let u = (t - 0.5) * 2.0;
        (1.0 - 0.15 * u, 0.85 - 0.75 * u, 0.2 - 0.1 * u)
    };
    format!(
        "#{:02x}{:02x}{:02x}",
        (r * 255.0) as u8,
        (g * 255.0) as u8,
        (b * 255.0) as u8
    )
}

fn svg_open(chip: &Rect, extra_height_frac: f64) -> String {
    let w = chip.width().as_f64();
    let h = chip.height().as_f64() * (1.0 + extra_height_frac);
    // SVG's y axis points down; flip so the chip's lower-left is at the
    // bottom-left of the image.
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 {w:.0} {h:.0}\" \
         width=\"800\" height=\"{:.0}\">\n\
         <g transform=\"translate(0 {:.0}) scale(1 -1)\">\n",
        800.0 * h / w,
        chip.height().as_f64(),
    )
}

const SVG_CLOSE: &str = "</g>\n</svg>\n";

fn rect_elem(r: &Rect, fill: &str, stroke: &str, stroke_width: f64) -> String {
    format!(
        "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"{fill}\" \
         stroke=\"{stroke}\" stroke-width=\"{stroke_width}\"/>\n",
        r.ll().x.0,
        r.ll().y.0,
        r.width().0,
        r.height().0,
    )
}

/// Renders module outlines and names over the chip.
#[must_use]
pub fn placement_svg(circuit: &Circuit, placement: &Placement) -> String {
    let chip = placement.chip();
    let mut svg = svg_open(&chip, 0.0);
    svg.push_str(&rect_elem(
        &chip,
        "#f8f8f8",
        "#333333",
        chip.width().as_f64() / 400.0,
    ));
    let label_size = chip.width().as_f64() / 40.0;
    for (id, module) in circuit.modules_with_ids() {
        let r = placement.module_rect(id);
        svg.push_str(&rect_elem(
            &r,
            "#dce8f5",
            "#3a6ea5",
            chip.width().as_f64() / 800.0,
        ));
        let c = r.center();
        // Text is drawn un-flipped (scale(1 -1) again) so it reads
        // upright.
        svg.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" transform=\"scale(1 -1)\" font-size=\"{label_size:.0}\" \
             text-anchor=\"middle\" fill=\"#20405c\">{}</text>\n",
            c.x.0,
            -c.y.0,
            module.name(),
        ));
    }
    svg.push_str(SVG_CLOSE);
    svg
}

/// Renders the Irregular-Grid congestion map as a heat overlay with the
/// cutting lines, over the module outlines.
#[must_use]
pub fn ir_congestion_svg(
    circuit: &Circuit,
    placement: &Placement,
    map: &IrCongestionMap,
) -> String {
    let chip = placement.chip();
    let mut svg = svg_open(&chip, 0.0);
    svg.push_str(&rect_elem(
        &chip,
        "#ffffff",
        "#333333",
        chip.width().as_f64() / 400.0,
    ));
    let peak = map.peak_density().max(f64::MIN_POSITIVE);
    for j in 0..map.ir_rows() {
        for i in 0..map.ir_cols() {
            let cell = map.cell_rect(i, j);
            let color = heat_color(map.density(i, j) / peak);
            svg.push_str(&rect_elem(
                &cell,
                &color,
                "#bbbbbb",
                chip.width().as_f64() / 2000.0,
            ));
        }
    }
    for (id, _) in circuit.modules_with_ids() {
        let r = placement.module_rect(id);
        svg.push_str(&rect_elem(
            &r,
            "none",
            "#3a6ea5",
            chip.width().as_f64() / 1000.0,
        ));
    }
    svg.push_str(SVG_CLOSE);
    svg
}

/// Renders a fixed-grid congestion map as a heat overlay.
#[must_use]
pub fn fixed_congestion_svg(
    circuit: &Circuit,
    placement: &Placement,
    map: &FixedCongestionMap,
) -> String {
    let chip = placement.chip();
    let mut svg = svg_open(&chip, 0.0);
    svg.push_str(&rect_elem(
        &chip,
        "#ffffff",
        "#333333",
        chip.width().as_f64() / 400.0,
    ));
    let peak = map.peak().max(f64::MIN_POSITIVE);
    let grid = map.grid();
    for y in 0..grid.rows() {
        for x in 0..grid.cols() {
            let v = map.value(x, y);
            if v <= 0.0 {
                continue; // keep empty cells white and the file small
            }
            let cell = grid.cell_rect(x, y);
            svg.push_str(&rect_elem(&cell, &heat_color(v / peak), "none", 0.0));
        }
    }
    for (id, _) in circuit.modules_with_ids() {
        let r = placement.module_rect(id);
        svg.push_str(&rect_elem(
            &r,
            "none",
            "#3a6ea5",
            chip.width().as_f64() / 1000.0,
        ));
    }
    svg.push_str(SVG_CLOSE);
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use irgrid_core::{FixedGridModel, IrregularGridModel};
    use irgrid_floorplan::{pack, two_pin_segments, PinPlacer, PolishExpr};
    use irgrid_geom::Um;
    use irgrid_netlist::mcnc::McncCircuit;

    fn setup() -> (
        Circuit,
        Placement,
        Vec<(irgrid_geom::Point, irgrid_geom::Point)>,
    ) {
        let circuit = McncCircuit::Hp.circuit();
        let placement = pack(&PolishExpr::initial(circuit.modules().len()), &circuit);
        let segments = two_pin_segments(&circuit, &placement, &PinPlacer::new(Um(30)));
        (circuit, placement, segments)
    }

    #[test]
    fn placement_svg_is_wellformed() {
        let (circuit, placement, _) = setup();
        let svg = placement_svg(&circuit, &placement);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        // One rect per module plus the chip frame.
        let rects = svg.matches("<rect").count();
        assert_eq!(rects, circuit.modules().len() + 1);
        // Every module name appears as a label.
        for m in circuit.modules() {
            assert!(svg.contains(m.name()), "missing label {}", m.name());
        }
        // Tags balance.
        assert_eq!(svg.matches("<g").count(), svg.matches("</g>").count());
    }

    #[test]
    fn ir_congestion_svg_covers_all_cells() {
        let (circuit, placement, segments) = setup();
        let map = IrregularGridModel::new(Um(30)).congestion_map(&placement.chip(), &segments);
        let svg = ir_congestion_svg(&circuit, &placement, &map);
        let rects = svg.matches("<rect").count();
        assert_eq!(rects, 1 + map.ir_cell_count() + circuit.modules().len());
    }

    #[test]
    fn fixed_congestion_svg_skips_empty_cells() {
        let (circuit, placement, segments) = setup();
        let map = FixedGridModel::new(Um(30)).congestion_map(&placement.chip(), &segments);
        let svg = fixed_congestion_svg(&circuit, &placement, &map);
        let nonzero = map.values().iter().filter(|&&v| v > 0.0).count();
        let rects = svg.matches("<rect").count();
        assert_eq!(rects, 1 + nonzero + circuit.modules().len());
    }

    #[test]
    fn heat_colors_are_valid_hex() {
        for t in [-0.5, 0.0, 0.25, 0.5, 0.75, 1.0, 2.0] {
            let c = heat_color(t);
            assert_eq!(c.len(), 7);
            assert!(c.starts_with('#'));
            assert!(i64::from_str_radix(&c[1..], 16).is_ok(), "{c}");
        }
        // Cool is lighter than hot.
        assert_eq!(heat_color(0.0), "#ffffff");
        assert_ne!(heat_color(1.0), heat_color(0.0));
    }
}
