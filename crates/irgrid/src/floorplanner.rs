//! The routability-driven annealing floorplanner (§5).
//!
//! The paper's experimental floorplanner minimizes
//! `α·Area + β·Wirelength + γ·Congestion` over normalized Polish
//! expressions by simulated annealing. [`FloorplanProblem`] wires the
//! workspace pieces together: packing, intersection-to-intersection pin
//! placement, MST decomposition, and a pluggable congestion model
//! ([`RetainedCongestion`]): the problem mints one retained evaluation
//! session at construction and reuses it for every cost call.
//!
//! Objective terms are normalized by random-walk averages sampled at
//! construction, so the weights express *relative* importance regardless
//! of circuit scale — without this, area (µm², ~10⁷) would drown
//! congestion (~10⁻¹).

use irgrid_anneal::{DeltaProblem, Problem};
use irgrid_core::{CongestionSession, DeltaCongestion, DeltaCongestionSession, RetainedCongestion};
use std::cell::RefCell;
use std::fmt;
use std::marker::PhantomData;

use irgrid_floorplan::{
    net_segments, segments_wirelength, two_pin_segments, Decomposition, FloorplanRepr, PinPlacer,
    Placement, PolishExpr,
};
use irgrid_geom::{Point, Rect, Um};
use irgrid_netlist::Circuit;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Objective weights `(α, β, γ)` for area, wirelength and congestion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weights {
    /// Area weight α.
    pub area: f64,
    /// Wirelength weight β.
    pub wire: f64,
    /// Congestion weight γ.
    pub congestion: f64,
}

impl Weights {
    /// Equal weight on all three objectives — used by the paper's
    /// Experiment 1 congestion-aware floorplanner.
    #[must_use]
    pub fn balanced() -> Weights {
        Weights {
            area: 1.0,
            wire: 1.0,
            congestion: 1.0,
        }
    }

    /// Area + wirelength only (γ = 0) — the paper's Experiment 1
    /// baseline floorplanner.
    #[must_use]
    pub fn area_wire() -> Weights {
        Weights {
            area: 1.0,
            wire: 1.0,
            congestion: 0.0,
        }
    }

    /// The calibrated routability mix used to reproduce Table 2:
    /// `(1, 1, 0.5)`. The paper does not state its α/β/γ; with the
    /// random-walk normalization used here, γ = 0.5 reproduces the
    /// paper's trade-off character (substantial judged-congestion
    /// reduction at a modest area/wire penalty) — see the calibration
    /// notes in EXPERIMENTS.md.
    #[must_use]
    pub fn routability() -> Weights {
        Weights {
            area: 1.0,
            wire: 1.0,
            congestion: 0.5,
        }
    }

    /// Congestion only — the paper's Experiments 2 and 3.
    #[must_use]
    pub fn congestion_only() -> Weights {
        Weights {
            area: 0.0,
            wire: 0.0,
            congestion: 1.0,
        }
    }
}

/// A typed error constructing a [`FloorplanProblem`].
///
/// Returned by [`FloorplanProblem::try_new`]; the panicking constructors
/// format these into their messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FloorplanError {
    /// The pin/congestion grid pitch is not positive.
    NonPositivePitch(Um),
    /// A weight is negative (or NaN).
    NegativeWeights(Weights),
    /// An objective came back non-finite during the calibration walk —
    /// annealing over it would silently corrupt costs.
    NonFiniteCalibration {
        /// Which objective misbehaved: `"area"`, `"wirelength"`, or
        /// `"congestion"`.
        objective: &'static str,
        /// The non-finite average observed.
        value: f64,
    },
}

impl fmt::Display for FloorplanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FloorplanError::NonPositivePitch(pitch) => {
                write!(f, "grid pitch must be positive, got {pitch}")
            }
            FloorplanError::NegativeWeights(weights) => {
                write!(f, "weights must be non-negative, got {weights:?}")
            }
            FloorplanError::NonFiniteCalibration { objective, value } => write!(
                f,
                "calibration walk produced a non-finite {objective} average ({value})"
            ),
        }
    }
}

impl std::error::Error for FloorplanError {}

/// A full evaluation of one floorplan candidate.
#[derive(Debug, Clone)]
pub struct FloorplanEval {
    /// The packed placement.
    pub placement: Placement,
    /// The MST-decomposed 2-pin segments (input to congestion models).
    pub segments: Vec<(Point, Point)>,
    /// Chip area in µm².
    pub area_um2: f64,
    /// Total wirelength in µm.
    pub wirelength_um: f64,
    /// The congestion model's score (0 when no model is attached).
    pub congestion: f64,
    /// The combined, normalized annealing cost.
    pub cost: f64,
}

/// The annealing problem: a circuit plus objective configuration.
///
/// See the [crate-level quickstart](crate) for an end-to-end example.
#[derive(Debug)]
pub struct FloorplanProblem<'c, M: RetainedCongestion, R = PolishExpr> {
    circuit: &'c Circuit,
    placer: PinPlacer,
    weights: Weights,
    congestion: Option<M>,
    /// The model's retained evaluation session, reused across every cost
    /// evaluation of the annealing loop so per-call scratch amortizes.
    /// Interior mutability because [`Problem::cost`] takes `&self`; the
    /// annealer is single-threaded, so borrows never overlap.
    session: Option<RefCell<M::Session>>,
    /// Retained state of the incremental ([`DeltaProblem`]) evaluation
    /// path; `None` until the first `rebase`. Boxed dynamically so the
    /// struct does not need `M: DeltaCongestion` — the delta path is
    /// opt-in per model.
    delta: RefCell<Option<DeltaState<R>>>,
    area_scale: f64,
    wire_scale: f64,
    congestion_scale: f64,
    repr: PhantomData<R>,
}

/// Committed state of the incremental evaluation: the placed floorplan
/// decomposed per net, plus the congestion model's retained delta session.
/// `propose` applies a move eagerly and records what it overwrote in
/// `journal`; `undo` plays the journal back.
#[derive(Debug)]
struct DeltaState<R> {
    session: Option<Box<dyn DeltaCongestionSession>>,
    /// Module index → indices of the nets that pin it.
    module_nets: Vec<Vec<usize>>,
    /// Per-net dedup marks, all false between proposals.
    net_mark: Vec<bool>,
    /// Per-net 2-pin segments of the committed (or pending) placement.
    net_segments: Vec<Vec<(Point, Point)>>,
    /// Per-net Manhattan wirelength; integer µm, so incremental updates
    /// are exact and order-independent.
    net_wire: Vec<Um>,
    wire_total: Um,
    placement: Placement,
    /// Flattened segments in net order — the same order
    /// [`two_pin_segments`] produces, so the session scores the same
    /// list a from-scratch evaluation would.
    flat: Vec<(Point, Point)>,
    journal: Option<Journal<R>>,
}

/// `(net index, segments, wirelength)` of one re-decomposed net.
type SavedNet = (usize, Vec<(Point, Point)>, Um);

/// Everything one `propose` overwrote, for exact rollback on `undo`.
#[derive(Debug)]
struct Journal<R> {
    prev_repr: R,
    prev_placement: Placement,
    /// One entry per net the move re-decomposed.
    prev_nets: Vec<SavedNet>,
    prev_wire_total: Um,
    session_proposed: bool,
}

impl<'c, M: RetainedCongestion> FloorplanProblem<'c, M, PolishExpr> {
    /// Creates a problem for `circuit` with pins and congestion evaluated
    /// at `pitch`, over normalized Polish expressions (the paper's
    /// slicing representation).
    ///
    /// Normalization scales are estimated from a short deterministic
    /// random walk (32 perturbations), so two problems over the same
    /// circuit have identical costs.
    ///
    /// # Panics
    ///
    /// Panics if `pitch` is not positive or a weight is negative.
    #[must_use]
    pub fn new(
        circuit: &'c Circuit,
        pitch: Um,
        weights: Weights,
        congestion: Option<M>,
    ) -> FloorplanProblem<'c, M, PolishExpr> {
        FloorplanProblem::with_representation(circuit, pitch, weights, congestion)
    }

    /// Like [`FloorplanProblem::new`], but returns a typed
    /// [`FloorplanError`] instead of panicking on invalid parameters or a
    /// non-finite calibration.
    pub fn try_new(
        circuit: &'c Circuit,
        pitch: Um,
        weights: Weights,
        congestion: Option<M>,
    ) -> Result<FloorplanProblem<'c, M, PolishExpr>, FloorplanError> {
        FloorplanProblem::try_with_representation(circuit, pitch, weights, congestion)
    }
}

impl<'c, M: RetainedCongestion, R: FloorplanRepr> FloorplanProblem<'c, M, R> {
    /// Creates a problem over an arbitrary floorplan representation
    /// (e.g. [`irgrid_floorplan::SequencePair`] for non-slicing
    /// floorplans).
    ///
    /// # Panics
    ///
    /// Panics if `pitch` is not positive or a weight is negative.
    #[must_use]
    pub fn with_representation(
        circuit: &'c Circuit,
        pitch: Um,
        weights: Weights,
        congestion: Option<M>,
    ) -> FloorplanProblem<'c, M, R> {
        match FloorplanProblem::try_with_representation(circuit, pitch, weights, congestion) {
            Ok(problem) => problem,
            // irgrid-lint: allow(P1): documented panicking wrapper; try_with_representation is the typed path
            Err(err) => panic!("{err}"),
        }
    }

    /// Like [`FloorplanProblem::with_representation`], but returns a typed
    /// [`FloorplanError`] instead of panicking on invalid parameters or a
    /// non-finite calibration.
    pub fn try_with_representation(
        circuit: &'c Circuit,
        pitch: Um,
        weights: Weights,
        congestion: Option<M>,
    ) -> Result<FloorplanProblem<'c, M, R>, FloorplanError> {
        if pitch <= Um::ZERO {
            return Err(FloorplanError::NonPositivePitch(pitch));
        }
        // `>= 0.0` also rejects NaN weights.
        if !(weights.area >= 0.0 && weights.wire >= 0.0 && weights.congestion >= 0.0) {
            return Err(FloorplanError::NegativeWeights(weights));
        }
        let session = congestion
            .as_ref()
            .map(|model| RefCell::new(model.session()));
        let mut problem = FloorplanProblem {
            circuit,
            placer: PinPlacer::new(pitch),
            weights,
            congestion,
            session,
            delta: RefCell::new(None),
            area_scale: 1.0,
            wire_scale: 1.0,
            congestion_scale: 1.0,
            repr: PhantomData,
        };
        problem.calibrate()?;
        Ok(problem)
    }

    /// The circuit being floorplanned.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        self.circuit
    }

    /// The attached congestion model, if any.
    #[must_use]
    pub fn congestion_model(&self) -> Option<&M> {
        self.congestion.as_ref()
    }

    /// Samples a deterministic random walk to set the normalization
    /// scales to the average magnitude of each objective. A non-finite
    /// average (a NaN-producing congestion model, an overflowing
    /// wirelength) is reported instead of being baked into every
    /// subsequent cost.
    fn calibrate(&mut self) -> Result<(), FloorplanError> {
        const SAMPLES: usize = 32;
        let mut rng = ChaCha8Rng::seed_from_u64(0x5eed_ca1b);
        let mut repr = R::initial(self.circuit.modules().len());
        let (mut area_sum, mut wire_sum, mut cgt_sum) = (0.0, 0.0, 0.0);
        for _ in 0..SAMPLES {
            repr.perturb(&mut rng);
            let eval = self.evaluate_raw(&repr);
            area_sum += eval.0;
            wire_sum += eval.1;
            cgt_sum += eval.2;
        }
        let n = SAMPLES as f64;
        for (objective, sum) in [
            ("area", area_sum),
            ("wirelength", wire_sum),
            ("congestion", cgt_sum),
        ] {
            let value = sum / n;
            if !value.is_finite() {
                return Err(FloorplanError::NonFiniteCalibration { objective, value });
            }
        }
        self.area_scale = (area_sum / n).max(f64::MIN_POSITIVE);
        self.wire_scale = (wire_sum / n).max(f64::MIN_POSITIVE);
        self.congestion_scale = (cgt_sum / n).max(f64::MIN_POSITIVE);
        Ok(())
    }

    /// The single place → decompose → measure pipeline behind both the
    /// hot loop ([`Problem::cost`], `score_congestion` false when γ = 0)
    /// and the reporting path ([`FloorplanProblem::evaluate`], always
    /// scored) — one code path, so the two cannot drift.
    fn measure(&self, repr: &R, score_congestion: bool) -> FloorplanEval {
        let placement = repr.place(self.circuit);
        let segments = two_pin_segments(self.circuit, &placement, &self.placer);
        let area = placement.area().as_f64();
        let wire: f64 = segments
            .iter()
            .map(|(a, b)| a.manhattan_distance(*b).as_f64())
            .sum(); // irgrid-lint: allow(D2): serial in-order sum over the segment Vec; order fixed by net decomposition
        let congestion = match &self.session {
            Some(session) if score_congestion => {
                session.borrow_mut().evaluate(&placement.chip(), &segments)
            }
            _ => 0.0,
        };
        let cost = self.combine(area, wire, congestion);
        FloorplanEval {
            placement,
            segments,
            area_um2: area,
            wirelength_um: wire,
            congestion,
            cost,
        }
    }

    /// `(area, wirelength, congestion)` of one encoding, unnormalized.
    /// Congestion is skipped (scored 0) when γ = 0 — it would not affect
    /// the cost.
    fn evaluate_raw(&self, repr: &R) -> (f64, f64, f64) {
        let eval = self.measure(repr, self.weights.congestion > 0.0);
        (eval.area_um2, eval.wirelength_um, eval.congestion)
    }

    /// Fully evaluates an expression, returning the placement and all
    /// objective values. Use this on the annealer's best state to report
    /// results; the annealing loop itself goes through [`Problem::cost`].
    #[must_use]
    pub fn evaluate(&self, repr: &R) -> FloorplanEval {
        self.measure(repr, true)
    }

    fn combine(&self, area: f64, wire: f64, congestion: f64) -> f64 {
        self.weights.area * area / self.area_scale
            + self.weights.wire * wire / self.wire_scale
            + self.weights.congestion * congestion / self.congestion_scale
    }
}

/// A `Sync` recipe for building cost-identical [`FloorplanProblem`]s.
///
/// [`FloorplanProblem`] itself is not `Sync` — its retained congestion
/// session lives in a `RefCell` — so it cannot be shared across the
/// worker threads of an [`irgrid_fleet`] run. A spec captures the
/// construction inputs instead; each worker calls
/// [`build`](FloorplanSpec::build) to mint its own problem instance.
/// Construction is deterministic (the normalization calibration walk is
/// seeded), so every instance scores any given state to identical cost
/// bits — exactly the factory contract the fleet supervisor requires.
#[derive(Debug, Clone)]
pub struct FloorplanSpec<'c, M: RetainedCongestion + Clone, R: FloorplanRepr = PolishExpr> {
    circuit: &'c Circuit,
    pitch: Um,
    weights: Weights,
    congestion: Option<M>,
    repr: PhantomData<R>,
}

impl<'c, M: RetainedCongestion + Clone, R: FloorplanRepr> FloorplanSpec<'c, M, R> {
    /// Creates a spec, validating the parameters by building (and
    /// discarding) one problem instance.
    pub fn new(
        circuit: &'c Circuit,
        pitch: Um,
        weights: Weights,
        congestion: Option<M>,
    ) -> Result<FloorplanSpec<'c, M, R>, FloorplanError> {
        let _probe: FloorplanProblem<'c, M, R> =
            FloorplanProblem::try_with_representation(circuit, pitch, weights, congestion.clone())?;
        Ok(FloorplanSpec {
            circuit,
            pitch,
            weights,
            congestion,
            repr: PhantomData,
        })
    }

    /// Builds one problem instance. Every instance built from the same
    /// spec is cost-identical.
    #[must_use]
    pub fn build(&self) -> FloorplanProblem<'c, M, R> {
        match FloorplanProblem::try_with_representation(
            self.circuit,
            self.pitch,
            self.weights,
            self.congestion.clone(),
        ) {
            Ok(problem) => problem,
            // irgrid-lint: allow(P1): construction is deterministic and the
            // identical inputs were validated by `FloorplanSpec::new`
            Err(err) => panic!("validated floorplan spec failed to build: {err}"),
        }
    }

    /// The circuit this spec floorplans.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        self.circuit
    }
}

impl<'c, M: RetainedCongestion, R: FloorplanRepr> Problem for FloorplanProblem<'c, M, R> {
    type State = R;

    fn initial_state(&self) -> R {
        R::initial(self.circuit.modules().len())
    }

    fn cost(&self, state: &R) -> f64 {
        let (area, wire, congestion) = self.evaluate_raw(state);
        self.combine(area, wire, congestion)
    }

    fn perturb<G: rand::Rng>(&self, state: &mut R, rng: &mut G) {
        state.perturb(rng);
    }
}

impl<'c, M: DeltaCongestion, R: FloorplanRepr> FloorplanProblem<'c, M, R> {
    /// Recomputes one net's pins, segments, and wirelength against
    /// `placement` — the per-net unit of work both `rebase` (all nets)
    /// and `propose` (changed nets only) go through, so the two cannot
    /// drift.
    fn decompose_net(&self, net_index: usize, placement: &Placement) -> (Vec<(Point, Point)>, Um) {
        let members: Vec<Rect> = self.circuit.nets()[net_index]
            .pins()
            .iter()
            .map(|&m| placement.module_rect(m))
            .collect();
        let pins = self.placer.place_net(&members);
        let segments = net_segments(&pins, Decomposition::Mst);
        let wire = segments_wirelength(&segments);
        (segments, wire)
    }

    /// Scores the pending flat segment list: congestion through the delta
    /// session (when one is attached) plus the combined cost.
    fn delta_cost(&self, delta: &mut DeltaState<R>, propose: bool) -> (f64, bool) {
        let chip = delta.placement.chip();
        delta.flat.clear();
        for segments in &delta.net_segments {
            delta.flat.extend_from_slice(segments);
        }
        let (congestion, session_used) = match delta.session.as_mut() {
            Some(session) if propose => (session.propose(&chip, &delta.flat), true),
            Some(session) => (session.rebase(&chip, &delta.flat), true),
            None => (0.0, false),
        };
        let area = delta.placement.area().as_f64();
        let cost = self.combine(area, delta.wire_total.as_f64(), congestion);
        (cost, session_used)
    }
}

/// The incremental evaluation path (§5 made fast): a move re-decomposes
/// only the nets pinned to modules whose placed rectangle changed, and
/// the congestion model's [`DeltaCongestionSession`] re-scores only the
/// routing ranges that moved. Available when the congestion model
/// implements [`DeltaCongestion`].
///
/// The delta congestion term is the session's exact fixed-point
/// accumulation, which differs from [`Problem::cost`]'s float-summed
/// congestion in the last ulps when γ > 0 — the two paths are never mixed
/// inside one annealing run (see [`irgrid_anneal::DeltaProblem`]'s cost
/// contract). With γ = 0 the delta cost is bit-identical to
/// [`Problem::cost`].
impl<'c, M: DeltaCongestion, R: FloorplanRepr> DeltaProblem for FloorplanProblem<'c, M, R> {
    fn rebase(&self, state: &R) -> f64 {
        let placement = state.place(self.circuit);
        let nets = self.circuit.nets();
        let mut module_nets = vec![Vec::new(); self.circuit.modules().len()];
        for (n, net) in nets.iter().enumerate() {
            for &m in net.pins() {
                module_nets[m.index()].push(n);
            }
        }
        let session = match &self.congestion {
            Some(model) if self.weights.congestion > 0.0 => {
                Some(Box::new(model.delta_session()) as Box<dyn DeltaCongestionSession>)
            }
            _ => None,
        };
        let mut delta = DeltaState {
            session,
            module_nets,
            net_mark: vec![false; nets.len()],
            net_segments: Vec::with_capacity(nets.len()),
            net_wire: Vec::with_capacity(nets.len()),
            wire_total: Um::ZERO,
            placement,
            flat: Vec::new(),
            journal: None,
        };
        for n in 0..nets.len() {
            let (segments, wire) = self.decompose_net(n, &delta.placement);
            delta.wire_total += wire;
            delta.net_segments.push(segments);
            delta.net_wire.push(wire);
        }
        let (cost, _) = self.delta_cost(&mut delta, false);
        *self.delta.borrow_mut() = Some(delta);
        cost
    }

    fn propose<G: rand::Rng>(&self, state: &mut R, rng: &mut G) -> f64 {
        if self.delta.borrow().is_none() {
            // Defensive: the engine rebases before the first propose, but
            // a hand-driven protocol might not.
            let _ = self.rebase(state);
        }
        let prev_repr = state.clone();
        state.perturb(rng);

        let mut guard = self.delta.borrow_mut();
        let Some(delta) = guard.as_mut() else {
            // Unreachable after the rebase above; a non-finite cost makes
            // the engine stop with `StopReason::CostError` rather than
            // anneal over garbage.
            return f64::NAN;
        };
        let placement = state.place(self.circuit);
        let changed = delta.placement.changed_modules(&placement);
        let mut changed_nets: Vec<usize> = Vec::new();
        for &module in &changed {
            for &n in &delta.module_nets[module] {
                if !delta.net_mark[n] {
                    delta.net_mark[n] = true;
                    changed_nets.push(n);
                }
            }
        }
        changed_nets.sort_unstable();

        let prev_wire_total = delta.wire_total;
        let prev_placement = std::mem::replace(&mut delta.placement, placement);
        let mut prev_nets = Vec::with_capacity(changed_nets.len());
        for &n in &changed_nets {
            delta.net_mark[n] = false;
            let (segments, wire) = self.decompose_net(n, &delta.placement);
            let old_segments = std::mem::replace(&mut delta.net_segments[n], segments);
            let old_wire = std::mem::replace(&mut delta.net_wire[n], wire);
            delta.wire_total += wire - old_wire;
            prev_nets.push((n, old_segments, old_wire));
        }

        let (cost, session_proposed) = self.delta_cost(delta, true);
        delta.journal = Some(Journal {
            prev_repr,
            prev_placement,
            prev_nets,
            prev_wire_total,
            session_proposed,
        });
        cost
    }

    fn commit(&self) {
        let mut guard = self.delta.borrow_mut();
        if let Some(delta) = guard.as_mut() {
            if let Some(journal) = delta.journal.take() {
                if journal.session_proposed {
                    if let Some(session) = delta.session.as_mut() {
                        session.commit();
                    }
                }
            }
        }
    }

    fn undo(&self, state: &mut R) {
        let mut guard = self.delta.borrow_mut();
        if let Some(delta) = guard.as_mut() {
            if let Some(journal) = delta.journal.take() {
                *state = journal.prev_repr;
                delta.placement = journal.prev_placement;
                delta.wire_total = journal.prev_wire_total;
                for (n, segments, wire) in journal.prev_nets {
                    delta.net_segments[n] = segments;
                    delta.net_wire[n] = wire;
                }
                if journal.session_proposed {
                    if let Some(session) = delta.session.as_mut() {
                        let _ = session.undo();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irgrid_anneal::{Annealer, Schedule};
    use irgrid_core::{FixedGridModel, IrregularGridModel};
    use irgrid_netlist::generator::CircuitGenerator;

    fn small_circuit() -> Circuit {
        CircuitGenerator::new("t", 8, 16)
            .total_area_um2(1.0e6)
            .seed(3)
            .generate()
            .expect("valid")
    }

    #[test]
    fn cost_is_normalized_near_weight_sum() {
        let circuit = small_circuit();
        let problem = FloorplanProblem::new(
            &circuit,
            Um(30),
            Weights::balanced(),
            Some(IrregularGridModel::new(Um(30))),
        );
        // The initial state's cost should be in the ballpark of the
        // random-walk average, i.e. around α + β + γ = 3.
        let cost = problem.cost(&problem.initial_state());
        assert!((0.5..6.0).contains(&cost), "cost {cost}");
    }

    #[test]
    fn annealing_improves_cost() {
        let circuit = small_circuit();
        let problem = FloorplanProblem::new(
            &circuit,
            Um(30),
            Weights::area_wire(),
            None::<FixedGridModel>,
        );
        let initial_cost = problem.cost(&problem.initial_state());
        let result = Annealer::new(Schedule::quick()).run(&problem, 11);
        assert!(
            result.best_cost < initial_cost,
            "best {} vs initial {initial_cost}",
            result.best_cost
        );
        let eval = problem.evaluate(&result.best);
        assert!(eval.placement.check_consistency().is_none());
    }

    #[test]
    fn gamma_zero_skips_congestion_in_cost_but_reports_it() {
        let circuit = small_circuit();
        let problem = FloorplanProblem::new(
            &circuit,
            Um(30),
            Weights::area_wire(),
            Some(IrregularGridModel::new(Um(30))),
        );
        let expr = problem.initial_state();
        let eval = problem.evaluate(&expr);
        // evaluate() reports congestion even when γ = 0...
        assert!(eval.congestion > 0.0);
        // ...but the annealing cost ignores it.
        let (area, wire, _) = (eval.area_um2, eval.wirelength_um, eval.congestion);
        let expected = problem.combine(area, wire, 0.0);
        let cost = problem.cost(&expr);
        assert!((cost - expected).abs() < 1e-9);
    }

    #[test]
    fn deterministic_runs() {
        let circuit = small_circuit();
        let problem = FloorplanProblem::new(
            &circuit,
            Um(30),
            Weights::balanced(),
            Some(IrregularGridModel::new(Um(30))),
        );
        let annealer = Annealer::new(Schedule::quick());
        let a = annealer.run(&problem, 5);
        let b = annealer.run(&problem, 5);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_cost, b.best_cost);
    }

    #[test]
    fn single_module_circuit_is_stable() {
        let circuit = Circuit::new(
            "one",
            vec![irgrid_netlist::Module::new("m", Um(100), Um(50)).expect("valid")],
            vec![],
        )
        .expect("valid");
        let problem = FloorplanProblem::new(
            &circuit,
            Um(30),
            Weights::balanced(),
            None::<FixedGridModel>,
        );
        let result = Annealer::new(Schedule::quick()).run(&problem, 1);
        let eval = problem.evaluate(&result.best);
        assert_eq!(eval.area_um2, 5000.0);
        assert_eq!(eval.wirelength_um, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_rejected() {
        let circuit = small_circuit();
        let _ = FloorplanProblem::new(
            &circuit,
            Um(30),
            Weights {
                area: -1.0,
                wire: 1.0,
                congestion: 1.0,
            },
            None::<FixedGridModel>,
        );
    }

    #[test]
    fn try_new_returns_typed_errors() {
        let circuit = small_circuit();
        let err =
            FloorplanProblem::<FixedGridModel>::try_new(&circuit, Um(0), Weights::balanced(), None)
                .unwrap_err();
        assert_eq!(err, FloorplanError::NonPositivePitch(Um(0)));

        let bad = Weights {
            area: f64::NAN,
            wire: 1.0,
            congestion: 1.0,
        };
        let err =
            FloorplanProblem::<FixedGridModel>::try_new(&circuit, Um(30), bad, None).unwrap_err();
        assert!(matches!(err, FloorplanError::NegativeWeights(_)));

        assert!(FloorplanProblem::<FixedGridModel>::try_new(
            &circuit,
            Um(30),
            Weights::balanced(),
            None
        )
        .is_ok());
    }

    /// A congestion model that always scores NaN.
    #[derive(Debug, Clone)]
    struct NanModel;

    impl irgrid_core::CongestionModel for NanModel {
        fn evaluate(&self, _: &irgrid_geom::Rect, _: &[(Point, Point)]) -> f64 {
            f64::NAN
        }
        fn name(&self) -> String {
            "nan".into()
        }
    }

    impl RetainedCongestion for NanModel {
        type Session = irgrid_core::StatelessSession<NanModel>;

        fn session(&self) -> Self::Session {
            irgrid_core::StatelessSession::new(self.clone())
        }
    }

    #[test]
    fn nan_congestion_model_is_caught_at_calibration() {
        let circuit = small_circuit();
        let err = FloorplanProblem::try_new(&circuit, Um(30), Weights::balanced(), Some(NanModel))
            .unwrap_err();
        assert!(matches!(
            err,
            FloorplanError::NonFiniteCalibration {
                objective: "congestion",
                ..
            }
        ));
    }

    #[test]
    fn spec_builds_cost_identical_problems() {
        let circuit = small_circuit();
        let spec: FloorplanSpec<'_, IrregularGridModel> = FloorplanSpec::new(
            &circuit,
            Um(30),
            Weights::balanced(),
            Some(IrregularGridModel::new(Um(30))),
        )
        .expect("valid spec");
        let a = spec.build();
        let b = spec.build();
        let state = a.initial_state();
        assert_eq!(
            a.cost(&state).to_bits(),
            b.cost(&state).to_bits(),
            "instances from one spec must score identical cost bits"
        );
    }

    #[test]
    fn spec_rejects_what_try_new_rejects() {
        let circuit = small_circuit();
        let err = FloorplanSpec::<FixedGridModel>::new(&circuit, Um(0), Weights::balanced(), None)
            .unwrap_err();
        assert_eq!(err, FloorplanError::NonPositivePitch(Um(0)));
    }

    #[test]
    fn sequence_pair_representation_anneals() {
        use irgrid_floorplan::SequencePair;
        let circuit = small_circuit();
        let problem: FloorplanProblem<'_, IrregularGridModel, SequencePair> =
            FloorplanProblem::with_representation(
                &circuit,
                Um(30),
                Weights::balanced(),
                Some(IrregularGridModel::new(Um(30))),
            );
        let initial = problem.cost(&<SequencePair as irgrid_floorplan::FloorplanRepr>::initial(
            circuit.modules().len(),
        ));
        let result = Annealer::new(Schedule::quick()).run(&problem, 9);
        assert!(result.best_cost <= initial);
        let eval = problem.evaluate(&result.best);
        assert!(eval.placement.check_consistency().is_none());
        assert!(eval.area_um2 >= circuit.total_module_area().as_f64());
    }

    #[test]
    fn gamma_zero_delta_run_is_bit_identical_to_plain_run() {
        // With γ = 0 the delta cost function coincides with the full cost
        // function exactly (integer wirelength sums are exact in f64), so
        // the delta loop must reproduce the plain loop bit for bit.
        let circuit = small_circuit();
        let problem = FloorplanProblem::new(
            &circuit,
            Um(30),
            Weights::area_wire(),
            Some(IrregularGridModel::new(Um(30))),
        );
        let annealer = Annealer::new(Schedule::quick());
        for seed in [2, 11, 23] {
            let plain = annealer.run(&problem, seed);
            let delta = annealer.run_delta(&problem, seed);
            assert_eq!(plain.best, delta.best, "seed {seed}");
            assert_eq!(plain.best_cost.to_bits(), delta.best_cost.to_bits());
            assert_eq!(plain.stats, delta.stats);
            assert_eq!(plain.stop_reason, delta.stop_reason);
        }
    }

    #[test]
    fn propose_is_bit_identical_to_fresh_rebase() {
        // Drive the move protocol by hand with a mix of accepts and
        // rejects; after every propose, a from-scratch rebase on an
        // identical second problem must reproduce the incremental cost
        // bit for bit.
        use rand::SeedableRng;
        let circuit = small_circuit();
        let make = || {
            FloorplanProblem::new(
                &circuit,
                Um(30),
                Weights::routability(),
                Some(IrregularGridModel::new(Um(30))),
            )
        };
        let incremental = make();
        let scratch = make();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xd311a);
        let mut state = incremental.initial_state();
        let rebased = incremental.rebase(&state);
        assert_eq!(rebased.to_bits(), scratch.rebase(&state).to_bits());
        for step in 0..60 {
            let before = state.clone();
            let proposed = incremental.propose(&mut state, &mut rng);
            assert_eq!(
                proposed.to_bits(),
                scratch.rebase(&state).to_bits(),
                "step {step}: incremental cost drifted from from-scratch"
            );
            // Reject two of every three moves to exercise long undo chains.
            if step % 3 == 0 {
                incremental.commit();
            } else {
                incremental.undo(&mut state);
                assert_eq!(
                    incremental.cost(&before).to_bits(),
                    incremental.cost(&state).to_bits(),
                    "step {step}: undo failed to restore the state"
                );
            }
        }
    }

    #[test]
    fn sequence_pair_delta_protocol_matches_scratch() {
        use irgrid_floorplan::SequencePair;
        use rand::SeedableRng;
        let circuit = small_circuit();
        let make = || -> FloorplanProblem<'_, IrregularGridModel, SequencePair> {
            FloorplanProblem::with_representation(
                &circuit,
                Um(30),
                Weights::balanced(),
                Some(IrregularGridModel::new(Um(30))),
            )
        };
        let incremental = make();
        let scratch = make();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let mut state = incremental.initial_state();
        let _ = incremental.rebase(&state);
        for step in 0..40 {
            let proposed = incremental.propose(&mut state, &mut rng);
            assert_eq!(
                proposed.to_bits(),
                scratch.rebase(&state).to_bits(),
                "step {step}"
            );
            if step % 2 == 0 {
                incremental.undo(&mut state);
            } else {
                incremental.commit();
            }
        }
    }

    #[test]
    fn delta_run_is_deterministic_and_consistent() {
        let circuit = small_circuit();
        let problem = FloorplanProblem::new(
            &circuit,
            Um(30),
            Weights::routability(),
            Some(IrregularGridModel::new(Um(30))),
        );
        let annealer = Annealer::new(Schedule::quick());
        let a = annealer.run_delta(&problem, 5);
        let b = annealer.run_delta(&problem, 5);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_cost.to_bits(), b.best_cost.to_bits());
        assert_eq!(a.stats, b.stats);
        let eval = problem.evaluate(&a.best);
        assert!(eval.placement.check_consistency().is_none());
    }

    #[test]
    fn representations_share_the_cost_definition() {
        use irgrid_floorplan::SequencePair;
        // The same placement scored through either problem type must give
        // comparable magnitudes: both are normalized to ~weight-sum.
        let circuit = small_circuit();
        let slicing = FloorplanProblem::new(
            &circuit,
            Um(30),
            Weights::balanced(),
            Some(IrregularGridModel::new(Um(30))),
        );
        let seqpair: FloorplanProblem<'_, IrregularGridModel, SequencePair> =
            FloorplanProblem::with_representation(
                &circuit,
                Um(30),
                Weights::balanced(),
                Some(IrregularGridModel::new(Um(30))),
            );
        let a = slicing.cost(&slicing.initial_state());
        let b = seqpair.cost(&seqpair.initial_state());
        assert!((0.3..8.0).contains(&a), "slicing cost {a}");
        assert!((0.3..8.0).contains(&b), "sequence-pair cost {b}");
    }
}
