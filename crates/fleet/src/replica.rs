//! Per-replica lifecycle state and the pure segment driver.
//!
//! A replica advances through three phases: `Pending` (never run),
//! `Active` (paused at a checkpointed temperature-step boundary), and
//! `Finished` (stopped for a terminal reason). The supervisor moves
//! replicas between phases only when a whole round commits, so the
//! manifest always holds a consistent barrier snapshot of every replica.

use irgrid_anneal::{
    AnnealError, AnnealResult, AnnealStats, Annealer, Checkpoint, Problem, RunControl, StopReason,
};
use serde::{Deserialize, Serialize};

/// Where a replica is in its lifecycle.
///
/// `Active` dwarfs the other variants (a checkpoint carries the full
/// engine state); boxing it would only shuffle the one heap hop this
/// enum sees per round while complicating the serialized manifest shape.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReplicaPhase<S> {
    /// Not started yet; the first segment runs from a fresh seed.
    Pending,
    /// Paused at a step boundary; the checkpoint is the exact resume
    /// point and doubles as the replica's exchange-visible walker state.
    Active(Checkpoint<S>),
    /// Stopped for a terminal reason (converged, frozen, step cap, or a
    /// cost error). Terminal replicas keep their best state but no longer
    /// run segments or participate in exchange.
    Finished {
        /// Why the replica stopped.
        reason: StopReason,
        /// Best state the replica found.
        best: S,
        /// Cost of `best`.
        best_cost: f64,
        /// Accumulated run statistics.
        stats: AnnealStats,
    },
}

impl<S> ReplicaPhase<S> {
    /// Whether the replica still runs segments.
    #[must_use]
    pub fn is_live(&self) -> bool {
        !matches!(self, ReplicaPhase::Finished { .. })
    }

    /// The checkpoint of an `Active` replica.
    #[must_use]
    pub fn checkpoint(&self) -> Option<&Checkpoint<S>> {
        match self {
            ReplicaPhase::Active(checkpoint) => Some(checkpoint),
            _ => None,
        }
    }

    /// Mutable access to an `Active` replica's checkpoint (used by the
    /// exchange step to swap walker states).
    #[must_use]
    pub(crate) fn checkpoint_mut(&mut self) -> Option<&mut Checkpoint<S>> {
        match self {
            ReplicaPhase::Active(checkpoint) => Some(checkpoint),
            _ => None,
        }
    }

    /// The best cost the replica has seen so far, if it has run at all.
    #[must_use]
    pub fn best_cost(&self) -> Option<f64> {
        match self {
            ReplicaPhase::Pending => None,
            ReplicaPhase::Active(checkpoint) => Some(checkpoint.best_cost),
            ReplicaPhase::Finished { best_cost, .. } => Some(*best_cost),
        }
    }

    /// The best state the replica has seen so far, if it has run at all.
    #[must_use]
    pub fn best(&self) -> Option<&S> {
        match self {
            ReplicaPhase::Pending => None,
            ReplicaPhase::Active(checkpoint) => Some(&checkpoint.best),
            ReplicaPhase::Finished { best, .. } => Some(best),
        }
    }
}

/// One replica: its seed and lifecycle phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaRecord<S> {
    /// The replica's annealing seed ([`FleetConfig::replica_seed`](crate::FleetConfig::replica_seed)).
    pub seed: u64,
    /// Lifecycle phase.
    pub phase: ReplicaPhase<S>,
}

/// The output of one committed segment: the run result plus, when the
/// segment stopped on its step budget, the boundary checkpoint to resume
/// from next round.
#[derive(Debug, Clone)]
pub struct SegmentOutcome<S> {
    /// The annealing result of the segment (statistics and stop reason
    /// are cumulative across the whole replica, not per-segment).
    pub result: AnnealResult<S>,
    /// The boundary checkpoint, present exactly when
    /// `result.stop_reason == StopReason::StepBudget`.
    pub boundary: Option<Checkpoint<S>>,
}

/// Runs one replica segment: from `start` (or a fresh seed when `None`)
/// until `target_steps` *total* temperature steps have completed, the
/// schedule terminates naturally, or `base`'s cancel/deadline trips.
///
/// The segment is pure: its outcome is a function of `(problem, seed,
/// start, target_steps)` alone, so it may run on any worker thread in
/// any round ordering.
pub fn run_segment<P: Problem>(
    annealer: &Annealer,
    problem: &P,
    seed: u64,
    start: Option<Checkpoint<P::State>>,
    target_steps: usize,
    base: &RunControl,
) -> Result<SegmentOutcome<P::State>, AnnealError> {
    let control = base.clone().with_step_budget(target_steps);
    let mut boundary: Option<Checkpoint<P::State>> = None;
    let sink = |checkpoint: &Checkpoint<P::State>| boundary = Some(checkpoint.clone());
    let result = match start {
        None => annealer.run_with_checkpoints(problem, seed, &control, sink)?,
        Some(checkpoint) => {
            annealer.resume_with_checkpoints(problem, checkpoint, &control, sink)?
        }
    };
    let boundary = if result.stop_reason == StopReason::StepBudget {
        boundary
    } else {
        None
    };
    Ok(SegmentOutcome { result, boundary })
}

#[cfg(test)]
mod tests {
    use super::*;
    use irgrid_anneal::Schedule;
    use rand::Rng;

    struct Bowl;
    impl Problem for Bowl {
        type State = i64;
        fn initial_state(&self) -> i64 {
            1000
        }
        fn cost(&self, s: &i64) -> f64 {
            ((s - 7) * (s - 7)) as f64
        }
        fn perturb<R: Rng>(&self, s: &mut i64, rng: &mut R) {
            *s += rng.gen_range(-10..=10);
        }
    }

    fn annealer() -> Annealer {
        Annealer::new(Schedule::quick())
    }

    #[test]
    fn fresh_segment_stops_at_target_with_boundary() {
        let outcome = run_segment(&annealer(), &Bowl, 3, None, 5, &RunControl::unlimited())
            .expect("segment runs");
        assert_eq!(outcome.result.stop_reason, StopReason::StepBudget);
        let boundary = outcome.boundary.expect("budget stop emits a boundary");
        assert_eq!(boundary.steps_done, 5);
    }

    #[test]
    fn chained_segments_match_one_uninterrupted_run() {
        let ann = annealer();
        let reference = ann
            .run_controlled(&Bowl, 3, &RunControl::unlimited())
            .expect("reference runs");

        let mut start = None;
        let mut total = 0usize;
        let chained = loop {
            total += 4;
            let outcome = run_segment(
                &ann,
                &Bowl,
                3,
                start.take(),
                total,
                &RunControl::unlimited(),
            )
            .expect("segment runs");
            match outcome.boundary {
                Some(boundary) => start = Some(boundary),
                None => break outcome.result,
            }
        };
        assert_eq!(chained.best, reference.best);
        assert_eq!(chained.best_cost.to_bits(), reference.best_cost.to_bits());
        assert_eq!(chained.stats, reference.stats);
        assert_eq!(chained.stop_reason, reference.stop_reason);
    }

    #[test]
    fn natural_finish_has_no_boundary() {
        let outcome = run_segment(
            &annealer(),
            &Bowl,
            3,
            None,
            1_000_000,
            &RunControl::unlimited(),
        )
        .expect("segment runs");
        assert!(outcome.result.stop_reason.is_natural());
        assert!(outcome.boundary.is_none());
    }

    #[test]
    fn phase_accessors_track_lifecycle() {
        let pending: ReplicaPhase<i64> = ReplicaPhase::Pending;
        assert!(pending.is_live());
        assert!(pending.best_cost().is_none());

        let outcome = run_segment(&annealer(), &Bowl, 9, None, 4, &RunControl::unlimited())
            .expect("segment runs");
        let active = ReplicaPhase::Active(outcome.boundary.expect("boundary"));
        assert!(active.is_live());
        assert_eq!(
            active.best_cost().map(f64::to_bits),
            Some(outcome.result.best_cost.to_bits())
        );

        let finished = ReplicaPhase::Finished {
            reason: StopReason::Converged,
            best: 7i64,
            best_cost: 0.0,
            stats: AnnealStats::default(),
        };
        assert!(!finished.is_live());
        assert_eq!(finished.best(), Some(&7));
    }

    #[test]
    fn replica_record_survives_serde() {
        let outcome = run_segment(&annealer(), &Bowl, 5, None, 4, &RunControl::unlimited())
            .expect("segment runs");
        let record = ReplicaRecord {
            seed: 5,
            phase: ReplicaPhase::Active(outcome.boundary.expect("boundary")),
        };
        let value = Serialize::to_value(&record);
        let back: ReplicaRecord<i64> = Deserialize::from_value(&value).expect("roundtrip");
        assert_eq!(record, back);
    }
}
