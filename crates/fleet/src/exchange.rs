//! Temperature-ladder replica exchange at round barriers.
//!
//! Replicas running the same geometric schedule from different seeds sit
//! at different temperatures because the adaptive initial temperature
//! (Wong–Liu estimate) is seeded per replica — the fleet's replicas form
//! a natural ladder without any engine change. At each round barrier the
//! supervisor pairs adjacent live replicas and applies the standard
//! parallel-tempering Metropolis test: states at temperatures `T_a ≥ T_b`
//! with costs `C_a`, `C_b` swap with probability
//! `min(1, exp((1/T_b − 1/T_a) · (C_b − C_a)))`, which preserves each
//! rung's equilibrium distribution while letting good states migrate to
//! cold rungs.
//!
//! # Determinism
//!
//! Exchange runs on the supervisor thread only, in fixed index order,
//! and **always** draws exactly one uniform variate per candidate pair —
//! even for forced swaps — so the exchange RNG's consumption schedule is
//! a function of the replica phases alone, never of worker timing.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::replica::ReplicaRecord;

/// One recorded exchange attempt between adjacent replicas.
///
/// The trace of all decisions is part of the fleet outcome and must be
/// bit-identical across worker counts and resumes; every field is either
/// integral or copied verbatim from checkpoint state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExchangeDecision {
    /// The round barrier at which the attempt happened.
    pub round: usize,
    /// Lower-indexed replica of the pair.
    pub lower: usize,
    /// Higher-indexed replica of the pair (`lower + 1`).
    pub upper: usize,
    /// Current walker cost of `lower` before the attempt.
    pub cost_lower: f64,
    /// Current walker cost of `upper` before the attempt.
    pub cost_upper: f64,
    /// Temperature of `lower` at the barrier.
    pub temp_lower: f64,
    /// Temperature of `upper` at the barrier.
    pub temp_upper: f64,
    /// The uniform variate drawn for the Metropolis test.
    pub unit: f64,
    /// Whether the walkers swapped.
    pub accepted: bool,
}

/// The parallel-tempering acceptance probability for swapping states at
/// temperatures `temp_a`/`temp_b` with costs `cost_a`/`cost_b`.
///
/// Symmetric in its pair arguments; saturates at 1 for favorable swaps.
#[must_use]
pub(crate) fn swap_probability(temp_a: f64, cost_a: f64, temp_b: f64, cost_b: f64) -> f64 {
    let delta = (1.0 / temp_a - 1.0 / temp_b) * (cost_a - cost_b);
    delta.exp().min(1.0)
}

/// Attempts exchanges between adjacent live replicas for `round`.
///
/// Pairs `(i, i+1)` starting at `round % 2` and stepping by two, so
/// successive rounds alternate even and odd pairings and every adjacent
/// pair is attempted every other round. A pair is skipped (with no RNG
/// draw) unless **both** replicas are `Active`; for eligible pairs one
/// uniform variate is always drawn, accepted or not.
///
/// On acceptance the two checkpoints trade `current`/`current_cost` —
/// RNG streams, step counts, temperatures, statistics, and best-so-far
/// stay put, so each rung keeps its own schedule position while the
/// walkers migrate. If a migrated walker beats its new rung's best, the
/// best is refreshed (the global fleet best can only improve).
pub(crate) fn exchange_round<S: Clone>(
    rng: &mut ChaCha8Rng,
    round: usize,
    records: &mut [ReplicaRecord<S>],
) -> Vec<ExchangeDecision> {
    let mut decisions = Vec::new();
    let mut lower = round % 2;
    while lower + 1 < records.len() {
        let upper = lower + 1;
        let eligible = records[lower].phase.checkpoint().is_some()
            && records[upper].phase.checkpoint().is_some();
        if !eligible {
            lower += 2;
            continue;
        }
        let (head, tail) = records.split_at_mut(upper);
        let (Some(lo), Some(hi)) = (
            head[lower].phase.checkpoint_mut(),
            tail[0].phase.checkpoint_mut(),
        ) else {
            lower += 2;
            continue;
        };

        let unit: f64 = rng.gen();
        let probability = swap_probability(
            lo.temperature,
            lo.current_cost,
            hi.temperature,
            hi.current_cost,
        );
        let accepted = unit < probability;
        let decision = ExchangeDecision {
            round,
            lower,
            upper,
            cost_lower: lo.current_cost,
            cost_upper: hi.current_cost,
            temp_lower: lo.temperature,
            temp_upper: hi.temperature,
            unit,
            accepted,
        };
        if accepted {
            std::mem::swap(&mut lo.current, &mut hi.current);
            std::mem::swap(&mut lo.current_cost, &mut hi.current_cost);
            for side in [&mut *lo, &mut *hi] {
                if side.current_cost < side.best_cost {
                    side.best = side.current.clone();
                    side.best_cost = side.current_cost;
                }
            }
        }
        decisions.push(decision);
        lower += 2;
    }
    decisions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::ReplicaPhase;
    use irgrid_anneal::{AnnealStats, Checkpoint, Schedule, StopReason, FORMAT_VERSION};
    use rand::SeedableRng;

    fn active(seed: u64, temperature: f64, current: i64, current_cost: f64) -> ReplicaRecord<i64> {
        ReplicaRecord {
            seed,
            phase: ReplicaPhase::Active(Checkpoint {
                version: FORMAT_VERSION,
                seed,
                schedule: Schedule::quick(),
                initial_temperature: temperature,
                temperature,
                steps_done: 5,
                current,
                current_cost,
                best: current,
                best_cost: current_cost,
                stats: AnnealStats::default(),
                rng: rand_chacha::ChaCha8Rng::seed_from_u64(seed),
                snapshots: Vec::new(),
            }),
        }
    }

    fn finished(seed: u64) -> ReplicaRecord<i64> {
        ReplicaRecord {
            seed,
            phase: ReplicaPhase::Finished {
                reason: StopReason::Converged,
                best: 0,
                best_cost: 0.0,
                stats: AnnealStats::default(),
            },
        }
    }

    #[test]
    fn favorable_swap_always_accepts() {
        // Cold replica holds the worse state: swapping is always accepted
        // (probability saturates at 1).
        let mut records = vec![active(0, 100.0, 10, 5.0), active(1, 1.0, 90, 50.0)];
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let decisions = exchange_round(&mut rng, 0, &mut records);
        assert_eq!(decisions.len(), 1);
        assert!(decisions[0].accepted);
        let lo = records[0].phase.checkpoint().expect("active");
        let hi = records[1].phase.checkpoint().expect("active");
        assert_eq!(lo.current, 90);
        assert_eq!(hi.current, 10);
        // The cold rung inherited a better walker and refreshed its best.
        assert_eq!(hi.best_cost.to_bits(), 5.0f64.to_bits());
        // RNG streams and schedule positions stayed with their rungs.
        assert_eq!(lo.temperature.to_bits(), 100.0f64.to_bits());
        assert_eq!(hi.temperature.to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn pairings_alternate_by_round_parity() {
        let mut records: Vec<_> = (0..4).map(|k| active(k, 10.0, 0, 1.0)).collect();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let even = exchange_round(&mut rng, 0, &mut records);
        assert_eq!(
            even.iter().map(|d| (d.lower, d.upper)).collect::<Vec<_>>(),
            vec![(0, 1), (2, 3)]
        );
        let odd = exchange_round(&mut rng, 1, &mut records);
        assert_eq!(
            odd.iter().map(|d| (d.lower, d.upper)).collect::<Vec<_>>(),
            vec![(1, 2)]
        );
    }

    #[test]
    fn finished_replicas_are_skipped_without_consuming_rng() {
        let mut with_gap = vec![
            active(0, 10.0, 0, 1.0),
            finished(1),
            active(2, 10.0, 0, 1.0),
        ];
        let mut rng_a = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let decisions = exchange_round(&mut rng_a, 0, &mut with_gap);
        assert!(decisions.is_empty());
        // The skipped pair drew nothing: the stream equals a fresh one.
        let mut rng_b = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let a: f64 = rng_a.gen();
        let b: f64 = rng_b.gen();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn identical_pair_swap_probability_is_one() {
        // Equal temperatures or equal costs give delta = 0 → p = 1.
        assert_eq!(
            swap_probability(5.0, 3.0, 5.0, 9.0).to_bits(),
            1.0f64.to_bits()
        );
        assert_eq!(
            swap_probability(2.0, 4.0, 8.0, 4.0).to_bits(),
            1.0f64.to_bits()
        );
        // Hot replica already holds the worse state: p < 1.
        assert!(swap_probability(10.0, 50.0, 1.0, 5.0) < 1.0);
    }

    #[test]
    fn decision_survives_serde() {
        let decision = ExchangeDecision {
            round: 3,
            lower: 1,
            upper: 2,
            cost_lower: 12.5,
            cost_upper: 8.25,
            temp_lower: 4.0,
            temp_upper: 2.0,
            unit: 0.625,
            accepted: true,
        };
        let value = Serialize::to_value(&decision);
        let back: ExchangeDecision = Deserialize::from_value(&value).expect("roundtrip");
        assert_eq!(decision, back);
    }
}
