//! Fleet configuration and the crate's error type.

use std::fmt;

use irgrid_anneal::{AnnealError, CheckpointIoError};
use serde::{Deserialize, Serialize};

/// How replicas relate to each other while the fleet runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExchangeMode {
    /// A multi-start portfolio: replicas never interact; the fleet is a
    /// deterministic parallel version of the paper's N-seed protocol.
    Independent,
    /// Parallel-tempering-style replica exchange: at every round barrier
    /// adjacent replicas (ordered by index, alternating even/odd pairings
    /// per round) may swap their *current* walker states via a Metropolis
    /// test on their temperatures and costs, driven by the dedicated
    /// exchange RNG.
    Ladder,
}

impl fmt::Display for ExchangeMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ExchangeMode::Independent => "independent",
            ExchangeMode::Ladder => "ladder",
        })
    }
}

/// Static description of a fleet: how many replicas, how they are seeded,
/// how often they synchronize, and how many workers drive them.
///
/// Everything except [`workers`](FleetConfig::workers) affects the
/// result; `workers` only affects wall-clock time. The config is embedded
/// in the crash-recovery manifest and validated on resume, so a resumed
/// fleet cannot silently diverge from the run that wrote the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of annealing replicas (≥ 1). Replica `k` runs seed
    /// [`seed0`](FleetConfig::seed0)` + k`.
    pub replicas: usize,
    /// Worker threads in the pool (≥ 1). Any value produces bit-identical
    /// results; excluded from manifest equality for that reason.
    pub workers: usize,
    /// First replica seed.
    pub seed0: u64,
    /// Temperature steps per synchronization round (≥ 1). Checkpoints,
    /// exchange decisions, and telemetry are emitted at these
    /// boundaries.
    pub sync_every: usize,
    /// Replica interaction mode.
    pub mode: ExchangeMode,
    /// Seed of the dedicated exchange RNG (independent of every replica
    /// RNG stream).
    pub exchange_seed: u64,
}

impl Default for FleetConfig {
    /// Four independent-seeded replicas exchanging every 5 steps on as
    /// many workers as replicas.
    fn default() -> FleetConfig {
        FleetConfig {
            replicas: 4,
            workers: 4,
            seed0: 0,
            sync_every: 5,
            mode: ExchangeMode::Independent,
            exchange_seed: 0x1adde2,
        }
    }
}

impl FleetConfig {
    /// Checks the parameter ranges, returning the first violation.
    pub fn validated(&self) -> Result<(), FleetError> {
        if self.replicas == 0 {
            return Err(FleetError::Config("replicas must be positive"));
        }
        if self.workers == 0 {
            return Err(FleetError::Config("workers must be positive"));
        }
        if self.sync_every == 0 {
            return Err(FleetError::Config("sync_every must be positive"));
        }
        Ok(())
    }

    /// Whether `other` describes the same *result* as `self`: everything
    /// but the worker count must match. Used to validate resumes.
    #[must_use]
    pub fn result_compatible(&self, other: &FleetConfig) -> bool {
        let FleetConfig {
            replicas,
            workers: _,
            seed0,
            sync_every,
            mode,
            exchange_seed,
        } = *self;
        replicas == other.replicas
            && seed0 == other.seed0
            && sync_every == other.sync_every
            && mode == other.mode
            && exchange_seed == other.exchange_seed
    }

    /// The annealing seed of replica `k`.
    #[must_use]
    pub fn replica_seed(&self, k: usize) -> u64 {
        self.seed0.wrapping_add(k as u64)
    }
}

/// A typed error from fleet orchestration.
#[derive(Debug)]
pub enum FleetError {
    /// A [`FleetConfig`] parameter is out of range.
    Config(&'static str),
    /// A replica's annealing run failed with a typed error (broken cost
    /// function, corrupt embedded checkpoint). The fleet aborts: costs
    /// cannot be trusted.
    Anneal {
        /// Which replica failed.
        replica: usize,
        /// The underlying error.
        source: AnnealError,
    },
    /// Reading or writing a manifest / checkpoint / telemetry file
    /// failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The manifest file did not parse.
    ManifestParse(String),
    /// The manifest was written by an incompatible format version.
    ManifestVersion {
        /// Version found in the manifest.
        found: u32,
        /// Version this library writes and reads.
        expected: u32,
    },
    /// The manifest's config or schedule does not match the resuming
    /// fleet's; resuming would not reproduce the original run.
    ManifestMismatch {
        /// Which aspect disagreed: `"config"` or `"schedule"`.
        what: &'static str,
    },
    /// `resume` was requested but the run directory has no manifest.
    NothingToResume {
        /// The directory searched.
        dir: String,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Config(why) => write!(f, "invalid fleet config: {why}"),
            FleetError::Anneal { replica, source } => {
                write!(f, "replica {replica} failed: {source}")
            }
            FleetError::Io { path, source } => write!(f, "fleet i/o failed for `{path}`: {source}"),
            FleetError::ManifestParse(why) => write!(f, "fleet manifest did not parse: {why}"),
            FleetError::ManifestVersion { found, expected } => write!(
                f,
                "fleet manifest version {found} is not supported (expected {expected})"
            ),
            FleetError::ManifestMismatch { what } => write!(
                f,
                "fleet manifest {what} differs from this fleet's; resuming would not \
                 reproduce the original run"
            ),
            FleetError::NothingToResume { dir } => {
                write!(f, "no fleet manifest to resume in `{dir}`")
            }
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Anneal { source, .. } => Some(source),
            FleetError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<CheckpointIoError> for FleetError {
    fn from(err: CheckpointIoError) -> Self {
        match err {
            CheckpointIoError::Io { path, source } => FleetError::Io { path, source },
            CheckpointIoError::Parse(why) => FleetError::ManifestParse(why),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(FleetConfig::default().validated().is_ok());
    }

    #[test]
    fn zero_fields_are_rejected() {
        for bad in [
            FleetConfig {
                replicas: 0,
                ..FleetConfig::default()
            },
            FleetConfig {
                workers: 0,
                ..FleetConfig::default()
            },
            FleetConfig {
                sync_every: 0,
                ..FleetConfig::default()
            },
        ] {
            assert!(matches!(bad.validated(), Err(FleetError::Config(_))));
        }
    }

    #[test]
    fn worker_count_does_not_affect_result_compatibility() {
        let a = FleetConfig::default();
        let b = FleetConfig { workers: 16, ..a };
        assert!(a.result_compatible(&b));
        let c = FleetConfig { seed0: 9, ..a };
        assert!(!a.result_compatible(&c));
        let d = FleetConfig {
            mode: ExchangeMode::Ladder,
            ..a
        };
        assert!(!a.result_compatible(&d));
    }

    #[test]
    fn replica_seeds_are_consecutive() {
        let config = FleetConfig {
            seed0: 100,
            ..FleetConfig::default()
        };
        assert_eq!(config.replica_seed(0), 100);
        assert_eq!(config.replica_seed(3), 103);
    }

    #[test]
    fn config_survives_serde() {
        let config = FleetConfig {
            mode: ExchangeMode::Ladder,
            ..FleetConfig::default()
        };
        let value = serde::Serialize::to_value(&config);
        let back: FleetConfig = serde::Deserialize::from_value(&value).expect("roundtrip");
        assert_eq!(config, back);
    }
}
