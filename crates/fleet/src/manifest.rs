//! The fleet's crash-recovery manifest.
//!
//! All mutable fleet state — every replica's checkpoint or terminal
//! result, the exchange RNG, the exchange trace, and the telemetry
//! history — is committed as **one** atomically written JSON file at
//! every round barrier. A crash therefore never leaves the run directory
//! torn across files: either the barrier committed (the manifest names
//! it) or it did not (the manifest still names the previous barrier and
//! the interrupted round is simply re-run). Per-replica checkpoint files
//! written alongside are convenience artifacts for inspection and
//! single-replica resume; the manifest alone is the source of truth.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::Path;

use irgrid_anneal::Schedule;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::config::{FleetConfig, FleetError};
use crate::exchange::ExchangeDecision;
use crate::replica::ReplicaRecord;
use crate::telemetry::FleetEvent;

/// The manifest format version this library writes and reads.
pub const MANIFEST_VERSION: u32 = 1;

/// File name of the manifest inside a fleet run directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// File name of the JSONL telemetry mirror inside a fleet run directory.
pub const TELEMETRY_FILE: &str = "telemetry.jsonl";

/// Complete fleet state at a committed round barrier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetManifest<S> {
    /// Manifest format version ([`MANIFEST_VERSION`]).
    pub version: u32,
    /// The configuration the fleet was started with. Resume validates
    /// result compatibility (everything but the worker count).
    pub config: FleetConfig,
    /// The annealing schedule shared by every replica.
    pub schedule: Schedule,
    /// Rounds committed so far.
    pub rounds_done: usize,
    /// The exchange RNG exactly as it stood after the last committed
    /// round's exchanges.
    pub exchange_rng: ChaCha8Rng,
    /// Every replica's lifecycle state at the barrier.
    pub replicas: Vec<ReplicaRecord<S>>,
    /// All exchange decisions so far, in decision order.
    pub trace: Vec<ExchangeDecision>,
    /// The full telemetry history, replayed into the JSONL mirror on
    /// resume.
    pub events: Vec<FleetEvent>,
}

impl<S: Serialize> FleetManifest<S> {
    /// Serializes to pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        // irgrid-lint: allow(P1): serializing a plain owned data struct cannot fail
        serde_json::to_string_pretty(self).expect("manifest serialization is infallible")
    }

    /// Atomically writes the manifest: JSON to a sibling temporary file,
    /// synced, then renamed into place. A crash mid-write leaves the
    /// previous manifest intact.
    pub fn write_file(&self, path: &Path) -> Result<(), FleetError> {
        let tmp = path.with_extension("tmp");
        let io = |source| FleetError::Io {
            path: tmp.display().to_string(),
            source,
        };
        {
            let mut file = fs::File::create(&tmp).map_err(io)?;
            file.write_all(self.to_json().as_bytes()).map_err(io)?;
            file.sync_all().map_err(io)?;
        }
        fs::rename(&tmp, path).map_err(|source| FleetError::Io {
            path: path.display().to_string(),
            source,
        })
    }
}

impl<S: Deserialize> FleetManifest<S> {
    /// Parses a manifest from JSON text.
    pub fn from_json(text: &str) -> Result<Self, FleetError> {
        serde_json::from_str(text).map_err(|err| FleetError::ManifestParse(err.to_string()))
    }

    /// Reads a manifest written by [`write_file`](FleetManifest::write_file).
    ///
    /// Corruption of any kind — truncation, trailing garbage, bytes that
    /// are not UTF-8 — surfaces as [`FleetError::ManifestParse`], never a
    /// panic and never a partially loaded manifest. Only a file that
    /// cannot be read at all is an [`FleetError::Io`].
    pub fn read_file(path: &Path) -> Result<Self, FleetError> {
        let bytes = fs::read(path).map_err(|source| FleetError::Io {
            path: path.display().to_string(),
            source,
        })?;
        let text = String::from_utf8(bytes)
            .map_err(|_| FleetError::ManifestParse("manifest is not valid UTF-8".to_owned()))?;
        Self::from_json(&text)
    }
}

impl<S> FleetManifest<S> {
    /// Validates that this manifest can continue a fleet with `config`
    /// and `schedule`: matching format version, result-compatible
    /// config, identical schedule, and a consistent replica count.
    pub fn validate(&self, config: &FleetConfig, schedule: &Schedule) -> Result<(), FleetError> {
        if self.version != MANIFEST_VERSION {
            return Err(FleetError::ManifestVersion {
                found: self.version,
                expected: MANIFEST_VERSION,
            });
        }
        if !self.config.result_compatible(config) {
            return Err(FleetError::ManifestMismatch { what: "config" });
        }
        if self.schedule != *schedule {
            return Err(FleetError::ManifestMismatch { what: "schedule" });
        }
        if self.replicas.len() != config.replicas {
            return Err(FleetError::ManifestMismatch { what: "config" });
        }
        Ok(())
    }
}

/// An FNV-1a digest of a JSON-serializable state, reported in bench
/// summaries so two runs can be compared for bit-identity without
/// embedding whole floorplans.
#[must_use]
pub fn state_digest<S: Serialize>(state: &S) -> String {
    // irgrid-lint: allow(P1): serializing a plain owned data struct cannot fail
    let json = serde_json::to_string(state).expect("digest serialization is infallible");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in json.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut out = String::with_capacity(16);
    // irgrid-lint: allow(P1): write! to a String is infallible
    write!(out, "{hash:016x}").expect("writing to a String cannot fail");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExchangeMode;
    use crate::replica::ReplicaPhase;
    use irgrid_anneal::{AnnealStats, StopReason};
    use rand::SeedableRng;

    fn sample() -> FleetManifest<i64> {
        FleetManifest {
            version: MANIFEST_VERSION,
            config: FleetConfig {
                replicas: 2,
                mode: ExchangeMode::Ladder,
                ..FleetConfig::default()
            },
            schedule: Schedule::quick(),
            rounds_done: 3,
            exchange_rng: ChaCha8Rng::seed_from_u64(11),
            replicas: vec![
                ReplicaRecord {
                    seed: 0,
                    phase: ReplicaPhase::Pending,
                },
                ReplicaRecord {
                    seed: 1,
                    phase: ReplicaPhase::Finished {
                        reason: StopReason::Converged,
                        best: 7,
                        best_cost: 0.5,
                        stats: AnnealStats::default(),
                    },
                },
            ],
            trace: vec![ExchangeDecision {
                round: 1,
                lower: 0,
                upper: 1,
                cost_lower: 2.0,
                cost_upper: 1.0,
                temp_lower: 8.0,
                temp_upper: 4.0,
                unit: 0.75,
                accepted: false,
            }],
            events: vec![FleetEvent::ReplicaStarted {
                replica: 0,
                seed: 0,
            }],
        }
    }

    #[test]
    fn manifest_roundtrips_through_file() {
        let dir = std::env::temp_dir().join("irgrid_fleet_manifest_test");
        fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(MANIFEST_FILE);
        let manifest = sample();
        manifest.write_file(&path).expect("write");
        let back: FleetManifest<i64> = FleetManifest::read_file(&path).expect("read");
        assert_eq!(manifest, back);
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp file renamed away"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validate_rejects_version_config_schedule_and_count_drift() {
        let manifest = sample();
        let config = manifest.config;
        let schedule = manifest.schedule;
        assert!(manifest.validate(&config, &schedule).is_ok());
        assert!(manifest
            .validate(
                &FleetConfig {
                    workers: 16,
                    ..config
                },
                &schedule
            )
            .is_ok());

        let mut wrong_version = manifest.clone();
        wrong_version.version = 99;
        assert!(matches!(
            wrong_version.validate(&config, &schedule),
            Err(FleetError::ManifestVersion { found: 99, .. })
        ));

        assert!(matches!(
            manifest.validate(&FleetConfig { seed0: 5, ..config }, &schedule),
            Err(FleetError::ManifestMismatch { what: "config" })
        ));

        assert!(matches!(
            manifest.validate(&config, &Schedule::default()),
            Err(FleetError::ManifestMismatch { what: "schedule" })
        ));

        let mut short = manifest.clone();
        short.replicas.pop();
        assert!(matches!(
            short.validate(&config, &schedule),
            Err(FleetError::ManifestMismatch { what: "config" })
        ));
    }

    #[test]
    fn corrupt_manifest_is_a_parse_error() {
        let err = FleetManifest::<i64>::from_json("{not json").expect_err("must fail");
        assert!(matches!(err, FleetError::ManifestParse(_)));
    }

    #[test]
    fn every_byte_level_truncation_fails_cleanly_and_never_loads_partially() {
        let json = sample().to_json();
        assert!(json.is_ascii(), "byte slicing below assumes ASCII output");
        for len in 0..json.len() {
            let torn = &json[..len];
            match FleetManifest::<i64>::from_json(torn) {
                Err(FleetError::ManifestParse(_)) => {}
                Err(other) => panic!("truncation at {len} gave a non-parse error: {other:?}"),
                Ok(_) => panic!("truncation at {len} of {} still parsed", json.len()),
            }
        }
        assert_eq!(
            FleetManifest::<i64>::from_json(&json).expect("full text parses"),
            sample()
        );
    }

    #[test]
    fn trailing_garbage_after_a_valid_manifest_is_rejected() {
        let json = sample().to_json();
        for garbage in ["x", "{}", "null", " \n[1,2]", "}"] {
            let err = FleetManifest::<i64>::from_json(&format!("{json}{garbage}"))
                .expect_err("trailing bytes must fail");
            assert!(matches!(err, FleetError::ManifestParse(_)), "{garbage:?}");
        }
    }

    #[test]
    fn non_utf8_bytes_on_disk_are_a_parse_error_not_a_panic() {
        let dir = std::env::temp_dir().join("irgrid_fleet_manifest_utf8_test");
        fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(MANIFEST_FILE);
        let mut bytes = sample().to_json().into_bytes();
        bytes.extend_from_slice(&[0xFF, 0xFE, 0x00]);
        fs::write(&path, &bytes).expect("write corrupt bytes");
        let err = FleetManifest::<i64>::read_file(&path).expect_err("must fail");
        assert!(matches!(err, FleetError::ManifestParse(_)));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tmp_from_a_crashed_write_never_shadows_the_committed_manifest() {
        let dir = std::env::temp_dir().join("irgrid_fleet_manifest_torn_test");
        fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(MANIFEST_FILE);

        let committed = sample();
        committed.write_file(&path).expect("commit round N");

        // Simulate a crash halfway through committing round N+1: the
        // sibling tmp holds a truncated next manifest and the rename
        // never happened.
        let mut next = committed.clone();
        next.rounds_done += 1;
        let next_json = next.to_json();
        fs::write(
            path.with_extension("tmp"),
            &next_json[..next_json.len() / 2],
        )
        .expect("write torn tmp");

        // Resume reads the committed barrier untouched — the torn round
        // is simply replayed.
        let back: FleetManifest<i64> = FleetManifest::read_file(&path).expect("read");
        assert_eq!(back, committed);
        assert_eq!(back.rounds_done, committed.rounds_done);

        // And the replayed round's commit overwrites the torn tmp.
        next.write_file(&path).expect("recommit round N+1");
        let back: FleetManifest<i64> = FleetManifest::read_file(&path).expect("reread");
        assert_eq!(back, next);
        assert!(!path.with_extension("tmp").exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn digest_distinguishes_states_and_is_stable() {
        let a = state_digest(&vec![1i64, 2, 3]);
        let b = state_digest(&vec![1i64, 2, 3]);
        let c = state_digest(&vec![3i64, 2, 1]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 16);
    }
}
