//! `irgrid-fleet` — a deterministic multi-replica annealing orchestrator.
//!
//! The DATE 2004 paper's results come from batches of independently
//! seeded annealing runs ("every test case is performed 20 times using
//! different random number generator seeds"). This crate turns that
//! protocol into a supervised subsystem: a fixed-size worker pool over
//! [`std::thread::scope`] runs many replicas of one
//! [`Problem`](irgrid_anneal::Problem) concurrently, with per-replica
//! checkpoints, propagated cancellation and deadlines, crash recovery
//! from a single atomic manifest, and a deterministic JSONL telemetry
//! stream.
//!
//! # Determinism contract
//!
//! For a fixed [`FleetConfig`] and problem, the fleet's outcome — best
//! state, best cost, exchange trace, and the full telemetry event
//! sequence — is **bit-identical** for any worker count and across any
//! pause/kill + resume cycle. Three disciplines make that true:
//!
//! 1. **Pure segments.** Replicas advance in rounds of
//!    [`FleetConfig::sync_every`] temperature steps via
//!    [`RunControl::with_step_budget`](irgrid_anneal::RunControl::with_step_budget);
//!    a segment's output is a pure function of its input checkpoint, so
//!    it does not matter which worker runs it or when.
//! 2. **A dedicated exchange RNG.** Temperature-ladder exchange decisions
//!    ([`ExchangeMode::Ladder`]) happen on the supervisor thread at round
//!    barriers, in fixed replica order, driven by their own
//!    [`ChaCha8Rng`](rand_chacha::ChaCha8Rng) stream — never by worker
//!    timing.
//! 3. **Supervisor-ordered effects.** Telemetry events and persistence
//!    are emitted by the supervisor in replica order at round boundaries;
//!    workers never write shared state except their own result slot.
//!
//! This is the same contiguous-ownership discipline the retained
//! congestion evaluator uses for row bands (DESIGN.md §3b), lifted from
//! cells to whole annealing replicas.
//!
//! # Problem factories
//!
//! The supervisor is generic over a *problem factory* `Fn() -> P` called
//! once per worker: problems with interior scratch (such as
//! `FloorplanProblem`'s retained congestion session) are not `Sync`, so
//! every worker builds its own instance. Factories must produce
//! **cost-identical** problems — the same state must score the same cost
//! bits in every instance — which holds for any deterministic
//! construction (the floorplanner's calibration walk is seeded).
//!
//! # Quickstart
//!
//! ```
//! use irgrid_anneal::{Annealer, Problem, Schedule};
//! use irgrid_fleet::{ExchangeMode, Fleet, FleetConfig, FleetOptions};
//! use rand::Rng;
//!
//! struct Bowl;
//! impl Problem for Bowl {
//!     type State = i64;
//!     fn initial_state(&self) -> i64 { 1000 }
//!     fn cost(&self, s: &i64) -> f64 { ((s - 7) * (s - 7)) as f64 }
//!     fn perturb<R: Rng>(&self, s: &mut i64, rng: &mut R) {
//!         *s += rng.gen_range(-10..=10);
//!     }
//! }
//!
//! let fleet = Fleet::new(
//!     Annealer::new(Schedule::quick()),
//!     FleetConfig {
//!         replicas: 4,
//!         workers: 2,
//!         mode: ExchangeMode::Ladder,
//!         ..FleetConfig::default()
//!     },
//! )?;
//! let outcome = fleet.run(|| Bowl, &FleetOptions::default())?;
//! assert!(outcome.complete);
//! assert!((outcome.best - 7).abs() <= 2);
//! # Ok::<(), irgrid_fleet::FleetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod exchange;
mod manifest;
pub mod pool;
mod replica;
mod supervisor;
mod telemetry;

pub use config::{ExchangeMode, FleetConfig, FleetError};
pub use exchange::ExchangeDecision;
pub use manifest::{state_digest, FleetManifest, MANIFEST_FILE, MANIFEST_VERSION, TELEMETRY_FILE};
pub use replica::{ReplicaPhase, ReplicaRecord, SegmentOutcome};
pub use supervisor::{Fleet, FleetOptions, FleetOutcome, ReplicaSummary};
pub use telemetry::{FleetEvent, TelemetryLog};
