//! A deterministic fixed-size worker pool.
//!
//! [`run_ordered`] fans a vector of jobs out over `workers` scoped
//! threads and returns the outputs **in job order**, regardless of which
//! worker ran which job or in what order they finished. Jobs must be
//! independent — each output a pure function of its job — which is
//! exactly what the fleet's pure-segment discipline guarantees, so the
//! pool adds concurrency without adding nondeterminism.
//!
//! The pool is public because `irgrid-bench` reuses it to parallelize
//! per-seed experiment batches under `--jobs N`.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Runs every job and returns the outputs in job order.
///
/// Each worker thread first builds its own context via
/// `make_context(worker_index)` — the hook for per-worker problem
/// instances that are not `Sync` — then repeatedly pulls the
/// lowest-numbered remaining job from a shared queue and runs
/// `run(&mut context, job_index, job)`.
///
/// With `workers <= 1` (or fewer than two jobs) everything runs inline on
/// the calling thread with no locking, so a single-worker fleet is not
/// just bit-identical to a parallel one but byte-for-byte the same
/// execution.
///
/// # Panics
///
/// Propagates a panic from `make_context` or `run`; outputs of already
/// finished jobs are discarded. (The fleet's own closures return typed
/// errors instead of panicking.)
pub fn run_ordered<J, O, C>(
    workers: usize,
    jobs: Vec<J>,
    make_context: impl Fn(usize) -> C + Sync,
    run: impl Fn(&mut C, usize, J) -> O + Sync,
) -> Vec<O>
where
    J: Send,
    O: Send,
{
    if workers <= 1 || jobs.len() < 2 {
        let mut context = make_context(0);
        return jobs
            .into_iter()
            .enumerate()
            .map(|(index, job)| run(&mut context, index, job))
            .collect();
    }

    let threads = workers.min(jobs.len());
    let mut slots: Vec<Option<O>> = Vec::with_capacity(jobs.len());
    slots.resize_with(jobs.len(), || None);
    let queue: Mutex<VecDeque<(usize, J)>> = Mutex::new(jobs.into_iter().enumerate().collect());
    let results: Mutex<Vec<Option<O>>> = Mutex::new(slots);

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let queue = &queue;
            let results = &results;
            let make_context = &make_context;
            let run = &run;
            scope.spawn(move || {
                let mut context = make_context(worker);
                loop {
                    // irgrid-lint: allow(P1): a poisoned mutex means a sibling
                    // worker panicked; the scope is unwinding and re-raising
                    // here is the correct propagation.
                    let mut guard = queue.lock().expect("worker pool queue poisoned");
                    let job = guard.pop_front();
                    drop(guard);
                    let Some((index, job)) = job else { break };
                    let output = run(&mut context, index, job);
                    // irgrid-lint: allow(P1): same poisoning argument as above
                    results.lock().expect("worker pool results poisoned")[index] = Some(output);
                }
            });
        }
    });

    // irgrid-lint: allow(P1): the scope joined every worker, so the mutex
    // cannot be poisoned or contended here.
    let slots = results.into_inner().expect("worker pool results poisoned");
    slots
        .into_iter()
        .map(|slot| {
            // irgrid-lint: allow(P1): every queue entry was drained and its
            // slot filled before the scope returned.
            slot.expect("worker pool left a job unfinished")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_are_in_job_order_for_any_worker_count() {
        let jobs: Vec<u64> = (0..17).collect();
        let reference: Vec<u64> = jobs.iter().map(|j| j * j).collect();
        for workers in [1, 2, 3, 8, 32] {
            let got = run_ordered(workers, jobs.clone(), |_| (), |(), _, job| job * job);
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn context_is_built_once_per_worker_and_reused() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let contexts = AtomicUsize::new(0);
        let jobs: Vec<usize> = (0..20).collect();
        let out = run_ordered(
            4,
            jobs,
            |worker| {
                contexts.fetch_add(1, Ordering::Relaxed);
                worker
            },
            |worker, _, job| (*worker, job),
        );
        assert!(contexts.load(Ordering::Relaxed) <= 4);
        // Regardless of which worker ran what, job payloads stay ordered.
        let payloads: Vec<usize> = out.iter().map(|(_, j)| *j).collect();
        assert_eq!(payloads, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_job_lists_run_inline() {
        let none: Vec<u8> = run_ordered(8, Vec::new(), |_| (), |(), _, j| j);
        assert!(none.is_empty());
        let one = run_ordered(8, vec![41u8], |_| (), |(), _, j| j + 1);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn pool_never_spawns_more_threads_than_jobs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let contexts = AtomicUsize::new(0);
        let _ = run_ordered(
            64,
            vec![1, 2, 3],
            |_| {
                contexts.fetch_add(1, Ordering::Relaxed);
            },
            |(), _, job: i32| job,
        );
        assert!(contexts.load(Ordering::Relaxed) <= 3);
    }
}
