//! The fleet supervisor: the round loop that ties the subsystem together.
//!
//! Each round the supervisor (1) fans the live replicas out over the
//! worker pool, each advancing [`FleetConfig::sync_every`] temperature
//! steps as a pure segment; (2) applies the outcomes in replica order,
//! emitting telemetry; (3) runs the exchange step in
//! [`ExchangeMode::Ladder`](crate::ExchangeMode::Ladder); and (4) commits
//! the barrier — per-replica checkpoint files, the atomic manifest, and
//! a telemetry flush. Cancellation or a deadline aborts the in-flight
//! round *uncommitted*, so a resumed fleet replays at most one round and
//! lands on exactly the trajectory an uninterrupted fleet takes.
//!
//! This module is the only place in the crate that reads the wall clock,
//! and only for run control (deadlines) and reporting (elapsed time) —
//! never for anything that feeds results.

use std::path::{Path, PathBuf};
// irgrid-lint: allow(D1): wall-clock use is confined to run control and
// elapsed-time reporting in this supervisor module; results never depend on it.
use std::time::{Duration, Instant};

use irgrid_anneal::{Annealer, CancelToken, Problem, RunControl, StopReason};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::config::{ExchangeMode, FleetConfig, FleetError};
use crate::exchange::{exchange_round, ExchangeDecision};
use crate::manifest::{FleetManifest, MANIFEST_FILE, MANIFEST_VERSION, TELEMETRY_FILE};
use crate::pool;
use crate::replica::{run_segment, ReplicaPhase, ReplicaRecord, SegmentOutcome};
use crate::telemetry::{FleetEvent, TelemetryLog};

/// One pool job: `(replica index, seed, resume checkpoint)`.
type SegmentJob<S> = (usize, u64, Option<irgrid_anneal::Checkpoint<S>>);

/// A configured multi-replica annealing fleet.
#[derive(Debug, Clone)]
pub struct Fleet {
    annealer: Annealer,
    config: FleetConfig,
}

/// Per-invocation options: where to persist, whether to resume, and how
/// to stop early. None of these affect the *result* the fleet converges
/// to — only how far a single invocation gets.
#[derive(Debug, Clone, Default)]
pub struct FleetOptions {
    /// Directory for the manifest, per-replica checkpoints, and the
    /// JSONL telemetry mirror. `None` keeps everything in memory (no
    /// crash recovery).
    pub run_dir: Option<PathBuf>,
    /// Continue from the manifest in [`run_dir`](FleetOptions::run_dir)
    /// instead of starting fresh. Errors if no manifest exists.
    pub resume: bool,
    /// Cooperative cancellation, checked at step boundaries inside every
    /// replica segment.
    pub cancel: Option<CancelToken>,
    /// Wall-clock budget for this invocation.
    pub time_limit: Option<Duration>,
    /// Stop (without error) after this many rounds have committed in
    /// *this* invocation — the deterministic pause hook used by the
    /// kill/resume tests.
    pub pause_after_rounds: Option<usize>,
}

/// One replica's contribution to a [`FleetOutcome`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaSummary {
    /// Replica index.
    pub replica: usize,
    /// Its annealing seed.
    pub seed: u64,
    /// Why it stopped, if it reached a terminal phase.
    pub stop_reason: Option<StopReason>,
    /// Its best cost so far (absent only if it never ran a segment).
    pub best_cost: Option<f64>,
    /// Temperature steps completed.
    pub temperatures: usize,
    /// Moves accepted.
    pub accepted: usize,
    /// Moves rejected.
    pub rejected: usize,
}

impl ReplicaSummary {
    fn from_record<S>(replica: usize, record: &ReplicaRecord<S>) -> ReplicaSummary {
        let (stop_reason, stats) = match &record.phase {
            ReplicaPhase::Pending => (None, None),
            ReplicaPhase::Active(checkpoint) => (None, Some(checkpoint.stats)),
            ReplicaPhase::Finished { reason, stats, .. } => (Some(*reason), Some(*stats)),
        };
        let stats = stats.unwrap_or_default();
        ReplicaSummary {
            replica,
            seed: record.seed,
            stop_reason,
            best_cost: record.phase.best_cost(),
            temperatures: stats.temperatures,
            accepted: stats.accepted,
            rejected: stats.rejected,
        }
    }

    /// Bit-exact equality (costs compared by their bit patterns).
    #[must_use]
    pub fn deterministic_eq(&self, other: &ReplicaSummary) -> bool {
        self.replica == other.replica
            && self.seed == other.seed
            && self.stop_reason == other.stop_reason
            && self.best_cost.map(f64::to_bits) == other.best_cost.map(f64::to_bits)
            && self.temperatures == other.temperatures
            && self.accepted == other.accepted
            && self.rejected == other.rejected
    }
}

/// Everything one fleet invocation produced.
#[derive(Debug, Clone)]
pub struct FleetOutcome<S> {
    /// Index of the replica holding the fleet-best state (ties broken by
    /// the lowest index).
    pub best_replica: usize,
    /// The fleet-best state.
    pub best: S,
    /// Its cost.
    pub best_cost: f64,
    /// Per-replica summaries, in index order.
    pub replicas: Vec<ReplicaSummary>,
    /// All exchange decisions so far, in decision order.
    pub trace: Vec<ExchangeDecision>,
    /// The full telemetry history (including rounds committed by earlier
    /// invocations when resuming).
    pub events: Vec<FleetEvent>,
    /// Rounds committed over the fleet's whole lifetime.
    pub rounds: usize,
    /// Whether every replica reached a terminal phase. `false` means the
    /// invocation paused (cancel, deadline, or
    /// [`pause_after_rounds`](FleetOptions::pause_after_rounds)) and the
    /// fleet can be resumed.
    pub complete: bool,
    /// Wall-clock seconds this invocation took. The only
    /// nondeterministic field; excluded from
    /// [`deterministic_eq`](FleetOutcome::deterministic_eq).
    pub wall_s: f64,
}

impl<S: PartialEq> FleetOutcome<S> {
    /// Bit-exact equality of everything except
    /// [`wall_s`](FleetOutcome::wall_s) — the check behind the fleet's
    /// worker-count and resume invariance guarantees.
    #[must_use]
    pub fn deterministic_eq(&self, other: &FleetOutcome<S>) -> bool {
        self.best_replica == other.best_replica
            && self.best == other.best
            && self.best_cost.to_bits() == other.best_cost.to_bits()
            && self.rounds == other.rounds
            && self.complete == other.complete
            && self.replicas.len() == other.replicas.len()
            && self
                .replicas
                .iter()
                .zip(&other.replicas)
                .all(|(a, b)| a.deterministic_eq(b))
            && self.trace == other.trace
            && self.events == other.events
    }
}

impl Fleet {
    /// Creates a fleet, validating the configuration.
    pub fn new(annealer: Annealer, config: FleetConfig) -> Result<Fleet, FleetError> {
        config.validated()?;
        Ok(Fleet { annealer, config })
    }

    /// The fleet's configuration.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Runs (or resumes) the fleet until every replica reaches a terminal
    /// phase or the invocation is paused by `options`.
    ///
    /// `factory` is called once per worker thread to build that worker's
    /// problem instance; instances must be cost-identical (the same state
    /// must score the same cost bits in every instance), which any
    /// deterministic construction satisfies.
    ///
    /// # Errors
    ///
    /// Returns a [`FleetError`] for configuration, i/o, or manifest
    /// problems, and aborts with [`FleetError::Anneal`] if any replica's
    /// run fails — a failed replica means costs cannot be trusted, so
    /// there is no partial result.
    pub fn run<P, F>(
        &self,
        factory: F,
        options: &FleetOptions,
    ) -> Result<FleetOutcome<P::State>, FleetError>
    where
        P: Problem,
        P::State: Clone + Send + PartialEq + Serialize + Deserialize,
        F: Fn() -> P + Sync,
    {
        // irgrid-lint: allow(D1): elapsed-time reporting only; never feeds results
        let started = Instant::now();
        let mut state = self.load_or_init(options)?;

        let mut base = RunControl::unlimited();
        if let Some(token) = &options.cancel {
            base = base.with_cancel_token(token.clone());
        }
        if let Some(limit) = options.time_limit {
            base = base.with_time_limit(limit);
        }

        let mut rounds_this_invocation = 0usize;
        let mut complete;
        loop {
            let live: Vec<usize> = (0..state.replicas.len())
                .filter(|&k| state.replicas[k].phase.is_live())
                .collect();
            complete = live.is_empty();
            if complete {
                break;
            }
            if options
                .pause_after_rounds
                .is_some_and(|k| rounds_this_invocation >= k)
            {
                break;
            }
            if options
                .cancel
                .as_ref()
                .is_some_and(CancelToken::is_cancelled)
            {
                break;
            }

            let target = (state.rounds_done + 1) * self.config.sync_every;
            let jobs: Vec<SegmentJob<P::State>> = live
                .iter()
                .map(|&k| {
                    let record = &state.replicas[k];
                    (k, record.seed, record.phase.checkpoint().cloned())
                })
                .collect();

            let annealer = &self.annealer;
            let control = &base;
            let outcomes = pool::run_ordered(
                self.config.workers,
                jobs,
                |_| factory(),
                |problem, _, (replica, seed, start)| {
                    let segment = run_segment(annealer, problem, seed, start, target, control);
                    (replica, segment)
                },
            );

            // An interrupted segment means the round cannot commit as a
            // barrier: discard it entirely (bounded replay: one round).
            let mut interrupted = false;
            let mut committed = Vec::with_capacity(outcomes.len());
            for (replica, segment) in outcomes {
                let segment = segment.map_err(|source| FleetError::Anneal { replica, source })?;
                if matches!(
                    segment.result.stop_reason,
                    StopReason::Cancelled | StopReason::Deadline
                ) {
                    interrupted = true;
                }
                committed.push((replica, segment));
            }
            if interrupted {
                break;
            }

            self.apply_round(&mut state, committed)?;
            if self.config.mode == ExchangeMode::Ladder {
                let decisions = exchange_round(
                    &mut state.exchange_rng,
                    state.rounds_done,
                    &mut state.replicas,
                );
                for decision in decisions {
                    state.trace.push(decision.clone());
                    state.telemetry.record(FleetEvent::Exchange(decision))?;
                }
            }
            state.rounds_done += 1;
            rounds_this_invocation += 1;
            self.persist(&mut state, options.run_dir.as_deref())?;
        }

        if complete && !state.completed_event_emitted() {
            let (best_replica, best_cost) = state
                .fleet_best()
                .ok_or(FleetError::Config("fleet completed with no replica result"))?;
            state.telemetry.record(FleetEvent::FleetCompleted {
                rounds: state.rounds_done,
                best_replica,
                best_cost,
            })?;
            self.persist(&mut state, options.run_dir.as_deref())?;
        }

        let (best_replica, best_cost) = state.fleet_best().ok_or(FleetError::Config(
            "fleet paused before any replica completed a segment",
        ))?;
        let best = state.replicas[best_replica]
            .phase
            .best()
            .cloned()
            .ok_or(FleetError::Config(
                "fleet paused before any replica completed a segment",
            ))?;
        let replicas = state
            .replicas
            .iter()
            .enumerate()
            .map(|(k, record)| ReplicaSummary::from_record(k, record))
            .collect();
        Ok(FleetOutcome {
            best_replica,
            best,
            best_cost,
            replicas,
            trace: state.trace,
            events: state.telemetry.into_events(),
            rounds: state.rounds_done,
            complete,
            wall_s: started.elapsed().as_secs_f64(),
        })
    }

    /// Builds fresh run state or loads it from the manifest.
    fn load_or_init<S>(&self, options: &FleetOptions) -> Result<RunState<S>, FleetError>
    where
        S: Clone + Serialize + Deserialize,
    {
        if let Some(dir) = &options.run_dir {
            std::fs::create_dir_all(dir).map_err(|source| FleetError::Io {
                path: dir.display().to_string(),
                source,
            })?;
        }
        if options.resume {
            let dir = options
                .run_dir
                .as_deref()
                .ok_or(FleetError::Config("resume requires a run directory"))?;
            let path = dir.join(MANIFEST_FILE);
            if !path.exists() {
                return Err(FleetError::NothingToResume {
                    dir: dir.display().to_string(),
                });
            }
            let manifest: FleetManifest<S> = FleetManifest::read_file(&path)?;
            manifest.validate(&self.config, self.annealer.schedule())?;
            let telemetry = TelemetryLog::with_history(&dir.join(TELEMETRY_FILE), manifest.events)?;
            return Ok(RunState {
                rounds_done: manifest.rounds_done,
                exchange_rng: manifest.exchange_rng,
                replicas: manifest.replicas,
                trace: manifest.trace,
                telemetry,
            });
        }

        let replicas = (0..self.config.replicas)
            .map(|k| ReplicaRecord {
                seed: self.config.replica_seed(k),
                phase: ReplicaPhase::Pending,
            })
            .collect();
        let mut telemetry = match &options.run_dir {
            Some(dir) => TelemetryLog::with_history(&dir.join(TELEMETRY_FILE), Vec::new())?,
            None => TelemetryLog::in_memory(),
        };
        telemetry.record(FleetEvent::FleetStarted {
            replicas: self.config.replicas,
            mode: self.config.mode,
            seed0: self.config.seed0,
            sync_every: self.config.sync_every,
        })?;
        Ok(RunState {
            rounds_done: 0,
            exchange_rng: ChaCha8Rng::seed_from_u64(self.config.exchange_seed),
            replicas,
            trace: Vec::new(),
            telemetry,
        })
    }

    /// Applies one committed round's segment outcomes in replica order.
    fn apply_round<S: Clone>(
        &self,
        state: &mut RunState<S>,
        outcomes: Vec<(usize, SegmentOutcome<S>)>,
    ) -> Result<(), FleetError> {
        let round = state.rounds_done;
        for (replica, segment) in outcomes {
            if matches!(state.replicas[replica].phase, ReplicaPhase::Pending) {
                state.telemetry.record(FleetEvent::ReplicaStarted {
                    replica,
                    seed: state.replicas[replica].seed,
                })?;
            }
            match segment.boundary {
                Some(checkpoint) => {
                    state.telemetry.record(FleetEvent::ReplicaCheckpointed {
                        round,
                        replica,
                        steps: checkpoint.steps_done,
                        temperature: checkpoint.temperature,
                        current_cost: checkpoint.current_cost,
                        best_cost: checkpoint.best_cost,
                        accepted: checkpoint.stats.accepted,
                        rejected: checkpoint.stats.rejected,
                    })?;
                    state.replicas[replica].phase = ReplicaPhase::Active(checkpoint);
                }
                None => {
                    let result = segment.result;
                    state.telemetry.record(FleetEvent::ReplicaStopped {
                        replica,
                        reason: result.stop_reason,
                        best_cost: result.best_cost,
                        temperatures: result.stats.temperatures,
                    })?;
                    state.replicas[replica].phase = ReplicaPhase::Finished {
                        reason: result.stop_reason,
                        best: result.best,
                        best_cost: result.best_cost,
                        stats: result.stats,
                    };
                }
            }
        }
        Ok(())
    }

    /// Commits the current barrier to the run directory (if any): the
    /// convenience per-replica checkpoint files, then the atomic
    /// manifest, then a telemetry flush.
    fn persist<S: Clone + Serialize>(
        &self,
        state: &mut RunState<S>,
        run_dir: Option<&Path>,
    ) -> Result<(), FleetError> {
        let Some(dir) = run_dir else {
            return Ok(());
        };
        for (k, record) in state.replicas.iter().enumerate() {
            if let Some(checkpoint) = record.phase.checkpoint() {
                checkpoint.write_file(&dir.join(format!("replica_{k}.ckpt.json")))?;
            }
        }
        let manifest = FleetManifest {
            version: MANIFEST_VERSION,
            config: self.config,
            schedule: *self.annealer.schedule(),
            rounds_done: state.rounds_done,
            exchange_rng: state.exchange_rng.clone(),
            replicas: state.replicas.clone(),
            trace: state.trace.clone(),
            events: state.telemetry.events().to_vec(),
        };
        manifest.write_file(&dir.join(MANIFEST_FILE))?;
        state.telemetry.flush()
    }
}

/// Mutable orchestration state for one invocation.
struct RunState<S> {
    rounds_done: usize,
    exchange_rng: ChaCha8Rng,
    replicas: Vec<ReplicaRecord<S>>,
    trace: Vec<ExchangeDecision>,
    telemetry: TelemetryLog,
}

impl<S> RunState<S> {
    /// The `(replica, best_cost)` of the current fleet best: the lowest
    /// best cost, ties broken by the lowest replica index.
    fn fleet_best(&self) -> Option<(usize, f64)> {
        self.replicas
            .iter()
            .enumerate()
            .filter_map(|(k, record)| record.phase.best_cost().map(|cost| (k, cost)))
            .min_by(|(ka, ca), (kb, cb)| ca.total_cmp(cb).then(ka.cmp(kb)))
    }

    /// Whether `FleetCompleted` was already emitted (possibly by an
    /// earlier invocation whose events we resumed).
    fn completed_event_emitted(&self) -> bool {
        self.telemetry
            .events()
            .iter()
            .any(|event| matches!(event, FleetEvent::FleetCompleted { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irgrid_anneal::Schedule;
    use rand::Rng;

    struct Bowl;
    impl Problem for Bowl {
        type State = i64;
        fn initial_state(&self) -> i64 {
            1000
        }
        fn cost(&self, s: &i64) -> f64 {
            ((s - 7) * (s - 7)) as f64
        }
        fn perturb<R: Rng>(&self, s: &mut i64, rng: &mut R) {
            *s += rng.gen_range(-10..=10);
        }
    }

    fn fleet(mode: ExchangeMode, workers: usize) -> Fleet {
        Fleet::new(
            Annealer::new(Schedule::quick()),
            FleetConfig {
                replicas: 3,
                workers,
                mode,
                ..FleetConfig::default()
            },
        )
        .expect("valid config")
    }

    #[test]
    fn independent_fleet_matches_sequential_runs() {
        let fleet = fleet(ExchangeMode::Independent, 2);
        let outcome = fleet
            .run(|| Bowl, &FleetOptions::default())
            .expect("fleet runs");
        assert!(outcome.complete);
        assert!(outcome.trace.is_empty(), "independent mode never exchanges");

        // Every replica must match a plain sequential run of its seed.
        let annealer = Annealer::new(Schedule::quick());
        for summary in &outcome.replicas {
            let reference = annealer
                .run_controlled(&Bowl, summary.seed, &RunControl::unlimited())
                .expect("reference runs");
            assert_eq!(
                summary.best_cost.map(f64::to_bits),
                Some(reference.best_cost.to_bits()),
                "replica {} diverged from its sequential reference",
                summary.replica
            );
            assert_eq!(summary.temperatures, reference.stats.temperatures);
            assert_eq!(summary.accepted, reference.stats.accepted);
        }
    }

    #[test]
    fn outcome_is_bit_identical_across_worker_counts() {
        for mode in [ExchangeMode::Independent, ExchangeMode::Ladder] {
            let reference = fleet(mode, 1)
                .run(|| Bowl, &FleetOptions::default())
                .expect("reference fleet");
            for workers in [2, 4, 8] {
                let outcome = fleet(mode, workers)
                    .run(|| Bowl, &FleetOptions::default())
                    .expect("fleet runs");
                assert!(
                    outcome.deterministic_eq(&reference),
                    "mode {mode}: workers={workers} diverged"
                );
            }
        }
    }

    #[test]
    fn ladder_mode_records_an_exchange_trace() {
        let outcome = fleet(ExchangeMode::Ladder, 2)
            .run(|| Bowl, &FleetOptions::default())
            .expect("fleet runs");
        assert!(outcome.complete);
        assert!(
            !outcome.trace.is_empty(),
            "adjacent replicas must attempt swaps"
        );
        // The trace is mirrored one-to-one into telemetry.
        let exchange_events = outcome
            .events
            .iter()
            .filter(|e| matches!(e, FleetEvent::Exchange(_)))
            .count();
        assert_eq!(exchange_events, outcome.trace.len());
    }

    #[test]
    fn telemetry_brackets_every_replica() {
        let outcome = fleet(ExchangeMode::Independent, 3)
            .run(|| Bowl, &FleetOptions::default())
            .expect("fleet runs");
        let started = outcome
            .events
            .iter()
            .filter(|e| matches!(e, FleetEvent::ReplicaStarted { .. }))
            .count();
        let stopped = outcome
            .events
            .iter()
            .filter(|e| matches!(e, FleetEvent::ReplicaStopped { .. }))
            .count();
        assert_eq!(started, 3);
        assert_eq!(stopped, 3);
        assert!(matches!(
            outcome.events.first(),
            Some(FleetEvent::FleetStarted { .. })
        ));
        assert!(matches!(
            outcome.events.last(),
            Some(FleetEvent::FleetCompleted { .. })
        ));
    }

    #[test]
    fn pause_and_resume_matches_uninterrupted_run() {
        let dir = std::env::temp_dir().join("irgrid_fleet_pause_resume");
        std::fs::remove_dir_all(&dir).ok();
        let fleet = fleet(ExchangeMode::Ladder, 2);
        let reference = fleet
            .run(|| Bowl, &FleetOptions::default())
            .expect("reference fleet");

        let paused = fleet
            .run(
                || Bowl,
                &FleetOptions {
                    run_dir: Some(dir.clone()),
                    pause_after_rounds: Some(2),
                    ..FleetOptions::default()
                },
            )
            .expect("paused fleet");
        assert!(!paused.complete);
        assert_eq!(paused.rounds, 2);

        let resumed = fleet
            .run(
                || Bowl,
                &FleetOptions {
                    run_dir: Some(dir.clone()),
                    resume: true,
                    ..FleetOptions::default()
                },
            )
            .expect("resumed fleet");
        assert!(resumed.deterministic_eq(&reference));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cancelled_fleet_resumes_to_the_same_result() {
        let dir = std::env::temp_dir().join("irgrid_fleet_cancelled");
        std::fs::remove_dir_all(&dir).ok();
        let fleet = fleet(ExchangeMode::Ladder, 2);
        let reference = fleet
            .run(|| Bowl, &FleetOptions::default())
            .expect("reference fleet");

        // A pre-cancelled token stops every segment at its first
        // boundary; the round never commits.
        let token = CancelToken::new();
        token.cancel();
        let first = fleet
            .run(
                || Bowl,
                &FleetOptions {
                    run_dir: Some(dir.clone()),
                    cancel: Some(token),
                    ..FleetOptions::default()
                },
            )
            .expect_err("nothing committed, so there is no partial result");
        assert!(matches!(first, FleetError::Config(_)));

        // The directory holds a start-of-run telemetry file but no
        // manifest, so resuming reports NothingToResume.
        let resumed = fleet.run(
            || Bowl,
            &FleetOptions {
                run_dir: Some(dir.clone()),
                resume: true,
                ..FleetOptions::default()
            },
        );
        assert!(matches!(resumed, Err(FleetError::NothingToResume { .. })));

        // Cancelling after some rounds commit leaves a resumable manifest.
        let token = CancelToken::new();
        let paused = fleet
            .run(
                || Bowl,
                &FleetOptions {
                    run_dir: Some(dir.clone()),
                    pause_after_rounds: Some(1),
                    cancel: Some(token),
                    ..FleetOptions::default()
                },
            )
            .expect("one round commits");
        assert!(!paused.complete);
        let resumed = fleet
            .run(
                || Bowl,
                &FleetOptions {
                    run_dir: Some(dir.clone()),
                    resume: true,
                    ..FleetOptions::default()
                },
            )
            .expect("resumed fleet");
        assert!(resumed.deterministic_eq(&reference));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_refuses_mismatched_schedule() {
        let dir = std::env::temp_dir().join("irgrid_fleet_mismatch");
        std::fs::remove_dir_all(&dir).ok();
        let fleet_a = fleet(ExchangeMode::Independent, 1);
        fleet_a
            .run(
                || Bowl,
                &FleetOptions {
                    run_dir: Some(dir.clone()),
                    pause_after_rounds: Some(1),
                    ..FleetOptions::default()
                },
            )
            .expect("one round commits");

        let fleet_b = Fleet::new(Annealer::new(Schedule::default()), *fleet_a.config())
            .expect("valid config");
        let err = fleet_b
            .run(
                || Bowl,
                &FleetOptions {
                    run_dir: Some(dir.clone()),
                    resume: true,
                    ..FleetOptions::default()
                },
            )
            .expect_err("schedule drift must be refused");
        assert!(matches!(
            err,
            FleetError::ManifestMismatch { what: "schedule" }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resuming_a_complete_fleet_is_a_stable_no_op() {
        let dir = std::env::temp_dir().join("irgrid_fleet_complete_noop");
        std::fs::remove_dir_all(&dir).ok();
        let fleet = fleet(ExchangeMode::Ladder, 2);
        let options = FleetOptions {
            run_dir: Some(dir.clone()),
            ..FleetOptions::default()
        };
        let first = fleet.run(|| Bowl, &options).expect("fleet runs");
        assert!(first.complete);
        let again = fleet
            .run(
                || Bowl,
                &FleetOptions {
                    resume: true,
                    ..options
                },
            )
            .expect("resume of a complete fleet");
        assert!(
            again.deterministic_eq(&first),
            "no duplicate events or drift"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
