//! The fleet's deterministic telemetry stream.
//!
//! Every orchestration effect — replicas starting, checkpointing,
//! exchanging, stopping, the fleet completing — is recorded as a
//! [`FleetEvent`]. The sequence is part of the determinism contract:
//! events carry **no** worker identities, timestamps, or file paths, so
//! the stream is bit-identical for any worker count and across resumes.
//! When a run directory is configured the stream is additionally
//! mirrored to a JSONL file (one compact JSON object per line) for
//! offline inspection; the manifest, not the JSONL file, is the crash
//! recovery source of truth.

use std::fs;
use std::io::{BufWriter, Write as _};
use std::path::Path;

use irgrid_anneal::StopReason;
use serde::{Deserialize, Serialize};

use crate::config::{ExchangeMode, FleetError};
use crate::exchange::ExchangeDecision;

/// One deterministic orchestration event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FleetEvent {
    /// The fleet began (or resumed toward) a run with these parameters.
    /// Emitted exactly once per run, never on resume.
    FleetStarted {
        /// Number of replicas.
        replicas: usize,
        /// Replica interaction mode.
        mode: ExchangeMode,
        /// First replica seed.
        seed0: u64,
        /// Steps per synchronization round.
        sync_every: usize,
    },
    /// A replica ran its first segment this fleet.
    ReplicaStarted {
        /// Replica index.
        replica: usize,
        /// Its annealing seed.
        seed: u64,
    },
    /// A replica committed a round boundary and remains active.
    ReplicaCheckpointed {
        /// The round that just committed (0-based).
        round: usize,
        /// Replica index.
        replica: usize,
        /// Total temperature steps the replica has completed.
        steps: usize,
        /// The temperature its next step will run at.
        temperature: f64,
        /// Its current walker cost at the boundary.
        current_cost: f64,
        /// Its best cost so far.
        best_cost: f64,
        /// Cumulative accepted moves.
        accepted: usize,
        /// Cumulative rejected moves.
        rejected: usize,
    },
    /// An exchange attempt between adjacent replicas.
    Exchange(ExchangeDecision),
    /// A replica stopped for a terminal reason.
    ReplicaStopped {
        /// Replica index.
        replica: usize,
        /// Why it stopped.
        reason: StopReason,
        /// Its final best cost.
        best_cost: f64,
        /// Total temperature steps it ran.
        temperatures: usize,
    },
    /// Every replica reached a terminal phase; the fleet is complete.
    /// Emitted exactly once per fleet, even across resumes.
    FleetCompleted {
        /// Rounds committed over the fleet's whole lifetime.
        rounds: usize,
        /// Index of the winning replica.
        best_replica: usize,
        /// The winning cost.
        best_cost: f64,
    },
}

/// An in-memory event log, optionally mirrored to a JSONL file.
#[derive(Debug)]
pub struct TelemetryLog {
    events: Vec<FleetEvent>,
    writer: Option<BufWriter<fs::File>>,
    path: Option<String>,
}

impl TelemetryLog {
    /// A log that only accumulates events in memory.
    #[must_use]
    pub fn in_memory() -> TelemetryLog {
        TelemetryLog {
            events: Vec::new(),
            writer: None,
            path: None,
        }
    }

    /// A log mirrored to the JSONL file at `path`, seeded with `history`
    /// (the events recovered from a manifest on resume). The file is
    /// rewritten from the history so it always holds the full stream,
    /// even when the previous process died mid-line.
    pub fn with_history(path: &Path, history: Vec<FleetEvent>) -> Result<TelemetryLog, FleetError> {
        let display = path.display().to_string();
        let io = |source| FleetError::Io {
            path: display.clone(),
            source,
        };
        let mut writer = BufWriter::new(fs::File::create(path).map_err(io)?);
        for event in &history {
            write_line(&mut writer, event).map_err(io)?;
        }
        Ok(TelemetryLog {
            events: history,
            writer: Some(writer),
            path: Some(display),
        })
    }

    /// Appends one event to the log (and its JSONL mirror, if any).
    pub fn record(&mut self, event: FleetEvent) -> Result<(), FleetError> {
        if let Some(writer) = self.writer.as_mut() {
            write_line(writer, &event).map_err(|source| FleetError::Io {
                path: self.path.clone().unwrap_or_default(),
                source,
            })?;
        }
        self.events.push(event);
        Ok(())
    }

    /// Flushes the JSONL mirror (called at round commits).
    pub fn flush(&mut self) -> Result<(), FleetError> {
        if let Some(writer) = self.writer.as_mut() {
            writer.flush().map_err(|source| FleetError::Io {
                path: self.path.clone().unwrap_or_default(),
                source,
            })?;
        }
        Ok(())
    }

    /// The full event sequence so far.
    #[must_use]
    pub fn events(&self) -> &[FleetEvent] {
        &self.events
    }

    /// Consumes the log, returning the event sequence.
    #[must_use]
    pub fn into_events(self) -> Vec<FleetEvent> {
        self.events
    }
}

fn write_line(writer: &mut BufWriter<fs::File>, event: &FleetEvent) -> std::io::Result<()> {
    // irgrid-lint: allow(P1): serializing a plain owned data struct cannot fail
    let line = serde_json::to_string(event).expect("telemetry serialization is infallible");
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<FleetEvent> {
        vec![
            FleetEvent::FleetStarted {
                replicas: 2,
                mode: ExchangeMode::Ladder,
                seed0: 0,
                sync_every: 5,
            },
            FleetEvent::ReplicaStarted {
                replica: 0,
                seed: 0,
            },
            FleetEvent::ReplicaCheckpointed {
                round: 0,
                replica: 0,
                steps: 5,
                temperature: 3.5,
                current_cost: 12.0,
                best_cost: 10.0,
                accepted: 40,
                rejected: 60,
            },
            FleetEvent::Exchange(ExchangeDecision {
                round: 0,
                lower: 0,
                upper: 1,
                cost_lower: 12.0,
                cost_upper: 9.0,
                temp_lower: 3.5,
                temp_upper: 1.5,
                unit: 0.25,
                accepted: false,
            }),
            FleetEvent::ReplicaStopped {
                replica: 0,
                reason: StopReason::Converged,
                best_cost: 10.0,
                temperatures: 37,
            },
            FleetEvent::FleetCompleted {
                rounds: 8,
                best_replica: 0,
                best_cost: 10.0,
            },
        ]
    }

    #[test]
    fn every_event_survives_serde() {
        for event in sample_events() {
            let value = Serialize::to_value(&event);
            let back: FleetEvent = Deserialize::from_value(&value).expect("roundtrip");
            assert_eq!(event, back);
        }
    }

    #[test]
    fn jsonl_mirror_holds_one_compact_line_per_event() {
        let dir = std::env::temp_dir().join("irgrid_fleet_telemetry_test");
        fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("telemetry.jsonl");

        let history = sample_events();
        let mut log = TelemetryLog::with_history(&path, history[..2].to_vec()).expect("open");
        for event in &history[2..] {
            log.record(event.clone()).expect("record");
        }
        log.flush().expect("flush");
        assert_eq!(log.events(), &history[..]);

        let text = fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), history.len());
        for (line, event) in lines.iter().zip(&history) {
            assert!(!line.contains('\n'));
            let back: FleetEvent = serde_json::from_str(line).expect("line parses");
            assert_eq!(back, *event);
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn with_history_rewrites_a_torn_file() {
        let dir = std::env::temp_dir().join("irgrid_fleet_telemetry_torn");
        fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("telemetry.jsonl");
        fs::write(&path, "{\"truncated\":").expect("seed torn file");

        let history = sample_events();
        let mut log = TelemetryLog::with_history(&path, history.clone()).expect("open");
        log.flush().expect("flush");
        let text = fs::read_to_string(&path).expect("read back");
        assert_eq!(text.lines().count(), history.len());
        fs::remove_dir_all(&dir).ok();
    }
}
