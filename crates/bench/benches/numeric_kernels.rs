//! Microbenchmarks of the numeric substrate: the per-cell and
//! per-IR-grid arithmetic that dominates both congestion models.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use irgrid::congestion::irregular::{
    block_probability_approx, block_probability_exact, ApproxConfig,
};
use irgrid::congestion::num::{
    binomial_u128, ln_binomial, ln_gamma, normal_pdf, simpson, LnFactorials,
};
use irgrid::congestion::{NetType, RoutingRange};

fn bench_binomials(c: &mut Criterion) {
    let mut group = c.benchmark_group("binomial");
    group.bench_function("exact_u128_C(60,30)", |b| {
        b.iter(|| binomial_u128(black_box(60), black_box(30)))
    });
    group.bench_function("ln_gamma_C(600,300)", |b| {
        b.iter(|| ln_binomial(black_box(600), black_box(300)))
    });
    let lf = LnFactorials::up_to(1024);
    group.bench_function("table_C(600,300)", |b| {
        b.iter(|| lf.ln_binomial(black_box(600), black_box(300)))
    });
    group.bench_function("table_build_1024", |b| b.iter(|| LnFactorials::up_to(1024)));
    group.finish();
}

fn bench_scalar_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalar");
    group.bench_function("ln_gamma", |b| b.iter(|| ln_gamma(black_box(123.456))));
    group.bench_function("normal_pdf", |b| {
        b.iter(|| normal_pdf(black_box(1.3), black_box(2.0), black_box(0.7)))
    });
    group.bench_function("simpson_6_gaussian", |b| {
        b.iter(|| {
            simpson(black_box(0.0), black_box(10.0), 6, |x| {
                normal_pdf(x, 5.0, 1.5)
            })
        })
    });
    group.finish();
}

fn bench_block_probabilities(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_probability");
    let lf = LnFactorials::up_to(256);
    let config = ApproxConfig::default();
    for (g1, g2) in [(12i64, 10i64), (31, 21), (80, 60)] {
        let range = RoutingRange::from_cells(0, 0, g1, g2, NetType::TypeI);
        let (x1, x2) = (g1 / 4, 3 * g1 / 4);
        let (y1, y2) = (g2 / 4, 3 * g2 / 4);
        group.bench_with_input(
            BenchmarkId::new("exact_formula3", format!("{g1}x{g2}")),
            &range,
            |b, range| {
                b.iter(|| {
                    block_probability_exact(
                        black_box(range),
                        &lf,
                        black_box(x1),
                        black_box(x2),
                        black_box(y1),
                        black_box(y2),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("theorem1_approx", format!("{g1}x{g2}")),
            &range,
            |b, range| {
                b.iter(|| {
                    block_probability_approx(
                        black_box(range),
                        black_box(x1),
                        black_box(x2),
                        black_box(y1),
                        black_box(y2),
                        &config,
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_cell_probability(c: &mut Criterion) {
    let mut group = c.benchmark_group("cell_probability");
    let lf = LnFactorials::up_to(256);
    let range = RoutingRange::from_cells(0, 0, 40, 30, NetType::TypeI);
    group.bench_function("table_lookup", |b| {
        b.iter(|| range.cell_probability(&lf, black_box(17), black_box(12)))
    });
    group.bench_function("per_cell_gamma", |b| {
        b.iter(|| range.cell_probability_gamma(black_box(17), black_box(12)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_binomials,
    bench_scalar_kernels,
    bench_block_probabilities,
    bench_cell_probability
);
criterion_main!(benches);
