//! Incremental (delta) congestion evaluation vs full rebuild, per SA
//! move. Each "move" replaces one segment of the workload — the
//! single-net change an annealing step typically makes — and is scored
//! either by a warm [`IrDeltaEvaluator`] session (propose + undo, the
//! rejected-move path that dominates SA at low temperature) or by a
//! from-scratch rebase. Fixtures are synthetic segment sets
//! (deterministic LCG) so the benches measure the evaluator, not the
//! annealer.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use irgrid::congestion::{DeltaCongestion, DeltaCongestionSession, IrregularGridModel};
use irgrid::geom::{Point, Rect, Um};

/// `(label, segment count, chip extent in µm)` — small fits one IR-grid
/// handful, large approaches an ami49-scale map.
const SIZES: [(&str, usize, i64); 3] = [
    ("small", 12, 900),
    ("medium", 80, 3000),
    ("large", 250, 9000),
];

/// Deterministic pseudo-random segments; the fixture must not drift
/// between benchmark runs.
fn synthetic_segments(n: usize, extent: i64) -> Vec<(Point, Point)> {
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as i64).rem_euclid(extent)
    };
    (0..n)
        .map(|_| {
            (
                Point::new(Um(next()), Um(next())),
                Point::new(Um(next()), Um(next())),
            )
        })
        .collect()
}

fn chip(extent: i64) -> Rect {
    Rect::from_origin_size(Point::ORIGIN, Um(extent), Um(extent))
}

/// One "move": nudge segment `i` by a fixed offset, keeping it inside
/// the chip. Deterministic so both configurations score the same edit.
fn moved(segments: &[(Point, Point)], i: usize, extent: i64) -> Vec<(Point, Point)> {
    let mut edited = segments.to_vec();
    let slot = i % edited.len();
    let (a, b) = edited[slot];
    let shift = |p: Point| Point::new(Um((p.x.0 + 37).rem_euclid(extent)), p.y);
    edited[slot] = (shift(a), shift(b));
    edited
}

/// Warm delta session scoring a one-segment edit (propose, then undo —
/// the rejected-move path) vs a from-scratch rebase of the same edit.
fn bench_delta_vs_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("congestion_delta");
    for (label, n, extent) in SIZES {
        let chip = chip(extent);
        let segments = synthetic_segments(n, extent - 10);
        let model = IrregularGridModel::new(Um(30));

        let mut session = model.delta_session();
        session.rebase(&chip, &segments);
        let mut step = 0usize;
        group.bench_with_input(
            BenchmarkId::new("delta_move", label),
            &segments,
            |b, segments| {
                b.iter(|| {
                    step = step.wrapping_add(1);
                    let edited = moved(segments, step, extent - 10);
                    let cost = session.propose(black_box(&chip), black_box(&edited));
                    session.undo();
                    cost
                })
            },
        );

        let mut scratch = model.delta_session();
        let mut step = 0usize;
        group.bench_with_input(
            BenchmarkId::new("full_rebuild", label),
            &segments,
            |b, segments| {
                b.iter(|| {
                    step = step.wrapping_add(1);
                    let edited = moved(segments, step, extent - 10);
                    scratch.rebase(black_box(&chip), black_box(&edited))
                })
            },
        );
    }
    group.finish();
}

/// Accepted-move path: propose + commit, so the session's committed
/// snapshot advances every iteration (no memo fast path from repeating
/// the identical grid).
fn bench_delta_commit_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("congestion_delta_commit");
    group.sample_size(30);
    let (label, n, extent) = SIZES[1];
    let chip = chip(extent);
    let segments = synthetic_segments(n, extent - 10);
    let mut session = IrregularGridModel::new(Um(30)).delta_session();
    session.rebase(&chip, &segments);
    let mut step = 0usize;
    group.bench_with_input(
        BenchmarkId::new("propose_commit", label),
        &segments,
        |b, segments| {
            b.iter(|| {
                step = step.wrapping_add(1);
                let edited = moved(segments, step, extent - 10);
                let cost = session.propose(black_box(&chip), black_box(&edited));
                session.commit();
                cost
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_delta_vs_rebuild, bench_delta_commit_chain);
criterion_main!(benches);
