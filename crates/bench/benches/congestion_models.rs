//! Whole-model evaluation latency: the quantity Experiment 3's run-time
//! columns are made of. One evaluation = one congestion score of a fixed
//! benchmark floorplan.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use irgrid::anneal::{Annealer, Schedule};
use irgrid::congestion::{
    CellArithmetic, CongestionModel, Evaluator, FixedGridModel, IrregularGridModel,
};
use irgrid::floorplanner::{FloorplanProblem, Weights};
use irgrid::geom::{Point, Rect, Um};
use irgrid::netlist::mcnc::McncCircuit;

/// One annealed floorplan per benchmark, shared by all model benches.
fn floorplan(bench: McncCircuit) -> (Rect, Vec<(Point, Point)>) {
    let circuit = bench.circuit();
    let problem = FloorplanProblem::new(
        &circuit,
        Um(bench.paper_grid_pitch_um()),
        Weights::area_wire(),
        None::<IrregularGridModel>,
    );
    let result = Annealer::new(Schedule::quick()).run(&problem, 4);
    let eval = problem.evaluate(&result.best);
    (eval.placement.chip(), eval.segments)
}

fn bench_fixed_pitch_sweep(c: &mut Criterion) {
    let (chip, segments) = floorplan(McncCircuit::Ami33);
    let mut group = c.benchmark_group("fixed_grid_ami33");
    for pitch in [100i64, 50, 30, 10] {
        let model = FixedGridModel::new(Um(pitch));
        group.bench_with_input(BenchmarkId::new("table", pitch), &model, |b, m| {
            b.iter(|| m.evaluate(black_box(&chip), black_box(&segments)))
        });
        let gamma_model =
            FixedGridModel::new(Um(pitch)).with_arithmetic(CellArithmetic::PerCellGamma);
        group.bench_with_input(BenchmarkId::new("gamma", pitch), &gamma_model, |b, m| {
            b.iter(|| m.evaluate(black_box(&chip), black_box(&segments)))
        });
    }
    group.finish();
}

fn bench_irregular_evaluators(c: &mut Criterion) {
    let (chip, segments) = floorplan(McncCircuit::Ami33);
    let mut group = c.benchmark_group("irregular_ami33");
    let approx = IrregularGridModel::new(Um(30));
    group.bench_function("theorem1", |b| {
        b.iter(|| approx.evaluate(black_box(&chip), black_box(&segments)))
    });
    let exact = IrregularGridModel::new(Um(30)).with_evaluator(Evaluator::Exact);
    group.bench_function("exact_formula3", |b| {
        b.iter(|| exact.evaluate(black_box(&chip), black_box(&segments)))
    });
    let unmerged = IrregularGridModel::new(Um(30)).without_line_merging();
    group.bench_function("theorem1_no_merge", |b| {
        b.iter(|| unmerged.evaluate(black_box(&chip), black_box(&segments)))
    });
    group.finish();
}

fn bench_circuit_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("circuit_scaling");
    group.sample_size(20);
    for bench in McncCircuit::ALL {
        let (chip, segments) = floorplan(bench);
        let pitch = Um(bench.paper_grid_pitch_um());
        let ir = IrregularGridModel::new(pitch);
        group.bench_with_input(
            BenchmarkId::new("irregular", bench.name()),
            &(&chip, &segments),
            |b, (chip, segments)| b.iter(|| ir.evaluate(black_box(chip), black_box(segments))),
        );
        let fixed = FixedGridModel::new(Um(50));
        group.bench_with_input(
            BenchmarkId::new("fixed50", bench.name()),
            &(&chip, &segments),
            |b, (chip, segments)| b.iter(|| fixed.evaluate(black_box(chip), black_box(segments))),
        );
    }
    group.finish();
}

fn bench_judging_model(c: &mut Criterion) {
    // The 10 um judging model runs once per final solution; still worth
    // tracking because Experiment 1 judges 2 x 20 x 5 floorplans.
    let (chip, segments) = floorplan(McncCircuit::Hp);
    let judging = FixedGridModel::judging();
    let mut group = c.benchmark_group("judging_model");
    group.sample_size(10);
    group.bench_function("hp_10um", |b| {
        b.iter(|| judging.evaluate(black_box(&chip), black_box(&segments)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fixed_pitch_sweep,
    bench_irregular_evaluators,
    bench_circuit_scaling,
    bench_judging_model
);
criterion_main!(benches);
