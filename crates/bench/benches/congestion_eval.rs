//! Retained-evaluator microbenchmarks: what the `congestion-perf`
//! subcommand reports as one number, broken down per configuration and
//! workload size. Fixtures are synthetic segment sets (deterministic
//! LCG) so the benches measure the evaluator, not the annealer.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use irgrid::congestion::{CongestionModel, Evaluator, IrregularGridModel, RetainedCongestion};
use irgrid::geom::{Point, Rect, Um};

/// `(label, segment count, chip extent in µm)` — small fits one IR-grid
/// handful, large approaches an ami49-scale map.
const SIZES: [(&str, usize, i64); 3] = [
    ("small", 12, 900),
    ("medium", 80, 3000),
    ("large", 250, 9000),
];

/// Deterministic pseudo-random segments; the fixture must not drift
/// between benchmark runs.
fn synthetic_segments(n: usize, extent: i64) -> Vec<(Point, Point)> {
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as i64).rem_euclid(extent)
    };
    (0..n)
        .map(|_| {
            (
                Point::new(Um(next()), Um(next())),
                Point::new(Um(next()), Um(next())),
            )
        })
        .collect()
}

fn chip(extent: i64) -> Rect {
    Rect::from_origin_size(Point::ORIGIN, Um(extent), Um(extent))
}

/// Fresh evaluator per call (the one-shot trait path) vs a warm retained
/// session, across workload sizes.
fn bench_fresh_vs_retained(c: &mut Criterion) {
    let mut group = c.benchmark_group("congestion_eval");
    for (label, n, extent) in SIZES {
        let chip = chip(extent);
        let segments = synthetic_segments(n, extent - 10);
        let model = IrregularGridModel::new(Um(30));
        group.bench_with_input(
            BenchmarkId::new("fresh", label),
            &segments,
            |b, segments| b.iter(|| model.evaluate(black_box(&chip), black_box(segments))),
        );
        let mut session = model.session();
        session.evaluate(&chip, &segments); // warm the scratch
        group.bench_with_input(
            BenchmarkId::new("retained", label),
            &segments,
            |b, segments| b.iter(|| session.evaluate(black_box(&chip), black_box(segments))),
        );
    }
    group.finish();
}

/// Row-band threading on the largest fixture. On a single-CPU host the
/// threaded rows measure pure spawn/join overhead — still worth
/// tracking, because that overhead is the price of the bit-identical
/// parallel path.
fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("congestion_eval_threads");
    group.sample_size(20);
    let (_, n, extent) = SIZES[2];
    let chip = chip(extent);
    let segments = synthetic_segments(n, extent - 10);
    for threads in [1usize, 2, 4] {
        let mut session = IrregularGridModel::new(Um(30))
            .with_threads(threads)
            .session();
        session.evaluate(&chip, &segments);
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &segments,
            |b, segments| b.iter(|| session.evaluate(black_box(&chip), black_box(segments))),
        );
    }
    group.finish();
}

/// The exact Formula-3 evaluator through the retained session — the
/// configuration Experiment 3's run-time columns compare against.
fn bench_exact_retained(c: &mut Criterion) {
    let mut group = c.benchmark_group("congestion_eval_exact");
    group.sample_size(20);
    let (label, n, extent) = SIZES[0];
    let chip = chip(extent);
    let segments = synthetic_segments(n, extent - 10);
    let mut session = IrregularGridModel::new(Um(30))
        .with_evaluator(Evaluator::Exact)
        .session();
    session.evaluate(&chip, &segments);
    group.bench_with_input(
        BenchmarkId::new("retained", label),
        &segments,
        |b, segments| b.iter(|| session.evaluate(black_box(&chip), black_box(segments))),
    );
    group.finish();
}

/// Full map extraction (cuts + totals clone) vs cost-only evaluation.
fn bench_map_vs_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("congestion_map");
    let (label, n, extent) = SIZES[1];
    let chip = chip(extent);
    let segments = synthetic_segments(n, extent - 10);
    let model = IrregularGridModel::new(Um(30));
    group.bench_with_input(BenchmarkId::new("map", label), &segments, |b, segments| {
        b.iter(|| model.congestion_map(black_box(&chip), black_box(segments)))
    });
    let mut session = model.session();
    session.evaluate(&chip, &segments);
    group.bench_with_input(
        BenchmarkId::new("cost_only", label),
        &segments,
        |b, segments| b.iter(|| session.evaluate(black_box(&chip), black_box(segments))),
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_fresh_vs_retained,
    bench_thread_scaling,
    bench_exact_retained,
    bench_map_vs_cost
);
criterion_main!(benches);
