//! Floorplanner-substrate benchmarks: packing, perturbation, pin
//! placement + MST decomposition, and one full cost evaluation — the
//! inner loop of the annealer.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use irgrid::anneal::Problem;
use irgrid::congestion::IrregularGridModel;
use irgrid::floorplan::{pack, two_pin_segments, PinPlacer, PolishExpr};
use irgrid::floorplanner::{FloorplanProblem, Weights};
use irgrid::geom::Um;
use irgrid::netlist::mcnc::McncCircuit;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_pack(c: &mut Criterion) {
    let mut group = c.benchmark_group("pack");
    for bench in McncCircuit::ALL {
        let circuit = bench.circuit();
        let expr = PolishExpr::initial(circuit.modules().len());
        group.bench_with_input(BenchmarkId::from_parameter(bench.name()), &expr, |b, e| {
            b.iter(|| pack(black_box(e), black_box(&circuit)))
        });
    }
    group.finish();
}

fn bench_perturb(c: &mut Criterion) {
    let circuit = McncCircuit::Ami49.circuit();
    let mut expr = PolishExpr::initial(circuit.modules().len());
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    c.bench_function("perturb_ami49", |b| {
        b.iter(|| {
            expr.perturb_random(&mut rng);
        })
    });
}

fn bench_segments(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_pin_segments");
    for bench in [McncCircuit::Hp, McncCircuit::Ami33, McncCircuit::Ami49] {
        let circuit = bench.circuit();
        let placement = pack(&PolishExpr::initial(circuit.modules().len()), &circuit);
        let placer = PinPlacer::new(Um(bench.paper_grid_pitch_um()));
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.name()),
            &placement,
            |b, p| b.iter(|| two_pin_segments(black_box(&circuit), black_box(p), &placer)),
        );
    }
    group.finish();
}

fn bench_full_cost_eval(c: &mut Criterion) {
    // One Problem::cost call = the annealer's unit of work. This is what
    // multiplies into the Table 4/5 run times.
    let mut group = c.benchmark_group("sa_cost_eval");
    for bench in [McncCircuit::Hp, McncCircuit::Ami33] {
        let circuit = bench.circuit();
        let pitch = Um(bench.paper_grid_pitch_um());
        let problem = FloorplanProblem::new(
            &circuit,
            pitch,
            Weights::balanced(),
            Some(IrregularGridModel::new(pitch)),
        );
        let expr = problem.initial_state();
        group.bench_with_input(BenchmarkId::from_parameter(bench.name()), &expr, |b, e| {
            b.iter(|| problem.cost(black_box(e)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pack,
    bench_perturb,
    bench_segments,
    bench_full_cost_eval
);
criterion_main!(benches);
