//! Figure 9 (Experiment 2): correctness of the Irregular-Grid estimate.
//!
//! The floorplanner optimizes *only* the IR-grid congestion cost on
//! ami33; at each temperature-dropping step the locally optimized
//! solution is extracted and scored three ways: the IR model at 30 µm
//! (curve A), the judging fixed model at 10 µm (curve B, scaled ×2.5 in
//! the paper), and the judging fixed model at 50 µm (curve C). The
//! paper's claim: "the slopes of curve A and B are more similar than the
//! slopes of curve A and C".

use irgrid::anneal::{Annealer, Schedule};
use irgrid::congestion::{CongestionModel, FixedGridModel, IrregularGridModel};
use irgrid::floorplanner::{FloorplanProblem, Weights};
use irgrid::geom::Um;
use irgrid::netlist::mcnc::McncCircuit;

use crate::common::Mode;

/// Pearson correlation of step-to-step differences — the "slope
/// similarity" of two curves.
fn slope_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let da: Vec<f64> = a.windows(2).map(|w| w[1] - w[0]).collect();
    let db: Vec<f64> = b.windows(2).map(|w| w[1] - w[0]).collect();
    let n = da.len() as f64;
    let (ma, mb) = (da.iter().sum::<f64>() / n, db.iter().sum::<f64>() / n);
    let mut num = 0.0;
    let (mut va, mut vb) = (0.0, 0.0);
    for i in 0..da.len() {
        let (xa, xb) = (da[i] - ma, db[i] - mb);
        num += xa * xb;
        va += xa * xa;
        vb += xb * xb;
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    num / (va.sqrt() * vb.sqrt())
}

pub fn run(mode: &Mode, bench: McncCircuit) {
    let circuit = bench.circuit();
    let pitch = Um(bench.paper_grid_pitch_um());
    eprintln!("[figure9] {bench}: congestion-only annealing with snapshots...");

    let problem = FloorplanProblem::new(
        &circuit,
        pitch,
        Weights::congestion_only(),
        Some(IrregularGridModel::new(pitch)),
    );
    let schedule = Schedule {
        snapshot_per_temperature: true,
        ..mode.schedule
    };
    let result = Annealer::new(schedule).run(&problem, 1);

    // Pick up to 20 evenly spaced temperature snapshots, as in the paper.
    let snapshots = &result.snapshots;
    let take = snapshots.len().min(20);
    let idx = |k: usize| (k * (snapshots.len() - 1)) / (take - 1).max(1);

    let judging10 = FixedGridModel::new(Um(10));
    let judging50 = FixedGridModel::new(Um(50));
    let ir = IrregularGridModel::new(pitch);

    let (mut curve_a, mut curve_b, mut curve_c) = (Vec::new(), Vec::new(), Vec::new());
    for k in 0..take {
        // The paper extracts "the intermediate solution at each
        // temperature-dropping step, which is also a locally-optimized
        // solution" — the current state, not the best-so-far.
        let snap = &snapshots[idx(k)];
        let eval = problem.evaluate(&snap.current_state);
        let chip = eval.placement.chip();
        curve_a.push(ir.evaluate(&chip, &eval.segments));
        curve_b.push(judging10.evaluate(&chip, &eval.segments));
        curve_c.push(judging50.evaluate(&chip, &eval.segments));
    }

    println!("\n=== Figure 9: IR model vs judging models across temperature steps ({bench}) ===");
    println!("mode: {}", mode.label);
    println!(
        "{:>4} {:>14} {:>18} {:>18}",
        "step", "A: IR 30um", "B: judging 10um", "C: judging 50um"
    );
    for k in 0..take {
        println!(
            "{:>4} {:>14.5} {:>18.6} {:>18.5}",
            k + 1,
            curve_a[k],
            curve_b[k],
            curve_c[k]
        );
    }

    let rho_ab = slope_correlation(&curve_a, &curve_b);
    let rho_ac = slope_correlation(&curve_a, &curve_c);
    println!("\nslope correlation A-B (IR vs 10um judge): {rho_ab:.4}");
    println!("slope correlation A-C (IR vs 50um judge): {rho_ac:.4}");

    // The paper aligns the curves by scaling before comparing shapes
    // (it multiplies curve B by 2.5); the scale-free equivalent is the
    // RMS distance between standardized curves.
    let zrms = |a: &[f64], b: &[f64]| -> f64 {
        let z = |v: &[f64]| -> Vec<f64> {
            let n = v.len() as f64;
            let mean = v.iter().sum::<f64>() / n;
            let sd = (v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n).sqrt();
            v.iter().map(|x| (x - mean) / sd.max(1e-12)).collect()
        };
        let (za, zb) = (z(a), z(b));
        (za.iter()
            .zip(&zb)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            / za.len() as f64)
            .sqrt()
    };
    let rms_ab = zrms(&curve_a, &curve_b);
    let rms_ac = zrms(&curve_a, &curve_c);
    println!("standardized-curve RMS distance A-B: {rms_ab:.4}");
    println!("standardized-curve RMS distance A-C: {rms_ac:.4}");
    println!(
        "paper's claim (curve A tracks B more closely than C): {}",
        if rms_ab <= rms_ac || rho_ab >= rho_ac {
            "REPRODUCED"
        } else {
            "NOT reproduced on this run"
        }
    );
}
