//! Spatial-agreement experiment (extension of Experiment 2).
//!
//! The paper's Experiment 2 compares scalar scores across annealing;
//! here we compare the congestion *pictures* cell by cell: each model's
//! map is rasterized onto a common 30 µm grid and compared against the
//! 10 µm judging map downsampled 3× — per-cell Pearson correlation,
//! scale-free MAE, and top-10 % hotspot overlap (Jaccard).

use irgrid::anneal::{Annealer, Schedule};
use irgrid::congestion::analysis::{compare, Raster};
use irgrid::congestion::{FixedGridModel, IrregularGridModel, LzShapeModel};
use irgrid::floorplanner::{FloorplanProblem, Weights};
use irgrid::geom::Um;
use irgrid::netlist::mcnc::McncCircuit;

pub fn run(bench: McncCircuit) {
    let circuit = bench.circuit();
    let pitch = Um(30);
    eprintln!("[heatmap] {bench}: producing a reference floorplan...");
    let problem = FloorplanProblem::new(
        &circuit,
        pitch,
        Weights::area_wire(),
        None::<IrregularGridModel>,
    );
    let result = Annealer::new(Schedule::quick()).run(&problem, 6);
    let eval = problem.evaluate(&result.best);
    let chip = eval.placement.chip();
    let segments = &eval.segments;

    // Reference: the 10 um judging map downsampled onto the 30 um grid.
    let judging = FixedGridModel::new(Um(10)).congestion_map(&chip, segments);
    let mut reference = Raster::from_fixed(&judging).downsample(3);

    let candidates: Vec<(&str, Raster)> = vec![
        (
            "lz-shape 30um",
            Raster::from_lz(&LzShapeModel::new(pitch).congestion_map(&chip, segments)),
        ),
        (
            "fixed-grid 30um",
            Raster::from_fixed(&FixedGridModel::new(pitch).congestion_map(&chip, segments)),
        ),
        (
            "irregular-grid 30um",
            Raster::from_ir(&IrregularGridModel::new(pitch).congestion_map(&chip, segments)),
        ),
    ];

    println!("\n=== Spatial agreement with the 10um judging map ({bench}) ===");
    println!(
        "{:<22} {:>10} {:>12} {:>16}",
        "model", "pearson", "scaled MAE", "hotspot Jaccard"
    );
    for (name, raster) in candidates {
        // Rasters may differ by one edge cell when the chip is not a
        // pitch multiple; crop the reference once to match.
        reference = crop(&reference, raster.cols(), raster.rows());
        let cropped = crop(&raster, reference.cols(), reference.rows());
        let c = compare(&cropped, &reference, 0.1);
        println!(
            "{:<22} {:>10.4} {:>12.4} {:>16.4}",
            name, c.pearson, c.scaled_mae, c.hotspot_jaccard
        );
    }
    println!("\n(the IR model should match the fine map about as well as the same-pitch");
    println!("fixed model, while evaluating far fewer regions — the paper's accuracy claim");
    println!("stated per cell instead of per score)");
}

/// Crops a raster to at most `cols × rows` (top/right cells dropped).
fn crop(r: &Raster, cols: usize, rows: usize) -> Raster {
    let (cols, rows) = (cols.min(r.cols()), rows.min(r.rows()));
    if (cols, rows) == (r.cols(), r.rows()) {
        return r.clone();
    }
    let mut values = Vec::with_capacity(cols * rows);
    for y in 0..rows {
        for x in 0..cols {
            values.push(r.values()[y * r.cols() + x]);
        }
    }
    Raster::new(cols, rows, values)
}
