//! Pitch-sensitivity sweep (extension).
//!
//! The Irregular-Grid model's one free parameter is the unit-grid pitch:
//! it sets the probability-formula resolution, the cutting-line merge
//! threshold (2× pitch) and hence the IR-grid count. The paper uses
//! 30 µm (60 µm for apte) without justification; this sweep quantifies
//! the trade-off — IR-grid count, evaluation time, and agreement with
//! the 10 µm judging model — so users can pick a pitch deliberately.

use std::time::Instant;

use irgrid::anneal::{Annealer, Schedule};
use irgrid::congestion::{CongestionModel, FixedGridModel, IrregularGridModel};
use irgrid::floorplan::{pack, two_pin_segments, PinPlacer, PolishExpr};
use irgrid::floorplanner::{FloorplanProblem, Weights};
use irgrid::geom::Um;
use irgrid::netlist::mcnc::McncCircuit;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::common::die;
use crate::metrics;

pub fn run(bench: McncCircuit) {
    let circuit = bench.circuit();
    eprintln!("[sweep] {bench}: annealing a reference floorplan...");
    let problem = FloorplanProblem::new(
        &circuit,
        Um(30),
        Weights::area_wire(),
        None::<IrregularGridModel>,
    );
    let result = Annealer::new(Schedule::quick()).run(&problem, 8);
    let eval = problem.evaluate(&result.best);
    let chip = eval.placement.chip();

    // A set of perturbed floorplans for the score-correlation column.
    let placer = PinPlacer::new(Um(30));
    let judging = FixedGridModel::judging();
    let mut rng = ChaCha8Rng::seed_from_u64(0x5eed_5eed);
    let mut expr = PolishExpr::initial(circuit.modules().len());
    let mut floorplans = Vec::new();
    for _ in 0..10 {
        for _ in 0..8 {
            expr.perturb_random(&mut rng);
        }
        let placement = pack(&expr, &circuit);
        let segments = two_pin_segments(&circuit, &placement, &placer);
        let judged = judging.evaluate(&placement.chip(), &segments);
        floorplans.push((placement, segments, judged));
    }
    let judged: Vec<f64> = floorplans.iter().map(|(_, _, j)| *j).collect();

    println!("\n=== Pitch sensitivity of the Irregular-Grid model ({bench}) ===");
    println!(
        "{:>7} {:>9} {:>12} {:>12} {:>18}",
        "pitch", "IR-grids", "cost", "eval (ms)", "corr(judging 10um)"
    );
    for p in [10i64, 20, 30, 45, 60, 90] {
        let model = IrregularGridModel::new(Um(p));
        let map = model.congestion_map(&chip, &eval.segments);
        let reps = 20;
        let t = Instant::now();
        for _ in 0..reps {
            let _ = model.evaluate(&chip, &eval.segments);
        }
        let ms = t.elapsed().as_secs_f64() * 1000.0 / reps as f64;
        let scores: Vec<f64> = floorplans
            .iter()
            .map(|(placement, segments, _)| model.evaluate(&placement.chip(), segments))
            .collect();
        println!(
            "{:>5}um {:>9} {:>12.5} {:>12.3} {:>18.4}",
            p,
            map.ir_cell_count(),
            map.cost(),
            ms,
            metrics::pearson(&scores, &judged)
                .unwrap_or_else(|e| die(&format!("sweep correlation: {e}")))
        );
    }
    println!("\n(the paper's 30um sits where the correlation has saturated while the");
    println!("IR-grid count — and hence evaluation time — is still small)");
}
