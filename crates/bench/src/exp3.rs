//! Experiment 3 (Tables 4–5): congestion-only floorplanning with the
//! Irregular-Grid model vs the fixed-size-grid model at 100 µm and 50 µm.

use irgrid::congestion::{CellArithmetic, FixedGridModel, IrregularGridModel};
use irgrid::floorplanner::Weights;
use irgrid::geom::Um;
use irgrid::netlist::mcnc::McncCircuit;

use crate::common::{aggregate, header, improvement_pct, run_batch, Mode, Row, RunOutcome};

struct Config {
    label: String,
    pitch_um: i64,
    avg: Row,
    best: Row,
    avg_cells: f64,
    best_cells: usize,
}

fn cell_counts(outcomes: &[RunOutcome], count: impl Fn(&RunOutcome) -> usize) -> (f64, usize) {
    let avg = outcomes.iter().map(|o| count(o) as f64).sum::<f64>() / outcomes.len() as f64;
    let best = outcomes
        .iter()
        .min_by(|a, b| a.anneal_cost.total_cmp(&b.anneal_cost))
        .map(count)
        .expect("non-empty");
    (avg, best)
}

/// Runs the whole experiment on `bench` (the paper uses ami33).
pub fn run(mode: &Mode, bench: McncCircuit) {
    let circuit = bench.circuit();

    // --- Table 4: Irregular-Grid model, congestion-only cost.
    let pitch = Um(bench.paper_grid_pitch_um());
    eprintln!("[exp3] {bench}: IR-grid congestion-only floorplanner...");
    let ir_model = IrregularGridModel::new(pitch);
    let ir_runs = run_batch(
        &circuit,
        pitch,
        Weights::congestion_only(),
        Some(ir_model),
        mode,
    );
    let (ir_avg, ir_best) = aggregate(&ir_runs);
    let (ir_avg_cells, ir_best_cells) = cell_counts(&ir_runs, |o| {
        IrregularGridModel::new(pitch)
            .congestion_map(&o.eval.placement.chip(), &o.eval.segments)
            .ir_cell_count()
    });
    let table4 = Config {
        label: format!("IR-grid {pitch}"),
        pitch_um: pitch.0,
        avg: ir_avg,
        best: ir_best,
        avg_cells: ir_avg_cells,
        best_cells: ir_best_cells,
    };

    // --- Table 5: fixed-size-grid model at 100 and 50 µm. The paper's
    // baseline computed every binomial per cell (2002-era arithmetic);
    // we run that faithful mode here and report the amortized-table time
    // separately in the ablation bench.
    let mut table5 = Vec::new();
    for p in [100i64, 50] {
        eprintln!("[exp3] {bench}: fixed-grid {p}x{p} congestion-only floorplanner...");
        let model = FixedGridModel::new(Um(p)).with_arithmetic(CellArithmetic::PerCellGamma);
        let runs = run_batch(
            &circuit,
            Um(p),
            Weights::congestion_only(),
            Some(model),
            mode,
        );
        let (avg, best) = aggregate(&runs);
        let (avg_cells, best_cells) = cell_counts(&runs, |o| {
            FixedGridModel::new(Um(p))
                .congestion_map(&o.eval.placement.chip(), &o.eval.segments)
                .cell_count()
        });
        table5.push(Config {
            label: format!("fixed {p}x{p}um"),
            pitch_um: p,
            avg,
            best,
            avg_cells,
            best_cells,
        });
    }

    header(
        &format!("Table 4: Irregular-Grid model, congestion-only optimization ({bench})"),
        mode,
    );
    print_rows(std::slice::from_ref(&table4));

    header(
        &format!("Table 5: fixed-size-grid model, congestion-only optimization ({bench})"),
        mode,
    );
    print_rows(&table5);

    println!("\ncomparison (paper: IR-grid ~2.3x faster than fixed 100um with 8.79% better");
    println!("judging cost; ~3.5x faster than fixed 50um with 4.59% better judging cost):");
    for cfg in &table5 {
        let speedup = cfg.avg.time_s / table4.avg.time_s.max(f64::MIN_POSITIVE);
        let cgt = improvement_pct(cfg.avg.judging_cost, table4.avg.judging_cost);
        println!(
            "  vs {:<16} run-time ratio {speedup:>5.2}x, judging cgt improvement {cgt:>6.2}%, cell ratio {:>5.2}x",
            cfg.label,
            cfg.avg_cells / table4.avg_cells.max(1.0),
        );
    }
}

fn print_rows(configs: &[Config]) {
    println!(
        "{:<16} {:>6} | {:>9} {:>10} {:>8} {:>12} | {:>9} {:>10} {:>8} {:>12}",
        "model",
        "pitch",
        "avg cells",
        "avg cgt",
        "avg t",
        "avg judging",
        "best cells",
        "best cgt",
        "best t",
        "best judging"
    );
    for c in configs {
        println!(
            "{:<16} {:>6} | {:>9.0} {:>10.4} {:>8.1} {:>12.6} | {:>9} {:>10.4} {:>8.1} {:>12.6}",
            c.label,
            c.pitch_um,
            c.avg_cells,
            c.avg.model_cost,
            c.avg.time_s,
            c.avg.judging_cost,
            c.best_cells,
            c.best.model_cost,
            c.best.time_s,
            c.best.judging_cost,
        );
    }
}
