//! Shared experiment machinery: run modes, seeded floorplanner runs, and
//! aggregate statistics in the paper's "average / best of N seeds" form.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use irgrid::anneal::{Annealer, Checkpoint, RunControl, Schedule, StopReason};
use irgrid::congestion::{CongestionModel, FixedGridModel, RetainedCongestion};
use irgrid::floorplanner::{FloorplanEval, FloorplanProblem, Weights};
use irgrid::geom::Um;
use irgrid::netlist::Circuit;

/// Fault-tolerance options shared by every batch in an invocation:
/// a wall-clock deadline and checkpoint/resume directories.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultOptions {
    /// Stop all annealing at this instant; remaining seeds are skipped.
    pub deadline: Option<Instant>,
    /// Write a checkpoint per `(circuit, weights, pitch, seed)` run into
    /// this directory every [`FaultOptions::CHECKPOINT_EVERY`] steps.
    pub checkpoint_dir: Option<&'static str>,
    /// Before each seed run, look for a matching checkpoint in this
    /// directory and resume from it instead of starting fresh.
    pub resume_dir: Option<&'static str>,
}

impl FaultOptions {
    /// Checkpoint cadence in temperature steps.
    pub const CHECKPOINT_EVERY: usize = 10;

    /// The checkpoint file for one seeded run, unique per
    /// `(circuit, weights, pitch, seed)` so concurrent batches over the
    /// same circuit (e.g. Table 1 baseline vs Table 2) never collide.
    pub fn checkpoint_file(
        dir: &str,
        circuit: &Circuit,
        pitch: Um,
        weights: Weights,
        seed: u64,
    ) -> PathBuf {
        let tag = format!(
            "{}_a{}w{}c{}_p{}_s{seed}.ckpt.json",
            circuit.name(),
            weights.area,
            weights.wire,
            weights.congestion,
            pitch.0,
        );
        PathBuf::from(dir).join(tag)
    }

    /// The [`RunControl`] these options induce.
    pub fn control(&self) -> RunControl {
        let mut control = RunControl::unlimited();
        if let Some(deadline) = self.deadline {
            control = control.with_deadline(deadline);
        }
        if self.checkpoint_dir.is_some() {
            control = control.with_checkpoint_every(Self::CHECKPOINT_EVERY);
        }
        control
    }
}

/// How much compute an experiment run spends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mode {
    /// Number of annealing seeds per configuration (the paper uses 20).
    pub seeds: u64,
    /// The annealing schedule.
    pub schedule: Schedule,
    /// Label printed in headers.
    pub label: &'static str,
    /// Deadline / checkpoint / resume options.
    pub fault: FaultOptions,
}

impl Mode {
    /// Smoke-test mode: 2 seeds, short schedule.
    pub fn quick() -> Mode {
        Mode {
            seeds: 2,
            schedule: Schedule::quick(),
            label: "quick (2 seeds, short schedule)",
            fault: FaultOptions::default(),
        }
    }

    /// Default mode: 3 seeds, medium schedule — minutes, not hours.
    pub fn standard() -> Mode {
        Mode {
            seeds: 3,
            schedule: Schedule {
                moves_per_temperature: 120,
                cooling: 0.88,
                max_temperatures: 100,
                ..Schedule::default()
            },
            label: "standard (3 seeds, medium schedule)",
            fault: FaultOptions::default(),
        }
    }

    /// Paper-protocol mode: 20 seeds, classic schedule.
    pub fn full() -> Mode {
        Mode {
            seeds: 20,
            schedule: Schedule::default(),
            label: "full (20 seeds, classic schedule)",
            fault: FaultOptions::default(),
        }
    }

    /// Parses `--quick` / `--full` flags (default standard) plus the
    /// fault-tolerance flags `--time-limit <seconds>`,
    /// `--checkpoint <dir>`, and `--resume <dir>`.
    pub fn from_args(args: &[String]) -> Mode {
        let mut mode = if args.iter().any(|a| a == "--quick") {
            Mode::quick()
        } else if args.iter().any(|a| a == "--full") {
            Mode::full()
        } else {
            Mode::standard()
        };
        mode.fault = FaultOptions {
            deadline: flag_value(args, "--time-limit").map(|text| {
                let seconds: f64 = text
                    .parse()
                    .unwrap_or_else(|_| die(&format!("--time-limit `{text}` is not a number")));
                if !(seconds.is_finite() && seconds >= 0.0) {
                    die(&format!("--time-limit must be non-negative, got {seconds}"));
                }
                Instant::now() + Duration::from_secs_f64(seconds)
            }),
            checkpoint_dir: flag_value(args, "--checkpoint").map(leak),
            resume_dir: flag_value(args, "--resume").map(leak),
        };
        mode
    }
}

/// The value following a `--flag`, if present.
pub fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    let position = args.iter().position(|a| a == flag)?;
    match args.get(position + 1) {
        Some(value) if !value.starts_with("--") => Some(value),
        _ => die(&format!("{flag} needs a value")),
    }
}

/// Leaks a flag value so it can live in the `Copy` [`Mode`]; bounded by
/// the argument list, fine for a CLI process.
fn leak(text: &str) -> &'static str {
    Box::leak(text.to_owned().into_boxed_str())
}

/// Prints a usage error and exits (exit code 2, like the unknown-command
/// path in `main`).
pub fn die(message: &str) -> ! {
    eprintln!("{message}");
    std::process::exit(2);
}

/// One seeded floorplanner run's reported fields.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The annealing seed (kept for traceability in debug dumps).
    #[allow(dead_code)]
    pub seed: u64,
    /// The annealer's internal (normalized) best cost — used to pick the
    /// "best" run of a batch, like the paper's cost function.
    pub anneal_cost: f64,
    pub area_mm2: f64,
    pub wire_um: f64,
    pub time_s: f64,
    /// The optimizing model's own congestion score (0 if none attached).
    pub model_cost: f64,
    /// The 10 µm judging model's score of the final floorplan.
    pub judging_cost: f64,
    /// Final evaluation (placement + segments) for follow-up scoring.
    pub eval: FloorplanEval,
}

/// Runs the annealing floorplanner once per seed and judges every final
/// floorplan with the 10 µm fixed-grid judging model.
///
/// Honors the mode's [`FaultOptions`]: runs stop at the shared deadline
/// (remaining seeds are skipped), write checkpoints on a cadence when a
/// checkpoint directory is set, and resume from matching checkpoint files
/// when a resume directory is set. A failed run (typed [`AnnealError`])
/// is reported on stderr and skipped, never a panic.
///
/// [`AnnealError`]: irgrid::anneal::AnnealError
pub fn run_batch<M>(
    circuit: &Circuit,
    pitch: Um,
    weights: Weights,
    model: Option<M>,
    mode: &Mode,
) -> Vec<RunOutcome>
where
    M: RetainedCongestion + Clone,
{
    let judging = FixedGridModel::judging();
    let problem = FloorplanProblem::new(circuit, pitch, weights, model);
    let annealer = Annealer::new(mode.schedule);
    let control = mode.fault.control();

    let mut outcomes = Vec::new();
    for seed in 0..mode.seeds {
        let start = Instant::now();
        let checkpoint_path = mode.fault.checkpoint_dir.map(|dir| {
            let path = FaultOptions::checkpoint_file(dir, circuit, pitch, weights, seed);
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            path
        });
        let mut sink = |checkpoint: &Checkpoint<irgrid::floorplan::PolishExpr>| {
            if let Some(path) = &checkpoint_path {
                if let Err(err) = checkpoint.write_file(path) {
                    eprintln!("warning: {err}");
                }
            }
        };

        let resumed_from = mode
            .fault
            .resume_dir
            .map(|dir| FaultOptions::checkpoint_file(dir, circuit, pitch, weights, seed));
        let run = match resumed_from.filter(|path| path.exists()) {
            Some(path) => match Checkpoint::read_file(&path) {
                Ok(checkpoint) => {
                    annealer.resume_with_checkpoints(&problem, checkpoint, &control, &mut sink)
                }
                Err(err) => {
                    eprintln!("warning: ignoring checkpoint {}: {err}", path.display());
                    annealer.run_with_checkpoints(&problem, seed, &control, &mut sink)
                }
            },
            None => annealer.run_with_checkpoints(&problem, seed, &control, &mut sink),
        };
        let result = match run {
            Ok(result) => result,
            Err(err) => {
                eprintln!("warning: seed {seed} on {}: {err}", circuit.name());
                continue;
            }
        };

        let time_s = start.elapsed().as_secs_f64();
        let eval = problem.evaluate(&result.best);
        let judging_cost = judging.evaluate(&eval.placement.chip(), &eval.segments);
        outcomes.push(RunOutcome {
            seed,
            anneal_cost: result.best_cost,
            area_mm2: eval.area_um2 / 1e6,
            wire_um: eval.wirelength_um,
            time_s,
            model_cost: eval.congestion,
            judging_cost,
            eval,
        });
        if result.stop_reason == StopReason::Deadline {
            eprintln!(
                "time limit reached during seed {seed} on {}; skipping remaining seeds",
                circuit.name()
            );
            break;
        }
    }
    outcomes
}

/// The paper's "average results" row.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    pub area_mm2: f64,
    pub wire_um: f64,
    pub time_s: f64,
    pub model_cost: f64,
    pub judging_cost: f64,
}

/// Average and best (by annealing cost) rows of a batch.
pub fn aggregate(outcomes: &[RunOutcome]) -> (Row, Row) {
    assert!(!outcomes.is_empty(), "need at least one run");
    let n = outcomes.len() as f64;
    let avg = Row {
        area_mm2: outcomes.iter().map(|o| o.area_mm2).sum::<f64>() / n,
        wire_um: outcomes.iter().map(|o| o.wire_um).sum::<f64>() / n,
        time_s: outcomes.iter().map(|o| o.time_s).sum::<f64>() / n,
        model_cost: outcomes.iter().map(|o| o.model_cost).sum::<f64>() / n,
        judging_cost: outcomes.iter().map(|o| o.judging_cost).sum::<f64>() / n,
    };
    let best_run = outcomes
        .iter()
        .min_by(|a, b| a.anneal_cost.total_cmp(&b.anneal_cost))
        .expect("non-empty");
    let best = Row {
        area_mm2: best_run.area_mm2,
        wire_um: best_run.wire_um,
        time_s: best_run.time_s,
        model_cost: best_run.model_cost,
        judging_cost: best_run.judging_cost,
    };
    (avg, best)
}

/// Percentage improvement of `new` over `old` (positive = better/lower).
pub fn improvement_pct(old: f64, new: f64) -> f64 {
    if old.abs() < f64::MIN_POSITIVE {
        return 0.0;
    }
    100.0 * (old - new) / old
}

/// Prints a section header.
pub fn header(title: &str, mode: &Mode) {
    println!("\n=== {title} ===");
    println!("mode: {}", mode.label);
}

#[cfg(test)]
mod tests {
    use super::*;
    use irgrid::congestion::IrregularGridModel;
    use irgrid::netlist::generator::CircuitGenerator;

    #[test]
    fn mode_flag_parsing() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            Mode::from_args(&args(&["--quick"])).seeds,
            Mode::quick().seeds
        );
        assert_eq!(Mode::from_args(&args(&["--full"])).seeds, 20);
        assert_eq!(
            Mode::from_args(&args(&["table1"])).seeds,
            Mode::standard().seeds
        );
    }

    #[test]
    fn improvement_pct_signs() {
        assert!((improvement_pct(2.0, 1.0) - 50.0).abs() < 1e-12);
        assert!((improvement_pct(2.0, 3.0) + 50.0).abs() < 1e-12);
        assert_eq!(improvement_pct(0.0, 1.0), 0.0);
    }

    #[test]
    fn aggregate_averages_and_picks_best() {
        let circuit = CircuitGenerator::new("agg", 6, 10)
            .seed(1)
            .generate()
            .expect("valid");
        let mode = Mode {
            seeds: 3,
            schedule: irgrid::anneal::Schedule::quick(),
            label: "test",
            fault: FaultOptions::default(),
        };
        let outcomes = run_batch(
            &circuit,
            Um(30),
            Weights::area_wire(),
            None::<IrregularGridModel>,
            &mode,
        );
        assert_eq!(outcomes.len(), 3);
        let (avg, best) = aggregate(&outcomes);
        let min_cost = outcomes
            .iter()
            .map(|o| o.anneal_cost)
            .fold(f64::MAX, f64::min);
        let best_run = outcomes
            .iter()
            .find(|o| o.anneal_cost == min_cost)
            .expect("non-empty");
        assert_eq!(best.area_mm2, best_run.area_mm2);
        let manual_avg: f64 =
            outcomes.iter().map(|o| o.area_mm2).sum::<f64>() / outcomes.len() as f64;
        assert!((avg.area_mm2 - manual_avg).abs() < 1e-12);
        // Every outcome carries a judged cost.
        assert!(outcomes.iter().all(|o| o.judging_cost >= 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn aggregate_rejects_empty() {
        let _ = aggregate(&[]);
    }
}
