//! Shared experiment machinery: run modes, seeded floorplanner runs, and
//! aggregate statistics in the paper's "average / best of N seeds" form.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use irgrid::anneal::{Annealer, Checkpoint, RunControl, Schedule, StopReason};
use irgrid::congestion::{CongestionModel, FixedGridModel, RetainedCongestion};
use irgrid::fleet::pool;
use irgrid::floorplanner::{FloorplanEval, FloorplanProblem, FloorplanSpec, Weights};
use irgrid::geom::Um;
use irgrid::netlist::Circuit;

/// Fault-tolerance options shared by every batch in an invocation:
/// a wall-clock deadline and checkpoint/resume directories.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultOptions {
    /// Stop all annealing at this instant; remaining seeds are skipped.
    pub deadline: Option<Instant>,
    /// Write a checkpoint per `(circuit, weights, pitch, seed)` run into
    /// this directory every [`FaultOptions::CHECKPOINT_EVERY`] steps.
    pub checkpoint_dir: Option<&'static str>,
    /// Before each seed run, look for a matching checkpoint in this
    /// directory and resume from it instead of starting fresh.
    pub resume_dir: Option<&'static str>,
}

impl FaultOptions {
    /// Checkpoint cadence in temperature steps.
    pub const CHECKPOINT_EVERY: usize = 10;

    /// The checkpoint file for one seeded run, unique per
    /// `(circuit, weights, pitch, seed)` so concurrent batches over the
    /// same circuit (e.g. Table 1 baseline vs Table 2) never collide.
    pub fn checkpoint_file(
        dir: &str,
        circuit: &Circuit,
        pitch: Um,
        weights: Weights,
        seed: u64,
    ) -> PathBuf {
        let tag = format!(
            "{}_a{}w{}c{}_p{}_s{seed}.ckpt.json",
            circuit.name(),
            weights.area,
            weights.wire,
            weights.congestion,
            pitch.0,
        );
        PathBuf::from(dir).join(tag)
    }

    /// The [`RunControl`] these options induce.
    pub fn control(&self) -> RunControl {
        let mut control = RunControl::unlimited();
        if let Some(deadline) = self.deadline {
            control = control.with_deadline(deadline);
        }
        if self.checkpoint_dir.is_some() {
            control = control.with_checkpoint_every(Self::CHECKPOINT_EVERY);
        }
        control
    }
}

/// How much compute an experiment run spends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mode {
    /// Number of annealing seeds per configuration (the paper uses 20).
    pub seeds: u64,
    /// The annealing schedule.
    pub schedule: Schedule,
    /// Label printed in headers.
    pub label: &'static str,
    /// Worker threads for per-seed batches (`--jobs N`); 1 keeps the
    /// original single-threaded execution byte for byte.
    pub jobs: usize,
    /// Deadline / checkpoint / resume options.
    pub fault: FaultOptions,
}

impl Mode {
    /// Smoke-test mode: 2 seeds, short schedule.
    pub fn quick() -> Mode {
        Mode {
            seeds: 2,
            schedule: Schedule::quick(),
            label: "quick (2 seeds, short schedule)",
            jobs: 1,
            fault: FaultOptions::default(),
        }
    }

    /// Default mode: 3 seeds, medium schedule — minutes, not hours.
    pub fn standard() -> Mode {
        Mode {
            seeds: 3,
            schedule: Schedule {
                moves_per_temperature: 120,
                cooling: 0.88,
                max_temperatures: 100,
                ..Schedule::default()
            },
            label: "standard (3 seeds, medium schedule)",
            jobs: 1,
            fault: FaultOptions::default(),
        }
    }

    /// Paper-protocol mode: 20 seeds, classic schedule.
    pub fn full() -> Mode {
        Mode {
            seeds: 20,
            schedule: Schedule::default(),
            label: "full (20 seeds, classic schedule)",
            jobs: 1,
            fault: FaultOptions::default(),
        }
    }

    /// Parses `--quick` / `--full` flags (default standard) plus
    /// `--jobs <n>` and the fault-tolerance flags `--time-limit <seconds>`,
    /// `--checkpoint <dir>`, and `--resume <dir>`.
    pub fn from_args(args: &[String]) -> Mode {
        let mut mode = if args.iter().any(|a| a == "--quick") {
            Mode::quick()
        } else if args.iter().any(|a| a == "--full") {
            Mode::full()
        } else {
            Mode::standard()
        };
        if let Some(text) = flag_value(args, "--jobs") {
            let jobs: usize = text
                .parse()
                .unwrap_or_else(|_| die(&format!("--jobs `{text}` is not a count")));
            if jobs == 0 {
                die("--jobs must be at least 1");
            }
            mode.jobs = jobs;
        }
        mode.fault = FaultOptions {
            deadline: flag_value(args, "--time-limit").map(|text| {
                let seconds: f64 = text
                    .parse()
                    .unwrap_or_else(|_| die(&format!("--time-limit `{text}` is not a number")));
                if !(seconds.is_finite() && seconds >= 0.0) {
                    die(&format!("--time-limit must be non-negative, got {seconds}"));
                }
                Instant::now() + Duration::from_secs_f64(seconds)
            }),
            checkpoint_dir: flag_value(args, "--checkpoint").map(leak),
            resume_dir: flag_value(args, "--resume").map(leak),
        };
        mode
    }
}

/// The value following a `--flag`, if present.
pub fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    let position = args.iter().position(|a| a == flag)?;
    match args.get(position + 1) {
        Some(value) if !value.starts_with("--") => Some(value),
        _ => die(&format!("{flag} needs a value")),
    }
}

/// Leaks a flag value so it can live in the `Copy` [`Mode`]; bounded by
/// the argument list, fine for a CLI process.
fn leak(text: &str) -> &'static str {
    Box::leak(text.to_owned().into_boxed_str())
}

/// Prints a usage error and exits (exit code 2, like the unknown-command
/// path in `main`).
pub fn die(message: &str) -> ! {
    eprintln!("{message}");
    std::process::exit(2);
}

/// One seeded floorplanner run's reported fields.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The annealing seed (kept for traceability in debug dumps).
    #[allow(dead_code)]
    pub seed: u64,
    /// The annealer's internal (normalized) best cost — used to pick the
    /// "best" run of a batch, like the paper's cost function.
    pub anneal_cost: f64,
    pub area_mm2: f64,
    pub wire_um: f64,
    pub time_s: f64,
    /// The optimizing model's own congestion score (0 if none attached).
    pub model_cost: f64,
    /// The 10 µm judging model's score of the final floorplan.
    pub judging_cost: f64,
    /// Final evaluation (placement + segments) for follow-up scoring.
    pub eval: FloorplanEval,
}

/// The per-batch fixtures shared by every seeded run: the annealer, its
/// run control, the fault options, the judging model, and the batch's
/// `(pitch, weights)` identity for checkpoint-file naming.
struct SeedRunner {
    annealer: Annealer,
    control: RunControl,
    fault: FaultOptions,
    judging: FixedGridModel,
    pitch: Um,
    weights: Weights,
}

impl SeedRunner {
    /// One per-seed annealing run: checkpoint sink, optional resume,
    /// anneal, judge. Returns `None` (after a stderr warning) on a typed
    /// [`AnnealError`]; otherwise the outcome plus the stop reason and
    /// the number of temperature steps actually run (used by the parallel
    /// path to drop seeds the deadline prevented from ever starting).
    ///
    /// [`AnnealError`]: irgrid::anneal::AnnealError
    fn run_seed<M: RetainedCongestion>(
        &self,
        problem: &FloorplanProblem<'_, M>,
        seed: u64,
    ) -> Option<(RunOutcome, StopReason, usize)> {
        let circuit = problem.circuit();
        let start = Instant::now();
        let checkpoint_path = self.fault.checkpoint_dir.map(|dir| {
            let path = FaultOptions::checkpoint_file(dir, circuit, self.pitch, self.weights, seed);
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            path
        });
        let mut sink = |checkpoint: &Checkpoint<irgrid::floorplan::PolishExpr>| {
            if let Some(path) = &checkpoint_path {
                if let Err(err) = checkpoint.write_file(path) {
                    eprintln!("warning: {err}");
                }
            }
        };

        let resumed_from = self
            .fault
            .resume_dir
            .map(|dir| FaultOptions::checkpoint_file(dir, circuit, self.pitch, self.weights, seed));
        let run = match resumed_from.filter(|path| path.exists()) {
            Some(path) => match Checkpoint::read_file(&path) {
                Ok(checkpoint) => self.annealer.resume_with_checkpoints(
                    problem,
                    checkpoint,
                    &self.control,
                    &mut sink,
                ),
                Err(err) => {
                    eprintln!("warning: ignoring checkpoint {}: {err}", path.display());
                    self.annealer
                        .run_with_checkpoints(problem, seed, &self.control, &mut sink)
                }
            },
            None => self
                .annealer
                .run_with_checkpoints(problem, seed, &self.control, &mut sink),
        };
        let result = match run {
            Ok(result) => result,
            Err(err) => {
                eprintln!("warning: seed {seed} on {}: {err}", circuit.name());
                return None;
            }
        };

        let time_s = start.elapsed().as_secs_f64();
        let eval = problem.evaluate(&result.best);
        let judging_cost = self
            .judging
            .evaluate(&eval.placement.chip(), &eval.segments);
        let outcome = RunOutcome {
            seed,
            anneal_cost: result.best_cost,
            area_mm2: eval.area_um2 / 1e6,
            wire_um: eval.wirelength_um,
            time_s,
            model_cost: eval.congestion,
            judging_cost,
            eval,
        };
        Some((outcome, result.stop_reason, result.stats.temperatures))
    }
}

/// Runs the annealing floorplanner once per seed and judges every final
/// floorplan with the 10 µm fixed-grid judging model.
///
/// With `mode.jobs > 1` the seeds are fanned out over a deterministic
/// worker pool ([`irgrid::fleet::pool`]); each worker builds its own
/// problem instance from a [`FloorplanSpec`], so per-seed results are
/// bit-identical to the single-threaded run (each seeded run is
/// self-contained) apart from wall-clock `time_s`. With the default
/// `jobs = 1` the original sequential loop runs unchanged.
///
/// Honors the mode's [`FaultOptions`]: runs stop at the shared deadline
/// (remaining seeds are skipped), write checkpoints on a cadence when a
/// checkpoint directory is set, and resume from matching checkpoint files
/// when a resume directory is set. A failed run (typed [`AnnealError`])
/// is reported on stderr and skipped, never a panic.
///
/// [`AnnealError`]: irgrid::anneal::AnnealError
pub fn run_batch<M>(
    circuit: &Circuit,
    pitch: Um,
    weights: Weights,
    model: Option<M>,
    mode: &Mode,
) -> Vec<RunOutcome>
where
    M: RetainedCongestion + Clone + Sync,
{
    let runner = SeedRunner {
        annealer: Annealer::new(mode.schedule),
        control: mode.fault.control(),
        fault: mode.fault,
        judging: FixedGridModel::judging(),
        pitch,
        weights,
    };

    if mode.jobs > 1 {
        let spec: FloorplanSpec<'_, M> = FloorplanSpec::new(circuit, pitch, weights, model)
            .unwrap_or_else(|err| {
                die(&format!(
                    "invalid floorplan configuration for {}: {err}",
                    circuit.name()
                ))
            });
        let seeds: Vec<u64> = (0..mode.seeds).collect();
        let results = pool::run_ordered(
            mode.jobs,
            seeds,
            |_| spec.build(),
            |problem, _, seed| runner.run_seed(problem, seed),
        );
        let mut outcomes = Vec::new();
        let mut deadline_hit = false;
        for (outcome, stop, temperatures) in results.into_iter().flatten() {
            if stop == StopReason::Deadline {
                deadline_hit = true;
                // A seed the deadline stopped before its first temperature
                // step is one the sequential loop would never have started.
                if temperatures == 0 {
                    continue;
                }
            }
            outcomes.push(outcome);
        }
        if deadline_hit {
            eprintln!(
                "time limit reached on {}; partial results kept",
                circuit.name()
            );
        }
        return outcomes;
    }

    let problem = FloorplanProblem::new(circuit, pitch, weights, model);
    let mut outcomes = Vec::new();
    for seed in 0..mode.seeds {
        let Some((outcome, stop, _)) = runner.run_seed(&problem, seed) else {
            continue;
        };
        outcomes.push(outcome);
        if stop == StopReason::Deadline {
            eprintln!(
                "time limit reached during seed {seed} on {}; skipping remaining seeds",
                circuit.name()
            );
            break;
        }
    }
    outcomes
}

/// The paper's "average results" row.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    pub area_mm2: f64,
    pub wire_um: f64,
    pub time_s: f64,
    pub model_cost: f64,
    pub judging_cost: f64,
}

/// Average and best (by annealing cost) rows of a batch.
pub fn aggregate(outcomes: &[RunOutcome]) -> (Row, Row) {
    assert!(!outcomes.is_empty(), "need at least one run");
    let n = outcomes.len() as f64;
    let avg = Row {
        area_mm2: outcomes.iter().map(|o| o.area_mm2).sum::<f64>() / n,
        wire_um: outcomes.iter().map(|o| o.wire_um).sum::<f64>() / n,
        time_s: outcomes.iter().map(|o| o.time_s).sum::<f64>() / n,
        model_cost: outcomes.iter().map(|o| o.model_cost).sum::<f64>() / n,
        judging_cost: outcomes.iter().map(|o| o.judging_cost).sum::<f64>() / n,
    };
    let best_run = outcomes
        .iter()
        .min_by(|a, b| a.anneal_cost.total_cmp(&b.anneal_cost))
        .expect("non-empty");
    let best = Row {
        area_mm2: best_run.area_mm2,
        wire_um: best_run.wire_um,
        time_s: best_run.time_s,
        model_cost: best_run.model_cost,
        judging_cost: best_run.judging_cost,
    };
    (avg, best)
}

/// Percentage improvement of `new` over `old` (positive = better/lower).
pub fn improvement_pct(old: f64, new: f64) -> f64 {
    if old.abs() < f64::MIN_POSITIVE {
        return 0.0;
    }
    100.0 * (old - new) / old
}

/// Prints a section header.
pub fn header(title: &str, mode: &Mode) {
    println!("\n=== {title} ===");
    println!("mode: {}", mode.label);
}

#[cfg(test)]
mod tests {
    use super::*;
    use irgrid::congestion::IrregularGridModel;
    use irgrid::netlist::generator::CircuitGenerator;

    #[test]
    fn mode_flag_parsing() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            Mode::from_args(&args(&["--quick"])).seeds,
            Mode::quick().seeds
        );
        assert_eq!(Mode::from_args(&args(&["--full"])).seeds, 20);
        assert_eq!(
            Mode::from_args(&args(&["table1"])).seeds,
            Mode::standard().seeds
        );
        assert_eq!(Mode::from_args(&args(&["table1"])).jobs, 1);
        assert_eq!(Mode::from_args(&args(&["--quick", "--jobs", "4"])).jobs, 4);
    }

    #[test]
    fn parallel_batch_matches_sequential_results() {
        let circuit = CircuitGenerator::new("par", 6, 10)
            .seed(2)
            .generate()
            .expect("valid");
        let sequential = Mode {
            seeds: 3,
            schedule: irgrid::anneal::Schedule::quick(),
            label: "test",
            jobs: 1,
            fault: FaultOptions::default(),
        };
        let parallel = Mode {
            jobs: 3,
            ..sequential
        };
        let a = run_batch(
            &circuit,
            Um(30),
            Weights::area_wire(),
            None::<IrregularGridModel>,
            &sequential,
        );
        let b = run_batch(
            &circuit,
            Um(30),
            Weights::area_wire(),
            None::<IrregularGridModel>,
            &parallel,
        );
        assert_eq!(a.len(), b.len());
        for (s, p) in a.iter().zip(&b) {
            assert_eq!(s.seed, p.seed);
            assert_eq!(s.anneal_cost.to_bits(), p.anneal_cost.to_bits());
            assert_eq!(s.judging_cost.to_bits(), p.judging_cost.to_bits());
            assert_eq!(s.area_mm2.to_bits(), p.area_mm2.to_bits());
            assert_eq!(s.wire_um.to_bits(), p.wire_um.to_bits());
        }
    }

    #[test]
    fn improvement_pct_signs() {
        assert!((improvement_pct(2.0, 1.0) - 50.0).abs() < 1e-12);
        assert!((improvement_pct(2.0, 3.0) + 50.0).abs() < 1e-12);
        assert_eq!(improvement_pct(0.0, 1.0), 0.0);
    }

    #[test]
    fn aggregate_averages_and_picks_best() {
        let circuit = CircuitGenerator::new("agg", 6, 10)
            .seed(1)
            .generate()
            .expect("valid");
        let mode = Mode {
            seeds: 3,
            schedule: irgrid::anneal::Schedule::quick(),
            label: "test",
            jobs: 1,
            fault: FaultOptions::default(),
        };
        let outcomes = run_batch(
            &circuit,
            Um(30),
            Weights::area_wire(),
            None::<IrregularGridModel>,
            &mode,
        );
        assert_eq!(outcomes.len(), 3);
        let (avg, best) = aggregate(&outcomes);
        let min_cost = outcomes
            .iter()
            .map(|o| o.anneal_cost)
            .fold(f64::MAX, f64::min);
        let best_run = outcomes
            .iter()
            .find(|o| o.anneal_cost == min_cost)
            .expect("non-empty");
        assert_eq!(best.area_mm2, best_run.area_mm2);
        let manual_avg: f64 =
            outcomes.iter().map(|o| o.area_mm2).sum::<f64>() / outcomes.len() as f64;
        assert!((avg.area_mm2 - manual_avg).abs() < 1e-12);
        // Every outcome carries a judged cost.
        assert!(outcomes.iter().all(|o| o.judging_cost >= 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn aggregate_rejects_empty() {
        let _ = aggregate(&[]);
    }
}
