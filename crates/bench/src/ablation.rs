//! Ablations of the Irregular-Grid design choices called out in
//! DESIGN.md: Theorem 1 vs exact Formula 3, Simpson interval count,
//! cutting-line merging, continuity correction, and the fixed-grid
//! baseline's arithmetic mode.

use std::time::Instant;

use irgrid::anneal::{Annealer, Schedule};
use irgrid::congestion::{
    ApproxConfig, CellArithmetic, CongestionModel, Evaluator, FixedGridModel, IrregularGridModel,
};
use irgrid::floorplanner::{FloorplanProblem, Weights};
use irgrid::geom::{Point, Um};
use irgrid::netlist::mcnc::McncCircuit;

/// Times `model.evaluate` over `reps` repetitions, returning (cost, ms).
fn time_model<M: CongestionModel>(
    model: &M,
    chip: &irgrid::geom::Rect,
    segments: &[(Point, Point)],
    reps: usize,
) -> (f64, f64) {
    let start = Instant::now();
    let mut cost = 0.0;
    for _ in 0..reps {
        cost = model.evaluate(chip, segments);
    }
    (cost, start.elapsed().as_secs_f64() * 1000.0 / reps as f64)
}

pub fn run(bench: McncCircuit) {
    let circuit = bench.circuit();
    let pitch = Um(bench.paper_grid_pitch_um());
    eprintln!("[ablation] {bench}: producing a reference floorplan...");
    let problem = FloorplanProblem::new(
        &circuit,
        pitch,
        Weights::area_wire(),
        None::<IrregularGridModel>,
    );
    let result = Annealer::new(Schedule::quick()).run(&problem, 2);
    let eval = problem.evaluate(&result.best);
    let chip = eval.placement.chip();
    let segments = &eval.segments;
    let reps = 50;

    println!(
        "\n=== Ablation on {bench} ({} segments, chip {:.2} mm^2) ===",
        segments.len(),
        chip.area().as_mm2()
    );

    // Reference: exact Formula 3 scoring.
    let exact_model = IrregularGridModel::new(pitch).with_evaluator(Evaluator::Exact);
    let (exact_cost, exact_ms) = time_model(&exact_model, &chip, segments, reps);
    println!("\n(a) evaluator + Simpson intervals (reference: exact Formula 3 = {exact_cost:.5}, {exact_ms:.3} ms):");
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "intervals", "cost", "rel err", "eval (ms)"
    );
    for intervals in [2usize, 4, 6, 8, 16, 32] {
        let model = IrregularGridModel::new(pitch).with_approx_config(ApproxConfig {
            simpson_intervals: intervals,
            continuity_correction: true,
        });
        let (cost, ms) = time_model(&model, &chip, segments, reps);
        println!(
            "{:>10} {:>12.5} {:>12.4} {:>12.3}",
            intervals,
            cost,
            (cost - exact_cost).abs() / exact_cost.max(1e-12),
            ms
        );
    }

    // Continuity correction.
    println!("\n(b) continuity correction (±0.5 integration bounds):");
    for (label, correction) in [
        ("on (default)", true),
        ("off (paper's literal bounds)", false),
    ] {
        let model = IrregularGridModel::new(pitch).with_approx_config(ApproxConfig {
            simpson_intervals: 6,
            continuity_correction: correction,
        });
        let (cost, ms) = time_model(&model, &chip, segments, reps);
        println!(
            "  {:<30} cost {:>10.5} (rel err vs exact {:>7.4}), {:>7.3} ms",
            label,
            cost,
            (cost - exact_cost).abs() / exact_cost.max(1e-12),
            ms
        );
    }

    // Cutting-line merging.
    println!("\n(c) Algorithm step 2 line merging:");
    for (label, merge) in [
        ("on (default, 2x pitch)", true),
        ("off (dedup only)", false),
    ] {
        let model = if merge {
            IrregularGridModel::new(pitch)
        } else {
            IrregularGridModel::new(pitch).without_line_merging()
        };
        let map = model.congestion_map(&chip, segments);
        let (cost, ms) = time_model(&model, &chip, segments, reps);
        println!(
            "  {:<30} {:>6} IR-grids, cost {:>10.5}, {:>7.3} ms",
            label,
            map.ir_cell_count(),
            cost,
            ms
        );
    }

    // Fixed-grid arithmetic (timing-fidelity of the Table 5 baseline).
    println!("\n(d) fixed-grid baseline arithmetic at 50x50 um:");
    for (label, arithmetic) in [
        ("amortized ln-factorial table", CellArithmetic::TableLookup),
        ("per-cell ln_gamma (2002-era)", CellArithmetic::PerCellGamma),
    ] {
        let model = FixedGridModel::new(Um(50)).with_arithmetic(arithmetic);
        let (cost, ms) = time_model(&model, &chip, segments, reps);
        println!("  {:<30} cost {:>10.5}, {:>7.3} ms", label, cost, ms);
    }

    // Representation: slicing (the paper) vs sequence pair.
    println!("\n(f) floorplan representation (area+wire annealing, seed 2):");
    {
        use irgrid::floorplan::{PolishExpr, SequencePair};
        let annealer = Annealer::new(Schedule::quick());
        let slicing: FloorplanProblem<'_, IrregularGridModel, PolishExpr> =
            FloorplanProblem::with_representation(&circuit, pitch, Weights::area_wire(), None);
        let t = Instant::now();
        let r = annealer.run(&slicing, 2);
        let slicing_eval = slicing.evaluate(&r.best);
        let slicing_t = t.elapsed().as_secs_f64();
        let seqpair: FloorplanProblem<'_, IrregularGridModel, SequencePair> =
            FloorplanProblem::with_representation(&circuit, pitch, Weights::area_wire(), None);
        let t = Instant::now();
        let r = annealer.run(&seqpair, 2);
        let seqpair_eval = seqpair.evaluate(&r.best);
        let seqpair_t = t.elapsed().as_secs_f64();
        println!(
            "  {:<30} area {:>7.3} mm^2, wire {:>8.0} um, {:>5.1} s",
            "Polish expression (slicing)",
            slicing_eval.area_um2 / 1e6,
            slicing_eval.wirelength_um,
            slicing_t
        );
        println!(
            "  {:<30} area {:>7.3} mm^2, wire {:>8.0} um, {:>5.1} s",
            "sequence pair (non-slicing)",
            seqpair_eval.area_um2 / 1e6,
            seqpair_eval.wirelength_um,
            seqpair_t
        );
    }

    // Multi-pin decomposition: MST (the paper) vs star.
    println!("\n(e) multi-pin net decomposition:");
    let placer = irgrid::floorplan::PinPlacer::new(pitch);
    for (label, decomposition) in [
        (
            "MST (paper, Section 5)",
            irgrid::floorplan::Decomposition::Mst,
        ),
        (
            "star from centroid hub",
            irgrid::floorplan::Decomposition::Star,
        ),
    ] {
        let segs = irgrid::floorplan::two_pin_segments_with(
            &circuit,
            &eval.placement,
            &placer,
            decomposition,
        );
        let wire: i64 = segs.iter().map(|(a, b)| a.manhattan_distance(*b).0).sum();
        let ir_cost = IrregularGridModel::new(pitch).evaluate(&chip, &segs);
        println!(
            "  {:<30} {:>4} segments, wire {:>8} um, IR cost {:>8.5}",
            label,
            segs.len(),
            wire,
            ir_cost
        );
    }
}
