//! The figure 3/4 motivation: fixed-grid estimates depend on the grid
//! size, and most fixed grids are wasted on regions a single net (or
//! none) touches.

use irgrid::congestion::{FixedGridModel, IrregularGridModel, RoutingRange, UnitGrid};
use irgrid::geom::{Point, Rect, Um};

fn pt(x: i64, y: i64) -> Point {
    Point::new(Um(x), Um(y))
}

pub fn run() {
    // A figure-4-like scene: six nets, most crowded on the right half of
    // a 1200x800 chip.
    let chip = Rect::from_origin_size(Point::ORIGIN, Um(1200), Um(800));
    let segments = vec![
        (pt(650, 80), pt(1150, 720)),
        (pt(700, 700), pt(1100, 100)),
        (pt(620, 350), pt(1160, 430)),
        (pt(800, 60), pt(900, 760)),
        (pt(60, 90), pt(320, 260)),
        (pt(100, 540), pt(330, 700)),
    ];

    println!("\n=== Motivation (figures 3/4): grid-size dependence of the fixed model ===");
    println!(
        "{:>12} {:>8} {:>12} {:>10} {:>22}",
        "grid", "cells", "top-10% cost", "peak", "cells crossed by <=1 net"
    );
    for p in [300i64, 200, 100, 50, 25] {
        let model = FixedGridModel::new(Um(p));
        let map = model.congestion_map(&chip, &segments);
        // Count cells that at most one net meaningfully crosses — work
        // the paper calls wasted ("never lead to congestion").
        let sparse = map.values().iter().filter(|&&v| v <= 1.0 + 1e-9).count();
        println!(
            "{:>9}x{:<3} {:>7} {:>12.4} {:>10.4} {:>14} ({:>4.1}%)",
            p,
            p,
            map.cell_count(),
            map.cost(),
            map.peak(),
            sparse,
            100.0 * sparse as f64 / map.cell_count() as f64
        );
    }

    // The Irregular-Grid partition adapts: cells concentrate on the
    // right where ranges overlap.
    let ir = IrregularGridModel::new(Um(25));
    let map = ir.congestion_map(&chip, &segments);
    println!(
        "\nIrregular-Grid at 25um pitch: {} IR-grids ({} x {}), top-10% cost {:.4}",
        map.ir_cell_count(),
        map.ir_cols(),
        map.ir_rows(),
        map.cost()
    );
    let grid = UnitGrid::new(&chip, Um(25));
    let ranges: Vec<RoutingRange> = segments
        .iter()
        .map(|&(a, b)| RoutingRange::from_segment(&grid, a, b))
        .collect();
    let right_cells: usize = (0..map.ir_rows())
        .flat_map(|j| (0..map.ir_cols()).map(move |i| (i, j)))
        .filter(|&(i, _)| map.cell_rect(i, 0).ll().x >= Um(600))
        .count();
    println!(
        "IR-grids in the crowded right half: {right_cells} of {} — the partition follows the {} routing ranges",
        map.ir_cell_count(),
        ranges.len()
    );
}
