//! Shared agreement metrics over paired score vectors.
//!
//! `sweep` and `validate` each used to carry a private Pearson
//! implementation; `compare-all` adds two more metrics. They live here
//! once, with hostile-input handling: empty or mismatched inputs are
//! typed errors, and degenerate statistics (zero variance, all-zero
//! references) return defined sentinels instead of NaN so report JSON
//! never contains non-finite garbage.
//!
//! Per-cell *raster* comparison stays in `irgrid::congestion::analysis`
//! — these functions compare plain slices (per-floorplan scores or
//! flattened maps) and mirror that module's conventions: zero variance
//! ⇒ correlation 0, MAE scales the second argument to the first's mean,
//! hotspot sets take the top-`fraction` indices by value.

use std::fmt;

/// Why a metric could not be computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricError {
    /// Both inputs are empty.
    Empty,
    /// The inputs have different lengths.
    LengthMismatch {
        /// Length of the first series.
        left: usize,
        /// Length of the second series.
        right: usize,
    },
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::Empty => write!(f, "metric inputs are empty"),
            MetricError::LengthMismatch { left, right } => {
                write!(f, "metric inputs differ in length: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for MetricError {}

fn check(a: &[f64], b: &[f64]) -> Result<(), MetricError> {
    if a.len() != b.len() {
        return Err(MetricError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    if a.is_empty() {
        return Err(MetricError::Empty);
    }
    Ok(())
}

/// Pearson correlation of two equal-length series.
///
/// Zero variance on either side means correlation is undefined; this
/// returns the sentinel `0.0` (no evidence of agreement) rather than
/// NaN.
pub fn pearson(a: &[f64], b: &[f64]) -> Result<f64, MetricError> {
    check(a, b)?;
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let (mut va, mut vb) = (0.0, 0.0);
    for (&x, &y) in a.iter().zip(b) {
        num += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        return Ok(0.0);
    }
    Ok(num / (va.sqrt() * vb.sqrt()))
}

/// Mean absolute error after rescaling `b` to `a`'s mean.
///
/// The models report in different units; rescaling makes the error
/// scale-free, matching `analysis::compare`. A zero-mean `b` cannot be
/// rescaled and is compared as-is.
pub fn scaled_mae(a: &[f64], b: &[f64]) -> Result<f64, MetricError> {
    check(a, b)?;
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let scale = if mb == 0.0 { 1.0 } else { ma / mb };
    let total: f64 = a.iter().zip(b).map(|(&x, &y)| (x - y * scale).abs()).sum();
    Ok(total / n)
}

/// Jaccard overlap of the two series' top-`fraction` index sets.
///
/// Both sets always contain at least one index, so the result is a
/// well-defined value in `[0, 1]`.
///
/// # Panics
///
/// Panics if `fraction` is not in `(0, 1]`.
pub fn hotspot_jaccard(a: &[f64], b: &[f64], fraction: f64) -> Result<f64, MetricError> {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0, 1], got {fraction}"
    );
    check(a, b)?;
    let top_set = |values: &[f64]| -> Vec<usize> {
        let take = ((values.len() as f64 * fraction).ceil() as usize).clamp(1, values.len());
        let mut idx: Vec<usize> = (0..values.len()).collect();
        idx.sort_by(|&i, &j| values[j].total_cmp(&values[i]));
        let mut top = idx[..take].to_vec();
        top.sort_unstable();
        top
    };
    let ta = top_set(a);
    let tb = top_set(b);
    let mut inter = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < ta.len() && j < tb.len() {
        match ta[i].cmp(&tb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = ta.len() + tb.len() - inter;
    Ok(inter as f64 / union as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_matches_hand_computation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let anti: Vec<f64> = b.iter().map(|&x| -x).collect();
        assert!((pearson(&a, &anti).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_is_the_sentinel_not_nan() {
        let flat = [5.0, 5.0, 5.0];
        let ramp = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&flat, &ramp), Ok(0.0));
        assert_eq!(pearson(&ramp, &flat), Ok(0.0));
        assert_eq!(pearson(&flat, &flat), Ok(0.0));
    }

    #[test]
    fn empty_inputs_are_typed_errors_not_panics() {
        assert_eq!(pearson(&[], &[]), Err(MetricError::Empty));
        assert_eq!(scaled_mae(&[], &[]), Err(MetricError::Empty));
        assert_eq!(hotspot_jaccard(&[], &[], 0.1), Err(MetricError::Empty));
    }

    #[test]
    fn mismatched_lengths_are_typed_errors_not_panics() {
        let short = [1.0];
        let long = [1.0, 2.0];
        let expected = MetricError::LengthMismatch { left: 1, right: 2 };
        assert_eq!(pearson(&short, &long), Err(expected));
        assert_eq!(scaled_mae(&short, &long), Err(expected));
        assert_eq!(hotspot_jaccard(&short, &long, 0.1), Err(expected));
    }

    #[test]
    fn scaled_mae_is_scale_free() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0];
        assert!(scaled_mae(&a, &b).unwrap().abs() < 1e-12);
        let zero = [0.0, 0.0, 0.0];
        // Zero-mean reference compares as-is: mean |a|.
        assert!((scaled_mae(&a, &zero).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hotspot_jaccard_rewards_matching_peaks() {
        let a = [0.0, 1.0, 9.0, 2.0];
        let same_peak = [1.0, 0.0, 7.0, 3.0];
        let other_peak = [9.0, 1.0, 0.0, 2.0];
        assert_eq!(hotspot_jaccard(&a, &same_peak, 0.25), Ok(1.0));
        assert_eq!(hotspot_jaccard(&a, &other_peak, 0.25), Ok(0.0));
    }

    #[test]
    fn errors_format_for_reports() {
        assert_eq!(MetricError::Empty.to_string(), "metric inputs are empty");
        assert_eq!(
            MetricError::LengthMismatch { left: 3, right: 5 }.to_string(),
            "metric inputs differ in length: 3 vs 5"
        );
    }
}
