//! Shared atomic `BENCH_*.json` report writing.
//!
//! Every benchmark subcommand that persists a machine-readable report
//! (`BENCH_congestion.json`, `BENCH_fleet.json`, `BENCH_serve.json`)
//! goes through [`emit`]: pretty JSON to stdout, then an atomic
//! tmp + fsync + rename to the report path. A crash mid-write therefore
//! never leaves a torn report for CI or downstream tooling to misparse —
//! either the previous report survives or the new one is complete.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use serde::Serialize;

use crate::common::die;

/// Writes `json` (with a trailing newline) atomically to `path`: a
/// sibling `<name>.tmp` file is written and fsynced, then renamed over
/// the destination.
pub fn write_json_atomic(path: &Path, json: &str) -> std::io::Result<()> {
    let mut tmp_name = path
        .file_name()
        .map_or_else(|| std::ffi::OsString::from("report"), ToOwned::to_owned);
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(json.as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Serializes `report` to pretty JSON, prints it, and atomically writes
/// it to `out_path`; exits with a usage-style error if the write fails.
pub fn emit<T: Serialize>(out_path: &str, report: &T) {
    let json = serde_json::to_string_pretty(report).expect("report serializes");
    println!("{json}");
    match write_json_atomic(Path::new(out_path), &json) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(err) => die(&format!("cannot write {out_path}: {err}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_roundtrips_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join("irgrid_bench_report_test");
        fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_test.json");
        write_json_atomic(&path, "{\n  \"ok\": true\n}").expect("write");
        assert_eq!(
            fs::read_to_string(&path).expect("read"),
            "{\n  \"ok\": true\n}\n"
        );
        assert!(!dir.join("BENCH_test.json.tmp").exists());
        // Overwrite goes through the same rename and wins completely.
        write_json_atomic(&path, "{}").expect("rewrite");
        assert_eq!(fs::read_to_string(&path).expect("read"), "{}\n");
        fs::remove_dir_all(&dir).ok();
    }
}
