//! `congestion-perf` — throughput benchmark of the retained congestion
//! evaluation engine (`CongestionEvaluator`), written as JSON to
//! `BENCH_congestion.json` (override with `--out`).
//!
//! Three configurations are timed on an annealed floorplan of the chosen
//! circuit (ami49 by default, the largest of the suite):
//!
//! * **baseline** — the pre-engine behavior: every evaluation builds a
//!   fresh evaluator, re-deriving the `LnFactorials` table and
//!   reallocating every scratch vector.
//! * **retained serial** — one warm [`CongestionEvaluator`] reused across
//!   evaluations (steady state allocates nothing), `threads = 1`.
//! * **retained parallel** — the same engine with the per-range
//!   accumulation fanned out over row bands (`threads = 2, 4`, or the
//!   `--threads` override). Results are bit-identical to serial by
//!   construction; this command re-checks that at runtime and refuses to
//!   report timings from a mismatching build.
//!
//! The report also times the congestion-weighted annealer end to end
//! (`sa_moves_per_s`) because the retained session's win is only real if
//! it survives the full move loop, and records `cpu_count` so a reader
//! can tell whether parallel speedups were physically possible on the
//! machine that produced the numbers. On a single-CPU host the parallel
//! rows are skipped entirely (unless `--threads` forces them) and
//! `parallel_skipped_reason` records why — timing thread fan-out with one
//! core measures scheduler overhead, not the engine.
//!
//! With `--delta` the report additionally times the incremental
//! ([`DeltaProblem`](irgrid::anneal::DeltaProblem)) annealing loop and
//! re-verifies on the spot that every incremental cost is bit-identical
//! to from-scratch evaluation (`delta_equivalent`); the command aborts
//! rather than report a mismatching build.

use std::time::Instant;

use irgrid::anneal::{Annealer, DeltaProblem, Problem, Schedule};
use irgrid::congestion::{CongestionModel, IrregularGridModel, RetainedCongestion};
use irgrid::floorplanner::{FloorplanProblem, Weights};
use irgrid::geom::{Point, Rect, Um};
use irgrid::netlist::mcnc::McncCircuit;
use rand::SeedableRng;
use serde::Serialize;

use crate::common::{die, flag_value, Mode};

/// The JSON document `congestion-perf` emits.
#[derive(Debug, Serialize)]
struct Report {
    circuit: &'static str,
    /// Logical CPUs visible to the process — parallel speedup beyond
    /// serial is only achievable when this exceeds 1.
    cpu_count: usize,
    /// Evaluations per timed configuration.
    evaluations: usize,
    segments: usize,
    ir_cells: usize,
    /// Fresh-evaluator-per-call throughput (the pre-engine cost path).
    baseline_maps_per_s: f64,
    /// Warm retained session, `threads = 1`.
    retained_serial_maps_per_s: f64,
    /// `retained_serial / baseline` — the allocation + table-rebuild win.
    serial_speedup_vs_baseline: f64,
    /// One row per parallel thread count; empty when the host cannot
    /// exercise parallelism (see `parallel_skipped_reason`).
    parallel: Vec<ParallelRow>,
    /// Why the parallel rows are empty, when they are. `None` whenever
    /// rows were measured.
    parallel_skipped_reason: Option<String>,
    /// Runtime re-check that every parallel map matched serial bit for
    /// bit (the build aborts instead of reporting `false`).
    bit_identical: bool,
    /// Annealer throughput with the retained IR model in the cost loop.
    sa_moves: usize,
    sa_seconds: f64,
    sa_moves_per_s: f64,
    /// Runtime re-check that the incremental (`--delta`) loop scores
    /// bit-identically to from-scratch evaluation; the command aborts
    /// instead of reporting `false`. `None` without `--delta`.
    delta_equivalent: Option<bool>,
    /// Annealer throughput through the incremental delta loop.
    sa_delta_moves: Option<usize>,
    sa_delta_seconds: Option<f64>,
    sa_delta_moves_per_s: Option<f64>,
    /// `sa_delta_moves_per_s / sa_moves_per_s`.
    delta_speedup_vs_full: Option<f64>,
}

#[derive(Debug, Serialize)]
struct ParallelRow {
    threads: usize,
    maps_per_s: f64,
    speedup_vs_serial: f64,
}

/// Times `repeats` passes of `evaluations` calls each and returns the
/// maps-per-second of the *fastest* pass — min-of-k filters out
/// scheduler and page-fault noise, which on a shared single-CPU host
/// easily exceeds the effect being measured.
fn throughput(evaluations: usize, repeats: usize, mut eval: impl FnMut() -> f64) -> f64 {
    // One untimed call warms caches (and, for retained sessions, sizes
    // the scratch) so every configuration is measured in steady state.
    let warm = eval();
    assert!(warm.is_finite(), "benchmark evaluation produced {warm}");
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let start = Instant::now();
        for _ in 0..evaluations {
            std::hint::black_box(eval());
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    evaluations as f64 / best
}

/// Runs the benchmark and writes/prints the JSON report.
pub fn run(mode: &Mode, circuit: McncCircuit, args: &[String]) {
    let out_path = flag_value(args, "--out").unwrap_or("BENCH_congestion.json");
    let cpu_count = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut parallel_skipped_reason = None;
    let thread_counts: Vec<usize> = match flag_value(args, "--threads") {
        Some(text) => {
            let threads: usize = text
                .parse()
                .unwrap_or_else(|_| die(&format!("--threads `{text}` is not a count")));
            if threads < 2 {
                die("--threads must be at least 2 (1 is the serial row)");
            }
            vec![threads]
        }
        None if cpu_count <= 1 => {
            // Thread fan-out on one core only measures context-switch
            // overhead; the rows would read as a (bogus) slowdown.
            parallel_skipped_reason = Some(format!(
                "host exposes {cpu_count} logical CPU(s); pass --threads to force measurement"
            ));
            Vec::new()
        }
        None => vec![2, 4],
    };
    let quick = args.iter().any(|a| a == "--quick");
    let delta = args.iter().any(|a| a == "--delta");
    let (evaluations, repeats) = if quick { (20, 3) } else { (60, 5) };

    crate::common::header(&format!("congestion-perf ({})", circuit.name()), mode);

    // A realistic floorplan of the circuit: anneal area+wire briefly, the
    // same fixture the Criterion benches use.
    let netlist = circuit.circuit();
    let pitch = Um(circuit.paper_grid_pitch_um());
    let fixture = FloorplanProblem::new(
        &netlist,
        pitch,
        Weights::area_wire(),
        None::<IrregularGridModel>,
    );
    let fixture_run = Annealer::new(Schedule::quick()).run(&fixture, 4);
    let eval = fixture.evaluate(&fixture_run.best);
    let (chip, segments): (Rect, Vec<(Point, Point)>) = (eval.placement.chip(), eval.segments);

    let model = IrregularGridModel::new(pitch);
    let serial_map = model.congestion_map(&chip, &segments);
    let ir_cells = serial_map.ir_cell_count();

    // Baseline: a fresh evaluator per call, as the one-shot trait method
    // does — rebuilding LnFactorials and reallocating all scratch.
    let baseline_maps_per_s = throughput(evaluations, repeats, || model.evaluate(&chip, &segments));

    // Retained serial: one warm session.
    let mut session = model.session();
    let retained_serial_maps_per_s =
        throughput(evaluations, repeats, || session.evaluate(&chip, &segments));

    // Retained parallel, re-checking bit-identity before timing.
    let mut parallel = Vec::new();
    for &threads in &thread_counts {
        let threaded = model.with_threads(threads);
        let map = threaded.congestion_map(&chip, &segments);
        for j in 0..serial_map.ir_rows() {
            for i in 0..serial_map.ir_cols() {
                assert_eq!(
                    serial_map.total(i, j).to_bits(),
                    map.total(i, j).to_bits(),
                    "parallel map diverged from serial at cell ({i},{j}), {threads} threads"
                );
            }
        }
        let mut threaded_session = threaded.session();
        let maps_per_s = throughput(evaluations, repeats, || {
            threaded_session.evaluate(&chip, &segments)
        });
        parallel.push(ParallelRow {
            threads,
            maps_per_s,
            speedup_vs_serial: maps_per_s / retained_serial_maps_per_s,
        });
    }

    // End-to-end annealer throughput with the congestion term active.
    let problem = FloorplanProblem::new(&netlist, pitch, Weights::routability(), Some(model));
    let sa_schedule = if quick {
        Schedule::quick()
    } else {
        mode.schedule
    };
    let sa_start = Instant::now();
    let sa_run = Annealer::new(sa_schedule).run(&problem, 7);
    let sa_seconds = sa_start.elapsed().as_secs_f64();
    let sa_moves = sa_run.stats.accepted + sa_run.stats.rejected;
    let sa_moves_per_s = sa_moves as f64 / sa_seconds;

    // --delta: verify bit-exact equivalence of the incremental loop, then
    // time it on the identical problem and seed.
    let mut delta_equivalent = None;
    let mut sa_delta_moves = None;
    let mut sa_delta_seconds = None;
    let mut sa_delta_moves_per_s = None;
    let mut delta_speedup_vs_full = None;
    if delta {
        // Hand-driven move protocol: every incremental cost must equal a
        // from-scratch rebase on an identical second problem, across a
        // mix of accepted and rejected moves. An assert (not a report
        // field flip) so a broken build can never publish timings.
        let incremental =
            FloorplanProblem::new(&netlist, pitch, Weights::routability(), Some(model));
        let scratch = FloorplanProblem::new(&netlist, pitch, Weights::routability(), Some(model));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xbe7c);
        let mut state = incremental.initial_state();
        let rebased = incremental.rebase(&state);
        assert_eq!(
            rebased.to_bits(),
            scratch.rebase(&state).to_bits(),
            "delta rebase diverged from from-scratch evaluation"
        );
        let checks = if quick { 24 } else { 60 };
        for step in 0..checks {
            let proposed = incremental.propose(&mut state, &mut rng);
            let reference = scratch.rebase(&state);
            assert_eq!(
                proposed.to_bits(),
                reference.to_bits(),
                "step {step}: incremental cost {proposed} != from-scratch {reference}"
            );
            if step % 3 == 0 {
                incremental.commit();
            } else {
                incremental.undo(&mut state);
            }
        }
        delta_equivalent = Some(true);

        let delta_start = Instant::now();
        let delta_run = Annealer::new(sa_schedule).run_delta(&problem, 7);
        let seconds = delta_start.elapsed().as_secs_f64();
        let moves = delta_run.stats.accepted + delta_run.stats.rejected;
        sa_delta_moves = Some(moves);
        sa_delta_seconds = Some(seconds);
        let throughput = moves as f64 / seconds;
        sa_delta_moves_per_s = Some(throughput);
        delta_speedup_vs_full = Some(throughput / sa_moves_per_s);
    }

    let report = Report {
        circuit: circuit.name(),
        cpu_count,
        evaluations,
        segments: segments.len(),
        ir_cells,
        baseline_maps_per_s,
        retained_serial_maps_per_s,
        serial_speedup_vs_baseline: retained_serial_maps_per_s / baseline_maps_per_s,
        parallel,
        parallel_skipped_reason,
        bit_identical: true,
        sa_moves,
        sa_seconds,
        sa_moves_per_s,
        delta_equivalent,
        sa_delta_moves,
        sa_delta_seconds,
        sa_delta_moves_per_s,
        delta_speedup_vs_full,
    };
    crate::report::emit(out_path, &report);
}
