//! Router-validation experiment (extension beyond the paper).
//!
//! The paper validates its estimates against a finer *estimator* (the
//! 10 µm judging model). The stronger check is an actual router: an
//! estimate is good exactly when it predicts where routing will congest.
//! This experiment scores a set of random floorplans with every model
//! generation the paper discusses — the L/Z ensemble (reference `[3]`),
//! the fixed-grid monotone-ensemble model (reference `[4]`), and the
//! Irregular-Grid model (§4) — and correlates each with the routed
//! top-edge usage and total overflow of a negotiated-congestion global
//! router.

use irgrid::congestion::{CongestionModel, FixedGridModel, IrregularGridModel, LzShapeModel};
use irgrid::floorplan::{pack, two_pin_segments, PinPlacer, PolishExpr};
use irgrid::geom::Um;
use irgrid::netlist::mcnc::McncCircuit;
use irgrid::route::{GlobalRouter, RouterConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::common::die;
use crate::metrics;

/// Pearson, with input defects fatal: validate builds both series
/// itself, so a defect is a bug, not user error.
fn pearson(a: &[f64], b: &[f64]) -> f64 {
    metrics::pearson(a, b).unwrap_or_else(|e| die(&format!("validate correlation: {e}")))
}

pub fn run(bench: McncCircuit, floorplans: usize) {
    let circuit = bench.circuit();
    let pitch = Um(bench.paper_grid_pitch_um());
    let placer = PinPlacer::new(pitch);
    eprintln!("[validate] {bench}: routing {floorplans} random floorplans...");

    let models: Vec<(&str, Box<dyn CongestionModel>)> = vec![
        (
            "lz-shape (Lou et al. [3])",
            Box::new(LzShapeModel::new(pitch)),
        ),
        (
            "fixed-grid (Sham-Young [4])",
            Box::new(FixedGridModel::new(pitch)),
        ),
        (
            "fixed-grid judging 10um",
            Box::new(FixedGridModel::judging()),
        ),
        (
            "irregular-grid (this paper)",
            Box::new(IrregularGridModel::new(pitch)),
        ),
    ];
    // Capacity chosen so typical floorplans route with real contention
    // (non-trivial overflow/detours) — otherwise there is nothing for the
    // estimates to predict.
    let router = GlobalRouter::new(RouterConfig {
        pitch,
        edge_capacity: 3,
        ..RouterConfig::default()
    });

    // Sample many random floorplans, then keep a same-area cohort: the
    // models predict *where* congestion concentrates for a given packing
    // scale, so comparing floorplans of wildly different chip areas would
    // conflate density normalization with arrangement quality.
    let mut rng = ChaCha8Rng::seed_from_u64(0x7a11_da7e);
    let mut expr = PolishExpr::initial(circuit.modules().len());
    let mut candidates = Vec::new();
    for _ in 0..floorplans * 6 {
        for _ in 0..10 {
            expr.perturb_random(&mut rng);
        }
        let placement = pack(&expr, &circuit);
        candidates.push(placement);
    }
    candidates.sort_by_key(|p| p.area().0);
    // The tightest-area window of `floorplans` consecutive candidates.
    let start = (0..=candidates.len() - floorplans)
        .min_by_key(|&i| candidates[i + floorplans - 1].area().0 - candidates[i].area().0)
        .expect("enough candidates");
    let cohort = &candidates[start..start + floorplans];

    let mut estimates: Vec<Vec<f64>> = vec![Vec::new(); models.len()];
    let (mut routed_top, mut routed_overflow, mut routed_detour) =
        (Vec::new(), Vec::new(), Vec::new());
    for placement in cohort {
        let chip = placement.chip();
        let segments = two_pin_segments(&circuit, placement, &placer);
        for (slot, (_, model)) in estimates.iter_mut().zip(&models) {
            slot.push(model.evaluate(&chip, &segments));
        }
        let result = router.route(&chip, &segments);
        routed_top.push(result.grid.top_fraction_usage(0.1));
        routed_overflow.push(result.total_overflow as f64);
        routed_detour.push(result.detour_edges(&segments) as f64);
    }
    let area_lo = cohort.first().expect("non-empty").area().as_mm2();
    let area_hi = cohort.last().expect("non-empty").area().as_mm2();

    println!("\n=== Router validation ({bench}, {floorplans} random floorplans, capacity 3) ===");
    println!("same-area cohort: chip areas {area_lo:.2}..{area_hi:.2} mm^2");
    println!(
        "{:<30} {:>18} {:>16} {:>14}",
        "model", "corr(top-10% use)", "corr(overflow)", "corr(detour)"
    );
    for (i, (name, _)) in models.iter().enumerate() {
        println!(
            "{:<30} {:>18.4} {:>16.4} {:>14.4}",
            name,
            pearson(&estimates[i], &routed_top),
            pearson(&estimates[i], &routed_overflow),
            pearson(&estimates[i], &routed_detour),
        );
    }
    println!(
        "\nrouted stats: top-10% usage {:.2}..{:.2}, overflow {:.0}..{:.0}, detours {:.0}..{:.0}",
        routed_top.iter().copied().fold(f64::MAX, f64::min),
        routed_top.iter().copied().fold(f64::MIN, f64::max),
        routed_overflow.iter().copied().fold(f64::MAX, f64::min),
        routed_overflow.iter().copied().fold(f64::MIN, f64::max),
        routed_detour.iter().copied().fold(f64::MAX, f64::min),
        routed_detour.iter().copied().fold(f64::MIN, f64::max),
    );
}
