//! Figure 8 (§4.5): accuracy of the Theorem 1 approximation.
//!
//! The paper takes a type I net divided into 31×21 grids and plots the
//! real values of Function (1) against the approximating values for
//! x = 10..20 at y₂ = 15 (figure 8(a)/(b)), then shows the degenerate
//! grid (30, 19) where the approximation is undefined (figure 8(c)/(d)),
//! concluding "the deviation of approximation is generally less than
//! 0.05".

use irgrid::congestion::irregular::{function1_approx, function1_exact};
use irgrid::congestion::num::LnFactorials;
use irgrid::congestion::{NetType, RoutingRange};

pub fn run() {
    println!("\n=== Figure 8: exact vs approximated Function (1), 31x21 type I net ===");
    let range = RoutingRange::from_cells(0, 0, 31, 21, NetType::TypeI);
    let lf = LnFactorials::up_to(128);

    // Figure 8(a)/(b): interior IR-grid with top edge y2 = 15.
    println!("\n(b) x = 10..=20, y2 = 15:");
    println!(
        "{:>4} {:>12} {:>12} {:>12}",
        "x", "exact", "approx", "deviation"
    );
    let mut max_dev: f64 = 0.0;
    for x in 10..=20i64 {
        let exact = function1_exact(&range, &lf, x, 15);
        let approx = function1_approx(&range, x as f64, 15);
        let dev = (exact - approx).abs();
        max_dev = max_dev.max(dev);
        println!("{x:>4} {exact:>12.6} {approx:>12.6} {dev:>12.6}");
    }
    println!("max deviation: {max_dev:.6} (paper: generally < 0.05)");

    // Figure 8(c)/(d): IR-grid touching the top-right pin; grid (30, 19)
    // is an error-making cell (q >= 1), guarded to 0 — the paper's curve
    // "shows no value when x = 30".
    println!("\n(d) x = 24..=30, y2 = 19 (pin-adjacent; x = 30 is the error cell):");
    println!("{:>4} {:>12} {:>12}", "x", "exact", "approx");
    for x in 24..=30i64 {
        let exact = function1_exact(&range, &lf, x, 19);
        let approx = function1_approx(&range, x as f64, 19);
        let marker = if approx == 0.0 && exact > 0.0 {
            "  <- guarded (no value)"
        } else {
            ""
        };
        println!("{x:>4} {exact:>12.6} {approx:>12.6}{marker}");
    }

    // Broader sweep: deviation statistics over every valid (x, y2) of
    // the same range, skipping the four §4.5 error cells.
    let mut devs = Vec::new();
    for y2 in 1..20i64 {
        for x in 1..30i64 {
            let exact = function1_exact(&range, &lf, x, y2);
            let approx = function1_approx(&range, x as f64, y2);
            devs.push((exact - approx).abs());
        }
    }
    devs.sort_by(f64::total_cmp);
    let p99 = devs[(devs.len() as f64 * 0.99) as usize];
    let max = devs[devs.len() - 1];
    println!(
        "\nfull-range sweep ({} points, error cells excluded): p99 deviation {:.4}, max {:.4}",
        devs.len(),
        p99,
        max
    );
}
