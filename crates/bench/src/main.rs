//! `repro` — regenerates every table and figure of the DATE 2004
//! Irregular-Grid congestion paper on the synthetic MCNC-like suite.
//!
//! ```text
//! cargo run -p irgrid-bench --release --bin repro -- <command> [flags]
//!
//! commands:
//!   table1      Table 1  (area+wire floorplanner, judged)
//!   table2      Table 2  (with the IR congestion term, judged)
//!   table3      Tables 1+2+3 (the comparison needs both)
//!   table45     Tables 4+5 (congestion-only, IR vs fixed grids)
//!   figure8     Figure 8 (approximation accuracy; no annealing)
//!   figure9     Figure 9 (per-temperature model tracking)
//!   motivation  Figures 3/4 analogue (grid-size dependence)
//!   ablation    Design-choice ablations (no annealing)
//!   heatmap     Per-cell spatial agreement vs the judging map (extension)
//!   sweep       Pitch-sensitivity sweep of the IR model (extension)
//!   validate    Router-validation correlations (extension)
//!   compare-all Accuracy-vs-speed matrix: every predictor (probabilistic
//!               + structural) vs PathFinder and staircase routed ground
//!               truth on MCNC + synthetic circuits (BENCH_models.json;
//!               --quick: apte + the 1k synthetic only)
//!   congestion-perf  Retained-evaluator throughput report (BENCH_congestion.json)
//!   fleet       Multi-replica annealing via irgrid-fleet (BENCH_fleet.json)
//!   serve-bench Concurrent-client daemon throughput + robustness report
//!               (BENCH_serve.json)
//!   lint-report Workspace lint health: per-rule finding counts and wall
//!               times plus the suppression-debt ledger (BENCH_lint.json)
//!   all         Everything above (except congestion-perf, fleet,
//!               serve-bench, lint-report)
//!
//! flags:
//!   --quick           2 seeds, short schedule (smoke run)
//!   --full            20 seeds, classic schedule (paper protocol)
//!   --circuit X       restrict exp1 to one circuit (apte/xerox/hp/ami33/ami49)
//!   --jobs N          run seeded batches / fleet replicas over N worker
//!                     threads (default 1; results are bit-identical)
//!   --time-limit S    stop annealing after S seconds (partial results kept)
//!   --checkpoint DIR  write per-run checkpoints into DIR every 10 steps
//!   --resume DIR      resume runs from matching checkpoints in DIR
//!                     (for fleet: resume from the fleet manifest in DIR)
//!   --threads N       congestion-perf: benchmark N threads instead of 2 and 4
//!                     (also forces the parallel rows on single-CPU hosts,
//!                     where they are otherwise skipped)
//!   --delta           congestion-perf: verify and time the incremental
//!                     (delta) annealing loop; adds `delta_equivalent` and
//!                     `sa_delta_moves_per_s` to the report.
//!                     serve-bench: benchmark delta sessions
//!                     (`Propose`/`Commit`/`Undo`, binary framing) against
//!                     the full-session `Evaluate` baseline on an annealed
//!                     ami49 warm move sequence; asserts bit-identity vs a
//!                     fresh local delta rebase and a >= 3x speedup, and
//!                     adds `delta_equivalent` + delta throughput fields
//!   --out FILE        report path (congestion-perf, fleet, serve-bench)
//!
//! serve-bench flags:
//!   --clients N       concurrent synthetic clients (default 8)
//!   --steps N         evaluate requests per client (default 16)
//!   --chaos SEED      run the daemon under the default injected-fault mix
//!                     (I/O errors, torn writes, kills + supervised restart)
//!
//! fleet flags:
//!   --replicas N        annealing replicas (default 4)
//!   --sync-every N      temperature steps between exchange barriers
//!   --seed0 N           seed of replica 0 (replica k anneals with seed0+k)
//!   --independent       disable temperature-ladder replica exchange
//!   --run-dir DIR       persist manifest + telemetry into DIR
//!   --verify-identical  re-run a 1-worker reference fleet and record
//!                       `bit_identical` in the report
//! ```

mod ablation;
mod common;
mod compare;
mod exp1;
mod exp3;
mod figure8;
mod figure9;
mod fleet;
mod heatmap;
mod lint_report;
mod metrics;
mod motivation;
mod perf;
mod report;
mod serve;
mod sweep;
mod validate;

use common::Mode;
use irgrid::netlist::mcnc::McncCircuit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".into());
    let mode = Mode::from_args(&args);

    let circuits: Vec<McncCircuit> = match args.iter().position(|a| a == "--circuit") {
        Some(i) => {
            let Some(name) = args.get(i + 1).filter(|a| !a.starts_with("--")) else {
                eprintln!("--circuit needs a name (apte/xerox/hp/ami33/ami49)");
                std::process::exit(2);
            };
            let Some(circuit) = McncCircuit::from_name(name) else {
                eprintln!("unknown circuit `{name}` (expected apte/xerox/hp/ami33/ami49)");
                std::process::exit(2);
            };
            vec![circuit]
        }
        None => McncCircuit::ALL.to_vec(),
    };
    // Experiments 2 and 3 use ami33 in the paper (or the chosen circuit).
    let single = circuits
        .first()
        .copied()
        .filter(|_| circuits.len() == 1)
        .unwrap_or(McncCircuit::Ami33);

    match command.as_str() {
        "table1" => {
            let results = exp1::run(&mode, &circuits);
            exp1::print_table1(&results, &mode);
        }
        "table2" => {
            let results = exp1::run(&mode, &circuits);
            exp1::print_table2(&results, &mode);
        }
        "table3" | "exp1" => {
            let results = exp1::run(&mode, &circuits);
            exp1::print_table1(&results, &mode);
            exp1::print_table2(&results, &mode);
            exp1::print_table3(&results, &mode);
        }
        "table45" | "exp3" => exp3::run(&mode, single),
        "figure8" => figure8::run(),
        "figure9" | "exp2" => figure9::run(&mode, single),
        "motivation" => motivation::run(),
        "ablation" => ablation::run(single),
        "heatmap" => heatmap::run(single),
        "sweep" => sweep::run(single),
        "compare-all" => compare::run(&args),
        "fleet" => {
            // Fleet smoke runs default to the smallest circuit unless one
            // was picked explicitly with --circuit.
            let fleet_circuit = circuits
                .first()
                .copied()
                .filter(|_| circuits.len() == 1)
                .unwrap_or(McncCircuit::Apte);
            fleet::run(&mode, fleet_circuit, &args);
        }
        "congestion-perf" => {
            // Perf runs default to the largest circuit unless one was
            // picked explicitly with --circuit.
            let perf_circuit = circuits
                .first()
                .copied()
                .filter(|_| circuits.len() == 1)
                .unwrap_or(McncCircuit::Ami49);
            perf::run(&mode, perf_circuit, &args);
        }
        "serve-bench" => serve::run(&mode, &args),
        "lint-report" => lint_report::run(&args),
        "validate" => {
            let n = if args.iter().any(|a| a == "--quick") {
                6
            } else {
                12
            };
            validate::run(single, n);
        }
        "all" => {
            figure8::run();
            motivation::run();
            ablation::run(single);
            heatmap::run(single);
            sweep::run(single);
            validate::run(single, 10);
            let results = exp1::run(&mode, &circuits);
            exp1::print_table1(&results, &mode);
            exp1::print_table2(&results, &mode);
            exp1::print_table3(&results, &mode);
            figure9::run(&mode, single);
            exp3::run(&mode, single);
        }
        other => {
            eprintln!("unknown command `{other}`; see --help text in the source header");
            std::process::exit(2);
        }
    }
}
