//! `repro serve-bench` — sustained-throughput and robustness report for
//! the `irgrid-serve` daemon, written to `BENCH_serve.json`.
//!
//! Starts an in-process daemon on a Unix socket, drives it with N
//! concurrent synthetic clients (default 8) each evaluating a
//! deterministic script of floorplan batches, and reports sustained
//! evaluations/s plus the robustness counters CI asserts on:
//! `corrupted_sessions` (must be 0), `degraded_responses`,
//! `replayed_responses`, `injected_faults`, and `restarts`.
//!
//! With `--chaos SEED` the daemon runs under the default fault mix
//! (I/O errors, torn writes, kills); a supervisor loop restarts the
//! daemon — same state directory, bumped chaos epoch — whenever an
//! injected kill fires, and clients retry per protocol. The final
//! snapshot audit must still find every session intact.
//!
//! With `--delta` the report additionally benchmarks the delta-native
//! serving path on an annealed ami49 floorplan: one warm move sequence
//! (a single segment nudged per step) is driven once through a full
//! session (`Evaluate`, one state per request — the PR 6 baseline) and
//! once through a delta session (`Propose` + `Commit`/`Undo` per move,
//! binary framing). Every checked `Propose` score must be bit-identical
//! to a from-scratch rebase through a fresh local delta session
//! (`delta_equivalent`) — *not* the float Simpson model, which is a
//! different numeric contract — and the delta path must sustain at
//! least [`DELTA_MIN_SPEEDUP`]× the full-session request throughput;
//! the command aborts rather than report a mismatching or slow build.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;

use irgrid::anneal::{Annealer, Schedule};
use irgrid::congestion::{DeltaCongestion, DeltaCongestionSession, IrregularGridModel};
use irgrid::floorplanner::{FloorplanProblem, Weights};
use irgrid::geom::{Point, Rect, Um};
use irgrid::netlist::mcnc::McncCircuit;
use irgrid::serve::{
    serve, Chaos, ChaosConfig, Client, DegradePolicy, ErrorKind, FloorplanState, FrameCodec,
    KillSwitch, Limits, Request, RequestOp, ResponsePayload, ServerHandle, ServerOptions,
    SessionConfig, SessionManager, SnapshotStore, Transport,
};

use crate::common::{die, flag_value, Mode};

/// States per `Evaluate` request; every state carries 3 segments.
const BATCH: usize = 4;
/// Retry attempts per `Client::call` before the outer loop reconnects.
const CALL_ATTEMPTS: u32 = 8;
/// Outer-loop bound per request; far beyond what any survivable chaos
/// mix needs, small enough that a genuine wedge fails fast.
const MAX_TRIES: usize = 3_000;
/// `--delta`: leading moves whose `Propose` scores are re-checked
/// bit-for-bit against a fresh local delta-session rebase.
const DELTA_CHECKED_MOVES: usize = 8;
/// `--delta`: minimum delta-over-full request-throughput ratio; the
/// bench aborts below this rather than report a regressed build.
const DELTA_MIN_SPEEDUP: f64 = 3.0;

#[derive(Debug, Serialize)]
struct Report {
    clients: usize,
    steps_per_client: usize,
    batch: usize,
    workers: usize,
    chaos_seed: Option<u64>,
    evaluations: u64,
    wall_s: f64,
    evals_per_s: f64,
    degraded_responses: u64,
    replayed_responses: u64,
    injected_faults: u64,
    restarts: u64,
    sessions: usize,
    corrupted_sessions: usize,
    /// Runtime re-check that every checked `--delta` `Propose` score is
    /// bit-identical to a from-scratch local delta-session rebase; the
    /// bench aborts on a mismatch instead of reporting `false`. `None`
    /// without `--delta`.
    delta_equivalent: Option<bool>,
    /// Moves whose scores were bit-checked against the local reference.
    delta_checked_moves: Option<usize>,
    /// Warm move-sequence length driven through both serving paths.
    delta_moves: Option<usize>,
    /// Full-session baseline: moves/s via one-state `Evaluate` requests.
    full_moves_per_s: Option<f64>,
    /// Delta session: moves/s via `Propose` + `Commit`/`Undo` requests.
    delta_moves_per_s: Option<f64>,
    /// `delta_moves_per_s / full_moves_per_s` (must be ≥ 3).
    delta_speedup_vs_full: Option<f64>,
}

/// Per-client tallies returned by each worker thread.
#[derive(Debug, Default)]
struct ClientTally {
    evaluations: u64,
    degraded: u64,
    replayed: u64,
}

fn session_config() -> SessionConfig {
    SessionConfig {
        pitch_um: 30,
        budget: 0,
        cache_capacity: 64,
    }
}

/// The deterministic batch client `c` evaluates at script step `s`.
fn states_for(client: usize, step: usize) -> Vec<FloorplanState> {
    let (c, s) = (client as i64, step as i64);
    (0..BATCH as i64)
        .map(|k| FloorplanState {
            chip: [900, 800],
            segments: vec![
                [10 + 17 * c + 5 * s + k, 12, 880 - 7 * s, 780 - 13 * c],
                [15, 780 - 11 * s - k, 870 - 3 * c, 20],
                [450 + 9 * k, 16, 440 - 15 * c, 790 - 4 * s],
            ],
        })
        .collect()
}

struct Daemon {
    handle: ServerHandle,
    kill: KillSwitch,
}

fn start_daemon(
    socket: &Path,
    state_dir: &Path,
    chaos: Chaos,
    workers: usize,
) -> Result<Daemon, String> {
    let kill = KillSwitch::new();
    let store = SnapshotStore::open(state_dir, chaos, kill.clone())
        .map_err(|err| format!("cannot open state dir {}: {err}", state_dir.display()))?;
    let manager = Arc::new(SessionManager::new(
        store,
        Limits::default(),
        DegradePolicy::default(),
        workers,
    ));
    let handle = serve(
        Transport::Unix(socket.to_path_buf()),
        manager,
        ServerOptions::default(),
    )
    .map_err(|err| format!("cannot serve on {}: {err}", socket.display()))?;
    Ok(Daemon { handle, kill })
}

/// One client thread: open the session, then run every evaluate step,
/// retrying through chaos (reconnects, re-opens after a daemon restart)
/// until each request succeeds.
fn run_client(socket: PathBuf, client: usize, steps: usize) -> ClientTally {
    let session = format!("bench-{client}");
    let open = Request {
        id: format!("b{client}-open"),
        session: session.clone(),
        op: RequestOp::Open {
            config: session_config(),
        },
    };
    let mut connection = Client::new(Transport::Unix(socket));
    let mut tally = ClientTally::default();

    let mut requests = vec![open.clone()];
    for step in 0..steps {
        requests.push(Request {
            id: format!("b{client}-eval-{step}"),
            session: session.clone(),
            op: RequestOp::Evaluate {
                states: states_for(client, step),
            },
        });
    }

    for request in &requests {
        let mut tries = 0;
        loop {
            tries += 1;
            if tries > MAX_TRIES {
                die(&format!("client {client}: request {} wedged", request.id));
            }
            match connection.call(request, CALL_ATTEMPTS) {
                Ok(response) if response.ok => {
                    if let ResponsePayload::Evaluated { results } = &response.payload {
                        tally.evaluations += results.len() as u64;
                        if response.degraded {
                            tally.degraded += 1;
                        }
                        if response.replayed {
                            tally.replayed += 1;
                        }
                    }
                    break;
                }
                Ok(response) => match &response.payload {
                    // The daemon restarted since our open: re-open (an
                    // idempotent resume), then retry this request.
                    ResponsePayload::Error {
                        kind: ErrorKind::UnknownSession,
                        ..
                    } => {
                        let _ = connection.call(&open, CALL_ATTEMPTS);
                    }
                    other => die(&format!(
                        "client {client}: request {} failed terminally: {other:?}",
                        request.id
                    )),
                },
                // Transport died (kill mid-request) or retries ran out
                // while the supervisor restarts the daemon: back off and
                // go around with a fresh connection.
                Err(_) => {
                    connection.disconnect();
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    }
    tally
}

/// Audits the final state directory: every session snapshot must parse
/// and report exactly the evaluation count its script performed.
fn audit_sessions(state_dir: &Path, clients: usize, steps: usize) -> (usize, usize) {
    let store = SnapshotStore::open(state_dir, Chaos::off(), KillSwitch::new())
        .unwrap_or_else(|err| die(&format!("audit: cannot reopen state dir: {err}")));
    let ids = store
        .list()
        .unwrap_or_else(|err| die(&format!("audit: cannot list sessions: {err}")));
    let expected_evals = (steps * BATCH) as i64;
    let mut corrupted = 0;
    for id in &ids {
        let Ok(Some(text)) = store.read(id) else {
            corrupted += 1;
            continue;
        };
        let Ok(value) = serde_json::from_str::<serde::Value>(&text) else {
            corrupted += 1;
            continue;
        };
        if value.get("evals_done") != Some(&serde::Value::Int(expected_evals)) {
            corrupted += 1;
        }
    }
    if ids.len() != clients {
        corrupted += clients.abs_diff(ids.len());
    }
    (ids.len(), corrupted)
}

/// Everything `--delta` measures; folded into the report as `Option`s.
struct DeltaOutcome {
    checked: usize,
    moves: usize,
    full_moves_per_s: f64,
    delta_moves_per_s: f64,
    speedup: f64,
}

/// An annealed ami49 floorplan as a protocol state — the same fixture
/// recipe `congestion-perf` uses, translated so the chip's lower-left
/// corner sits at the protocol origin and clamped into the chip extent.
/// Returns the state and the circuit's paper grid pitch in µm.
fn ami49_state() -> (FloorplanState, i64) {
    let circuit = McncCircuit::Ami49;
    let netlist = circuit.circuit();
    let pitch = circuit.paper_grid_pitch_um();
    let problem = FloorplanProblem::new(
        &netlist,
        Um(pitch),
        Weights::area_wire(),
        None::<IrregularGridModel>,
    );
    let run = Annealer::new(Schedule::quick()).run(&problem, 4);
    let eval = problem.evaluate(&run.best);
    let (chip, segments): (Rect, Vec<(Point, Point)>) = (eval.placement.chip(), eval.segments);
    let (dx, dy) = (chip.ll().x.0, chip.ll().y.0);
    let extent = [chip.width().0, chip.height().0];
    let segments = segments
        .iter()
        .map(|(a, b)| {
            [
                (a.x.0 - dx).clamp(0, extent[0]),
                (a.y.0 - dy).clamp(0, extent[1]),
                (b.x.0 - dx).clamp(0, extent[0]),
                (b.y.0 - dy).clamp(0, extent[1]),
            ]
        })
        .collect();
    (
        FloorplanState {
            chip: extent,
            segments,
        },
        pitch,
    )
}

/// The deterministic warm move for `step`: nudge one endpoint of one
/// segment within the chip, leaving every other segment untouched —
/// the move shape the delta evaluator is built for.
fn mutated(committed: &FloorplanState, step: usize) -> FloorplanState {
    let mut next = committed.clone();
    let index = (step * 7 + 3) % next.segments.len();
    let s = step as i64;
    let [width, height] = next.chip;
    let segment = &mut next.segments[index];
    segment[0] = (segment[0] + 131 * (s + 1)).rem_euclid(width + 1);
    segment[1] = (segment[1] + 89 * (s + 2)).rem_euclid(height + 1);
    next
}

/// Scores `state` through a fresh from-scratch delta-session rebase —
/// the reference every served `Propose` score must match bit for bit.
/// Deliberately the exact Q32 delta contract, *not* the float Simpson
/// model: the two pipelines agree per cell but not per bit.
fn local_reference_score(state: &FloorplanState, pitch: i64) -> f64 {
    let chip = Rect::from_origin_size(Point::ORIGIN, Um(state.chip[0]), Um(state.chip[1]));
    let segments: Vec<(Point, Point)> = state
        .segments
        .iter()
        .map(|&[x1, y1, x2, y2]| (Point::new(Um(x1), Um(y1)), Point::new(Um(x2), Um(y2))))
        .collect();
    IrregularGridModel::new(Um(pitch))
        .delta_session()
        .rebase(&chip, &segments)
}

fn delta_request(session: &str, id: String, op: RequestOp) -> Request {
    Request {
        id,
        session: session.to_owned(),
        op,
    }
}

/// Sends `request` on the chaos-free delta bench daemon and returns the
/// payload; any refusal or transport failure here is a bench bug.
fn must_call(client: &mut Client, request: &Request) -> ResponsePayload {
    match client.call(request, CALL_ATTEMPTS) {
        Ok(response) if response.ok => response.payload,
        Ok(response) => die(&format!(
            "delta bench: request {} refused: {:?}",
            request.id, response.payload
        )),
        Err(err) => die(&format!(
            "delta bench: request {} failed: {err}",
            request.id
        )),
    }
}

/// Benchmarks the delta serving path against the full-session baseline
/// on one chaos-free daemon, then asserts bit-identity (vs a fresh
/// local rebase) and the minimum speedup. See the module docs for the
/// workload shape.
fn run_delta_bench(scratch: &Path, workers: usize, moves: usize) -> DeltaOutcome {
    let socket = scratch.join("irgrid-serve-delta.sock");
    let state_dir = scratch.join("delta-state");
    let daemon =
        start_daemon(&socket, &state_dir, Chaos::off(), workers).unwrap_or_else(|err| die(&err));

    let (initial, pitch) = ami49_state();
    let config = SessionConfig {
        pitch_um: pitch,
        budget: 0,
        cache_capacity: 64,
    };
    println!(
        "serve-bench --delta: ami49, {} segments, pitch {pitch} um, {moves} warm moves",
        initial.segments.len()
    );

    // The shared trajectory: proposed state + accept/reject per move.
    // Every third move is rejected, mirroring the chaos suite's script.
    let mut committed = initial.clone();
    let mut trajectory: Vec<(FloorplanState, bool)> = Vec::with_capacity(moves);
    for step in 0..moves {
        let proposed = mutated(&committed, step);
        let accepted = step % 3 != 2;
        if accepted {
            committed = proposed.clone();
        }
        trajectory.push((proposed, accepted));
    }

    // Full-session baseline: one one-state `Evaluate` request per move
    // (the PR 6 serving shape), warmed with an untimed evaluation.
    let full_session = "delta-bench-full";
    let mut full = Client::new(Transport::Unix(socket.clone()));
    must_call(
        &mut full,
        &delta_request(
            full_session,
            "f-open".to_owned(),
            RequestOp::Open { config },
        ),
    );
    must_call(
        &mut full,
        &delta_request(
            full_session,
            "f-warm".to_owned(),
            RequestOp::Evaluate {
                states: vec![initial.clone()],
            },
        ),
    );
    let full_start = Instant::now();
    for (move_index, (proposed, _)) in trajectory.iter().enumerate() {
        let payload = must_call(
            &mut full,
            &delta_request(
                full_session,
                format!("f-eval-{move_index}"),
                RequestOp::Evaluate {
                    states: vec![proposed.clone()],
                },
            ),
        );
        if !matches!(payload, ResponsePayload::Evaluated { .. }) {
            die(&format!(
                "delta bench: full evaluate {move_index} returned {payload:?}"
            ));
        }
    }
    let full_s = full_start.elapsed().as_secs_f64();

    // Delta session over binary framing: `Propose` every move, `Commit`
    // accepted ones, `Undo` rejected ones. Seeded with an untimed
    // initial commit so the timed loop measures warm incremental moves.
    let delta_session = "delta-bench-delta";
    let mut delta = Client::with_codec(Transport::Unix(socket), FrameCodec::Binary);
    must_call(
        &mut delta,
        &delta_request(
            delta_session,
            "d-open".to_owned(),
            RequestOp::OpenDelta { config },
        ),
    );
    let seed_digest = match must_call(
        &mut delta,
        &delta_request(
            delta_session,
            "d-seed-propose".to_owned(),
            RequestOp::Propose {
                state: initial.clone(),
            },
        ),
    ) {
        ResponsePayload::Proposed { digest, .. } => digest,
        other => die(&format!("delta bench: seed propose returned {other:?}")),
    };
    must_call(
        &mut delta,
        &delta_request(
            delta_session,
            "d-seed-commit".to_owned(),
            RequestOp::Commit {
                digest: seed_digest,
            },
        ),
    );

    let mut proposed_scores: Vec<f64> = Vec::with_capacity(moves);
    let delta_start = Instant::now();
    for (move_index, (proposed, accepted)) in trajectory.iter().enumerate() {
        let (digest, score) = match must_call(
            &mut delta,
            &delta_request(
                delta_session,
                format!("d-propose-{move_index}"),
                RequestOp::Propose {
                    state: proposed.clone(),
                },
            ),
        ) {
            ResponsePayload::Proposed { digest, score } => (digest, score),
            other => die(&format!(
                "delta bench: propose {move_index} returned {other:?}"
            )),
        };
        proposed_scores.push(score);
        if *accepted {
            match must_call(
                &mut delta,
                &delta_request(
                    delta_session,
                    format!("d-commit-{move_index}"),
                    RequestOp::Commit { digest },
                ),
            ) {
                ResponsePayload::Committed {
                    score: committed_score,
                    ..
                } => {
                    if committed_score.to_bits() != score.to_bits() {
                        die(&format!(
                            "delta bench: commit {move_index} score diverged from its propose"
                        ));
                    }
                }
                other => die(&format!(
                    "delta bench: commit {move_index} returned {other:?}"
                )),
            }
        } else {
            let payload = must_call(
                &mut delta,
                &delta_request(
                    delta_session,
                    format!("d-undo-{move_index}"),
                    RequestOp::Undo,
                ),
            );
            if !matches!(payload, ResponsePayload::Undone { .. }) {
                die(&format!(
                    "delta bench: undo {move_index} returned {payload:?}"
                ));
            }
        }
    }
    let delta_s = delta_start.elapsed().as_secs_f64();

    daemon.handle.manager().request_shutdown();
    daemon.handle.join();

    // Bit-identity, checked after the clocks stop so the local rebases
    // don't pollute the delta timing: every checked served score must
    // equal a from-scratch rebase of the same state, bit for bit.
    let checked = DELTA_CHECKED_MOVES.min(moves);
    for (move_index, (proposed, _)) in trajectory.iter().take(checked).enumerate() {
        let reference = local_reference_score(proposed, pitch);
        let served = proposed_scores[move_index];
        if served.to_bits() != reference.to_bits() {
            die(&format!(
                "delta bench: move {move_index} served score {served:?} (bits {:016x}) != \
                 fresh-rebase reference {reference:?} (bits {:016x}) — bit-identity broken",
                served.to_bits(),
                reference.to_bits()
            ));
        }
    }

    let full_moves_per_s = moves as f64 / full_s;
    let delta_moves_per_s = moves as f64 / delta_s;
    let speedup = delta_moves_per_s / full_moves_per_s;
    println!(
        "serve-bench --delta: full {full_moves_per_s:.1} moves/s, delta {delta_moves_per_s:.1} \
         moves/s, speedup {speedup:.2}x, {checked} moves bit-checked"
    );
    if speedup < DELTA_MIN_SPEEDUP {
        die(&format!(
            "delta speedup {speedup:.2}x is below the required {DELTA_MIN_SPEEDUP}x"
        ));
    }
    DeltaOutcome {
        checked,
        moves,
        full_moves_per_s,
        delta_moves_per_s,
        speedup,
    }
}

/// Entry point for `repro serve-bench`.
pub fn run(mode: &Mode, args: &[String]) {
    let clients: usize = flag_value(args, "--clients")
        .map_or(8, |text| {
            text.parse()
                .unwrap_or_else(|_| die(&format!("--clients `{text}` is not a count")))
        })
        .max(1);
    let steps: usize = flag_value(args, "--steps")
        .map_or(16, |text| {
            text.parse()
                .unwrap_or_else(|_| die(&format!("--steps `{text}` is not a count")))
        })
        .max(1);
    let chaos_seed: Option<u64> = flag_value(args, "--chaos").map(|text| {
        text.parse()
            .unwrap_or_else(|_| die(&format!("--chaos `{text}` is not a seed")))
    });
    let delta = args.iter().any(|a| a == "--delta");
    let out_path = flag_value(args, "--out").unwrap_or("BENCH_serve.json");
    let workers = mode.jobs;

    let scratch = std::env::temp_dir().join(format!("irgrid_serve_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch)
        .unwrap_or_else(|err| die(&format!("cannot create {}: {err}", scratch.display())));
    let socket = scratch.join("irgrid-serve.sock");
    let state_dir = scratch.join("state");

    let chaos_for = |epoch: u64| match chaos_seed {
        Some(seed) => Chaos::with_config(seed, ChaosConfig::default_mix()).with_epoch(epoch),
        None => Chaos::off(),
    };

    println!(
        "serve-bench: {clients} clients x {steps} steps x {BATCH} states, workers={workers}, chaos={chaos_seed:?}"
    );
    let mut daemon =
        start_daemon(&socket, &state_dir, chaos_for(0), workers).unwrap_or_else(|err| die(&err));

    let start = Instant::now();
    let finished = Arc::new(AtomicUsize::new(0));
    let threads: Vec<_> = (0..clients)
        .map(|client| {
            let socket = socket.clone();
            let finished = Arc::clone(&finished);
            std::thread::spawn(move || {
                let tally = run_client(socket, client, steps);
                finished.fetch_add(1, Ordering::SeqCst);
                tally
            })
        })
        .collect();

    // Supervisor: restart the daemon (fresh kill switch, bumped chaos
    // epoch, same state directory) whenever an injected kill fires.
    let mut restarts: u64 = 0;
    let mut injected_faults: u64 = 0;
    while finished.load(Ordering::SeqCst) < clients {
        if daemon.kill.is_tripped() {
            injected_faults += daemon.handle.manager().injected_faults();
            daemon.handle.manager().request_shutdown();
            daemon.handle.join();
            restarts += 1;
            daemon = start_daemon(&socket, &state_dir, chaos_for(restarts), workers)
                .unwrap_or_else(|err| die(&err));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut tallies = ClientTally::default();
    for thread in threads {
        let tally = thread.join().unwrap_or_else(|_| {
            die("a client thread panicked");
        });
        tallies.evaluations += tally.evaluations;
        tallies.degraded += tally.degraded;
        tallies.replayed += tally.replayed;
    }
    let wall_s = start.elapsed().as_secs_f64();
    injected_faults += daemon.handle.manager().injected_faults();
    daemon.handle.manager().request_shutdown();
    daemon.handle.join();

    let (sessions, corrupted_sessions) = audit_sessions(&state_dir, clients, steps);

    // --delta: benchmark the delta serving path on its own chaos-free
    // daemon (separate socket and state dir inside the same scratch).
    // The warm move sequence scales with --steps so the CI smoke stays
    // fast while a full run measures a longer steady state.
    let delta_outcome = delta.then(|| run_delta_bench(&scratch, workers, (steps * 4).max(24)));

    let report = Report {
        clients,
        steps_per_client: steps,
        batch: BATCH,
        workers,
        chaos_seed,
        evaluations: tallies.evaluations,
        wall_s,
        evals_per_s: tallies.evaluations as f64 / wall_s,
        degraded_responses: tallies.degraded,
        replayed_responses: tallies.replayed,
        injected_faults,
        restarts,
        sessions,
        corrupted_sessions,
        // `run_delta_bench` died on any bit mismatch, so reaching this
        // point with an outcome means the equivalence check passed.
        delta_equivalent: delta_outcome.as_ref().map(|_| true),
        delta_checked_moves: delta_outcome.as_ref().map(|o| o.checked),
        delta_moves: delta_outcome.as_ref().map(|o| o.moves),
        full_moves_per_s: delta_outcome.as_ref().map(|o| o.full_moves_per_s),
        delta_moves_per_s: delta_outcome.as_ref().map(|o| o.delta_moves_per_s),
        delta_speedup_vs_full: delta_outcome.as_ref().map(|o| o.speedup),
    };
    crate::report::emit(out_path, &report);
    let _ = std::fs::remove_dir_all(&scratch);
    if corrupted_sessions != 0 {
        die(&format!(
            "{corrupted_sessions} corrupted session(s) after the run — robustness bug"
        ));
    }
}
