//! `repro serve-bench` — sustained-throughput and robustness report for
//! the `irgrid-serve` daemon, written to `BENCH_serve.json`.
//!
//! Starts an in-process daemon on a Unix socket, drives it with N
//! concurrent synthetic clients (default 8) each evaluating a
//! deterministic script of floorplan batches, and reports sustained
//! evaluations/s plus the robustness counters CI asserts on:
//! `corrupted_sessions` (must be 0), `degraded_responses`,
//! `replayed_responses`, `injected_faults`, and `restarts`.
//!
//! With `--chaos SEED` the daemon runs under the default fault mix
//! (I/O errors, torn writes, kills); a supervisor loop restarts the
//! daemon — same state directory, bumped chaos epoch — whenever an
//! injected kill fires, and clients retry per protocol. The final
//! snapshot audit must still find every session intact.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;

use irgrid::serve::{
    serve, Chaos, ChaosConfig, Client, DegradePolicy, ErrorKind, FloorplanState, KillSwitch,
    Limits, Request, RequestOp, ResponsePayload, ServerHandle, ServerOptions, SessionConfig,
    SessionManager, SnapshotStore, Transport,
};

use crate::common::{die, flag_value, Mode};

/// States per `Evaluate` request; every state carries 3 segments.
const BATCH: usize = 4;
/// Retry attempts per `Client::call` before the outer loop reconnects.
const CALL_ATTEMPTS: u32 = 8;
/// Outer-loop bound per request; far beyond what any survivable chaos
/// mix needs, small enough that a genuine wedge fails fast.
const MAX_TRIES: usize = 3_000;

#[derive(Debug, Serialize)]
struct Report {
    clients: usize,
    steps_per_client: usize,
    batch: usize,
    workers: usize,
    chaos_seed: Option<u64>,
    evaluations: u64,
    wall_s: f64,
    evals_per_s: f64,
    degraded_responses: u64,
    replayed_responses: u64,
    injected_faults: u64,
    restarts: u64,
    sessions: usize,
    corrupted_sessions: usize,
}

/// Per-client tallies returned by each worker thread.
#[derive(Debug, Default)]
struct ClientTally {
    evaluations: u64,
    degraded: u64,
    replayed: u64,
}

fn session_config() -> SessionConfig {
    SessionConfig {
        pitch_um: 30,
        budget: 0,
        cache_capacity: 64,
    }
}

/// The deterministic batch client `c` evaluates at script step `s`.
fn states_for(client: usize, step: usize) -> Vec<FloorplanState> {
    let (c, s) = (client as i64, step as i64);
    (0..BATCH as i64)
        .map(|k| FloorplanState {
            chip: [900, 800],
            segments: vec![
                [10 + 17 * c + 5 * s + k, 12, 880 - 7 * s, 780 - 13 * c],
                [15, 780 - 11 * s - k, 870 - 3 * c, 20],
                [450 + 9 * k, 16, 440 - 15 * c, 790 - 4 * s],
            ],
        })
        .collect()
}

struct Daemon {
    handle: ServerHandle,
    kill: KillSwitch,
}

fn start_daemon(
    socket: &Path,
    state_dir: &Path,
    chaos: Chaos,
    workers: usize,
) -> Result<Daemon, String> {
    let kill = KillSwitch::new();
    let store = SnapshotStore::open(state_dir, chaos, kill.clone())
        .map_err(|err| format!("cannot open state dir {}: {err}", state_dir.display()))?;
    let manager = Arc::new(SessionManager::new(
        store,
        Limits::default(),
        DegradePolicy::default(),
        workers,
    ));
    let handle = serve(
        Transport::Unix(socket.to_path_buf()),
        manager,
        ServerOptions::default(),
    )
    .map_err(|err| format!("cannot serve on {}: {err}", socket.display()))?;
    Ok(Daemon { handle, kill })
}

/// One client thread: open the session, then run every evaluate step,
/// retrying through chaos (reconnects, re-opens after a daemon restart)
/// until each request succeeds.
fn run_client(socket: PathBuf, client: usize, steps: usize) -> ClientTally {
    let session = format!("bench-{client}");
    let open = Request {
        id: format!("b{client}-open"),
        session: session.clone(),
        op: RequestOp::Open {
            config: session_config(),
        },
    };
    let mut connection = Client::new(Transport::Unix(socket));
    let mut tally = ClientTally::default();

    let mut requests = vec![open.clone()];
    for step in 0..steps {
        requests.push(Request {
            id: format!("b{client}-eval-{step}"),
            session: session.clone(),
            op: RequestOp::Evaluate {
                states: states_for(client, step),
            },
        });
    }

    for request in &requests {
        let mut tries = 0;
        loop {
            tries += 1;
            if tries > MAX_TRIES {
                die(&format!("client {client}: request {} wedged", request.id));
            }
            match connection.call(request, CALL_ATTEMPTS) {
                Ok(response) if response.ok => {
                    if let ResponsePayload::Evaluated { results } = &response.payload {
                        tally.evaluations += results.len() as u64;
                        if response.degraded {
                            tally.degraded += 1;
                        }
                        if response.replayed {
                            tally.replayed += 1;
                        }
                    }
                    break;
                }
                Ok(response) => match &response.payload {
                    // The daemon restarted since our open: re-open (an
                    // idempotent resume), then retry this request.
                    ResponsePayload::Error {
                        kind: ErrorKind::UnknownSession,
                        ..
                    } => {
                        let _ = connection.call(&open, CALL_ATTEMPTS);
                    }
                    other => die(&format!(
                        "client {client}: request {} failed terminally: {other:?}",
                        request.id
                    )),
                },
                // Transport died (kill mid-request) or retries ran out
                // while the supervisor restarts the daemon: back off and
                // go around with a fresh connection.
                Err(_) => {
                    connection.disconnect();
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    }
    tally
}

/// Audits the final state directory: every session snapshot must parse
/// and report exactly the evaluation count its script performed.
fn audit_sessions(state_dir: &Path, clients: usize, steps: usize) -> (usize, usize) {
    let store = SnapshotStore::open(state_dir, Chaos::off(), KillSwitch::new())
        .unwrap_or_else(|err| die(&format!("audit: cannot reopen state dir: {err}")));
    let ids = store
        .list()
        .unwrap_or_else(|err| die(&format!("audit: cannot list sessions: {err}")));
    let expected_evals = (steps * BATCH) as i64;
    let mut corrupted = 0;
    for id in &ids {
        let Ok(Some(text)) = store.read(id) else {
            corrupted += 1;
            continue;
        };
        let Ok(value) = serde_json::from_str::<serde::Value>(&text) else {
            corrupted += 1;
            continue;
        };
        if value.get("evals_done") != Some(&serde::Value::Int(expected_evals)) {
            corrupted += 1;
        }
    }
    if ids.len() != clients {
        corrupted += clients.abs_diff(ids.len());
    }
    (ids.len(), corrupted)
}

/// Entry point for `repro serve-bench`.
pub fn run(mode: &Mode, args: &[String]) {
    let clients: usize = flag_value(args, "--clients")
        .map_or(8, |text| {
            text.parse()
                .unwrap_or_else(|_| die(&format!("--clients `{text}` is not a count")))
        })
        .max(1);
    let steps: usize = flag_value(args, "--steps")
        .map_or(16, |text| {
            text.parse()
                .unwrap_or_else(|_| die(&format!("--steps `{text}` is not a count")))
        })
        .max(1);
    let chaos_seed: Option<u64> = flag_value(args, "--chaos").map(|text| {
        text.parse()
            .unwrap_or_else(|_| die(&format!("--chaos `{text}` is not a seed")))
    });
    let out_path = flag_value(args, "--out").unwrap_or("BENCH_serve.json");
    let workers = mode.jobs;

    let scratch = std::env::temp_dir().join(format!("irgrid_serve_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch)
        .unwrap_or_else(|err| die(&format!("cannot create {}: {err}", scratch.display())));
    let socket = scratch.join("irgrid-serve.sock");
    let state_dir = scratch.join("state");

    let chaos_for = |epoch: u64| match chaos_seed {
        Some(seed) => Chaos::with_config(seed, ChaosConfig::default_mix()).with_epoch(epoch),
        None => Chaos::off(),
    };

    println!(
        "serve-bench: {clients} clients x {steps} steps x {BATCH} states, workers={workers}, chaos={chaos_seed:?}"
    );
    let mut daemon =
        start_daemon(&socket, &state_dir, chaos_for(0), workers).unwrap_or_else(|err| die(&err));

    let start = Instant::now();
    let finished = Arc::new(AtomicUsize::new(0));
    let threads: Vec<_> = (0..clients)
        .map(|client| {
            let socket = socket.clone();
            let finished = Arc::clone(&finished);
            std::thread::spawn(move || {
                let tally = run_client(socket, client, steps);
                finished.fetch_add(1, Ordering::SeqCst);
                tally
            })
        })
        .collect();

    // Supervisor: restart the daemon (fresh kill switch, bumped chaos
    // epoch, same state directory) whenever an injected kill fires.
    let mut restarts: u64 = 0;
    let mut injected_faults: u64 = 0;
    while finished.load(Ordering::SeqCst) < clients {
        if daemon.kill.is_tripped() {
            injected_faults += daemon.handle.manager().injected_faults();
            daemon.handle.manager().request_shutdown();
            daemon.handle.join();
            restarts += 1;
            daemon = start_daemon(&socket, &state_dir, chaos_for(restarts), workers)
                .unwrap_or_else(|err| die(&err));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut tallies = ClientTally::default();
    for thread in threads {
        let tally = thread.join().unwrap_or_else(|_| {
            die("a client thread panicked");
        });
        tallies.evaluations += tally.evaluations;
        tallies.degraded += tally.degraded;
        tallies.replayed += tally.replayed;
    }
    let wall_s = start.elapsed().as_secs_f64();
    injected_faults += daemon.handle.manager().injected_faults();
    daemon.handle.manager().request_shutdown();
    daemon.handle.join();

    let (sessions, corrupted_sessions) = audit_sessions(&state_dir, clients, steps);
    let report = Report {
        clients,
        steps_per_client: steps,
        batch: BATCH,
        workers,
        chaos_seed,
        evaluations: tallies.evaluations,
        wall_s,
        evals_per_s: tallies.evaluations as f64 / wall_s,
        degraded_responses: tallies.degraded,
        replayed_responses: tallies.replayed,
        injected_faults,
        restarts,
        sessions,
        corrupted_sessions,
    };
    crate::report::emit(out_path, &report);
    let _ = std::fs::remove_dir_all(&scratch);
    if corrupted_sessions != 0 {
        die(&format!(
            "{corrupted_sessions} corrupted session(s) after the run — robustness bug"
        ));
    }
}
