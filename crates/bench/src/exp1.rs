//! Experiment 1 (Tables 1–3): the congestion-aware floorplanner vs the
//! area+wirelength floorplanner, judged by the 10 µm fixed-grid model.

use irgrid::congestion::IrregularGridModel;
use irgrid::floorplanner::Weights;
use irgrid::geom::Um;
use irgrid::netlist::mcnc::McncCircuit;

use crate::common::{aggregate, header, improvement_pct, run_batch, Mode, Row};

pub struct Exp1Results {
    pub circuit: McncCircuit,
    pub baseline_avg: Row,
    pub baseline_best: Row,
    pub congestion_avg: Row,
    pub congestion_best: Row,
}

/// Runs both floorplanners on every circuit.
pub fn run(mode: &Mode, circuits: &[McncCircuit]) -> Vec<Exp1Results> {
    circuits
        .iter()
        .map(|&bench| {
            let circuit = bench.circuit();
            let pitch = Um(bench.paper_grid_pitch_um());
            eprintln!(
                "[exp1] {bench}: baseline floorplanner ({} seeds)...",
                mode.seeds
            );
            let baseline = run_batch(
                &circuit,
                pitch,
                Weights::area_wire(),
                None::<IrregularGridModel>,
                mode,
            );
            eprintln!("[exp1] {bench}: congestion-aware floorplanner...");
            let congestion = run_batch(
                &circuit,
                pitch,
                Weights::routability(),
                Some(IrregularGridModel::new(pitch)),
                mode,
            );
            let (baseline_avg, baseline_best) = aggregate(&baseline);
            let (congestion_avg, congestion_best) = aggregate(&congestion);
            Exp1Results {
                circuit: bench,
                baseline_avg,
                baseline_best,
                congestion_avg,
                congestion_best,
            }
        })
        .collect()
}

pub fn print_table1(results: &[Exp1Results], mode: &Mode) {
    header(
        "Table 1: results with area+wirelength floorplanner (no congestion term)",
        mode,
    );
    println!(
        "{:<8} | {:>10} {:>12} {:>8} {:>12} | {:>10} {:>12} {:>8} {:>12}",
        "",
        "avg area",
        "avg wire",
        "avg t",
        "avg judging",
        "best area",
        "best wire",
        "best t",
        "best judging"
    );
    println!(
        "{:<8} | {:>10} {:>12} {:>8} {:>12} | {:>10} {:>12} {:>8} {:>12}",
        "circuit", "(mm^2)", "(um)", "(s)", "cgt cost", "(mm^2)", "(um)", "(s)", "cgt cost"
    );
    for r in results {
        println!(
            "{:<8} | {:>10.2} {:>12.0} {:>8.1} {:>12.6} | {:>10.2} {:>12.0} {:>8.1} {:>12.6}",
            r.circuit.name(),
            r.baseline_avg.area_mm2,
            r.baseline_avg.wire_um,
            r.baseline_avg.time_s,
            r.baseline_avg.judging_cost,
            r.baseline_best.area_mm2,
            r.baseline_best.wire_um,
            r.baseline_best.time_s,
            r.baseline_best.judging_cost,
        );
    }
}

pub fn print_table2(results: &[Exp1Results], mode: &Mode) {
    header(
        "Table 2: results with the Irregular-Grid congestion term in the cost",
        mode,
    );
    println!(
        "{:<8} {:>6} | {:>10} {:>12} {:>10} {:>8} {:>12} | {:>10} {:>12} {:>10} {:>8} {:>12}",
        "",
        "pitch",
        "avg area",
        "avg wire",
        "avg IR",
        "avg t",
        "avg judging",
        "best area",
        "best wire",
        "best IR",
        "best t",
        "best judging"
    );
    println!(
        "{:<8} {:>6} | {:>10} {:>12} {:>10} {:>8} {:>12} | {:>10} {:>12} {:>10} {:>8} {:>12}",
        "circuit",
        "(um)",
        "(mm^2)",
        "(um)",
        "cgt",
        "(s)",
        "cgt cost",
        "(mm^2)",
        "(um)",
        "cgt",
        "(s)",
        "cgt cost"
    );
    for r in results {
        println!(
            "{:<8} {:>6} | {:>10.2} {:>12.0} {:>10.4} {:>8.1} {:>12.6} | {:>10.2} {:>12.0} {:>10.4} {:>8.1} {:>12.6}",
            r.circuit.name(),
            r.circuit.paper_grid_pitch_um(),
            r.congestion_avg.area_mm2,
            r.congestion_avg.wire_um,
            r.congestion_avg.model_cost,
            r.congestion_avg.time_s,
            r.congestion_avg.judging_cost,
            r.congestion_best.area_mm2,
            r.congestion_best.wire_um,
            r.congestion_best.model_cost,
            r.congestion_best.time_s,
            r.congestion_best.judging_cost,
        );
    }
}

pub fn print_table3(results: &[Exp1Results], mode: &Mode) {
    header(
        "Table 3: improvement of Table 2 over Table 1 (positive = better)",
        mode,
    );
    println!(
        "{:<8} | {:>9} {:>9} {:>12} | {:>9} {:>9} {:>12}",
        "", "avg area", "avg wire", "avg judging", "best area", "best wire", "best judging"
    );
    println!(
        "{:<8} | {:>9} {:>9} {:>12} | {:>9} {:>9} {:>12}",
        "circuit", "(%)", "(%)", "cgt (%)", "(%)", "(%)", "cgt (%)"
    );
    for r in results {
        println!(
            "{:<8} | {:>9.2} {:>9.2} {:>12.2} | {:>9.2} {:>9.2} {:>12.2}",
            r.circuit.name(),
            improvement_pct(r.baseline_avg.area_mm2, r.congestion_avg.area_mm2),
            improvement_pct(r.baseline_avg.wire_um, r.congestion_avg.wire_um),
            improvement_pct(r.baseline_avg.judging_cost, r.congestion_avg.judging_cost),
            improvement_pct(r.baseline_best.area_mm2, r.congestion_best.area_mm2),
            improvement_pct(r.baseline_best.wire_um, r.congestion_best.wire_um),
            improvement_pct(r.baseline_best.judging_cost, r.congestion_best.judging_cost),
        );
    }
    let mean: f64 = results
        .iter()
        .map(|r| improvement_pct(r.baseline_avg.judging_cost, r.congestion_avg.judging_cost))
        .sum::<f64>()
        / results.len() as f64;
    println!("\nmean judged-congestion improvement (avg results): {mean:.2}%");
    println!("paper reports 1.96–20% per circuit with small area/wire penalties");
}
