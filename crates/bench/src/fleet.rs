//! `fleet` — deterministic multi-replica annealing of one circuit via
//! `irgrid-fleet`, reported as JSON to `BENCH_fleet.json` (override with
//! `--out`).
//!
//! Runs `--replicas` seeded annealing replicas of the routability
//! floorplanner (`α·Area + β·Wire + γ·Congestion` with the Irregular-Grid
//! model at the paper pitch) over `--jobs` worker threads, with
//! temperature-ladder replica exchange every `--sync-every` temperature
//! steps (pass `--independent` to disable exchange). The fleet's outcome
//! is bit-identical for any `--jobs` value; `--verify-identical` re-runs
//! a 1-worker reference fleet and records the comparison in the report's
//! `bit_identical` field — CI greps for `"bit_identical": true`.
//!
//! Crash recovery: `--run-dir DIR` persists the fleet manifest and the
//! JSONL telemetry mirror into DIR; a killed or `--time-limit`-paused run
//! continues with `--resume DIR` and lands on exactly the trajectory an
//! uninterrupted run takes.

use std::path::PathBuf;
use std::time::Instant;

use irgrid::anneal::Annealer;
use irgrid::congestion::{CongestionModel, FixedGridModel, IrregularGridModel};
use irgrid::fleet::{state_digest, ExchangeMode, Fleet, FleetConfig, FleetOptions, ReplicaSummary};
use irgrid::floorplanner::{FloorplanSpec, Weights};
use irgrid::geom::Um;
use irgrid::netlist::mcnc::McncCircuit;
use serde::Serialize;

use crate::common::{die, flag_value, header, Mode};

/// The JSON document `fleet` emits.
#[derive(Debug, Serialize)]
struct Report {
    circuit: &'static str,
    exchange_mode: String,
    replicas: usize,
    jobs: usize,
    sync_every: usize,
    seed0: u64,
    /// Rounds committed over the fleet's whole lifetime (including
    /// rounds from earlier invocations when resuming).
    rounds: usize,
    /// `false` means the invocation paused (time limit) and the fleet can
    /// be resumed with `--resume <run-dir>`.
    complete: bool,
    best_replica: usize,
    /// The fleet-best annealing cost (normalized objective).
    best_cost: f64,
    /// FNV-1a digest of the fleet-best state's canonical JSON — lets two
    /// hosts compare results without shipping floorplans.
    best_state_digest: String,
    best_area_mm2: f64,
    best_wire_um: f64,
    /// The optimizing Irregular-Grid model's score of the best floorplan.
    best_model_cost: f64,
    /// The 10 µm fixed-grid judging model's score of the best floorplan.
    best_judging_cost: f64,
    exchanges_attempted: usize,
    exchanges_accepted: usize,
    replica_summaries: Vec<ReplicaSummary>,
    /// `Some(true)` when the 1-worker reference fleet reproduced this
    /// outcome bit for bit; only present under `--verify-identical`.
    bit_identical: Option<bool>,
    /// Wall-clock seconds (the only nondeterministic field).
    wall_s: f64,
}

/// The value of a `--flag <count>` argument, strictly positive.
fn count_flag(args: &[String], flag: &str, default: usize) -> usize {
    match flag_value(args, flag) {
        Some(text) => {
            let count: usize = text
                .parse()
                .unwrap_or_else(|_| die(&format!("{flag} `{text}` is not a count")));
            if count == 0 {
                die(&format!("{flag} must be at least 1"));
            }
            count
        }
        None => default,
    }
}

/// Runs the fleet and writes/prints the JSON report.
pub fn run(mode: &Mode, bench: McncCircuit, args: &[String]) {
    let defaults = FleetConfig::default();
    let replicas = count_flag(args, "--replicas", 4);
    let sync_every = count_flag(args, "--sync-every", defaults.sync_every);
    let seed0: u64 = match flag_value(args, "--seed0") {
        Some(text) => text
            .parse()
            .unwrap_or_else(|_| die(&format!("--seed0 `{text}` is not a seed"))),
        None => 0,
    };
    let out_path = flag_value(args, "--out").unwrap_or("BENCH_fleet.json");
    let verify = args.iter().any(|a| a == "--verify-identical");
    let exchange_mode = if args.iter().any(|a| a == "--independent") {
        ExchangeMode::Independent
    } else {
        ExchangeMode::Ladder
    };
    // `--resume DIR` (parsed into the shared fault options) doubles as the
    // run directory; otherwise `--run-dir DIR` persists without resuming.
    let (run_dir, resume) = match mode.fault.resume_dir {
        Some(dir) => (Some(PathBuf::from(dir)), true),
        None => (flag_value(args, "--run-dir").map(PathBuf::from), false),
    };

    header(&format!("fleet ({})", bench.name()), mode);
    println!(
        "replicas: {replicas}  jobs: {}  sync-every: {sync_every}  exchange: {exchange_mode}",
        mode.jobs
    );

    let circuit = bench.circuit();
    let pitch = Um(bench.paper_grid_pitch_um());
    let spec: FloorplanSpec<'_, IrregularGridModel> = FloorplanSpec::new(
        &circuit,
        pitch,
        Weights::routability(),
        Some(IrregularGridModel::new(pitch)),
    )
    .unwrap_or_else(|err| {
        die(&format!(
            "invalid floorplan configuration for {}: {err}",
            bench.name()
        ))
    });

    let config = FleetConfig {
        replicas,
        workers: mode.jobs,
        seed0,
        sync_every,
        mode: exchange_mode,
        ..defaults
    };
    let fleet = Fleet::new(Annealer::new(mode.schedule), config)
        .unwrap_or_else(|err| die(&format!("invalid fleet configuration: {err}")));
    let options = FleetOptions {
        run_dir,
        resume,
        cancel: None,
        time_limit: mode
            .fault
            .deadline
            .map(|deadline| deadline.saturating_duration_since(Instant::now())),
        pause_after_rounds: None,
    };

    let outcome = fleet
        .run(|| spec.build(), &options)
        .unwrap_or_else(|err| die(&format!("fleet run on {} failed: {err}", bench.name())));
    if !outcome.complete {
        eprintln!(
            "time limit reached on {}; fleet paused (resume with --resume <run-dir>)",
            bench.name()
        );
    }

    let bit_identical = if verify && outcome.complete {
        let reference = Fleet::new(
            Annealer::new(mode.schedule),
            FleetConfig {
                workers: 1,
                ..config
            },
        )
        .expect("a valid fleet config stays valid with one worker")
        .run(|| spec.build(), &FleetOptions::default())
        .unwrap_or_else(|err| die(&format!("reference fleet run failed: {err}")));
        Some(outcome.deterministic_eq(&reference))
    } else {
        if verify {
            eprintln!("--verify-identical skipped: the fleet paused before completion");
        }
        None
    };

    // Judge the fleet-best floorplan exactly as the experiment tables do.
    let problem = spec.build();
    let eval = problem.evaluate(&outcome.best);
    let judging_cost = FixedGridModel::judging().evaluate(&eval.placement.chip(), &eval.segments);

    let report = Report {
        circuit: bench.name(),
        exchange_mode: exchange_mode.to_string(),
        replicas,
        jobs: mode.jobs,
        sync_every,
        seed0,
        rounds: outcome.rounds,
        complete: outcome.complete,
        best_replica: outcome.best_replica,
        best_cost: outcome.best_cost,
        best_state_digest: state_digest(&outcome.best),
        best_area_mm2: eval.area_um2 / 1e6,
        best_wire_um: eval.wirelength_um,
        best_model_cost: eval.congestion,
        best_judging_cost: judging_cost,
        exchanges_attempted: outcome.trace.len(),
        exchanges_accepted: outcome.trace.iter().filter(|d| d.accepted).count(),
        replica_summaries: outcome.replicas.clone(),
        bit_identical,
        wall_s: outcome.wall_s,
    };
    crate::report::emit(out_path, &report);
    if bit_identical == Some(false) {
        die("fleet outcome diverged from the 1-worker reference — determinism bug");
    }
}
