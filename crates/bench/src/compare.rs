//! `compare-all` — the standing accuracy-vs-speed harness (extension).
//!
//! Every congestion predictor in the workspace — the probabilistic
//! generations the paper discusses (fixed-grid, L/Z ensemble,
//! Irregular-Grid) and the five structural baselines from
//! `irgrid-models` — is raced over the same floorplans against *routed*
//! ground truth from two independent substrates: the PathFinder
//! negotiation router and the monotone-staircase early router. Each
//! model's per-cell demand raster is compared with each router's
//! per-cell usage raster (same pitch) on three scale-free metrics:
//! Pearson correlation, mean absolute error after mean-rescaling, and
//! top-10 % hotspot Jaccard overlap.
//!
//! Circuits: the MCNC suite plus `netlist::generator` synthetics at
//! 1 k / 10 k / 50 k modules (`--quick`: apte + the 1 k synthetic). The
//! ranked frontier — models not dominated in (mean Pearson, build
//! time) — lands in `BENCH_models.json` together with the measured
//! staircase-vs-PathFinder speed ratios.

use std::time::Instant;

use irgrid::congestion::analysis::Raster;
use irgrid::congestion::{FixedGridModel, IrregularGridModel, LzShapeModel, SpatialCongestion};
use irgrid::floorplan::{pack, two_pin_segments, PinPlacer, PolishExpr};
use irgrid::geom::{Point, Rect, Um};
use irgrid::models::{
    NetDemandModel, PinDensityModel, RentDemandModel, SpanDemandModel, WeightedNetDemandModel,
};
use irgrid::netlist::generator::CircuitGenerator;
use irgrid::netlist::mcnc::McncCircuit;
use irgrid::netlist::Circuit;
use irgrid::route::{GlobalRouter, RouterConfig, StaircaseConfig, StaircaseRouter};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

use crate::common::{die, flag_value};
use crate::metrics;
use crate::report;

const HOTSPOT_FRACTION: f64 = 0.1;

/// One model raster vs one routed ground truth.
#[derive(Debug, Clone, Copy, Serialize)]
struct Agreement {
    pearson: f64,
    scaled_mae: f64,
    hotspot_jaccard: f64,
}

#[derive(Debug, Clone, Serialize)]
struct ModelRow {
    model: String,
    build_ms: f64,
    vs_pathfinder: Agreement,
    vs_staircase: Agreement,
}

#[derive(Debug, Clone, Serialize)]
struct CircuitReport {
    circuit: String,
    modules: usize,
    segments: usize,
    pitch_um: i64,
    grid: String,
    pathfinder_ms: f64,
    pathfinder_overflow: u64,
    staircase_ms: f64,
    staircase_cuts: usize,
    staircase_speedup: f64,
    models: Vec<ModelRow>,
}

#[derive(Debug, Clone, Serialize)]
struct RankEntry {
    model: String,
    mean_pearson: f64,
    mean_scaled_mae: f64,
    mean_hotspot_jaccard: f64,
    mean_build_ms: f64,
    on_frontier: bool,
}

#[derive(Debug, Clone, Serialize)]
struct CompareReport {
    mode: String,
    hotspot_fraction: f64,
    circuits: Vec<CircuitReport>,
    /// Models ranked by mean Pearson (over circuits and both routers),
    /// best first.
    ranking: Vec<RankEntry>,
    /// The accuracy-vs-speed Pareto frontier: models no other model
    /// beats on both mean Pearson and build time.
    ranked_frontier: Vec<String>,
    /// Does the Irregular-Grid model beat every structural predictor on
    /// at least one accuracy metric, aggregated over the MCNC circuits?
    irregular_beats_structural_on_mcnc: bool,
    /// Same claim aggregated over the `syn-*` circuits — the regime the
    /// paper's model is for (large instances where uniform bounding-box
    /// spreading stops approximating real route distributions).
    irregular_beats_structural_on_synthetics: bool,
    /// Measured staircase-vs-PathFinder wall-clock ratio on the largest
    /// synthetic routed (the 10 k-module circuit in full mode).
    staircase_speedup_largest_synthetic: f64,
}

/// The model zoo at a given pitch, probabilistic and structural.
fn model_zoo(pitch: Um) -> Vec<Box<dyn SpatialCongestion>> {
    vec![
        Box::new(FixedGridModel::new(pitch)),
        Box::new(LzShapeModel::new(pitch)),
        Box::new(IrregularGridModel::new(pitch)),
        Box::new(PinDensityModel::new(pitch)),
        Box::new(NetDemandModel::new(pitch)),
        Box::new(WeightedNetDemandModel::new(pitch)),
        Box::new(RentDemandModel::new(pitch)),
        Box::new(SpanDemandModel::new(pitch)),
    ]
}

/// Model keys that are structural predictors (for the MCNC ranking
/// check). Matches the `name()` prefix before the pitch suffix.
const STRUCTURAL: [&str; 5] = [
    "pin-density",
    "net-demand",
    "weighted-net-demand",
    "rent-demand",
    "span-demand",
];

const IRREGULAR: &str = "irregular-grid";

/// Strips the pitch suffix (`"irregular-grid 30um"` → `"irregular-grid"`)
/// so rows aggregate across circuits with different pitches.
fn model_key(name: &str) -> String {
    name.split_whitespace().next().unwrap_or(name).to_string()
}

/// A deterministic reference floorplan: the initial Polish expression
/// stirred by a fixed-seed random walk, then packed. No annealing — at
/// 50 k modules the stir stays O(n), and with hundreds of modules the
/// law of large numbers keeps the packing aspect ratio reasonable.
fn stirred_floorplan(circuit: &Circuit) -> PolishExpr {
    let n = circuit.modules().len();
    let mut expr = PolishExpr::initial(n);
    let mut rng = ChaCha8Rng::seed_from_u64(0xc0_a11);
    for _ in 0..(4 * n).min(20_000) {
        expr.perturb_random(&mut rng);
    }
    expr
}

/// MCNC circuits are small enough that an un-annealed packing is
/// degenerate (apte random-packs into a ~3:1 strip), which would judge
/// the predictors on geometry no floorplanner would emit. A quick
/// area+wire anneal gives a realistic reference floorplan in well under
/// a second.
fn annealed_floorplan(circuit: &Circuit) -> PolishExpr {
    let problem = irgrid::floorplanner::FloorplanProblem::new(
        circuit,
        Um(30),
        irgrid::floorplanner::Weights::area_wire(),
        None::<IrregularGridModel>,
    );
    irgrid::anneal::Annealer::new(irgrid::anneal::Schedule::quick())
        .run(&problem, 8)
        .best
}

/// The comparison pitch: the paper's pitch for MCNC circuits; for
/// synthetics, the chip side over 64 (so router grids stay tractable at
/// 50 k modules), floored at the paper's 30 µm.
fn synthetic_pitch(chip: &Rect) -> Um {
    Um((chip.width().0.max(chip.height().0) / 64).max(30))
}

struct Prepared {
    name: String,
    modules: usize,
    pitch: Um,
    chip: Rect,
    module_rects: Vec<Rect>,
    segments: Vec<(Point, Point)>,
}

fn prepare_mcnc(bench: McncCircuit) -> Prepared {
    let circuit = bench.circuit();
    let pitch = Um(bench.paper_grid_pitch_um());
    eprintln!("[compare-all] preparing {bench} (anneal)...");
    let expr = annealed_floorplan(&circuit);
    let placement = pack(&expr, &circuit);
    let segments = two_pin_segments(&circuit, &placement, &PinPlacer::new(pitch));
    Prepared {
        name: bench.to_string(),
        modules: circuit.modules().len(),
        pitch,
        chip: placement.chip(),
        module_rects: placement.module_rects().to_vec(),
        segments,
    }
}

fn prepare_synthetic(modules: usize) -> Prepared {
    let name = format!("syn-{}k", modules / 1000);
    eprintln!("[compare-all] preparing {name} (generate)...");
    let circuit = CircuitGenerator::new(name.clone(), modules, modules * 3 / 2)
        .seed(0x5ca1e + modules as u64)
        .generate()
        .unwrap_or_else(|e| die(&format!("synthetic circuit {name}: {e}")));
    eprintln!("[compare-all] preparing {name} (stir)...");
    let expr = stirred_floorplan(&circuit);
    eprintln!("[compare-all] preparing {name} (pack)...");
    let placement = pack(&expr, &circuit);
    let pitch = synthetic_pitch(&placement.chip());
    eprintln!("[compare-all] preparing {name} (segments)...");
    let segments = two_pin_segments(&circuit, &placement, &PinPlacer::new(pitch));
    Prepared {
        name,
        modules,
        pitch,
        chip: placement.chip(),
        module_rects: placement.module_rects().to_vec(),
        segments,
    }
}

/// Edge capacity that yields real but bounded contention: ~3× the
/// average per-edge demand of L-routed nets (tighter caps saturate
/// negotiation on the dense synthetics and turn the ground truth into
/// overflow noise).
fn router_capacity(prepared: &Prepared) -> u32 {
    let grid = irgrid::congestion::UnitGrid::new(&prepared.chip, prepared.pitch);
    let lower: u64 = prepared
        .segments
        .iter()
        .map(|&(a, b)| {
            let (ax, ay) = grid.cell_of(a);
            let (bx, by) = grid.cell_of(b);
            ((ax - bx).abs() + (ay - by).abs()) as u64
        })
        .sum();
    let edges = (2 * grid.cols() * grid.rows()) as u64;
    ((lower * 3) / edges.max(1)).max(3) as u32
}

/// Rescales values to mean 1 so scaled-MAE is comparable *across*
/// models reporting in different units (Pearson and Jaccard are scale
/// invariant anyway). All-zero maps are left untouched.
fn normalized(values: &[f64]) -> Vec<f64> {
    let m = values.iter().sum::<f64>() / values.len().max(1) as f64;
    if m <= 0.0 {
        return values.to_vec();
    }
    values.iter().map(|&v| v / m).collect()
}

fn agreement(model: &Raster, routed: &Raster) -> Agreement {
    let fatal = |e: metrics::MetricError| -> f64 { die(&format!("compare-all metrics: {e}")) };
    let a = normalized(model.values());
    let b = normalized(routed.values());
    Agreement {
        pearson: metrics::pearson(&a, &b).unwrap_or_else(fatal),
        scaled_mae: metrics::scaled_mae(&a, &b).unwrap_or_else(fatal),
        hotspot_jaccard: metrics::hotspot_jaccard(&a, &b, HOTSPOT_FRACTION).unwrap_or_else(fatal),
    }
}

fn run_circuit(prepared: &Prepared) -> CircuitReport {
    let grid = irgrid::congestion::UnitGrid::new(&prepared.chip, prepared.pitch);
    eprintln!(
        "[compare-all] {}: {} modules, {} segments, {}x{} bins @ {}",
        prepared.name,
        prepared.modules,
        prepared.segments.len(),
        grid.cols(),
        grid.rows(),
        prepared.pitch,
    );

    let capacity = router_capacity(prepared);
    let pathfinder = GlobalRouter::new(RouterConfig {
        pitch: prepared.pitch,
        edge_capacity: capacity,
        max_iterations: 5,
        ..RouterConfig::default()
    });
    let t = Instant::now();
    let routed = pathfinder.route(&prepared.chip, &prepared.segments);
    let pathfinder_ms = t.elapsed().as_secs_f64() * 1000.0;
    let pathfinder_raster = routed.grid.cell_usage_raster();

    let stair = StaircaseRouter::new(StaircaseConfig {
        pitch: prepared.pitch,
        ..StaircaseConfig::default()
    });
    let t = Instant::now();
    let stair_result = stair.route(&prepared.chip, &prepared.module_rects, &prepared.segments);
    let staircase_ms = t.elapsed().as_secs_f64() * 1000.0;
    let staircase_raster = stair_result.usage.raster();

    let mut models = Vec::new();
    for model in model_zoo(prepared.pitch) {
        let t = Instant::now();
        let raster = model.raster(&prepared.chip, &prepared.segments);
        let build_ms = t.elapsed().as_secs_f64() * 1000.0;
        models.push(ModelRow {
            model: model_key(&model.name()),
            build_ms,
            vs_pathfinder: agreement(&raster, &pathfinder_raster),
            vs_staircase: agreement(&raster, &staircase_raster),
        });
    }

    CircuitReport {
        circuit: prepared.name.clone(),
        modules: prepared.modules,
        segments: prepared.segments.len(),
        pitch_um: prepared.pitch.0,
        grid: format!("{}x{}", grid.cols(), grid.rows()),
        pathfinder_ms,
        pathfinder_overflow: routed.total_overflow,
        staircase_ms,
        staircase_cuts: stair_result.cut_count,
        staircase_speedup: pathfinder_ms / staircase_ms.max(1e-9),
        models,
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

fn build_ranking(circuits: &[CircuitReport]) -> Vec<RankEntry> {
    let keys: Vec<String> = circuits
        .first()
        .map(|c| c.models.iter().map(|m| m.model.clone()).collect())
        .unwrap_or_default();
    let mut entries: Vec<RankEntry> = keys
        .iter()
        .map(|key| {
            let rows: Vec<&ModelRow> = circuits
                .iter()
                .flat_map(|c| c.models.iter().filter(|m| &m.model == key))
                .collect();
            let both = |f: &dyn Fn(&Agreement) -> f64| -> Vec<f64> {
                rows.iter()
                    .flat_map(|r| [f(&r.vs_pathfinder), f(&r.vs_staircase)])
                    .collect()
            };
            RankEntry {
                model: key.clone(),
                mean_pearson: mean(&both(&|a| a.pearson)),
                mean_scaled_mae: mean(&both(&|a| a.scaled_mae)),
                mean_hotspot_jaccard: mean(&both(&|a| a.hotspot_jaccard)),
                mean_build_ms: mean(&rows.iter().map(|r| r.build_ms).collect::<Vec<_>>()),
                on_frontier: false,
            }
        })
        .collect();

    // Pareto frontier in (mean Pearson ↑, build time ↓).
    for i in 0..entries.len() {
        let dominated = entries.iter().enumerate().any(|(j, other)| {
            j != i
                && other.mean_pearson >= entries[i].mean_pearson
                && other.mean_build_ms <= entries[i].mean_build_ms
                && (other.mean_pearson > entries[i].mean_pearson
                    || other.mean_build_ms < entries[i].mean_build_ms)
        });
        entries[i].on_frontier = !dominated;
    }
    entries.sort_by(|a, b| b.mean_pearson.total_cmp(&a.mean_pearson));
    entries
}

/// Aggregated over the selected circuits (`synthetic` picks the
/// `syn-*` subset, otherwise MCNC): does the Irregular-Grid model beat
/// *every* structural predictor on at least one accuracy metric? An
/// accuracy metric here is one of the six (Pearson, scaled MAE, hotspot
/// Jaccard) × (PathFinder, staircase) combinations — the two ground
/// truths measure different things (achievable routing vs structural
/// pressure), so their agreements are not averaged together.
fn irregular_beats_structural(circuits: &[CircuitReport], synthetic: bool) -> bool {
    let selected: Vec<&CircuitReport> = circuits
        .iter()
        .filter(|c| c.circuit.starts_with("syn-") == synthetic)
        .collect();
    if selected.is_empty() {
        return false;
    }
    let metric_mean = |key: &str, f: &dyn Fn(&ModelRow) -> f64| -> f64 {
        let values: Vec<f64> = selected
            .iter()
            .flat_map(|c| c.models.iter().filter(|m| m.model == key))
            .map(f)
            .collect();
        mean(&values)
    };
    let beats_all = |f: &dyn Fn(&ModelRow) -> f64, higher_is_better: bool| -> bool {
        let ir = metric_mean(IRREGULAR, f);
        STRUCTURAL.iter().all(|s| {
            let sv = metric_mean(s, f);
            if higher_is_better {
                ir > sv
            } else {
                ir < sv
            }
        })
    };
    beats_all(&|m| m.vs_pathfinder.pearson, true)
        || beats_all(&|m| m.vs_staircase.pearson, true)
        || beats_all(&|m| m.vs_pathfinder.hotspot_jaccard, true)
        || beats_all(&|m| m.vs_staircase.hotspot_jaccard, true)
        || beats_all(&|m| m.vs_pathfinder.scaled_mae, false)
        || beats_all(&|m| m.vs_staircase.scaled_mae, false)
}

pub fn run(args: &[String]) {
    let quick = args.iter().any(|a| a == "--quick");
    let out = flag_value(args, "--out").unwrap_or("BENCH_models.json");

    let prepared: Vec<Prepared> = if quick {
        vec![prepare_mcnc(McncCircuit::Apte), prepare_synthetic(1000)]
    } else {
        let mut all: Vec<Prepared> = McncCircuit::ALL.into_iter().map(prepare_mcnc).collect();
        all.push(prepare_synthetic(1000));
        all.push(prepare_synthetic(10_000));
        all.push(prepare_synthetic(50_000));
        all
    };

    let circuits: Vec<CircuitReport> = prepared.iter().map(run_circuit).collect();

    println!("\n=== compare-all: predictors vs routed ground truth ===");
    for c in &circuits {
        println!(
            "\n{} ({} modules, {} segments, {} bins @ {}um) — \
             pathfinder {:.1} ms (overflow {}), staircase {:.2} ms ({:.0}x)",
            c.circuit,
            c.modules,
            c.segments,
            c.grid,
            c.pitch_um,
            c.pathfinder_ms,
            c.pathfinder_overflow,
            c.staircase_ms,
            c.staircase_speedup,
        );
        println!(
            "  {:<22} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "model", "build ms", "r(PF)", "mae(PF)", "J(PF)", "r(SC)", "mae(SC)", "J(SC)"
        );
        for m in &c.models {
            println!(
                "  {:<22} {:>9.3} {:>8.4} {:>8.3} {:>8.4} {:>8.4} {:>8.3} {:>8.4}",
                m.model,
                m.build_ms,
                m.vs_pathfinder.pearson,
                m.vs_pathfinder.scaled_mae,
                m.vs_pathfinder.hotspot_jaccard,
                m.vs_staircase.pearson,
                m.vs_staircase.scaled_mae,
                m.vs_staircase.hotspot_jaccard,
            );
        }
    }

    let ranking = build_ranking(&circuits);
    let ranked_frontier: Vec<String> = ranking
        .iter()
        .filter(|e| e.on_frontier)
        .map(|e| e.model.clone())
        .collect();
    let irregular_wins_mcnc = irregular_beats_structural(&circuits, false);
    let irregular_wins_syn = irregular_beats_structural(&circuits, true);
    let largest_speedup = circuits
        .iter()
        .filter(|c| c.circuit.starts_with("syn-"))
        .max_by_key(|c| c.modules)
        .map_or(0.0, |c| c.staircase_speedup);

    println!("\nranking (mean Pearson over circuits x both routers):");
    for e in &ranking {
        println!(
            "  {:<22} r={:.4} mae={:.3} J={:.4} build={:.3} ms{}",
            e.model,
            e.mean_pearson,
            e.mean_scaled_mae,
            e.mean_hotspot_jaccard,
            e.mean_build_ms,
            if e.on_frontier { "  [frontier]" } else { "" },
        );
    }
    println!(
        "\naccuracy-vs-speed frontier: {}",
        ranked_frontier.join(", ")
    );
    println!(
        "irregular-grid beats every structural predictor on >=1 metric: \
         mcnc {irregular_wins_mcnc}, synthetics {irregular_wins_syn}"
    );
    println!("staircase speedup on largest synthetic: {largest_speedup:.0}x");

    let report = CompareReport {
        mode: if quick { "quick" } else { "full" }.into(),
        hotspot_fraction: HOTSPOT_FRACTION,
        circuits,
        ranking,
        ranked_frontier,
        irregular_beats_structural_on_mcnc: irregular_wins_mcnc,
        irregular_beats_structural_on_synthetics: irregular_wins_syn,
        staircase_speedup_largest_synthetic: largest_speedup,
    };
    println!();
    report::emit(out, &report);
}
