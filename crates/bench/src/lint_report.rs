//! `repro lint-report` — the machine-readable lint-health artifact.
//!
//! Runs the in-repo `irgrid-lint` engine over the workspace once with
//! the full rule set and once per rule family (timing each), then emits
//! `BENCH_lint.json`: finding counts per rule, the per-crate
//! suppression-debt ledger, the CI debt ceiling, and per-rule wall
//! times. Timing lives here rather than in the lint library so the lint
//! itself stays a pure function of the source tree — two runs over the
//! same tree produce byte-identical reports.

use std::time::Instant;

use serde::Serialize;

use crate::common::die;
use crate::report;

/// One rule family's sweep result.
#[derive(Serialize)]
struct RuleStat {
    /// Rule ID (`D1` … `S5`).
    rule: String,
    /// Unsuppressed findings this rule alone reports on the workspace.
    findings: usize,
    /// Wall time of the single-rule engine run, milliseconds.
    wall_ms: f64,
}

/// Per-crate live-allow count, mirrored from the lint report.
#[derive(Serialize)]
struct CrateDebt {
    name: String,
    live_allows: usize,
}

/// The `BENCH_lint.json` payload.
#[derive(Serialize)]
struct LintReport {
    /// Artifact format version.
    version: u32,
    /// First-party source files scanned.
    scanned_files: usize,
    /// Unsuppressed findings from the full-rule-set run. CI greps this
    /// for zero.
    finding_count: usize,
    /// Workspace-wide live allow directives.
    debt_total: usize,
    /// The ceiling CI holds `debt_total` under.
    debt_ceiling: usize,
    /// Live allows per crate (zero-debt crates omitted).
    suppression_debt: Vec<CrateDebt>,
    /// Per-family sweep stats, in rule order.
    rules: Vec<RuleStat>,
}

/// Runs the sweeps and emits the report (default `BENCH_lint.json`,
/// overridable with `--out`).
pub fn run(args: &[String]) {
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .filter(|a| !a.starts_with("--"))
        .map_or("BENCH_lint.json", String::as_str);

    let cwd = std::env::current_dir().unwrap_or_else(|err| die(&format!("no cwd: {err}")));
    let Some(root) = irgrid_lint::find_workspace_root(&cwd) else {
        die("no workspace root above the current directory");
    };

    let full = irgrid_lint::run(&root, &irgrid_lint::EngineConfig::default())
        .unwrap_or_else(|err| die(&format!("lint sweep failed: {err}")));

    let mut rules = Vec::new();
    for rule in irgrid_lint::RULE_IDS {
        let config = irgrid_lint::EngineConfig {
            rules: irgrid_lint::RuleConfig {
                rules: vec![(*rule).to_owned()],
                ..irgrid_lint::RuleConfig::default()
            },
            ..irgrid_lint::EngineConfig::default()
        };
        let started = Instant::now();
        let single = irgrid_lint::run(&root, &config)
            .unwrap_or_else(|err| die(&format!("lint sweep ({rule}) failed: {err}")));
        rules.push(RuleStat {
            rule: (*rule).to_owned(),
            findings: single.findings.iter().filter(|f| f.rule == **rule).count(),
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
        });
    }

    report::emit(
        out_path,
        &LintReport {
            version: 1,
            scanned_files: full.scanned_files,
            finding_count: full.finding_count,
            debt_total: full.debt_total,
            debt_ceiling: irgrid_lint::DEBT_CEILING,
            suppression_debt: full
                .suppression_debt
                .iter()
                .map(|d| CrateDebt {
                    name: d.name.clone(),
                    live_allows: d.live_allows,
                })
                .collect(),
            rules,
        },
    );
}
