//! Property-based equivalence of the incremental congestion evaluator.
//!
//! The [`IrDeltaEvaluator`] contract is that a warm session — any history
//! of proposals, commits, undos, and re-proposals — scores every segment
//! list **bit-identically** to a freshly constructed session rebased on
//! the same list. These properties drive randomized move sequences
//! (including rejected-move undo chains, repeated edits of the same
//! segment, zero-length segments, and fully overlapping ranges) and check
//! both the returned cost and the committed quantized congestion state
//! against a from-scratch evaluation after every move.

use irgrid_core::{DeltaCongestion, DeltaCongestionSession, IrDeltaEvaluator, IrregularGridModel};
use irgrid_geom::{Point, Rect, Um};
use proptest::prelude::*;

const PITCH: Um = Um(25);

fn arb_point(w: i64, h: i64) -> impl Strategy<Value = Point> {
    (0..=w, 0..=h).prop_map(|(x, y)| Point::new(Um(x), Um(y)))
}

fn arb_segment(w: i64, h: i64) -> impl Strategy<Value = (Point, Point)> {
    (arb_point(w, h), arb_point(w, h))
}

/// One edit of the segment list plus the accept/reject decision and
/// whether to exercise an undo → re-propose chain first.
#[derive(Debug, Clone)]
struct MoveSpec {
    /// Selects the edited segment (taken modulo the list length).
    slot: usize,
    segment: (Point, Point),
    /// 0 = push, 1 = pop, otherwise replace in place.
    op: u8,
    accept: bool,
    double_propose: bool,
}

fn arb_move(w: i64, h: i64) -> impl Strategy<Value = MoveSpec> {
    (0usize..64, arb_segment(w, h), 0u8..8, 0u8..2, 0u8..2).prop_map(
        |(slot, segment, op, accept, double_propose)| MoveSpec {
            slot,
            segment,
            op,
            accept: accept == 1,
            double_propose: double_propose == 1,
        },
    )
}

/// Applies a move to a plain `Vec` — the reference model of what the
/// committed segment list should be if the move is accepted.
fn apply_move(segments: &mut Vec<(Point, Point)>, spec: &MoveSpec) {
    match spec.op {
        0 => segments.push(spec.segment),
        1 => {
            segments.pop();
        }
        _ => {
            if segments.is_empty() {
                segments.push(spec.segment);
            } else {
                let slot = spec.slot % segments.len();
                segments[slot] = spec.segment;
            }
        }
    }
}

fn fresh_cost(chip: &Rect, segments: &[(Point, Point)]) -> f64 {
    let mut fresh = IrregularGridModel::new(PITCH).delta_session();
    fresh.rebase(chip, segments)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The core tentpole property: a warm session driven through an
    /// arbitrary accept/reject history never drifts from from-scratch
    /// evaluation — not in the cost bits, not in the quantized map.
    #[test]
    fn warm_session_is_bit_identical_to_scratch(
        (chip_w, chip_h, initial, moves) in (60i64..400, 60i64..400).prop_flat_map(|(w, h)| {
            (
                Just(w),
                Just(h),
                proptest::collection::vec(arb_segment(w, h), 0..12),
                proptest::collection::vec(arb_move(w, h), 1..20),
            )
        })
    ) {
        let chip = Rect::new(Point::new(Um(0), Um(0)), Point::new(Um(chip_w), Um(chip_h)));
        let mut committed = initial;
        let mut warm = IrregularGridModel::new(PITCH).delta_session();
        let warm_cost = warm.rebase(&chip, &committed);
        prop_assert_eq!(warm_cost.to_bits(), fresh_cost(&chip, &committed).to_bits());

        for (step, spec) in moves.iter().enumerate() {
            let mut proposed_segments = committed.clone();
            apply_move(&mut proposed_segments, spec);

            if spec.double_propose {
                // Propose, retract, and re-propose: the second proposal
                // must be unaffected by the first.
                let first = warm.propose(&chip, &proposed_segments);
                let restored = warm.undo();
                prop_assert_eq!(restored.to_bits(), fresh_cost(&chip, &committed).to_bits());
                let second = warm.propose(&chip, &proposed_segments);
                prop_assert_eq!(first.to_bits(), second.to_bits(), "step {}", step);
            }

            let proposed = warm.propose(&chip, &proposed_segments);
            let scratch = fresh_cost(&chip, &proposed_segments);
            prop_assert_eq!(
                proposed.to_bits(), scratch.to_bits(),
                "step {}: warm {} vs scratch {}", step, proposed, scratch
            );

            if spec.accept {
                warm.commit();
                committed = proposed_segments;
            } else {
                let restored = warm.undo();
                prop_assert_eq!(restored.to_bits(), fresh_cost(&chip, &committed).to_bits());
            }

            // The committed quantized state must equal a fresh rebase of
            // the committed list, whatever mix of commits and undos ran.
            let mut reference = IrregularGridModel::new(PITCH).delta_session();
            let _ = reference.rebase(&chip, &committed);
            let (wx, wy, wt) = warm.quantized();
            let (rx, ry, rt) = reference.quantized();
            prop_assert_eq!(wx, rx, "step {}: x cuts diverged", step);
            prop_assert_eq!(wy, ry, "step {}: y cuts diverged", step);
            prop_assert_eq!(wt, rt, "step {}: quantized totals diverged", step);
        }
    }

    /// Degenerate inputs — every segment zero-length or all segments
    /// identical (fully overlapping ranges) — keep the session exact.
    #[test]
    fn degenerate_nets_stay_exact(
        (point, copies, accept_mask) in
            (arb_point(200, 200), 1usize..6, 0u8..4)
    ) {
        let chip = Rect::new(Point::new(Um(0), Um(0)), Point::new(Um(200), Um(200)));
        let zero_length = vec![(point, point); copies];
        let overlapping = vec![(Point::new(Um(10), Um(10)), point); copies];

        let mut warm: IrDeltaEvaluator = IrregularGridModel::new(PITCH).delta_session();
        let mut committed: Vec<(Point, Point)> = Vec::new();
        let _ = warm.rebase(&chip, &committed);
        for (step, list) in [zero_length, overlapping].into_iter().enumerate() {
            let proposed = warm.propose(&chip, &list);
            prop_assert_eq!(proposed.to_bits(), fresh_cost(&chip, &list).to_bits());
            if accept_mask & (1 << step) != 0 {
                warm.commit();
                committed = list;
            } else {
                let restored = warm.undo();
                prop_assert_eq!(restored.to_bits(), fresh_cost(&chip, &committed).to_bits());
            }
        }
    }
}
