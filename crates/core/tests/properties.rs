//! Property-based tests for the congestion models' mathematical
//! invariants.

use irgrid_core::irregular::{block_probability_approx, block_probability_exact, ApproxConfig};
use irgrid_core::num::{binomial_u128, LnFactorials};
use irgrid_core::score::{top_area_fraction_mean, top_fraction_mean};
use irgrid_core::{
    CongestionModel, Evaluator, FixedGridModel, IrregularGridModel, NetType, RetainedCongestion,
    RoutingRange, UnitGrid,
};
use irgrid_geom::{Point, Rect, Um};
use proptest::prelude::*;

fn arb_net_type() -> impl Strategy<Value = NetType> {
    prop_oneof![Just(NetType::TypeI), Just(NetType::TypeII)]
}

/// Routing ranges up to 40x40 cells (keeps brute-force path DP in u128).
fn arb_range() -> impl Strategy<Value = RoutingRange> {
    (1i64..40, 1i64..40, arb_net_type())
        .prop_map(|(g1, g2, t)| RoutingRange::from_cells(0, 0, g1, g2, t))
}

/// A valid block inside the given range dimensions.
fn arb_block(g1: i64, g2: i64) -> impl Strategy<Value = (i64, i64, i64, i64)> {
    (0..g1, 0..g2)
        .prop_flat_map(move |(x1, y1)| (x1..g1, y1..g2).prop_map(move |(x2, y2)| (x1, x2, y1, y2)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn formula2_probabilities_in_unit_interval(range in arb_range()) {
        let lf = LnFactorials::up_to(range.max_factorial_arg() + 2);
        for x in 0..range.g1() {
            for y in 0..range.g2() {
                let p = range.cell_probability(&lf, x, y);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&p), "P({x},{y}) = {p}");
            }
        }
    }

    #[test]
    fn formula2_diagonals_sum_to_one(range in arb_range()) {
        // Each monotone route crosses every anti-diagonal of its range
        // exactly once.
        let lf = LnFactorials::up_to(range.max_factorial_arg() + 2);
        let (g1, g2) = (range.g1(), range.g2());
        for d in 0..(g1 + g2 - 1) {
            let sum: f64 = (0..g1)
                .filter_map(|x| {
                    let y = match range.net_type() {
                        NetType::TypeI => d - x,
                        NetType::TypeII => g2 - 1 - (d - x),
                    };
                    range.contains_local(x, y).then(|| range.cell_probability(&lf, x, y))
                })
                .sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "diagonal {d}: {sum}");
        }
    }

    #[test]
    fn formula3_matches_single_cells(range in arb_range()) {
        let lf = LnFactorials::up_to(range.max_factorial_arg() + 2);
        // Sample a few cells rather than the full quadratic sweep.
        for (x, y) in [(0, 0), (range.g1() - 1, range.g2() - 1), (range.g1() / 2, range.g2() / 2)] {
            let block = block_probability_exact(&range, &lf, x, x, y, y);
            let cell = range.cell_probability(&lf, x, y);
            prop_assert!((block - cell).abs() < 1e-9, "({x},{y}): {block} vs {cell}");
        }
    }

    #[test]
    fn formula3_monotone_under_block_growth(
        (range, block) in arb_range().prop_flat_map(|r| {
            let (g1, g2) = (r.g1(), r.g2());
            (Just(r), arb_block(g1, g2))
        })
    ) {
        let lf = LnFactorials::up_to(range.max_factorial_arg() + 2);
        let (x1, x2, y1, y2) = block;
        let p = block_probability_exact(&range, &lf, x1, x2, y1, y2);
        prop_assert!((0.0..=1.0).contains(&p));
        // Growing the block in any legal direction never lowers P.
        if x1 > 0 {
            let bigger = block_probability_exact(&range, &lf, x1 - 1, x2, y1, y2);
            prop_assert!(bigger >= p - 1e-9, "grow left: {bigger} < {p}");
        }
        if x2 < range.g1() - 1 {
            let bigger = block_probability_exact(&range, &lf, x1, x2 + 1, y1, y2);
            prop_assert!(bigger >= p - 1e-9, "grow right: {bigger} < {p}");
        }
        if y2 < range.g2() - 1 {
            let bigger = block_probability_exact(&range, &lf, x1, x2, y1, y2 + 1);
            prop_assert!(bigger >= p - 1e-9, "grow up: {bigger} < {p}");
        }
    }

    #[test]
    fn formula3_full_range_is_one(range in arb_range()) {
        let lf = LnFactorials::up_to(range.max_factorial_arg() + 2);
        let p = block_probability_exact(&range, &lf, 0, range.g1() - 1, 0, range.g2() - 1);
        prop_assert!((p - 1.0).abs() < 1e-9, "full range P = {p}");
    }

    #[test]
    fn theorem1_tracks_formula3(
        (range, block) in (8i64..40, 8i64..40, arb_net_type())
            .prop_map(|(g1, g2, t)| RoutingRange::from_cells(0, 0, g1, g2, t))
            .prop_flat_map(|r| {
                let (g1, g2) = (r.g1(), r.g2());
                (Just(r), arb_block(g1, g2))
            })
    ) {
        // Skip pin blocks (handled by step 3.1, not the approximation)
        // and blocks containing the §4.5 error-making cells. The
        // production model never evaluates the latter either: merging
        // cutting lines at twice the pitch guarantees every boundary
        // IR-grid is at least two cells wide/tall, so an error cell always
        // shares its IR-grid with the adjacent pin and is scored 1.
        let (x1, x2, y1, y2) = block;
        let (g1, g2) = (range.g1(), range.g2());
        let mut excluded: Vec<(i64, i64)> = range.pin_cells().to_vec();
        match range.net_type() {
            NetType::TypeI => {
                excluded.extend([(0, 0), (g1 - 2, g2 - 1), (g1 - 1, g2 - 2), (g1 - 1, g2 - 1)]);
            }
            NetType::TypeII => {
                excluded.extend([(0, g2 - 1), (g1 - 2, 0), (g1 - 1, 1), (g1 - 1, 0)]);
            }
        }
        let touches = excluded
            .iter()
            .any(|&(px, py)| (x1..=x2).contains(&px) && (y1..=y2).contains(&py));
        prop_assume!(!touches);
        let lf = LnFactorials::up_to(range.max_factorial_arg() + 2);
        let exact = block_probability_exact(&range, &lf, x1, x2, y1, y2);
        let approx = block_probability_approx(&range, x1, x2, y1, y2, &ApproxConfig::default());
        // The paper's bound is 0.05 per Function value; block sums stay
        // within a slightly looser absolute envelope.
        prop_assert!(
            (exact - approx).abs() < 0.08,
            "block [{x1},{x2}]x[{y1},{y2}] of {}x{} {:?}: exact {exact} vs approx {approx}",
            range.g1(), range.g2(), range.net_type()
        );
    }

    #[test]
    fn exact_binomial_symmetry_and_bounds(n in 0u64..80, k in 0u64..80) {
        let c = binomial_u128(n, k);
        if k > n {
            prop_assert_eq!(c, 0);
        } else {
            prop_assert_eq!(c, binomial_u128(n, n - k));
            prop_assert!(c >= 1);
        }
    }

    #[test]
    fn top_fraction_mean_bounds(values in prop::collection::vec(0.0f64..100.0, 1..50),
                                permille in 1u32..=1000) {
        let frac = permille as f64 / 1000.0;
        let m = top_fraction_mean(&values, frac);
        let max = values.iter().copied().fold(f64::MIN, f64::max);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!(m <= max + 1e-9);
        prop_assert!(m >= mean - 1e-9, "top-{frac} mean {m} below plain mean {mean}");
    }

    #[test]
    fn top_area_fraction_mean_bounds(
        cells in prop::collection::vec((0.0f64..10.0, 0.1f64..10.0), 1..40),
        permille in 1u32..=1000,
    ) {
        let frac = permille as f64 / 1000.0;
        let m = top_area_fraction_mean(&cells, frac);
        let max = cells.iter().map(|&(d, _)| d).fold(f64::MIN, f64::max);
        prop_assert!(m <= max + 1e-9);
        prop_assert!(m >= 0.0);
        // Monotone in the fraction: a wider window dilutes or keeps.
        if frac < 0.9 {
            let wider = top_area_fraction_mean(&cells, (frac + 0.1).min(1.0));
            prop_assert!(wider <= m + 1e-9, "wider window {wider} > {m}");
        }
    }
}

/// Segment-level invariants of the two full models.
mod model_invariants {
    use super::*;

    fn arb_segments() -> impl Strategy<Value = Vec<(Point, Point)>> {
        prop::collection::vec(
            ((0i64..900, 0i64..900), (0i64..900, 0i64..900)).prop_map(|((ax, ay), (bx, by))| {
                (Point::new(Um(ax), Um(ay)), Point::new(Um(bx), Um(by)))
            }),
            1..12,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn fixed_mass_counts_expected_crossings(segments in arb_segments()) {
            // Total probability mass = sum over nets of (g1 + g2 - 1):
            // each net crosses one cell per anti-diagonal of its range.
            let chip = Rect::from_origin_size(Point::ORIGIN, Um(900), Um(900));
            let grid = UnitGrid::new(&chip, Um(30));
            let map = FixedGridModel::new(Um(30)).congestion_map(&chip, &segments);
            let expected: f64 = segments
                .iter()
                .map(|&(a, b)| {
                    let r = RoutingRange::from_segment(&grid, a, b);
                    (r.g1() + r.g2() - 1) as f64
                })
                .sum();
            prop_assert!(
                (map.total_mass() - expected).abs() < 1e-6 * expected.max(1.0),
                "mass {} vs expected {expected}",
                map.total_mass()
            );
        }

        #[test]
        fn models_are_permutation_invariant(segments in arb_segments()) {
            // Equal up to float summation order.
            let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
            let chip = Rect::from_origin_size(Point::ORIGIN, Um(900), Um(900));
            let mut reversed = segments.clone();
            reversed.reverse();
            let fixed = FixedGridModel::new(Um(30));
            let (a, b) = (
                fixed.evaluate(&chip, &segments),
                fixed.evaluate(&chip, &reversed),
            );
            prop_assert!(close(a, b), "fixed: {a} vs {b}");
            let ir = IrregularGridModel::new(Um(30));
            let (a, b) = (ir.evaluate(&chip, &segments), ir.evaluate(&chip, &reversed));
            prop_assert!(close(a, b), "irregular: {a} vs {b}");
        }

        #[test]
        fn pin_swap_invariance(ax in 0i64..900, ay in 0i64..900, bx in 0i64..900, by in 0i64..900) {
            // (a, b) and (b, a) describe the same net.
            let chip = Rect::from_origin_size(Point::ORIGIN, Um(900), Um(900));
            let s1 = vec![(Point::new(Um(ax), Um(ay)), Point::new(Um(bx), Um(by)))];
            let s2 = vec![(Point::new(Um(bx), Um(by)), Point::new(Um(ax), Um(ay)))];
            let fixed = FixedGridModel::new(Um(30));
            prop_assert_eq!(fixed.evaluate(&chip, &s1), fixed.evaluate(&chip, &s2));
            let ir = IrregularGridModel::new(Um(30));
            prop_assert_eq!(ir.evaluate(&chip, &s1), ir.evaluate(&chip, &s2));
        }

        #[test]
        fn parallel_map_bit_identical_to_serial(
            segments in arb_segments(),
            exact in prop_oneof![Just(false), Just(true)],
        ) {
            // Row-band ownership makes every per-cell accumulation order
            // independent of the thread count, so the maps must match
            // bit for bit — not merely within tolerance.
            let chip = Rect::from_origin_size(Point::ORIGIN, Um(900), Um(900));
            let mut base = IrregularGridModel::new(Um(30));
            if exact {
                base = base.with_evaluator(Evaluator::Exact);
            }
            let serial = base.congestion_map(&chip, &segments);
            for threads in [2usize, 4, 8] {
                let parallel = base.with_threads(threads).congestion_map(&chip, &segments);
                prop_assert_eq!(serial.x_cuts(), parallel.x_cuts());
                prop_assert_eq!(serial.y_cuts(), parallel.y_cuts());
                for j in 0..serial.ir_rows() {
                    for i in 0..serial.ir_cols() {
                        let (a, b) = (serial.total(i, j), parallel.total(i, j));
                        prop_assert_eq!(
                            a.to_bits(), b.to_bits(),
                            "cell ({},{}) differs at {} threads: {} vs {}", i, j, threads, a, b
                        );
                    }
                }
            }
        }

        #[test]
        fn retained_session_matches_one_shot_evaluate(segments in arb_segments()) {
            // A warm session reused across calls must reproduce the
            // one-shot model cost exactly, including after evaluating
            // other segment sets in between.
            let chip = Rect::from_origin_size(Point::ORIGIN, Um(900), Um(900));
            let model = IrregularGridModel::new(Um(30));
            let one_shot = model.evaluate(&chip, &segments);
            let mut session = model.session();
            prop_assert_eq!(session.evaluate(&chip, &segments).to_bits(), one_shot.to_bits());
            // Perturb the scratch with a different workload, then re-ask.
            let mut doubled = segments.clone();
            doubled.extend(segments.iter().copied());
            session.evaluate(&chip, &doubled);
            prop_assert_eq!(session.evaluate(&chip, &segments).to_bits(), one_shot.to_bits());
        }

        #[test]
        fn ir_cost_scales_linearly_with_duplicated_nets(segments in arb_segments()) {
            // Duplicating every net doubles every IR-grid total, hence the
            // density metric exactly doubles (the partition is unchanged).
            let chip = Rect::from_origin_size(Point::ORIGIN, Um(900), Um(900));
            let ir = IrregularGridModel::new(Um(30));
            let once = ir.evaluate(&chip, &segments);
            let mut doubled = segments.clone();
            doubled.extend(segments.iter().copied());
            let twice = ir.evaluate(&chip, &doubled);
            prop_assert!(
                (twice - 2.0 * once).abs() < 1e-9 * once.max(1.0),
                "{twice} vs 2x{once}"
            );
        }
    }
}
