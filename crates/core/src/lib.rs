//! Probabilistic congestion models for floorplanning — a reproduction of
//! *“A New Effective Congestion Model in Floorplan Design”* (Hsieh &
//! Hsieh, DATE 2004).
//!
//! Two models estimate where routing will congest a floorplan, both based
//! on counting the shortest monotone Manhattan routes of each 2-pin net:
//!
//! * [`FixedGridModel`] — the prior art (§3, after Lou et al. and
//!   Sham & Young): a uniform evaluation grid; one probability per grid
//!   cell per net. With a 10 µm pitch it doubles as the paper's
//!   **judging model**.
//! * [`IrregularGridModel`] — the paper's contribution (§4): the chip is
//!   partitioned by the cutting lines induced by the nets' routing
//!   ranges; each *IR-grid* is scored with one constant-time evaluation
//!   (Theorem 1 normal approximation, Simpson-integrated), concentrating
//!   effort where routing ranges overlap.
//!
//! # Examples
//!
//! Scoring a floorplan's 2-pin segments with both models:
//!
//! ```
//! use irgrid_core::{CongestionModel, FixedGridModel, IrregularGridModel};
//! use irgrid_geom::{Point, Rect, Um};
//!
//! let chip = Rect::from_origin_size(Point::ORIGIN, Um(600), Um(600));
//! let segments = vec![
//!     (Point::new(Um(30), Um(30)), Point::new(Um(540), Um(540))),
//!     (Point::new(Um(30), Um(540)), Point::new(Um(540), Um(30))),
//! ];
//! let fixed = FixedGridModel::new(Um(30)).evaluate(&chip, &segments);
//! let irregular = IrregularGridModel::new(Um(30)).evaluate(&chip, &segments);
//! assert!(fixed > 0.0 && irregular > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod theory;

mod fixed;
mod grid;
pub mod irregular;
mod lz;
pub mod num;
mod routing;
pub mod score;

pub use fixed::{CellArithmetic, FixedCongestionMap, FixedGridModel};
pub use grid::UnitGrid;
pub use irregular::{
    ApproxConfig, CongestionEvaluator, Evaluator, IrCongestionMap, IrDeltaEvaluator,
    IrregularGridModel,
};
pub use lz::{LzCongestionMap, LzShapeModel};
pub use routing::{NetType, RoutingRange};

use irgrid_geom::{Point, Rect};

/// A congestion estimator usable as a floorplanner cost term.
///
/// Implemented by both [`FixedGridModel`] and [`IrregularGridModel`];
/// the floorplanner (see the `irgrid` facade crate) is generic over it,
/// which is how the paper's Experiments 1–3 swap models. Kept
/// object-safe — reporting code compares `dyn CongestionModel`s.
pub trait CongestionModel {
    /// Scores a floorplan: `chip` is the packed bounding box (lower-left
    /// at the origin), `segments` the MST-decomposed 2-pin nets. Higher
    /// is more congested.
    fn evaluate(&self, chip: &Rect, segments: &[(Point, Point)]) -> f64;

    /// A human-readable model name for reports.
    fn name(&self) -> String;
}

/// A congestion model whose estimate is a spatial *picture*, not just a
/// scalar score: the per-cell values on the chip's unit grid at the
/// model's pitch.
///
/// This is the contract the `repro compare-all` harness evaluates
/// against routed ground truth — per-cell correlation, scale-free MAE
/// and hotspot overlap all need the estimate resolved onto the same
/// grid the router reports usage on. Kept object-safe so harnesses can
/// hold a heterogeneous `Vec<Box<dyn SpatialCongestion>>` spanning the
/// probabilistic models and the structural predictors (`irgrid-models`).
pub trait SpatialCongestion: CongestionModel {
    /// The model's per-cell congestion estimate rasterized onto the
    /// unit grid of `chip` at the model's pitch, row-major. The raster
    /// dimensions equal `UnitGrid::new(chip, pitch)`'s `cols × rows`.
    fn raster(&self, chip: &Rect, segments: &[(Point, Point)]) -> analysis::Raster;
}

/// A retained evaluation session minted by [`RetainedCongestion`]:
/// mutable scratch state reused across evaluations so a hot loop (the
/// annealer's cost function) does not pay per-call setup.
///
/// A session must score exactly like its model: for every input,
/// `session.evaluate(..)` equals `model.evaluate(..)` bit for bit,
/// regardless of what the session evaluated before.
pub trait CongestionSession: std::fmt::Debug {
    /// Scores a floorplan, reusing internal scratch. Same contract as
    /// [`CongestionModel::evaluate`].
    fn evaluate(&mut self, chip: &Rect, segments: &[(Point, Point)]) -> f64;
}

/// A congestion model that can mint retained evaluation sessions.
///
/// This lives beside [`CongestionModel`] (not in it) because the
/// associated type would cost the base trait its object safety.
pub trait RetainedCongestion: CongestionModel {
    /// The session type this model mints.
    type Session: CongestionSession;

    /// Creates a fresh session. Sessions are independent: each carries
    /// its own scratch and may live on its own thread.
    fn session(&self) -> Self::Session;
}

/// A trivial [`CongestionSession`] for models without retained state: it
/// forwards to the model's stateless [`CongestionModel::evaluate`].
#[derive(Debug, Clone)]
pub struct StatelessSession<M>(M);

impl<M: CongestionModel> StatelessSession<M> {
    /// Wraps a model (usually a cheap copy of it).
    pub fn new(model: M) -> StatelessSession<M> {
        StatelessSession(model)
    }
}

impl<M: CongestionModel + std::fmt::Debug> CongestionSession for StatelessSession<M> {
    fn evaluate(&mut self, chip: &Rect, segments: &[(Point, Point)]) -> f64 {
        self.0.evaluate(chip, segments)
    }
}

/// An incremental (delta) evaluation session minted by
/// [`DeltaCongestion`]: the session keeps the committed floorplan's
/// evaluation state alive and scores a *proposed* floorplan by updating
/// only what changed, with an accept/reject protocol matching a
/// simulated-annealing move loop.
///
/// # Protocol
///
/// `rebase` installs a floorplan as the committed state (full build).
/// Each move then calls `propose` with the proposal's full segment list;
/// the session diffs it against the committed state internally. The
/// caller follows up with exactly one of `commit` (the proposal becomes
/// the committed state) or `undo` (the proposal is discarded; `undo`
/// without a pending proposal is a no-op returning the committed cost).
///
/// # Exactness
///
/// `propose` must be **bit-identical** to a from-scratch rebuild: for
/// any proposal, its cost (and the session's congestion totals) equal
/// what `rebase` on a *fresh* session would produce for the same input.
/// Implementations achieve this with integer (fixed-point) accumulation
/// — see [`num::quantize_probability`] — not with tolerances. Note the
/// quantized cost is a distinct (deterministic) quantity from the `f64`
/// [`CongestionModel::evaluate`] pipeline; the two agree to ~2⁻³² per
/// cell but not bit-for-bit.
///
/// Object-safe so problem types can hold `Box<dyn DeltaCongestionSession>`
/// without growing extra generic parameters.
pub trait DeltaCongestionSession: std::fmt::Debug {
    /// Full build: installs `segments` on `chip` as the committed state
    /// and returns its cost. Discards any pending proposal.
    fn rebase(&mut self, chip: &Rect, segments: &[(Point, Point)]) -> f64;

    /// Scores a proposed floorplan incrementally against the committed
    /// state and returns the proposal's cost. Replaces any pending
    /// proposal; does not change the committed state.
    fn propose(&mut self, chip: &Rect, segments: &[(Point, Point)]) -> f64;

    /// Promotes the pending proposal to committed state (no-op when no
    /// proposal is pending).
    fn commit(&mut self);

    /// Discards the pending proposal and returns the committed cost.
    fn undo(&mut self) -> f64;
}

/// A congestion model that can mint incremental [`DeltaCongestionSession`]s.
///
/// Split from [`RetainedCongestion`] so models gain delta support
/// independently; the floorplanner's delta move path requires this
/// bound, while its full-evaluation path keeps working with any
/// [`RetainedCongestion`].
pub trait DeltaCongestion: RetainedCongestion {
    /// The delta session type this model mints. `'static` so sessions
    /// can live behind `Box<dyn DeltaCongestionSession>`.
    type DeltaSession: DeltaCongestionSession + 'static;

    /// Creates a fresh delta session with no committed state (the first
    /// `rebase` or `propose` performs a full build).
    fn delta_session(&self) -> Self::DeltaSession;
}

/// A trivial [`DeltaCongestionSession`] for models without incremental
/// state: every `propose` is a full [`CongestionModel::evaluate`] and
/// `undo` replays the remembered committed cost. Exactness is immediate
/// — the "incremental" path *is* the from-scratch path.
#[derive(Debug, Clone)]
pub struct StatelessDeltaSession<M> {
    model: M,
    committed_cost: f64,
    proposed_cost: Option<f64>,
}

impl<M: CongestionModel> StatelessDeltaSession<M> {
    /// Wraps a model (usually a cheap copy of it).
    pub fn new(model: M) -> StatelessDeltaSession<M> {
        StatelessDeltaSession {
            model,
            committed_cost: 0.0,
            proposed_cost: None,
        }
    }
}

impl<M: CongestionModel + std::fmt::Debug> DeltaCongestionSession for StatelessDeltaSession<M> {
    fn rebase(&mut self, chip: &Rect, segments: &[(Point, Point)]) -> f64 {
        self.committed_cost = self.model.evaluate(chip, segments);
        self.proposed_cost = None;
        self.committed_cost
    }

    fn propose(&mut self, chip: &Rect, segments: &[(Point, Point)]) -> f64 {
        let cost = self.model.evaluate(chip, segments);
        self.proposed_cost = Some(cost);
        cost
    }

    fn commit(&mut self) {
        if let Some(cost) = self.proposed_cost.take() {
            self.committed_cost = cost;
        }
    }

    fn undo(&mut self) -> f64 {
        self.proposed_cost = None;
        self.committed_cost
    }
}
