//! The L/Z-shape probabilistic congestion model (Lou et al., ISPD 2001).
//!
//! The paper's reference [3] pioneered probabilistic congestion analysis
//! but restricted the route ensemble to one-bend (L) and two-bend (Z)
//! shortest paths, arguing routers rarely use more bends. This module
//! implements that baseline: for a `g1 × g2`-cell routing range the
//! ensemble holds `g1 + g2 - 2` distinct routes (the H-V-H family bending
//! at each column plus the V-H-V family bending at each row, with the two
//! L-shapes shared between families), weighted uniformly.
//!
//! Including it lets the benches compare all three congestion-model
//! generations the paper discusses: L/Z-ensemble [3], full monotone
//! ensemble on a fixed grid [4] (§3), and the Irregular-Grid model (§4).

use irgrid_geom::{Point, Rect, Um};

use crate::score::top_fraction_mean;
use crate::{CongestionModel, NetType, RoutingRange, UnitGrid};

/// The L/Z-shape fixed-grid congestion model.
///
/// # Examples
///
/// ```
/// use irgrid_core::{CongestionModel, LzShapeModel};
/// use irgrid_geom::{Point, Rect, Um};
///
/// let chip = Rect::from_origin_size(Point::ORIGIN, Um(300), Um(300));
/// let segments = vec![(Point::new(Um(15), Um(15)), Point::new(Um(285), Um(285)))];
/// let model = LzShapeModel::new(Um(30));
/// let map = model.congestion_map(&chip, &segments);
/// // Pin cells are crossed by every route.
/// assert!((map.value(0, 0) - 1.0).abs() < 1e-12);
/// // An interior off-boundary cell is only crossed by the two routes
/// // bending through it.
/// assert!(map.value(4, 4) < 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LzShapeModel {
    pitch: Um,
    top_fraction_permille: u32,
}

impl LzShapeModel {
    /// Creates the model with the given grid pitch.
    ///
    /// # Panics
    ///
    /// Panics if `pitch` is not positive.
    #[must_use]
    pub fn new(pitch: Um) -> LzShapeModel {
        assert!(pitch > Um::ZERO, "grid pitch must be positive, got {pitch}");
        LzShapeModel {
            pitch,
            top_fraction_permille: 100,
        }
    }

    /// Overrides the scoring fraction (default 10 %).
    ///
    /// # Panics
    ///
    /// Panics if `permille` is 0 or greater than 1000.
    #[must_use]
    pub fn with_top_fraction_permille(mut self, permille: u32) -> LzShapeModel {
        assert!(
            permille > 0 && permille <= 1000,
            "permille must be in 1..=1000, got {permille}"
        );
        self.top_fraction_permille = permille;
        self
    }

    /// The grid pitch.
    #[must_use]
    pub fn pitch(&self) -> Um {
        self.pitch
    }

    /// The probability that an L/Z-routed net crosses local cell `(x, y)`
    /// of `range`. Exposed for tests and fine-grained analysis.
    #[must_use]
    pub fn cell_probability(range: &RoutingRange, x: i64, y: i64) -> f64 {
        if !range.contains_local(x, y) {
            return 0.0;
        }
        let (g1, g2) = (range.g1(), range.g2());
        // Corridors have a single route crossing every cell.
        if g1 == 1 || g2 == 1 {
            return 1.0;
        }
        // Mirror type II onto type I; the ensembles are mirror images.
        let y = match range.net_type() {
            NetType::TypeI => y,
            NetType::TypeII => g2 - 1 - y,
        };

        // H-V-H family: along the bottom row to column c, up, along the
        // top row. One route per c in 0..g1.
        let hvh = if y == 0 {
            g1 - x // routes with c >= x
        } else if y == g2 - 1 {
            x + 1 // routes with c <= x
        } else {
            1 // only c == x passes through an interior row
        };
        // V-H-V family: up the left column to row r, right, up the right
        // column. One route per r in 0..g2.
        let vhv = if x == 0 {
            g2 - y
        } else if x == g1 - 1 {
            y + 1
        } else {
            1
        };
        // The two L-shapes belong to both families; subtract each once if
        // it crosses this cell.
        let mut crossing = hvh + vhv;
        // L "up then right": HVH with c = 0, VHV with r = g2-1. Crosses
        // the left column and the top row.
        if x == 0 || y == g2 - 1 {
            crossing -= 1;
        }
        // L "right then up": HVH with c = g1-1, VHV with r = 0.
        if y == 0 || x == g1 - 1 {
            crossing -= 1;
        }
        let total = g1 + g2 - 2;
        crossing as f64 / total as f64
    }

    /// Computes the L/Z congestion map of a floorplan.
    ///
    /// # Panics
    ///
    /// Panics if `chip` is degenerate or not at the origin.
    #[must_use]
    pub fn congestion_map(&self, chip: &Rect, segments: &[(Point, Point)]) -> LzCongestionMap {
        let grid = UnitGrid::new(chip, self.pitch);
        let mut values = vec![0.0f64; grid.cell_count()];
        let cols = grid.cols();
        for &(a, b) in segments {
            let range = RoutingRange::from_segment(&grid, a, b);
            for y in 0..range.g2() {
                let row_base = (range.y0() + y) * cols + range.x0();
                for x in 0..range.g1() {
                    values[(row_base + x) as usize] += Self::cell_probability(&range, x, y);
                }
            }
        }
        LzCongestionMap {
            grid,
            values,
            top_fraction: self.top_fraction_permille as f64 / 1000.0,
        }
    }
}

impl CongestionModel for LzShapeModel {
    fn evaluate(&self, chip: &Rect, segments: &[(Point, Point)]) -> f64 {
        self.congestion_map(chip, segments).cost()
    }

    fn name(&self) -> String {
        format!("lz-shape {}x{}", self.pitch, self.pitch)
    }
}

impl crate::RetainedCongestion for LzShapeModel {
    type Session = crate::StatelessSession<LzShapeModel>;

    fn session(&self) -> Self::Session {
        crate::StatelessSession::new(*self)
    }
}

impl crate::DeltaCongestion for LzShapeModel {
    type DeltaSession = crate::StatelessDeltaSession<LzShapeModel>;

    fn delta_session(&self) -> Self::DeltaSession {
        crate::StatelessDeltaSession::new(*self)
    }
}

/// The per-grid congestion produced by [`LzShapeModel`].
#[derive(Debug, Clone)]
pub struct LzCongestionMap {
    grid: UnitGrid,
    values: Vec<f64>,
    top_fraction: f64,
}

impl LzCongestionMap {
    /// The underlying grid.
    #[must_use]
    pub fn grid(&self) -> &UnitGrid {
        &self.grid
    }

    /// The congestion value of one grid cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range.
    #[must_use]
    pub fn value(&self, x: i64, y: i64) -> f64 {
        assert!(
            (0..self.grid.cols()).contains(&x) && (0..self.grid.rows()).contains(&y),
            "cell ({x}, {y}) outside {}x{} grid",
            self.grid.cols(),
            self.grid.rows()
        );
        self.values[(y * self.grid.cols() + x) as usize]
    }

    /// All cell values in row-major order.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The floorplan congestion cost: mean of the top-fraction most
    /// congested grids.
    #[must_use]
    pub fn cost(&self) -> f64 {
        top_fraction_mean(&self.values, self.top_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range(g1: i64, g2: i64, t: NetType) -> RoutingRange {
        RoutingRange::from_cells(0, 0, g1, g2, t)
    }

    /// Enumerates the L/Z route ensemble explicitly and counts crossings
    /// — the oracle for `cell_probability`.
    fn brute_force(g1: i64, g2: i64, x: i64, y: i64) -> f64 {
        // Build each route as a set of cells.
        let mut routes: Vec<Vec<(i64, i64)>> = Vec::new();
        // H-V-H by bend column c.
        for c in 0..g1 {
            let mut cells = Vec::new();
            for cx in 0..=c {
                cells.push((cx, 0));
            }
            for cy in 0..g2 {
                cells.push((c, cy));
            }
            for cx in c..g1 {
                cells.push((cx, g2 - 1));
            }
            cells.sort_unstable();
            cells.dedup();
            routes.push(cells);
        }
        // V-H-V by bend row r.
        for r in 0..g2 {
            let mut cells = Vec::new();
            for cy in 0..=r {
                cells.push((0, cy));
            }
            for cx in 0..g1 {
                cells.push((cx, r));
            }
            for cy in r..g2 {
                cells.push((g1 - 1, cy));
            }
            cells.sort_unstable();
            cells.dedup();
            routes.push(cells);
        }
        routes.sort();
        routes.dedup();
        let crossing = routes.iter().filter(|r| r.contains(&(x, y))).count();
        crossing as f64 / routes.len() as f64
    }

    #[test]
    fn matches_route_enumeration() {
        for (g1, g2) in [(2i64, 2i64), (3, 2), (2, 5), (4, 4), (6, 3), (5, 7)] {
            assert_eq!(
                brute_force(g1, g2, 0, 0),
                LzShapeModel::cell_probability(&range(g1, g2, NetType::TypeI), 0, 0)
            );
            for x in 0..g1 {
                for y in 0..g2 {
                    let expected = brute_force(g1, g2, x, y);
                    let got = LzShapeModel::cell_probability(&range(g1, g2, NetType::TypeI), x, y);
                    assert!(
                        (got - expected).abs() < 1e-12,
                        "{g1}x{g2} cell ({x},{y}): {got} vs {expected}"
                    );
                }
            }
        }
    }

    #[test]
    fn route_count_is_g1_plus_g2_minus_2() {
        // Implied by the enumeration oracle, but assert it directly: pins
        // are crossed by all routes, interior cells by exactly 2 of them.
        let r = range(6, 5, NetType::TypeI);
        assert_eq!(LzShapeModel::cell_probability(&r, 0, 0), 1.0);
        assert_eq!(LzShapeModel::cell_probability(&r, 5, 4), 1.0);
        let interior = LzShapeModel::cell_probability(&r, 2, 2);
        assert!((interior - 2.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_sums_are_one() {
        // L/Z routes are monotone, so each crosses every anti-diagonal
        // exactly once.
        for t in [NetType::TypeI, NetType::TypeII] {
            let r = range(7, 5, t);
            for d in 0..(7 + 5 - 1) {
                let sum: f64 = (0..7)
                    .filter_map(|x| {
                        let y = match t {
                            NetType::TypeI => d - x,
                            NetType::TypeII => 5 - 1 - (d - x),
                        };
                        r.contains_local(x, y)
                            .then(|| LzShapeModel::cell_probability(&r, x, y))
                    })
                    .sum();
                assert!((sum - 1.0).abs() < 1e-12, "{t:?} diagonal {d}: {sum}");
            }
        }
    }

    #[test]
    fn type_ii_mirrors_type_i() {
        let ti = range(6, 4, NetType::TypeI);
        let tii = range(6, 4, NetType::TypeII);
        for x in 0..6 {
            for y in 0..4 {
                assert_eq!(
                    LzShapeModel::cell_probability(&ti, x, y),
                    LzShapeModel::cell_probability(&tii, x, 3 - y)
                );
            }
        }
    }

    #[test]
    fn corridor_is_certain() {
        let r = range(5, 1, NetType::TypeI);
        for x in 0..5 {
            assert_eq!(LzShapeModel::cell_probability(&r, x, 0), 1.0);
        }
    }

    #[test]
    fn lz_concentrates_on_boundaries_vs_full_ensemble() {
        // The L/Z ensemble hugs the range boundary; the full monotone
        // ensemble spreads into the interior. Compare their interior
        // mass.
        use crate::num::LnFactorials;
        let r = range(9, 9, NetType::TypeI);
        let lf = LnFactorials::up_to(64);
        let lz_interior = LzShapeModel::cell_probability(&r, 4, 4);
        let full_interior = r.cell_probability(&lf, 4, 4);
        assert!(
            lz_interior < full_interior,
            "lz {lz_interior} should be below full-ensemble {full_interior} at the center"
        );
    }

    #[test]
    fn map_and_cost() {
        let chip = Rect::from_origin_size(Point::ORIGIN, Um(300), Um(300));
        let model = LzShapeModel::new(Um(30));
        let segs = vec![(Point::new(Um(15), Um(15)), Point::new(Um(285), Um(285)))];
        let map = model.congestion_map(&chip, &segs);
        assert_eq!(map.grid().cols(), 10);
        assert!(map.cost() > 0.0);
        assert!(model.evaluate(&chip, &segs) > 0.0);
        // Mass: one cell per diagonal -> g1 + g2 - 1.
        let mass: f64 = map.values().iter().sum();
        assert!((mass - 19.0).abs() < 1e-9, "mass {mass}");
    }

    #[test]
    #[should_panic(expected = "pitch must be positive")]
    fn zero_pitch_rejected() {
        let _ = LzShapeModel::new(Um(0));
    }
}
