//! Theorem 1: the constant-time normal approximation of Formula 3.
//!
//! §4.4 rewrites each exit term of Formula 3 as a hypergeometric-like
//! function `h(x, r, R, Q)` and approximates it by a normal-like density;
//! the exit sums become definite integrals evaluated with Simpson's rule
//! in O(1), independent of the block size. §4.5 identifies the cells where
//! the transformation degenerates (`(x + y₂)/(g₁ + g₂ − 3) ∈ {0, 1, >1}`,
//! always adjacent to a pin); the algorithm never evaluates them — pin
//! IR-grids are assigned probability 1 — and this module additionally
//! guards every sample point so stray evaluations contribute 0.

use crate::num::{erf_gauss_lut, normal_pdf, simpson};
use crate::routing::{NetType, RoutingRange};

/// Tuning of the Theorem 1 evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApproxConfig {
    /// Minimum Simpson sub-intervals per integral (rounded up to even).
    /// The paper only requires a constant; the deviation is dominated by
    /// the normal approximation itself from 2 intervals on (see the
    /// ablation bench) because the integrator adaptively raises the count
    /// (up to 24) when the clipped integration window is wide relative to
    /// the exit distribution's effective width.
    pub simpson_intervals: usize,
    /// Integrate `[x₁ − ½, x₂ + ½]` instead of `[x₁, x₂]`, treating each
    /// discrete term as a unit-width bar. Without it a one-cell-wide
    /// block integrates over a zero-width interval and scores 0; the flag
    /// exists for the ablation bench.
    pub continuity_correction: bool,
}

impl Default for ApproxConfig {
    fn default() -> ApproxConfig {
        ApproxConfig {
            simpson_intervals: 2,
            continuity_correction: true,
        }
    }
}

/// The Theorem 1 approximation of the block-crossing probability for the
/// block `[x1..=x2] × [y1..=y2]` in range-local coordinates.
///
/// Callers are expected to have handled pin blocks (probability 1) and
/// corridors already, and to clip the block to the range — exactly what
/// [`IrregularGridModel`](crate::IrregularGridModel) does. Type II ranges
/// are evaluated by mirroring vertically onto type I, which is exact
/// (the route ensembles are mirror images).
///
/// # Panics
///
/// Panics if the block is inverted or outside the range.
#[must_use]
pub fn block_probability_approx(
    range: &RoutingRange,
    x1: i64,
    x2: i64,
    y1: i64,
    y2: i64,
    config: &ApproxConfig,
) -> f64 {
    assert!(
        x1 <= x2 && y1 <= y2,
        "inverted block [{x1},{x2}]x[{y1},{y2}]"
    );
    assert!(
        x1 >= 0 && y1 >= 0 && x2 < range.g1() && y2 < range.g2(),
        "block [{x1},{x2}]x[{y1},{y2}] outside {}x{} range",
        range.g1(),
        range.g2()
    );

    let (g1, g2) = (range.g1(), range.g2());
    // Mirror type II onto type I: y -> g2 - 1 - y.
    let (y1, y2) = match range.net_type() {
        NetType::TypeI => (y1, y2),
        NetType::TypeII => (g2 - 1 - y2, g2 - 1 - y1),
    };

    let correction = if config.continuity_correction {
        0.5
    } else {
        0.0
    };
    let mut p = 0.0;

    // Exits upward through the top row: zero when the block touches the
    // range's top boundary (no routes leave the range).
    if y2 < g2 - 1 {
        p += exit_integral(
            g1,
            g2,
            y2,
            x1 as f64 - correction,
            x2 as f64 + correction,
            config.simpson_intervals,
        );
    }
    // Exits rightward through the right column: zero on the right
    // boundary. The axes swap (Function (2) is Function (1) transposed).
    if x2 < g1 - 1 {
        p += exit_integral(
            g2,
            g1,
            x2,
            y1 as f64 - correction,
            y2 as f64 + correction,
            config.simpson_intervals,
        );
    }
    p.clamp(0.0, 1.0)
}

/// Integrates the §4.4 exit integrand over `[a, b]`, localizing the
/// integration to the integrand's support so wide blocks (e.g. a strip
/// spanning the whole range) don't undersample the narrow peak.
///
/// The integrand `f(x) = c·φ(x; μ(x), σ(x))` with affine `μ` peaks at the
/// stationary point `x* = (g1−1)·y2/(g2−2)` (where `x = μ(x)`) and decays
/// with *effective* width `σ_eff = σ(x*)·(g1+g2−3)/(g2−2)` (the exponent
/// sees `x − μ(x)`, which grows with slope `(g2−2)/(g1+g2−3)`). Clipping
/// to ±8·σ_eff and scaling the Simpson interval count to the clipped
/// width (capped at 24) keeps evaluation O(1) while resolving the peak.
fn exit_integral(g1: i64, g2: i64, y2: i64, a: f64, b: f64, base_intervals: usize) -> f64 {
    ExitProfile::new(g1, g2, y2).integral(a, b, base_intervals)
}

/// The per-`(g1, g2, y2)` setup of [`exit_integral`] — support clipping,
/// peak localization, and the effective width — hoisted out so a retained
/// evaluator can sweep one row (or column) of IR-grids with a single
/// setup. `integral` reproduces `exit_integral` bit for bit: the same
/// intermediate values are computed in the same order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ExitProfile {
    g1: i64,
    g2: i64,
    y2: i64,
    y2f: f64,
    r: f64,
    /// `(center - w, center + w)` when the peak is localizable.
    window: Option<(f64, f64)>,
    sigma_eff: f64,
    /// False when the integrand is identically zero (`r <= 0` or the
    /// variance denominator vanishes).
    live: bool,
}

impl ExitProfile {
    pub(crate) fn new(g1: i64, g2: i64, y2: i64) -> ExitProfile {
        let (g1f, g2f) = (g1 as f64, g2 as f64);
        let r = g1f + g2f - 3.0;
        let denom_var = g1f + g2f - 4.0;
        let y2f = y2 as f64;
        let mut profile = ExitProfile {
            g1,
            g2,
            y2,
            y2f,
            r,
            window: None,
            sigma_eff: f64::INFINITY,
            live: r > 0.0 && denom_var > 0.0,
        };
        if !profile.live {
            return profile;
        }
        let denom_peak = g2f - 2.0;
        if denom_peak > 0.0 {
            let center = (g1f - 1.0) * y2f / denom_peak;
            let q = (center + y2f) / r;
            if q > 0.0 && q < 1.0 {
                let var = (denom_peak / denom_var) * (g1f - 1.0) * q * (1.0 - q);
                if var > 0.0 {
                    profile.sigma_eff = var.sqrt() * r / denom_peak;
                    let w = 8.0 * profile.sigma_eff + 1.0;
                    profile.window = Some((center - w, center + w));
                }
            }
        }
        profile
    }

    pub(crate) fn integral(&self, a: f64, b: f64, base_intervals: usize) -> f64 {
        if !self.live {
            return 0.0;
        }
        // The integrand is zero outside 0 < q < 1, i.e. -y2 < x < r - y2.
        let mut lo = a.max(-self.y2f);
        let mut hi = b.min(self.r - self.y2f);
        if lo >= hi {
            return 0.0;
        }
        if let Some((window_lo, window_hi)) = self.window {
            lo = lo.max(window_lo);
            hi = hi.min(window_hi);
            if lo >= hi {
                return 0.0;
            }
        }
        let width = hi - lo;
        // Enough intervals to sample the peak at ~2 points per σ_eff,
        // capped to keep the evaluation constant-time.
        let resolution = if self.sigma_eff.is_finite() {
            (2.0 * width / self.sigma_eff).ceil() as usize
        } else {
            width.ceil() as usize
        };
        // The cap keeps evaluation O(1); an explicitly larger configured
        // base still wins so callers can buy accuracy.
        let intervals = resolution.clamp(2, 24).max(base_intervals);
        simpson(lo, hi, intervals, |x| {
            top_exit_integrand(self.g1, self.g2, self.y2, x)
        })
    }
}

/// How a given `(g1, g2, y2)` exit row is integrated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ExitKind {
    /// The integrand is identically zero: every cell mass is 0.
    Zero,
    /// The closed form below does not apply (exit on an extreme unit
    /// row); callers integrate with [`ExitProfile`] instead.
    Quad,
    /// The closed-form antiderivative is valid.
    Closed,
}

/// A closed-form antiderivative of the §4.4 exit integrand, for O(1)
/// cell integrals without quadrature.
///
/// The integrand is `f(x) = C·φ(x; μ(x), σ(x))` with `C = (g₂−1)/(g₁+g₂−2)`,
/// `q(x) = (x+y₂)/r`, `r = g₁+g₂−3`, affine `μ = (g₁−1)q`, and
/// `σ²(x) = c·q(1−q)`, `c = (g₂−2)(g₁−1)/(g₁+g₂−4)`. Writing `a = g₂−2`
/// and `b = y₂`, the exponent partial-fractions **exactly**:
///
/// ```text
/// (aq−b)² / (2c·q(1−q)) = −a²/(2c) + β/q + δ/(1−q),
///     β = b²/(2c),  δ = (a−b)²/(2c)
/// ```
///
/// so `f ∝ e^{−h(q)}/√(q(1−q))` with convex `h(q) = β/q + δ/(1−q)`,
/// minimized at `q* = √β/(√β+√δ)`. The uniform substitution
///
/// ```text
/// s(q) = √M · (q − q*) / √(q(1−q)),
///     M = (δq* + β(1−q*)) / (q*(1−q*))
/// ```
///
/// satisfies `s² = h(q) − h(q*)` **exactly** (the numerator
/// `δq*q − β(1−q*)(1−q)` is linear in `q` and vanishes at `q*`, so there
/// is no cancellation), is monotone (h is convex), and drives `s → ∓∞`
/// at both support edges — uniformly valid where a pointwise z-score
/// parametrization degenerates for near-edge exits. In `s` the integral
/// becomes `K∫e^{−s²} g(s) ds` with the smooth rational weight
/// `g = 2q(1−q)/(√M(q + q* − 2q*q))`; projecting `g` onto Hermite
/// polynomials `H₀..H₃` by 7-point Gauss–Hermite quadrature gives the
/// elementary antiderivative
///
/// ```text
/// A(s) = K[ a₀·(√π/2)·erf(s) − (a₁ + 2a₂s)e^{−s²} + a₃(2 − 4s²)e^{−s²} ]
/// ```
///
/// Each evaluation costs one fused `erf`/`exp` pair and one square root;
/// the projection itself is 7 rational evaluations per row, amortized
/// over the row's cells. Worst deviation from a fine Simpson pass over
/// the same integrand is ~0.02 across all block shapes including
/// near-edge exits (see `cdf_tracks_simpson_integral`) — within the
/// ±0.05 the paper quotes for the normal approximation itself.
///
/// The value depends on nothing but `(g1, g2, y2)` and the evaluation
/// point — the property the delta evaluator needs to score brand-new cut
/// patterns in O(cells) with no caching, a fresh session reproducing a
/// warm session bit for bit by construction.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ExitCdf {
    kind: ExitKind,
    y2f: f64,
    /// `1/r`, `r = g1+g2−3`.
    inv_r: f64,
    /// Peak location `q*` of the exponent in `q`.
    q_star: f64,
    /// `√M`: scale of the uniform substitution `s(q)`.
    sqrt_m: f64,
    /// `K·a₀·√π/2`: coefficient of the `erf` term; total mass is twice
    /// this.
    c_erf: f64,
    /// Folded `e^{−s²}` polynomial: `−(e0 + e1·s + e2·s²)·e^{−s²}`.
    e0: f64,
    e1: f64,
    e2: f64,
}

/// 7-point Gauss–Hermite nodes and weights (weight function `e^{−s²}`).
const GAUSS_HERMITE_7: [(f64, f64); 7] = [
    (-2.651_961_356_835_233, 9.717_812_450_995_192e-4),
    (-1.673_551_628_767_471, 5.451_558_281_912_703e-2),
    (-0.816_287_882_858_964_7, 0.425_607_252_610_127_8),
    (0.0, 0.810_264_617_556_807_3),
    (0.816_287_882_858_964_7, 0.425_607_252_610_127_8),
    (1.673_551_628_767_471, 5.451_558_281_912_703e-2),
    (2.651_961_356_835_233, 9.717_812_450_995_192e-4),
];

impl ExitCdf {
    pub(crate) fn new(g1: i64, g2: i64, y2: i64) -> ExitCdf {
        let (g1f, g2f) = (g1 as f64, g2 as f64);
        let r = g1f + g2f - 3.0;
        let denom_var = g1f + g2f - 4.0;
        let slope = g2f - 2.0;
        let y2f = y2 as f64;
        let dead = ExitCdf {
            kind: ExitKind::Zero,
            y2f,
            inv_r: 0.0,
            q_star: 0.0,
            sqrt_m: 0.0,
            c_erf: 0.0,
            e0: 0.0,
            e1: 0.0,
            e2: 0.0,
        };
        if !(r > 0.0 && denom_var > 0.0 && slope > 0.0 && g1f > 1.0) {
            // The integrand is identically zero (collapsed variance or
            // empty interior).
            return dead;
        }
        if !(y2f >= 1.0 && slope - y2f >= 1.0) {
            // Extreme exit rows: one of the partial-fraction exponents
            // vanishes, the peak sits on the support edge, and the
            // substitution degenerates. Keep the quadrature path.
            return ExitCdf {
                kind: ExitKind::Quad,
                ..dead
            };
        }
        let c = slope * (g1f - 1.0) / denom_var;
        let coefficient = (g2f - 1.0) / (g1f + g2f - 2.0);
        let beta = y2f * y2f / (2.0 * c);
        let delta = (slope - y2f) * (slope - y2f) / (2.0 * c);
        let q_star = beta.sqrt() / (beta.sqrt() + delta.sqrt());
        let h_star = beta / q_star + delta / (1.0 - q_star);
        let m = (delta * q_star + beta * (1.0 - q_star)) / (q_star * (1.0 - q_star));
        let sqrt_m = m.sqrt();
        // h(q*) ≥ a²/(2c) by construction, so the exponent is ≤ 0.
        let k = coefficient * r / (2.0 * std::f64::consts::PI * c).sqrt()
            * (slope * slope / (2.0 * c) - h_star).exp();
        let sqrt_pi = std::f64::consts::PI.sqrt();
        let mut mom = [0.0f64; 4];
        for &(s, w) in &GAUSS_HERMITE_7 {
            // Invert s(q): (M+s²)q² − (2Mq*+s²)q + Mq*² = 0, whose
            // discriminant is s²(s² + 4Mq*(1−q*)) exactly.
            let s2 = s * s;
            let root = s.abs() * (s2 + 4.0 * m * q_star * (1.0 - q_star)).sqrt();
            let num = 2.0 * m * q_star + s2 + if s >= 0.0 { root } else { -root };
            let q = num / (2.0 * (m + s2));
            let gv = 2.0 * q * (1.0 - q) / (sqrt_m * (q + q_star - 2.0 * q_star * q));
            mom[0] += w * gv;
            mom[1] += w * gv * (2.0 * s);
            mom[2] += w * gv * (4.0 * s2 - 2.0);
            mom[3] += w * gv * (8.0 * s2 * s - 12.0 * s);
        }
        // aₙ = ⟨g, Hₙ⟩ / (√π·2ⁿ·n!).
        let a0 = mom[0] / sqrt_pi;
        let a1 = mom[1] / (2.0 * sqrt_pi);
        let a2 = mom[2] / (8.0 * sqrt_pi);
        let a3 = mom[3] / (48.0 * sqrt_pi);
        ExitCdf {
            kind: ExitKind::Closed,
            y2f,
            inv_r: 1.0 / r,
            q_star,
            sqrt_m,
            c_erf: k * a0 * sqrt_pi / 2.0,
            // A(s) − A(−∞) folds to c_erf·(1+erf s) − (e0+e1·s+e2·s²)e^{−s²}.
            e0: k * (a1 - 2.0 * a3),
            e1: k * 2.0 * a2,
            e2: k * 4.0 * a3,
        }
    }

    pub(crate) fn kind(&self) -> ExitKind {
        self.kind
    }

    /// Total mass over the whole support.
    pub(crate) fn total(&self) -> f64 {
        2.0 * self.c_erf
    }

    /// The exit mass below `x` (valid only for `ExitKind::Closed`).
    pub(crate) fn below(&self, x: f64) -> f64 {
        let q = (x + self.y2f) * self.inv_r;
        if q <= 0.0 {
            return 0.0;
        }
        if q >= 1.0 {
            return self.total();
        }
        let s = self.sqrt_m * (q - self.q_star) / (q * (1.0 - q)).sqrt();
        let (erf_s, gauss) = erf_gauss_lut(s);
        self.c_erf * (1.0 + erf_s) - (self.e0 + (self.e1 + self.e2 * s) * s) * gauss
    }

    /// The exit mass over `[a, b]` — the closed-form counterpart of
    /// [`ExitProfile::integral`]. The `max` guards the small negative
    /// lobes of the truncated Hermite series in the far tails.
    pub(crate) fn mass(&self, a: f64, b: f64) -> f64 {
        (self.below(b) - self.below(a)).max(0.0)
    }
}

/// The §4.4 integrand for top-row exits of a type I net: the
/// normal-approximated `Function (1)` evaluated at continuous `x`.
///
/// Public (crate) so the Figure 8 bench can plot it pointwise against the
/// exact term.
pub(crate) fn top_exit_integrand(g1: i64, g2: i64, y2: i64, x: f64) -> f64 {
    let (g1f, g2f) = (g1 as f64, g2 as f64);
    let denom_q = g1f + g2f - 3.0;
    let denom_var = g1f + g2f - 4.0;
    if denom_q <= 0.0 || denom_var <= 0.0 {
        return 0.0;
    }
    let q = (x + y2 as f64) / denom_q;
    if q <= 0.0 || q >= 1.0 {
        // §4.5 degenerate cases: these sample points sit next to a pin,
        // whose IR-grid is scored 1 elsewhere.
        return 0.0;
    }
    let mu = (g1f - 1.0) * q;
    let var = ((g2f - 2.0) / denom_var) * (g1f - 1.0) * q * (1.0 - q);
    if var <= 0.0 {
        return 0.0;
    }
    let coefficient = (g2f - 1.0) / (g1f + g2f - 2.0);
    coefficient * normal_pdf(x, mu, var.sqrt())
}

/// The exact value of the paper's `Function (1)` at integer `x`:
/// `Ta(x, y₂) · Tb(x, y₂ + 1) / total` for a type I range. Used by the
/// Figure 8 reproduction to plot exact-vs-approximate curves.
///
/// # Panics
///
/// Panics if the range is not type I.
#[must_use]
pub fn function1_exact(
    range: &RoutingRange,
    lf: &crate::num::LnFactorials,
    x: i64,
    y2: i64,
) -> f64 {
    assert_eq!(
        range.net_type(),
        NetType::TypeI,
        "Function (1) is defined for type I ranges"
    );
    let t = range.ln_ta(lf, x, y2) + range.ln_tb(lf, x, y2 + 1) - range.ln_total_routes(lf);
    t.exp()
}

/// The Theorem 1 approximation of `Function (1)` at (continuous) `x` —
/// the curve the paper plots in figure 8(b)/(d).
#[must_use]
pub fn function1_approx(range: &RoutingRange, x: f64, y2: i64) -> f64 {
    assert_eq!(
        range.net_type(),
        NetType::TypeI,
        "Function (1) is defined for type I ranges"
    );
    top_exit_integrand(range.g1(), range.g2(), y2, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::irregular::exact::block_probability_exact;
    use crate::num::LnFactorials;

    #[test]
    fn paper_figure8_pointwise_accuracy() {
        // §4.5: a type I net divided into 31x21 grids; Function (1) for
        // x = 10..=20 at y2 = 15 — "the approximation is extremely
        // accurate" and "the deviation of approximation is generally less
        // than 0.05".
        let lf = LnFactorials::up_to(128);
        let range = RoutingRange::from_cells(0, 0, 31, 21, NetType::TypeI);
        for x in 10..=20 {
            let exact = function1_exact(&range, &lf, x, 15);
            let approx = function1_approx(&range, x as f64, 15);
            assert!(
                (exact - approx).abs() < 0.05,
                "x = {x}: exact {exact} vs approx {approx}"
            );
        }
    }

    #[test]
    fn error_cell_guarded() {
        // Figure 8(c)/(d): at grid (30, 19) the transformation degenerates
        // ((x + y2)/(g1 + g2 - 3) >= 1); the guarded integrand returns 0
        // instead of a bogus value.
        let range = RoutingRange::from_cells(0, 0, 31, 21, NetType::TypeI);
        assert_eq!(function1_approx(&range, 30.0, 19.0 as i64), 0.0);
        // And the (0,0) degenerate end.
        assert_eq!(function1_approx(&range, 0.0, 0), 0.0);
    }

    #[test]
    fn block_approx_close_to_exact_interior() {
        let lf = LnFactorials::up_to(256);
        let config = ApproxConfig::default();
        let range = RoutingRange::from_cells(0, 0, 31, 21, NetType::TypeI);
        // Interior blocks away from the pins.
        for &(x1, x2, y1, y2) in &[
            (10i64, 20i64, 12i64, 15i64),
            (5, 8, 5, 9),
            (22, 28, 3, 10),
            (3, 27, 2, 18),
            (15, 15, 10, 10),
        ] {
            let exact = block_probability_exact(&range, &lf, x1, x2, y1, y2);
            let approx = block_probability_approx(&range, x1, x2, y1, y2, &config);
            assert!(
                (exact - approx).abs() < 0.05,
                "block [{x1},{x2}]x[{y1},{y2}]: exact {exact} vs approx {approx}"
            );
        }
    }

    #[test]
    fn type_ii_mirror_matches_exact() {
        let lf = LnFactorials::up_to(256);
        let config = ApproxConfig::default();
        let range = RoutingRange::from_cells(0, 0, 25, 19, NetType::TypeII);
        for &(x1, x2, y1, y2) in &[(8i64, 14i64, 6i64, 10i64), (4, 9, 3, 15), (16, 22, 2, 8)] {
            let exact = block_probability_exact(&range, &lf, x1, x2, y1, y2);
            let approx = block_probability_approx(&range, x1, x2, y1, y2, &config);
            assert!(
                (exact - approx).abs() < 0.05,
                "block [{x1},{x2}]x[{y1},{y2}]: exact {exact} vs approx {approx}"
            );
        }
    }

    #[test]
    fn boundary_blocks_drop_vanishing_term() {
        let lf = LnFactorials::up_to(256);
        let config = ApproxConfig::default();
        let range = RoutingRange::from_cells(0, 0, 20, 16, NetType::TypeI);
        // Block touching the top boundary: only right exits remain.
        let exact = block_probability_exact(&range, &lf, 4, 9, 12, 15);
        let approx = block_probability_approx(&range, 4, 9, 12, 15, &config);
        assert!(
            (exact - approx).abs() < 0.05,
            "top-boundary block: exact {exact} vs approx {approx}"
        );
        // Block touching the right boundary: only top exits remain.
        let exact = block_probability_exact(&range, &lf, 15, 19, 4, 9);
        let approx = block_probability_approx(&range, 15, 19, 4, 9, &config);
        assert!(
            (exact - approx).abs() < 0.05,
            "right-boundary block: exact {exact} vs approx {approx}"
        );
    }

    #[test]
    fn full_strip_blocks_are_certain() {
        // A vertical strip spanning the range's full height is crossed by
        // every route: exact probability 1. The localized integration
        // must not undersample the narrow exit-distribution peak.
        let lf = LnFactorials::up_to(256);
        let config = ApproxConfig::default();
        for (g1, g2) in [(20i64, 16i64), (40, 8), (8, 40), (31, 21)] {
            let range = RoutingRange::from_cells(0, 0, g1, g2, NetType::TypeI);
            for x in [1, g1 / 2, g1 - 3] {
                let exact = block_probability_exact(&range, &lf, x, x, 0, g2 - 1);
                let approx = block_probability_approx(&range, x, x, 0, g2 - 1, &config);
                assert!(
                    (exact - 1.0).abs() < 1e-9,
                    "{g1}x{g2} strip x={x}: exact {exact}"
                );
                assert!(
                    (approx - 1.0).abs() < 0.05,
                    "{g1}x{g2} strip x={x}: approx {approx}"
                );
            }
            // Horizontal strip spanning the full width.
            for y in [1, g2 / 2, g2 - 3] {
                let approx = block_probability_approx(&range, 0, g1 - 1, y, y, &config);
                assert!(
                    (approx - 1.0).abs() < 0.05,
                    "{g1}x{g2} row strip y={y}: approx {approx}"
                );
            }
        }
    }

    #[test]
    fn probability_clamped_to_unit_interval() {
        let config = ApproxConfig::default();
        let range = RoutingRange::from_cells(0, 0, 31, 21, NetType::TypeI);
        for x1 in (0..30).step_by(7) {
            for y1 in (0..20).step_by(5) {
                let p = block_probability_approx(
                    &range,
                    x1,
                    (x1 + 6).min(30),
                    y1,
                    (y1 + 4).min(20),
                    &config,
                );
                assert!((0.0..=1.0).contains(&p), "p = {p} at ({x1},{y1})");
            }
        }
    }

    #[test]
    fn without_continuity_correction_single_cell_vanishes() {
        let config = ApproxConfig {
            continuity_correction: false,
            ..ApproxConfig::default()
        };
        let range = RoutingRange::from_cells(0, 0, 31, 21, NetType::TypeI);
        // Degenerate integration interval: the known weakness the flag
        // documents (and the ablation bench quantifies).
        assert_eq!(
            block_probability_approx(&range, 15, 15, 10, 10, &config),
            0.0
        );
    }

    #[test]
    fn cdf_tracks_simpson_integral() {
        // The closed-form ExitCdf against a fine Simpson pass over the
        // same integrand, across wide/tall/tiny block shapes and every
        // closed-form exit row. The truncated Hermite series costs ~0.02
        // absolute at worst — within the ±0.05 deviation the paper
        // quotes for the normal approximation itself.
        let mut worst = 0.0f64;
        for (g1, g2) in [
            (31i64, 21i64),
            (40, 8),
            (8, 40),
            (100, 60),
            (12, 12),
            (5, 5),
            (200, 5),
            (80, 6),
            (10, 5),
        ] {
            for y2 in 1..=(g2 - 2) {
                let profile = ExitProfile::new(g1, g2, y2);
                let cdf = ExitCdf::new(g1, g2, y2);
                if cdf.kind() != ExitKind::Closed {
                    // Extreme exit rows keep the quadrature path.
                    assert_eq!(cdf.kind(), ExitKind::Quad);
                    assert_eq!(y2, g2 - 2);
                    continue;
                }
                for x1 in 0..g1 {
                    for width in [0i64, 2, 7] {
                        let x2 = (x1 + width).min(g1 - 1);
                        let (a, b) = (x1 as f64 - 0.5, x2 as f64 + 0.5);
                        let quad = profile.integral(a, b, 512);
                        let closed = cdf.mass(a, b);
                        worst = worst.max((quad - closed).abs());
                    }
                }
            }
        }
        assert!(worst < 0.03, "worst |Simpson − closed form| = {worst}");
    }

    #[test]
    fn cdf_mass_nonnegative_and_saturates() {
        for (g1, g2, y2) in [(31i64, 21i64, 15i64), (40, 8, 3), (9, 30, 27), (5, 5, 1)] {
            let cdf = ExitCdf::new(g1, g2, y2);
            assert_eq!(cdf.kind(), ExitKind::Closed);
            let r = (g1 + g2 - 3) as f64;
            let y2f = y2 as f64;
            // Every subinterval mass is nonnegative and the prefix never
            // leaves [0, total] by more than the tail lobes of the
            // truncated Hermite series.
            let total = cdf.total();
            let mut x = -y2f - 1.0;
            while x <= r - y2f + 1.0 {
                let here = cdf.below(x);
                assert!(cdf.mass(x, x + 0.25) >= 0.0);
                assert!(
                    (-2e-3..=total + 2e-3).contains(&here),
                    "prefix {here} outside [0, {total}] at x = {x}"
                );
                x += 0.25;
            }
            // The prefix saturates at the support edges, and the total
            // matches a fine Simpson pass over the full support.
            assert_eq!(cdf.below(-y2f), 0.0);
            assert_eq!(cdf.below(r - y2f), total);
            let profile = ExitProfile::new(g1, g2, y2);
            let quad = profile.integral(-y2f, r - y2f, 2048);
            assert!(
                (total - quad).abs() < 5e-3,
                "total {total} vs Simpson {quad}"
            );
        }
    }

    #[test]
    fn more_simpson_intervals_do_not_hurt() {
        let lf = LnFactorials::up_to(256);
        let range = RoutingRange::from_cells(0, 0, 31, 21, NetType::TypeI);
        let exact = block_probability_exact(&range, &lf, 8, 18, 5, 12);
        let coarse = block_probability_approx(
            &range,
            8,
            18,
            5,
            12,
            &ApproxConfig {
                simpson_intervals: 2,
                continuity_correction: true,
            },
        );
        let fine = block_probability_approx(
            &range,
            8,
            18,
            5,
            12,
            &ApproxConfig {
                simpson_intervals: 32,
                continuity_correction: true,
            },
        );
        assert!((fine - exact).abs() <= (coarse - exact).abs() + 1e-6);
    }
}
