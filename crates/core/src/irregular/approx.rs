//! Theorem 1: the constant-time normal approximation of Formula 3.
//!
//! §4.4 rewrites each exit term of Formula 3 as a hypergeometric-like
//! function `h(x, r, R, Q)` and approximates it by a normal-like density;
//! the exit sums become definite integrals evaluated with Simpson's rule
//! in O(1), independent of the block size. §4.5 identifies the cells where
//! the transformation degenerates (`(x + y₂)/(g₁ + g₂ − 3) ∈ {0, 1, >1}`,
//! always adjacent to a pin); the algorithm never evaluates them — pin
//! IR-grids are assigned probability 1 — and this module additionally
//! guards every sample point so stray evaluations contribute 0.

use crate::num::{normal_pdf, simpson};
use crate::routing::{NetType, RoutingRange};

/// Tuning of the Theorem 1 evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApproxConfig {
    /// Minimum Simpson sub-intervals per integral (rounded up to even).
    /// The paper only requires a constant; the deviation is dominated by
    /// the normal approximation itself from 2 intervals on (see the
    /// ablation bench) because the integrator adaptively raises the count
    /// (up to 24) when the clipped integration window is wide relative to
    /// the exit distribution's effective width.
    pub simpson_intervals: usize,
    /// Integrate `[x₁ − ½, x₂ + ½]` instead of `[x₁, x₂]`, treating each
    /// discrete term as a unit-width bar. Without it a one-cell-wide
    /// block integrates over a zero-width interval and scores 0; the flag
    /// exists for the ablation bench.
    pub continuity_correction: bool,
}

impl Default for ApproxConfig {
    fn default() -> ApproxConfig {
        ApproxConfig {
            simpson_intervals: 2,
            continuity_correction: true,
        }
    }
}

/// The Theorem 1 approximation of the block-crossing probability for the
/// block `[x1..=x2] × [y1..=y2]` in range-local coordinates.
///
/// Callers are expected to have handled pin blocks (probability 1) and
/// corridors already, and to clip the block to the range — exactly what
/// [`IrregularGridModel`](crate::IrregularGridModel) does. Type II ranges
/// are evaluated by mirroring vertically onto type I, which is exact
/// (the route ensembles are mirror images).
///
/// # Panics
///
/// Panics if the block is inverted or outside the range.
#[must_use]
pub fn block_probability_approx(
    range: &RoutingRange,
    x1: i64,
    x2: i64,
    y1: i64,
    y2: i64,
    config: &ApproxConfig,
) -> f64 {
    assert!(
        x1 <= x2 && y1 <= y2,
        "inverted block [{x1},{x2}]x[{y1},{y2}]"
    );
    assert!(
        x1 >= 0 && y1 >= 0 && x2 < range.g1() && y2 < range.g2(),
        "block [{x1},{x2}]x[{y1},{y2}] outside {}x{} range",
        range.g1(),
        range.g2()
    );

    let (g1, g2) = (range.g1(), range.g2());
    // Mirror type II onto type I: y -> g2 - 1 - y.
    let (y1, y2) = match range.net_type() {
        NetType::TypeI => (y1, y2),
        NetType::TypeII => (g2 - 1 - y2, g2 - 1 - y1),
    };

    let correction = if config.continuity_correction {
        0.5
    } else {
        0.0
    };
    let mut p = 0.0;

    // Exits upward through the top row: zero when the block touches the
    // range's top boundary (no routes leave the range).
    if y2 < g2 - 1 {
        p += exit_integral(
            g1,
            g2,
            y2,
            x1 as f64 - correction,
            x2 as f64 + correction,
            config.simpson_intervals,
        );
    }
    // Exits rightward through the right column: zero on the right
    // boundary. The axes swap (Function (2) is Function (1) transposed).
    if x2 < g1 - 1 {
        p += exit_integral(
            g2,
            g1,
            x2,
            y1 as f64 - correction,
            y2 as f64 + correction,
            config.simpson_intervals,
        );
    }
    p.clamp(0.0, 1.0)
}

/// Integrates the §4.4 exit integrand over `[a, b]`, localizing the
/// integration to the integrand's support so wide blocks (e.g. a strip
/// spanning the whole range) don't undersample the narrow peak.
///
/// The integrand `f(x) = c·φ(x; μ(x), σ(x))` with affine `μ` peaks at the
/// stationary point `x* = (g1−1)·y2/(g2−2)` (where `x = μ(x)`) and decays
/// with *effective* width `σ_eff = σ(x*)·(g1+g2−3)/(g2−2)` (the exponent
/// sees `x − μ(x)`, which grows with slope `(g2−2)/(g1+g2−3)`). Clipping
/// to ±8·σ_eff and scaling the Simpson interval count to the clipped
/// width (capped at 24) keeps evaluation O(1) while resolving the peak.
fn exit_integral(g1: i64, g2: i64, y2: i64, a: f64, b: f64, base_intervals: usize) -> f64 {
    ExitProfile::new(g1, g2, y2).integral(a, b, base_intervals)
}

/// The per-`(g1, g2, y2)` setup of [`exit_integral`] — support clipping,
/// peak localization, and the effective width — hoisted out so a retained
/// evaluator can sweep one row (or column) of IR-grids with a single
/// setup. `integral` reproduces `exit_integral` bit for bit: the same
/// intermediate values are computed in the same order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ExitProfile {
    g1: i64,
    g2: i64,
    y2: i64,
    y2f: f64,
    r: f64,
    /// `(center - w, center + w)` when the peak is localizable.
    window: Option<(f64, f64)>,
    sigma_eff: f64,
    /// False when the integrand is identically zero (`r <= 0` or the
    /// variance denominator vanishes).
    live: bool,
}

impl ExitProfile {
    pub(crate) fn new(g1: i64, g2: i64, y2: i64) -> ExitProfile {
        let (g1f, g2f) = (g1 as f64, g2 as f64);
        let r = g1f + g2f - 3.0;
        let denom_var = g1f + g2f - 4.0;
        let y2f = y2 as f64;
        let mut profile = ExitProfile {
            g1,
            g2,
            y2,
            y2f,
            r,
            window: None,
            sigma_eff: f64::INFINITY,
            live: r > 0.0 && denom_var > 0.0,
        };
        if !profile.live {
            return profile;
        }
        let denom_peak = g2f - 2.0;
        if denom_peak > 0.0 {
            let center = (g1f - 1.0) * y2f / denom_peak;
            let q = (center + y2f) / r;
            if q > 0.0 && q < 1.0 {
                let var = (denom_peak / denom_var) * (g1f - 1.0) * q * (1.0 - q);
                if var > 0.0 {
                    profile.sigma_eff = var.sqrt() * r / denom_peak;
                    let w = 8.0 * profile.sigma_eff + 1.0;
                    profile.window = Some((center - w, center + w));
                }
            }
        }
        profile
    }

    pub(crate) fn integral(&self, a: f64, b: f64, base_intervals: usize) -> f64 {
        if !self.live {
            return 0.0;
        }
        // The integrand is zero outside 0 < q < 1, i.e. -y2 < x < r - y2.
        let mut lo = a.max(-self.y2f);
        let mut hi = b.min(self.r - self.y2f);
        if lo >= hi {
            return 0.0;
        }
        if let Some((window_lo, window_hi)) = self.window {
            lo = lo.max(window_lo);
            hi = hi.min(window_hi);
            if lo >= hi {
                return 0.0;
            }
        }
        let width = hi - lo;
        // Enough intervals to sample the peak at ~2 points per σ_eff,
        // capped to keep the evaluation constant-time.
        let resolution = if self.sigma_eff.is_finite() {
            (2.0 * width / self.sigma_eff).ceil() as usize
        } else {
            width.ceil() as usize
        };
        // The cap keeps evaluation O(1); an explicitly larger configured
        // base still wins so callers can buy accuracy.
        let intervals = resolution.clamp(2, 24).max(base_intervals);
        simpson(lo, hi, intervals, |x| {
            top_exit_integrand(self.g1, self.g2, self.y2, x)
        })
    }
}

/// The §4.4 integrand for top-row exits of a type I net: the
/// normal-approximated `Function (1)` evaluated at continuous `x`.
///
/// Public (crate) so the Figure 8 bench can plot it pointwise against the
/// exact term.
pub(crate) fn top_exit_integrand(g1: i64, g2: i64, y2: i64, x: f64) -> f64 {
    let (g1f, g2f) = (g1 as f64, g2 as f64);
    let denom_q = g1f + g2f - 3.0;
    let denom_var = g1f + g2f - 4.0;
    if denom_q <= 0.0 || denom_var <= 0.0 {
        return 0.0;
    }
    let q = (x + y2 as f64) / denom_q;
    if q <= 0.0 || q >= 1.0 {
        // §4.5 degenerate cases: these sample points sit next to a pin,
        // whose IR-grid is scored 1 elsewhere.
        return 0.0;
    }
    let mu = (g1f - 1.0) * q;
    let var = ((g2f - 2.0) / denom_var) * (g1f - 1.0) * q * (1.0 - q);
    if var <= 0.0 {
        return 0.0;
    }
    let coefficient = (g2f - 1.0) / (g1f + g2f - 2.0);
    coefficient * normal_pdf(x, mu, var.sqrt())
}

/// The exact value of the paper's `Function (1)` at integer `x`:
/// `Ta(x, y₂) · Tb(x, y₂ + 1) / total` for a type I range. Used by the
/// Figure 8 reproduction to plot exact-vs-approximate curves.
///
/// # Panics
///
/// Panics if the range is not type I.
#[must_use]
pub fn function1_exact(
    range: &RoutingRange,
    lf: &crate::num::LnFactorials,
    x: i64,
    y2: i64,
) -> f64 {
    assert_eq!(
        range.net_type(),
        NetType::TypeI,
        "Function (1) is defined for type I ranges"
    );
    let t = range.ln_ta(lf, x, y2) + range.ln_tb(lf, x, y2 + 1) - range.ln_total_routes(lf);
    t.exp()
}

/// The Theorem 1 approximation of `Function (1)` at (continuous) `x` —
/// the curve the paper plots in figure 8(b)/(d).
#[must_use]
pub fn function1_approx(range: &RoutingRange, x: f64, y2: i64) -> f64 {
    assert_eq!(
        range.net_type(),
        NetType::TypeI,
        "Function (1) is defined for type I ranges"
    );
    top_exit_integrand(range.g1(), range.g2(), y2, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::irregular::exact::block_probability_exact;
    use crate::num::LnFactorials;

    #[test]
    fn paper_figure8_pointwise_accuracy() {
        // §4.5: a type I net divided into 31x21 grids; Function (1) for
        // x = 10..=20 at y2 = 15 — "the approximation is extremely
        // accurate" and "the deviation of approximation is generally less
        // than 0.05".
        let lf = LnFactorials::up_to(128);
        let range = RoutingRange::from_cells(0, 0, 31, 21, NetType::TypeI);
        for x in 10..=20 {
            let exact = function1_exact(&range, &lf, x, 15);
            let approx = function1_approx(&range, x as f64, 15);
            assert!(
                (exact - approx).abs() < 0.05,
                "x = {x}: exact {exact} vs approx {approx}"
            );
        }
    }

    #[test]
    fn error_cell_guarded() {
        // Figure 8(c)/(d): at grid (30, 19) the transformation degenerates
        // ((x + y2)/(g1 + g2 - 3) >= 1); the guarded integrand returns 0
        // instead of a bogus value.
        let range = RoutingRange::from_cells(0, 0, 31, 21, NetType::TypeI);
        assert_eq!(function1_approx(&range, 30.0, 19.0 as i64), 0.0);
        // And the (0,0) degenerate end.
        assert_eq!(function1_approx(&range, 0.0, 0), 0.0);
    }

    #[test]
    fn block_approx_close_to_exact_interior() {
        let lf = LnFactorials::up_to(256);
        let config = ApproxConfig::default();
        let range = RoutingRange::from_cells(0, 0, 31, 21, NetType::TypeI);
        // Interior blocks away from the pins.
        for &(x1, x2, y1, y2) in &[
            (10i64, 20i64, 12i64, 15i64),
            (5, 8, 5, 9),
            (22, 28, 3, 10),
            (3, 27, 2, 18),
            (15, 15, 10, 10),
        ] {
            let exact = block_probability_exact(&range, &lf, x1, x2, y1, y2);
            let approx = block_probability_approx(&range, x1, x2, y1, y2, &config);
            assert!(
                (exact - approx).abs() < 0.05,
                "block [{x1},{x2}]x[{y1},{y2}]: exact {exact} vs approx {approx}"
            );
        }
    }

    #[test]
    fn type_ii_mirror_matches_exact() {
        let lf = LnFactorials::up_to(256);
        let config = ApproxConfig::default();
        let range = RoutingRange::from_cells(0, 0, 25, 19, NetType::TypeII);
        for &(x1, x2, y1, y2) in &[(8i64, 14i64, 6i64, 10i64), (4, 9, 3, 15), (16, 22, 2, 8)] {
            let exact = block_probability_exact(&range, &lf, x1, x2, y1, y2);
            let approx = block_probability_approx(&range, x1, x2, y1, y2, &config);
            assert!(
                (exact - approx).abs() < 0.05,
                "block [{x1},{x2}]x[{y1},{y2}]: exact {exact} vs approx {approx}"
            );
        }
    }

    #[test]
    fn boundary_blocks_drop_vanishing_term() {
        let lf = LnFactorials::up_to(256);
        let config = ApproxConfig::default();
        let range = RoutingRange::from_cells(0, 0, 20, 16, NetType::TypeI);
        // Block touching the top boundary: only right exits remain.
        let exact = block_probability_exact(&range, &lf, 4, 9, 12, 15);
        let approx = block_probability_approx(&range, 4, 9, 12, 15, &config);
        assert!(
            (exact - approx).abs() < 0.05,
            "top-boundary block: exact {exact} vs approx {approx}"
        );
        // Block touching the right boundary: only top exits remain.
        let exact = block_probability_exact(&range, &lf, 15, 19, 4, 9);
        let approx = block_probability_approx(&range, 15, 19, 4, 9, &config);
        assert!(
            (exact - approx).abs() < 0.05,
            "right-boundary block: exact {exact} vs approx {approx}"
        );
    }

    #[test]
    fn full_strip_blocks_are_certain() {
        // A vertical strip spanning the range's full height is crossed by
        // every route: exact probability 1. The localized integration
        // must not undersample the narrow exit-distribution peak.
        let lf = LnFactorials::up_to(256);
        let config = ApproxConfig::default();
        for (g1, g2) in [(20i64, 16i64), (40, 8), (8, 40), (31, 21)] {
            let range = RoutingRange::from_cells(0, 0, g1, g2, NetType::TypeI);
            for x in [1, g1 / 2, g1 - 3] {
                let exact = block_probability_exact(&range, &lf, x, x, 0, g2 - 1);
                let approx = block_probability_approx(&range, x, x, 0, g2 - 1, &config);
                assert!(
                    (exact - 1.0).abs() < 1e-9,
                    "{g1}x{g2} strip x={x}: exact {exact}"
                );
                assert!(
                    (approx - 1.0).abs() < 0.05,
                    "{g1}x{g2} strip x={x}: approx {approx}"
                );
            }
            // Horizontal strip spanning the full width.
            for y in [1, g2 / 2, g2 - 3] {
                let approx = block_probability_approx(&range, 0, g1 - 1, y, y, &config);
                assert!(
                    (approx - 1.0).abs() < 0.05,
                    "{g1}x{g2} row strip y={y}: approx {approx}"
                );
            }
        }
    }

    #[test]
    fn probability_clamped_to_unit_interval() {
        let config = ApproxConfig::default();
        let range = RoutingRange::from_cells(0, 0, 31, 21, NetType::TypeI);
        for x1 in (0..30).step_by(7) {
            for y1 in (0..20).step_by(5) {
                let p = block_probability_approx(
                    &range,
                    x1,
                    (x1 + 6).min(30),
                    y1,
                    (y1 + 4).min(20),
                    &config,
                );
                assert!((0.0..=1.0).contains(&p), "p = {p} at ({x1},{y1})");
            }
        }
    }

    #[test]
    fn without_continuity_correction_single_cell_vanishes() {
        let config = ApproxConfig {
            continuity_correction: false,
            ..ApproxConfig::default()
        };
        let range = RoutingRange::from_cells(0, 0, 31, 21, NetType::TypeI);
        // Degenerate integration interval: the known weakness the flag
        // documents (and the ablation bench quantifies).
        assert_eq!(
            block_probability_approx(&range, 15, 15, 10, 10, &config),
            0.0
        );
    }

    #[test]
    fn more_simpson_intervals_do_not_hurt() {
        let lf = LnFactorials::up_to(256);
        let range = RoutingRange::from_cells(0, 0, 31, 21, NetType::TypeI);
        let exact = block_probability_exact(&range, &lf, 8, 18, 5, 12);
        let coarse = block_probability_approx(
            &range,
            8,
            18,
            5,
            12,
            &ApproxConfig {
                simpson_intervals: 2,
                continuity_correction: true,
            },
        );
        let fine = block_probability_approx(
            &range,
            8,
            18,
            5,
            12,
            &ApproxConfig {
                simpson_intervals: 32,
                continuity_correction: true,
            },
        );
        assert!((fine - exact).abs() <= (coarse - exact).abs() + 1e-6);
    }
}
