//! The Irregular-Grid congestion model (§4) — the paper's contribution.
//!
//! Instead of a uniform evaluation grid, the chip is partitioned by the
//! cutting lines that the nets' routing ranges induce (plus the chip
//! boundary). Each resulting IR-grid is scored with a *single*
//! constant-time probability evaluation per net (Theorem 1) rather than
//! one evaluation per covered unit cell, concentrating work exactly where
//! routing ranges — and hence congestion — overlap.

mod approx;
mod cutlines;
mod delta;
mod evaluator;
mod exact;

pub use approx::{block_probability_approx, function1_approx, function1_exact, ApproxConfig};
pub use delta::IrDeltaEvaluator;
pub use evaluator::CongestionEvaluator;
pub use exact::block_probability_exact;

use irgrid_geom::{Point, Rect, Um};

use crate::score::top_area_fraction_mean;
use crate::CongestionModel;

/// Which evaluator scores a (non-pin, non-corridor) IR-grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Evaluator {
    /// Theorem 1 normal approximation with Simpson integration — the
    /// paper's production path, O(1) per IR-grid.
    Approximate,
    /// Formula 3 exact sums — O(block perimeter) per IR-grid. Kept for
    /// the accuracy ablation.
    Exact,
}

/// The Irregular-Grid congestion model.
///
/// # Examples
///
/// ```
/// use irgrid_core::{CongestionModel, IrregularGridModel};
/// use irgrid_geom::{Point, Rect, Um};
///
/// let chip = Rect::from_origin_size(Point::ORIGIN, Um(600), Um(600));
/// let segments = vec![
///     (Point::new(Um(90), Um(90)), Point::new(Um(510), Um(510))),
///     (Point::new(Um(90), Um(510)), Point::new(Um(510), Um(90))),
/// ];
/// let model = IrregularGridModel::new(Um(30));
/// let map = model.congestion_map(&chip, &segments);
/// assert!(map.ir_cell_count() > 1);
/// assert!(model.evaluate(&chip, &segments) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrregularGridModel {
    pitch: Um,
    evaluator: Evaluator,
    approx: ApproxConfig,
    merge_lines: bool,
    /// Ranges with `g1 + g2` below this are scored with Formula 3 even in
    /// approximate mode: the normal transformation needs `g1 + g2 > 4`
    /// and only pays off on larger ranges anyway.
    exact_threshold: i64,
    top_fraction_permille: u32,
    /// Worker threads for the per-range accumulation fan-out (1 = serial,
    /// no threads spawned). Any count produces a bit-identical map.
    threads: usize,
}

impl IrregularGridModel {
    /// Creates the model with the paper's defaults: Theorem 1 evaluation,
    /// cutting-line merging at twice the pitch, top-10 % scoring.
    ///
    /// # Panics
    ///
    /// Panics if `pitch` is not positive.
    #[must_use]
    pub fn new(pitch: Um) -> IrregularGridModel {
        assert!(pitch > Um::ZERO, "grid pitch must be positive, got {pitch}");
        IrregularGridModel {
            pitch,
            evaluator: Evaluator::Approximate,
            approx: ApproxConfig::default(),
            merge_lines: true,
            exact_threshold: 10,
            top_fraction_permille: 100,
            threads: 1,
        }
    }

    /// Sets the worker-thread count for map accumulation (clamped to at
    /// least 1; 1 evaluates serially without spawning).
    ///
    /// Each thread owns a contiguous band of IR rows and walks the full
    /// range list, so every cell is written by exactly one thread in
    /// range order: the map is **bit-identical** for every thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> IrregularGridModel {
        self.threads = threads.max(1);
        self
    }

    /// The configured accumulation thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Switches the per-IR-grid evaluator (ablation).
    #[must_use]
    pub fn with_evaluator(mut self, evaluator: Evaluator) -> IrregularGridModel {
        self.evaluator = evaluator;
        self
    }

    /// Overrides the Simpson/continuity configuration (ablation).
    #[must_use]
    pub fn with_approx_config(mut self, config: ApproxConfig) -> IrregularGridModel {
        self.approx = config;
        self
    }

    /// Disables Algorithm step 2's close-line merging (ablation). Lines
    /// are still deduplicated.
    #[must_use]
    pub fn without_line_merging(mut self) -> IrregularGridModel {
        self.merge_lines = false;
        self
    }

    /// Overrides the scoring fraction (default 10 %).
    ///
    /// # Panics
    ///
    /// Panics if `permille` is 0 or greater than 1000.
    #[must_use]
    pub fn with_top_fraction_permille(mut self, permille: u32) -> IrregularGridModel {
        assert!(
            permille > 0 && permille <= 1000,
            "permille must be in 1..=1000, got {permille}"
        );
        self.top_fraction_permille = permille;
        self
    }

    /// The unit-grid pitch.
    #[must_use]
    pub fn pitch(&self) -> Um {
        self.pitch
    }

    /// Computes the Irregular-Grid congestion map of a floorplan.
    ///
    /// One-shot convenience over [`CongestionEvaluator`]: a transient
    /// session is created per call. Loops should retain a session instead
    /// ([`crate::RetainedCongestion::session`]) so the scratch state
    /// amortizes.
    ///
    /// # Panics
    ///
    /// Panics if `chip` is degenerate or not at the origin.
    #[must_use]
    pub fn congestion_map(&self, chip: &Rect, segments: &[(Point, Point)]) -> IrCongestionMap {
        CongestionEvaluator::new(*self).congestion_map(chip, segments)
    }
}

impl CongestionModel for IrregularGridModel {
    fn evaluate(&self, chip: &Rect, segments: &[(Point, Point)]) -> f64 {
        CongestionEvaluator::new(*self).evaluate(chip, segments)
    }

    fn name(&self) -> String {
        format!("irregular-grid {}", self.pitch)
    }
}

impl crate::RetainedCongestion for IrregularGridModel {
    type Session = CongestionEvaluator;

    fn session(&self) -> CongestionEvaluator {
        CongestionEvaluator::new(*self)
    }
}

impl crate::DeltaCongestion for IrregularGridModel {
    type DeltaSession = IrDeltaEvaluator;

    fn delta_session(&self) -> IrDeltaEvaluator {
        IrDeltaEvaluator::new(*self)
    }
}

/// The per-IR-grid congestion produced by [`IrregularGridModel`].
///
/// Cell `(i, j)` spans unit-cell columns `x_cuts[i]..x_cuts[i+1]` and rows
/// `y_cuts[j]..y_cuts[j+1]`. Densities are expressed per *unit cell*
/// (pitch² of area), making them comparable with the fixed-grid model's
/// per-cell values.
#[derive(Debug, Clone)]
pub struct IrCongestionMap {
    pitch: Um,
    x_cuts: Vec<i64>,
    y_cuts: Vec<i64>,
    totals: Vec<f64>,
    top_fraction: f64,
}

impl IrCongestionMap {
    /// Vertical cut positions in unit cells (first 0, last = grid
    /// columns).
    #[must_use]
    pub fn x_cuts(&self) -> &[i64] {
        &self.x_cuts
    }

    /// Horizontal cut positions in unit cells.
    #[must_use]
    pub fn y_cuts(&self) -> &[i64] {
        &self.y_cuts
    }

    /// Number of IR-grid columns.
    #[must_use]
    pub fn ir_cols(&self) -> usize {
        self.x_cuts.len() - 1
    }

    /// Number of IR-grid rows.
    #[must_use]
    pub fn ir_rows(&self) -> usize {
        self.y_cuts.len() - 1
    }

    /// Total IR-grid count — the paper's "# of IR-grid" (Table 4).
    #[must_use]
    pub fn ir_cell_count(&self) -> usize {
        self.totals.len()
    }

    /// The summed crossing probability `F(I)` of IR-grid `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range.
    #[must_use]
    pub fn total(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.ir_cols() && j < self.ir_rows(),
            "IR cell ({i},{j}) out of range"
        );
        self.totals[j * self.ir_cols() + i]
    }

    /// Area of IR-grid `(i, j)` in unit cells.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range.
    #[must_use]
    pub fn area_cells(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.ir_cols() && j < self.ir_rows(),
            "IR cell ({i},{j}) out of range"
        );
        ((self.x_cuts[i + 1] - self.x_cuts[i]) * (self.y_cuts[j + 1] - self.y_cuts[j])) as f64
    }

    /// Congestion density of IR-grid `(i, j)`: `F(I)` divided by its area
    /// in unit cells (§4.3 — "the congestion cost of every area unit").
    #[must_use]
    pub fn density(&self, i: usize, j: usize) -> f64 {
        self.total(i, j) / self.area_cells(i, j)
    }

    /// The µm rectangle of IR-grid `(i, j)`.
    #[must_use]
    pub fn cell_rect(&self, i: usize, j: usize) -> Rect {
        let p = self.pitch;
        Rect::new(
            Point::new(p * self.x_cuts[i], p * self.y_cuts[j]),
            Point::new(p * self.x_cuts[i + 1], p * self.y_cuts[j + 1]),
        )
    }

    /// `(density, area-in-unit-cells)` for every IR-grid, row-major.
    #[must_use]
    pub fn density_area_pairs(&self) -> Vec<(f64, f64)> {
        (0..self.ir_rows())
            .flat_map(|j| (0..self.ir_cols()).map(move |i| (i, j)))
            .map(|(i, j)| (self.density(i, j), self.area_cells(i, j)))
            .collect()
    }

    /// The floorplan congestion cost: area-weighted mean density of the
    /// top 10 % (or configured fraction) most congested area units
    /// (Algorithm step 5).
    #[must_use]
    pub fn cost(&self) -> f64 {
        top_area_fraction_mean(&self.density_area_pairs(), self.top_fraction)
    }

    /// The peak IR-grid density.
    #[must_use]
    pub fn peak_density(&self) -> f64 {
        self.density_area_pairs()
            .into_iter()
            .map(|(d, _)| d)
            .fold(0.0, f64::max) // irgrid-lint: allow(D2): max is order-independent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip(w: i64, h: i64) -> Rect {
        Rect::from_origin_size(Point::ORIGIN, Um(w), Um(h))
    }

    fn pt(x: i64, y: i64) -> Point {
        Point::new(Um(x), Um(y))
    }

    #[test]
    fn cutting_lines_from_ranges() {
        // One diagonal net across the middle: its range boundaries plus
        // the chip boundary form the IR grid.
        let model = IrregularGridModel::new(Um(30));
        let map = model.congestion_map(&chip(900, 900), &[(pt(150, 150), pt(690, 690))]);
        // Cuts at 0, 5, 23+1=24? Pins at cells (5,5) and (23,23):
        // boundaries 5 and 24, chip 0..30.
        assert_eq!(map.x_cuts(), &[0, 5, 24, 30]);
        assert_eq!(map.y_cuts(), &[0, 5, 24, 30]);
        assert_eq!(map.ir_cell_count(), 9);
        // The central IR-grid holds the whole range: probability 1
        // (it contains both pins).
        assert!((map.total(1, 1) - 1.0).abs() < 1e-9);
        // Corners off the range hold nothing.
        assert_eq!(map.total(0, 2), 0.0);
        assert_eq!(map.total(2, 0), 0.0);
    }

    #[test]
    fn mass_conservation_against_fixed_grid() {
        // The IR map's total probability mass cannot exceed the fixed
        // map's mass for the same nets (every IR cell's probability is at
        // most the sum of its unit cells' probabilities) and must be at
        // least the per-net maximum cell probability.
        use crate::FixedGridModel;
        let segments = vec![
            (pt(30, 30), pt(540, 540)),
            (pt(30, 540), pt(540, 30)),
            (pt(120, 60), pt(480, 300)),
        ];
        let ir = IrregularGridModel::new(Um(30)).congestion_map(&chip(600, 600), &segments);
        let fixed = FixedGridModel::new(Um(30)).congestion_map(&chip(600, 600), &segments);
        let ir_mass: f64 = (0..ir.ir_rows())
            .flat_map(|j| (0..ir.ir_cols()).map(move |i| (i, j)))
            .map(|(i, j)| ir.total(i, j))
            .sum();
        assert!(ir_mass > 0.0);
        assert!(
            ir_mass <= fixed.total_mass() + 1e-6,
            "IR mass {ir_mass} exceeds fixed mass {}",
            fixed.total_mass()
        );
        // Each net contributes at least 1 (its pin IR-grids).
        assert!(ir_mass >= segments.len() as f64);
    }

    #[test]
    fn exact_and_approx_agree() {
        let segments = vec![
            (pt(30, 30), pt(840, 600)),
            (pt(60, 750), pt(780, 90)),
            (pt(240, 30), pt(300, 870)),
        ];
        let approx = IrregularGridModel::new(Um(30)).congestion_map(&chip(900, 900), &segments);
        let exact = IrregularGridModel::new(Um(30))
            .with_evaluator(Evaluator::Exact)
            .congestion_map(&chip(900, 900), &segments);
        assert_eq!(approx.ir_cell_count(), exact.ir_cell_count());
        for j in 0..approx.ir_rows() {
            for i in 0..approx.ir_cols() {
                let a = approx.total(i, j);
                let e = exact.total(i, j);
                assert!(
                    (a - e).abs() < 0.1,
                    "IR cell ({i},{j}): approx {a} vs exact {e}"
                );
            }
        }
        let rel = (approx.cost() - exact.cost()).abs() / exact.cost().max(1e-12);
        assert!(rel < 0.1, "costs {} vs {}", approx.cost(), exact.cost());
    }

    #[test]
    fn merging_reduces_cell_count() {
        // Many nets with near-coincident boundaries.
        let segments: Vec<(Point, Point)> = (0..12)
            .map(|i| (pt(30 + i * 33, 30), pt(600 + i * 7, 800)))
            .collect();
        let merged = IrregularGridModel::new(Um(30)).congestion_map(&chip(900, 900), &segments);
        let unmerged = IrregularGridModel::new(Um(30))
            .without_line_merging()
            .congestion_map(&chip(900, 900), &segments);
        assert!(
            merged.ir_cell_count() < unmerged.ir_cell_count(),
            "merged {} vs unmerged {}",
            merged.ir_cell_count(),
            unmerged.ir_cell_count()
        );
        // Interior gaps respect the 2-cell threshold.
        for w in merged.x_cuts()[..merged.x_cuts().len() - 1].windows(2) {
            assert!(w[1] - w[0] >= 2, "gap {} below threshold", w[1] - w[0]);
        }
    }

    #[test]
    fn density_normalizes_by_area() {
        let model = IrregularGridModel::new(Um(30));
        let map = model.congestion_map(&chip(900, 900), &[(pt(150, 150), pt(690, 690))]);
        for j in 0..map.ir_rows() {
            for i in 0..map.ir_cols() {
                let d = map.density(i, j);
                let expected = map.total(i, j) / map.area_cells(i, j);
                assert!((d - expected).abs() < 1e-12);
            }
        }
        // The pin-bearing central cell has the peak density contribution.
        assert!(map.peak_density() > 0.0);
    }

    #[test]
    fn corridor_net_scores_one_per_cell() {
        let model = IrregularGridModel::new(Um(30));
        // Horizontal corridor across the chip.
        let map = model.congestion_map(&chip(900, 300), &[(pt(15, 150), pt(885, 150))]);
        // All IR cells intersecting the corridor row have total >= 1.
        let mass: f64 = (0..map.ir_rows())
            .flat_map(|j| (0..map.ir_cols()).map(move |i| (i, j)))
            .map(|(i, j)| map.total(i, j))
            .sum();
        assert!(mass >= 1.0);
    }

    #[test]
    fn empty_segments_score_zero() {
        let model = IrregularGridModel::new(Um(30));
        assert_eq!(model.evaluate(&chip(300, 300), &[]), 0.0);
        let map = model.congestion_map(&chip(300, 300), &[]);
        assert_eq!(map.ir_cell_count(), 1, "no cuts: the chip is one IR-grid");
    }

    #[test]
    fn stacked_ranges_score_higher_than_spread() {
        // Fifteen 3x3-cell nets: all stacked on one spot vs tiled over
        // half the chip. The spread layout's hot area (135 cells) exceeds
        // the 10% scoring window (90 cells), so concentration must win.
        let model = IrregularGridModel::new(Um(30));
        let hot: Vec<(Point, Point)> = (0..15).map(|_| (pt(300, 300), pt(360, 360))).collect();
        let mut spread = Vec::new();
        for k in 0..5i64 {
            for m in 0..3i64 {
                let (x, y) = (90 + 150 * k, 90 + 150 * m);
                spread.push((pt(x, y), pt(x + 60, y + 60)));
            }
        }
        let hot_cost = model.evaluate(&chip(900, 900), &hot);
        let spread_cost = model.evaluate(&chip(900, 900), &spread);
        assert!(
            hot_cost > spread_cost,
            "hot {hot_cost} must exceed spread {spread_cost}"
        );
        // And the expected magnitudes: stacked mass 15 over the 90-cell
        // window vs uniform density 1/9.
        assert!((hot_cost - 15.0 / 90.0).abs() < 0.02, "hot {hot_cost}");
        assert!(
            (spread_cost - 1.0 / 9.0).abs() < 0.02,
            "spread {spread_cost}"
        );
    }

    #[test]
    fn cell_rect_covers_grid() {
        let model = IrregularGridModel::new(Um(30));
        let map = model.congestion_map(&chip(900, 900), &[(pt(150, 150), pt(690, 690))]);
        let mut area = 0i128;
        for j in 0..map.ir_rows() {
            for i in 0..map.ir_cols() {
                area += map.cell_rect(i, j).area().0;
            }
        }
        assert_eq!(area, 900 * 900);
    }

    #[test]
    fn name_mentions_pitch() {
        assert_eq!(
            IrregularGridModel::new(Um(30)).name(),
            "irregular-grid 30um"
        );
    }

    #[test]
    fn extreme_chip_aspect_ratios() {
        // A chip one cell tall: every range is a corridor.
        let sliver = chip(900, 25);
        let model = IrregularGridModel::new(Um(30));
        let map = model.congestion_map(&sliver, &[(pt(15, 10), pt(885, 10))]);
        assert_eq!(map.ir_rows(), 1);
        let mass: f64 = (0..map.ir_cols()).map(|i| map.total(i, 0)).sum();
        assert!(mass >= 1.0);
        // A chip one cell wide.
        let tower = chip(25, 900);
        let map = model.congestion_map(&tower, &[(pt(10, 15), pt(10, 885))]);
        assert_eq!(map.ir_cols(), 1);
        assert!(map.cost() > 0.0);
    }

    #[test]
    fn chip_smaller_than_pitch() {
        // Chip smaller than one grid cell: a single IR-grid holding the
        // whole world.
        let tiny = chip(20, 20);
        let model = IrregularGridModel::new(Um(30));
        let map = model.congestion_map(&tiny, &[(pt(2, 2), pt(18, 18))]);
        assert_eq!(map.ir_cell_count(), 1);
        assert!((map.total(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "pitch must be positive")]
    fn zero_pitch_rejected() {
        let _ = IrregularGridModel::new(Um(-1));
    }
}
