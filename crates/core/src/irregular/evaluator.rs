//! The retained Irregular-Grid evaluation engine.
//!
//! [`IrregularGridModel::congestion_map`] is a one-shot API: every call
//! allocates the range list, both cut vectors, and the totals grid, and
//! rebuilds the `ln(i!)` table from scratch. Inside a simulated-annealing
//! loop that happens on *every move*. [`CongestionEvaluator`] keeps all of
//! that state alive between evaluations:
//!
//! * every per-call vector is reusable scratch (steady-state evaluation
//!   performs no heap allocation);
//! * the [`LnFactorials`] table only ever grows ([`LnFactorials::ensure_up_to`]);
//! * the Theorem-1 setup (support clipping, peak localization) is hoisted
//!   to one [`ExitProfile`] per IR row / column of each snapped range — the
//!   per-range marginal cache — instead of being recomputed per IR cell;
//! * the per-range fan-out optionally runs on `std::thread::scope` threads.
//!
//! # Threading and determinism
//!
//! Summing floats is not associative, so merging per-thread partial maps
//! would change the result with the thread count. Instead each thread
//! *owns a contiguous band of IR rows*: every thread walks the full range
//! list (range setup is cheap; scoring dominates) but scores and
//! accumulates only the cells inside its band. Each cell is therefore
//! written by exactly one thread, in range order — the same additions in
//! the same order as the serial sweep — making the map **bit-identical**
//! for every thread count (property-tested in `tests/properties.rs`).

use std::ops::Range;

use irgrid_geom::{Point, Rect};

use crate::num::LnFactorials;
use crate::routing::{NetType, RoutingRange};
use crate::score::top_area_fraction_mean_in_place;
use crate::UnitGrid;

use super::approx::ExitProfile;
use super::cutlines::{merged_cuts_into, snap_span};
use super::exact::block_probability_exact;
use super::{Evaluator, IrCongestionMap, IrregularGridModel};

/// Per-thread scratch: the staged per-cell probabilities of the range
/// currently being accumulated (the marginal sweeps write the two exit
/// terms of a cell in separate passes, and the clamp couples them).
#[derive(Debug, Default)]
struct BandScratch {
    block: Vec<f64>,
}

/// A retained congestion-evaluation session for [`IrregularGridModel`].
///
/// Create one per annealing run (or any evaluation loop) and call
/// [`evaluate`](CongestionEvaluator::evaluate) per floorplan; results are
/// bit-identical to the one-shot [`IrregularGridModel::congestion_map`]
/// pipeline, which itself delegates here with a transient session.
///
/// # Examples
///
/// ```
/// use irgrid_core::{CongestionEvaluator, CongestionModel, IrregularGridModel};
/// use irgrid_geom::{Point, Rect, Um};
///
/// let chip = Rect::from_origin_size(Point::ORIGIN, Um(600), Um(600));
/// let segments = vec![(Point::new(Um(90), Um(90)), Point::new(Um(510), Um(510)))];
/// let model = IrregularGridModel::new(Um(30));
/// let mut session = CongestionEvaluator::new(model);
/// let retained = session.evaluate(&chip, &segments);
/// assert_eq!(retained, model.evaluate(&chip, &segments));
/// ```
#[derive(Debug)]
pub struct CongestionEvaluator {
    model: IrregularGridModel,
    lf: LnFactorials,
    ranges: Vec<RoutingRange>,
    raw_cuts: Vec<i64>,
    x_cuts: Vec<i64>,
    y_cuts: Vec<i64>,
    totals: Vec<f64>,
    pairs: Vec<(f64, f64)>,
    bands: Vec<BandScratch>,
}

impl CongestionEvaluator {
    /// Creates an evaluator for `model`. Scratch buffers start empty and
    /// grow to the working-set size over the first evaluations.
    #[must_use]
    pub fn new(model: IrregularGridModel) -> CongestionEvaluator {
        CongestionEvaluator {
            model,
            lf: LnFactorials::up_to(0),
            ranges: Vec::new(),
            raw_cuts: Vec::new(),
            x_cuts: Vec::new(),
            y_cuts: Vec::new(),
            totals: Vec::new(),
            pairs: Vec::new(),
            bands: Vec::new(),
        }
    }

    /// The model this evaluator was built from.
    #[must_use]
    pub fn model(&self) -> &IrregularGridModel {
        &self.model
    }

    /// Scores a floorplan — [`IrregularGridModel::evaluate`] without the
    /// per-call allocations (and without materializing the map).
    ///
    /// # Panics
    ///
    /// Panics if `chip` is degenerate or not at the origin.
    pub fn evaluate(&mut self, chip: &Rect, segments: &[(Point, Point)]) -> f64 {
        self.refresh(chip, segments);
        self.cost_from_scratch()
    }

    /// Computes the congestion map — [`IrregularGridModel::congestion_map`]
    /// reusing this session's scratch (the returned map owns fresh copies).
    ///
    /// # Panics
    ///
    /// Panics if `chip` is degenerate or not at the origin.
    #[must_use]
    pub fn congestion_map(&mut self, chip: &Rect, segments: &[(Point, Point)]) -> IrCongestionMap {
        self.refresh(chip, segments);
        IrCongestionMap {
            pitch: self.model.pitch,
            x_cuts: self.x_cuts.clone(),
            y_cuts: self.y_cuts.clone(),
            totals: self.totals.clone(),
            top_fraction: self.model.top_fraction_permille as f64 / 1000.0,
        }
    }

    /// Recomputes cuts and totals into the scratch buffers.
    fn refresh(&mut self, chip: &Rect, segments: &[(Point, Point)]) {
        let grid = UnitGrid::new(chip, self.model.pitch);
        self.ranges.clear();
        self.ranges.extend(
            segments
                .iter()
                .map(|&(a, b)| RoutingRange::from_segment(&grid, a, b)),
        );

        // Step 1–2: cutting lines from routing-range boundaries, merged.
        let min_gap = if self.model.merge_lines { 2 } else { 1 };
        self.raw_cuts.clear();
        for range in &self.ranges {
            self.raw_cuts.push(range.x0());
            self.raw_cuts.push(range.x0() + range.g1());
        }
        merged_cuts_into(grid.cols(), &mut self.raw_cuts, min_gap, &mut self.x_cuts);
        self.raw_cuts.clear();
        for range in &self.ranges {
            self.raw_cuts.push(range.y0());
            self.raw_cuts.push(range.y0() + range.g2());
        }
        merged_cuts_into(grid.rows(), &mut self.raw_cuts, min_gap, &mut self.y_cuts);

        let ir_cols = self.x_cuts.len() - 1;
        let ir_rows = self.y_cuts.len() - 1;
        self.totals.clear();
        self.totals.resize(ir_cols * ir_rows, 0.0);

        self.lf
            .ensure_up_to((grid.cols() + grid.rows() + 2) as usize);

        let threads = self.model.threads.clamp(1, ir_rows);
        if self.bands.len() < threads {
            self.bands.resize_with(threads, BandScratch::default);
        }

        let model = self.model;
        let ranges = &self.ranges;
        let x_cuts = &self.x_cuts[..];
        let y_cuts = &self.y_cuts[..];
        let lf = &self.lf;
        if threads == 1 {
            accumulate_band(
                &model,
                ranges,
                x_cuts,
                y_cuts,
                lf,
                0..ir_rows,
                &mut self.totals,
                &mut self.bands[0],
            );
        } else {
            // Step 3, parallel: each thread owns a contiguous band of IR
            // rows and walks all ranges, so every cell receives the same
            // additions in the same order as the serial sweep.
            std::thread::scope(|scope| {
                let mut remaining: &mut [f64] = &mut self.totals;
                let mut row_start = 0usize;
                for (t, scratch) in self.bands[..threads].iter_mut().enumerate() {
                    let band_rows = ir_rows / threads + usize::from(t < ir_rows % threads);
                    let taken = std::mem::take(&mut remaining);
                    let (slice, tail) = taken.split_at_mut(band_rows * ir_cols);
                    remaining = tail;
                    let rows = row_start..row_start + band_rows;
                    row_start += band_rows;
                    scope.spawn(move || {
                        accumulate_band(&model, ranges, x_cuts, y_cuts, lf, rows, slice, scratch);
                    });
                }
            });
        }
    }

    /// The cost of the freshly refreshed map, computed from scratch
    /// buffers — identical arithmetic to [`IrCongestionMap::cost`].
    fn cost_from_scratch(&mut self) -> f64 {
        let ir_cols = self.x_cuts.len() - 1;
        let ir_rows = self.y_cuts.len() - 1;
        self.pairs.clear();
        for j in 0..ir_rows {
            for i in 0..ir_cols {
                let area = ((self.x_cuts[i + 1] - self.x_cuts[i])
                    * (self.y_cuts[j + 1] - self.y_cuts[j])) as f64;
                self.pairs.push((self.totals[j * ir_cols + i] / area, area));
            }
        }
        top_area_fraction_mean_in_place(
            &mut self.pairs,
            self.model.top_fraction_permille as f64 / 1000.0,
        )
    }
}

impl crate::CongestionSession for CongestionEvaluator {
    fn evaluate(&mut self, chip: &Rect, segments: &[(Point, Point)]) -> f64 {
        CongestionEvaluator::evaluate(self, chip, segments)
    }
}

/// Accumulates every range into one thread's band of `totals` (the rows
/// `rows`, as a row-major slice starting at `rows.start`).
#[allow(clippy::too_many_arguments)]
fn accumulate_band(
    model: &IrregularGridModel,
    ranges: &[RoutingRange],
    x_cuts: &[i64],
    y_cuts: &[i64],
    lf: &LnFactorials,
    rows: Range<usize>,
    totals: &mut [f64],
    scratch: &mut BandScratch,
) {
    for range in ranges {
        accumulate_range(model, range, x_cuts, y_cuts, lf, &rows, totals, scratch);
    }
}

/// Mirrors a cell's row interval for type II ranges (type II route
/// ensembles are the vertical mirror of type I — same mapping as
/// `block_probability_approx`).
fn mirrored(net_type: NetType, g2: i64, y1: i64, y2: i64) -> (i64, i64) {
    match net_type {
        NetType::TypeI => (y1, y2),
        NetType::TypeII => (g2 - 1 - y2, g2 - 1 - y1),
    }
}

/// The IR interval containing unit-cell position `pos`:
/// `cuts[i] <= pos < cuts[i + 1]`.
fn interval_index(cuts: &[i64], pos: i64) -> usize {
    cuts.partition_point(|&c| c <= pos) - 1
}

#[allow(clippy::too_many_arguments)]
fn accumulate_range(
    model: &IrregularGridModel,
    range: &RoutingRange,
    x_cuts: &[i64],
    y_cuts: &[i64],
    lf: &LnFactorials,
    rows: &Range<usize>,
    totals: &mut [f64],
    scratch: &mut BandScratch,
) {
    let ir_cols = x_cuts.len() - 1;

    // Corridors (single row or column of unit cells): every route
    // crosses every cell, so every intersecting IR-grid gets 1.
    if range.g1() == 1 || range.g2() == 1 {
        let (ix1, ix2) = snap_span(x_cuts, range.x0(), range.x0() + range.g1());
        let (iy1, iy2) = snap_span(y_cuts, range.y0(), range.y0() + range.g2());
        for jy in iy1.max(rows.start)..iy2.min(rows.end) {
            let base = (jy - rows.start) * ir_cols;
            for jx in ix1..ix2 {
                totals[base + jx] += 1.0;
            }
        }
        return;
    }

    // Step 2 (cont.): snap the routing range to surviving cut lines.
    let (ix1, ix2) = snap_span(x_cuts, range.x0(), range.x0() + range.g1());
    let (iy1, iy2) = snap_span(y_cuts, range.y0(), range.y0() + range.g2());
    let lo = iy1.max(rows.start);
    let hi = iy2.min(rows.end);
    if lo >= hi {
        return;
    }
    let x0 = x_cuts[ix1];
    let y0 = y_cuts[iy1];
    let g1 = x_cuts[ix2] - x0;
    let g2 = y_cuts[iy2] - y0;
    let snapped = RoutingRange::from_cells(x0, y0, g1, g2, range.net_type());

    // Step 3.1: both pins lie inside the snapped span; map each to its IR
    // cell once per range instead of scanning the pin list per cell.
    let pins = snapped.pin_cells().map(|(px, py)| {
        (
            interval_index(x_cuts, x0 + px),
            interval_index(y_cuts, y0 + py),
        )
    });
    let is_pin = |jx: usize, jy: usize| pins.contains(&(jx, jy));

    let use_exact = model.evaluator == Evaluator::Exact || g1 + g2 <= model.exact_threshold;
    if use_exact {
        for jy in lo..hi {
            let y1 = y_cuts[jy] - y0;
            let y2 = y_cuts[jy + 1] - 1 - y0;
            let base = (jy - rows.start) * ir_cols;
            for jx in ix1..ix2 {
                let x1 = x_cuts[jx] - x0;
                let x2 = x_cuts[jx + 1] - 1 - x0;
                let p = if is_pin(jx, jy) {
                    1.0
                } else {
                    block_probability_exact(&snapped, lf, x1, x2, y1, y2)
                };
                totals[base + jx] += p;
            }
        }
        return;
    }

    // Theorem 1 with the per-range marginal cache: the top-exit term of a
    // cell depends on its row (through the mirrored y2) and the right-exit
    // term on its column (through x2), so one ExitProfile per row/column
    // covers the whole range. The two passes stage into `scratch.block`
    // because the final clamp couples the two terms per cell.
    let cols = ix2 - ix1;
    scratch.block.clear();
    scratch.block.resize(cols * (hi - lo), 0.0);
    let correction = if model.approx.continuity_correction {
        0.5
    } else {
        0.0
    };
    let base_intervals = model.approx.simpson_intervals;

    // Row sweep: exits upward through each row's top edge.
    for jy in lo..hi {
        let y1 = y_cuts[jy] - y0;
        let y2 = y_cuts[jy + 1] - 1 - y0;
        let (_, my2) = mirrored(snapped.net_type(), g2, y1, y2);
        if my2 >= g2 - 1 {
            continue; // touches the top boundary: no routes leave upward
        }
        let profile = ExitProfile::new(g1, g2, my2);
        let row = (jy - lo) * cols;
        for jx in ix1..ix2 {
            let x1 = x_cuts[jx] - x0;
            let x2 = x_cuts[jx + 1] - 1 - x0;
            scratch.block[row + (jx - ix1)] = profile.integral(
                x1 as f64 - correction,
                x2 as f64 + correction,
                base_intervals,
            );
        }
    }
    // Column sweep: exits rightward through each column's right edge.
    for jx in ix1..ix2 {
        let x2 = x_cuts[jx + 1] - 1 - x0;
        if x2 >= g1 - 1 {
            continue; // touches the right boundary
        }
        let profile = ExitProfile::new(g2, g1, x2);
        let col = jx - ix1;
        for jy in lo..hi {
            let y1 = y_cuts[jy] - y0;
            let y2 = y_cuts[jy + 1] - 1 - y0;
            let (my1, my2) = mirrored(snapped.net_type(), g2, y1, y2);
            scratch.block[(jy - lo) * cols + col] += profile.integral(
                my1 as f64 - correction,
                my2 as f64 + correction,
                base_intervals,
            );
        }
    }
    // Commit: pin override, clamp, accumulate — the same per-cell values
    // and addition order as per-cell `block_probability_approx` calls.
    for jy in lo..hi {
        let base = (jy - rows.start) * ir_cols;
        let row = (jy - lo) * cols;
        for jx in ix1..ix2 {
            let p = if is_pin(jx, jy) {
                1.0
            } else {
                scratch.block[row + (jx - ix1)].clamp(0.0, 1.0)
            };
            totals[base + jx] += p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::irregular::approx::block_probability_approx;
    use crate::irregular::cutlines::merged_cuts;
    use crate::CongestionModel;
    use irgrid_geom::Um;

    fn chip(w: i64, h: i64) -> Rect {
        Rect::from_origin_size(Point::ORIGIN, Um(w), Um(h))
    }

    fn pt(x: i64, y: i64) -> Point {
        Point::new(Um(x), Um(y))
    }

    fn crossing_segments() -> Vec<(Point, Point)> {
        vec![
            (pt(30, 30), pt(840, 600)),
            (pt(60, 750), pt(780, 90)),  // type II
            (pt(240, 30), pt(300, 870)), // near-vertical
            (pt(15, 450), pt(885, 450)), // corridor
            (pt(90, 90), pt(150, 150)),  // small: exact-threshold path
        ]
    }

    /// The pre-cache reference: the one-shot pipeline with per-cell
    /// `block_probability_approx` / `block_probability_exact` calls and
    /// the per-cell pin scan, exactly as `accumulate` was originally
    /// written.
    fn reference_totals(
        model: &IrregularGridModel,
        chip: &Rect,
        segments: &[(Point, Point)],
    ) -> (Vec<i64>, Vec<i64>, Vec<f64>) {
        let grid = UnitGrid::new(chip, model.pitch);
        let ranges: Vec<RoutingRange> = segments
            .iter()
            .map(|&(a, b)| RoutingRange::from_segment(&grid, a, b))
            .collect();
        let min_gap = if model.merge_lines { 2 } else { 1 };
        let x_cuts = merged_cuts(
            grid.cols(),
            ranges.iter().flat_map(|r| [r.x0(), r.x0() + r.g1()]),
            min_gap,
        );
        let y_cuts = merged_cuts(
            grid.rows(),
            ranges.iter().flat_map(|r| [r.y0(), r.y0() + r.g2()]),
            min_gap,
        );
        let ir_cols = x_cuts.len() - 1;
        let mut totals = vec![0.0f64; ir_cols * (y_cuts.len() - 1)];
        let lf = LnFactorials::up_to((grid.cols() + grid.rows() + 2) as usize);
        for range in &ranges {
            if range.g1() == 1 || range.g2() == 1 {
                let (ix1, ix2) = snap_span(&x_cuts, range.x0(), range.x0() + range.g1());
                let (iy1, iy2) = snap_span(&y_cuts, range.y0(), range.y0() + range.g2());
                for jy in iy1..iy2 {
                    for jx in ix1..ix2 {
                        totals[jy * ir_cols + jx] += 1.0;
                    }
                }
                continue;
            }
            let (ix1, ix2) = snap_span(&x_cuts, range.x0(), range.x0() + range.g1());
            let (iy1, iy2) = snap_span(&y_cuts, range.y0(), range.y0() + range.g2());
            let x0 = x_cuts[ix1];
            let y0 = y_cuts[iy1];
            let g1 = x_cuts[ix2] - x0;
            let g2 = y_cuts[iy2] - y0;
            let snapped = RoutingRange::from_cells(x0, y0, g1, g2, range.net_type());
            let use_exact = model.evaluator == Evaluator::Exact || g1 + g2 <= model.exact_threshold;
            for jy in iy1..iy2 {
                let y1 = y_cuts[jy] - y0;
                let y2 = y_cuts[jy + 1] - 1 - y0;
                for jx in ix1..ix2 {
                    let x1 = x_cuts[jx] - x0;
                    let x2 = x_cuts[jx + 1] - 1 - x0;
                    let p = if snapped
                        .pin_cells()
                        .iter()
                        .any(|&(px, py)| (x1..=x2).contains(&px) && (y1..=y2).contains(&py))
                    {
                        1.0
                    } else if use_exact {
                        block_probability_exact(&snapped, &lf, x1, x2, y1, y2)
                    } else {
                        block_probability_approx(&snapped, x1, x2, y1, y2, &model.approx)
                    };
                    totals[jy * ir_cols + jx] += p;
                }
            }
        }
        (x_cuts, y_cuts, totals)
    }

    #[test]
    fn marginal_cache_matches_uncached_approx() {
        // The ISSUE's regression bound is 1e-12; the sweeps reproduce the
        // per-cell arithmetic exactly, so assert bitwise equality.
        let model = IrregularGridModel::new(Um(30));
        let segments = crossing_segments();
        let (x_cuts, y_cuts, expected) = reference_totals(&model, &chip(900, 900), &segments);
        let map = model.congestion_map(&chip(900, 900), &segments);
        assert_eq!(map.x_cuts(), &x_cuts[..]);
        assert_eq!(map.y_cuts(), &y_cuts[..]);
        for j in 0..map.ir_rows() {
            for i in 0..map.ir_cols() {
                let got = map.total(i, j);
                let want = expected[j * map.ir_cols() + i];
                assert!(
                    (got - want).abs() <= 1e-12,
                    "cell ({i},{j}): cached {got} vs per-cell {want}"
                );
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "cell ({i},{j}) not bitwise equal"
                );
            }
        }
    }

    #[test]
    fn exact_evaluator_path_matches_reference() {
        let model = IrregularGridModel::new(Um(30)).with_evaluator(Evaluator::Exact);
        let segments = crossing_segments();
        let (_, _, expected) = reference_totals(&model, &chip(900, 900), &segments);
        let map = model.congestion_map(&chip(900, 900), &segments);
        for j in 0..map.ir_rows() {
            for i in 0..map.ir_cols() {
                assert_eq!(
                    map.total(i, j).to_bits(),
                    expected[j * map.ir_cols() + i].to_bits(),
                    "cell ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn unmerged_lines_path_matches_reference() {
        let model = IrregularGridModel::new(Um(30)).without_line_merging();
        let segments = crossing_segments();
        let (_, _, expected) = reference_totals(&model, &chip(900, 900), &segments);
        let map = model.congestion_map(&chip(900, 900), &segments);
        for (k, want) in expected.iter().enumerate() {
            let (i, j) = (k % map.ir_cols(), k / map.ir_cols());
            assert_eq!(map.total(i, j).to_bits(), want.to_bits(), "cell ({i},{j})");
        }
    }

    #[test]
    fn session_reuse_is_deterministic() {
        // Interleave differently sized floorplans through one session:
        // scratch reuse must not leak state between evaluations.
        let model = IrregularGridModel::new(Um(30));
        let mut session = CongestionEvaluator::new(model);
        let small = (chip(300, 300), vec![(pt(30, 30), pt(270, 240))]);
        let large = (chip(900, 900), crossing_segments());
        let small_fresh = model.evaluate(&small.0, &small.1);
        let large_fresh = model.evaluate(&large.0, &large.1);
        for _ in 0..3 {
            assert_eq!(
                session.evaluate(&large.0, &large.1).to_bits(),
                large_fresh.to_bits()
            );
            assert_eq!(
                session.evaluate(&small.0, &small.1).to_bits(),
                small_fresh.to_bits()
            );
        }
        // Empty floorplans through a warm session.
        assert_eq!(session.evaluate(&chip(300, 300), &[]), 0.0);
    }

    #[test]
    fn session_map_matches_model_map() {
        let model = IrregularGridModel::new(Um(30)).with_threads(3);
        let segments = crossing_segments();
        let mut session = CongestionEvaluator::new(model);
        let warmup = session.congestion_map(&chip(900, 900), &segments);
        let again = session.congestion_map(&chip(900, 900), &segments);
        let oneshot = model.congestion_map(&chip(900, 900), &segments);
        for map in [&warmup, &again] {
            assert_eq!(map.x_cuts(), oneshot.x_cuts());
            assert_eq!(map.y_cuts(), oneshot.y_cuts());
            for j in 0..map.ir_rows() {
                for i in 0..map.ir_cols() {
                    assert_eq!(map.total(i, j).to_bits(), oneshot.total(i, j).to_bits());
                }
            }
        }
        assert_eq!(session.evaluate(&chip(900, 900), &segments), oneshot.cost());
    }

    #[test]
    fn thread_bands_are_bit_identical_to_serial() {
        // The proptest in tests/properties.rs covers generated circuits;
        // this pins the corridor + type II + exact-threshold mix and
        // thread counts beyond the row count.
        let segments = crossing_segments();
        let serial = IrregularGridModel::new(Um(30)).congestion_map(&chip(900, 900), &segments);
        for threads in [2, 3, 4, 8, 64] {
            let par = IrregularGridModel::new(Um(30))
                .with_threads(threads)
                .congestion_map(&chip(900, 900), &segments);
            assert_eq!(par.x_cuts(), serial.x_cuts());
            for j in 0..serial.ir_rows() {
                for i in 0..serial.ir_cols() {
                    assert_eq!(
                        par.total(i, j).to_bits(),
                        serial.total(i, j).to_bits(),
                        "threads {threads}, cell ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn pin_index_mapping() {
        let cuts = [0i64, 4, 9, 15];
        assert_eq!(interval_index(&cuts, 0), 0);
        assert_eq!(interval_index(&cuts, 3), 0);
        assert_eq!(interval_index(&cuts, 4), 1);
        assert_eq!(interval_index(&cuts, 14), 2);
    }
}
