//! Cutting-line extraction and merging (§4.2 and Algorithm step 2).
//!
//! Every routing range contributes two vertical and two horizontal cutting
//! lines (its boundaries); the chip boundary always cuts. Lines closer
//! than twice the unit-grid pitch are merged — the paper's Algorithm
//! step 2 — which both bounds the IR-grid count and guarantees that the
//! error-making cells of §4.5 (always adjacent to a pin) end up in the
//! same IR-grid as the pin itself, where the probability is assigned 1
//! without evaluating the approximation.
//!
//! All positions here are in *unit-cell* coordinates: a cut at position
//! `c` is the grid line between cell columns `c - 1` and `c`, so cuts run
//! from 0 to `cols` inclusive.

/// Builds the merged, sorted cut positions for one axis.
///
/// `boundary` is the grid extent on this axis (`cols` or `rows`);
/// `raw_cuts` are the range-boundary positions; `min_gap` is the merge
/// threshold in cells (the paper uses 2 = twice the grid pitch; 1 merges
/// nothing beyond exact duplicates).
///
/// The result always starts at 0 and ends at `boundary`, with consecutive
/// cuts at least `min_gap` apart (except possibly the final interval,
/// which is kept at least 1 wide).
#[cfg(test)] // production paths use the in-place variant below
pub(crate) fn merged_cuts(
    boundary: i64,
    raw_cuts: impl IntoIterator<Item = i64>,
    min_gap: i64,
) -> Vec<i64> {
    let mut scratch: Vec<i64> = raw_cuts.into_iter().collect();
    let mut kept = Vec::new();
    merged_cuts_into(boundary, &mut scratch, min_gap, &mut kept);
    kept
}

/// In-place variant of [`merged_cuts`] for retained evaluators: `scratch`
/// holds the raw cut positions (consumed: sorted and filtered in place)
/// and `kept` receives the merged result, both reusing their existing
/// capacity so the steady state allocates nothing.
pub(crate) fn merged_cuts_into(
    boundary: i64,
    scratch: &mut Vec<i64>,
    min_gap: i64,
    kept: &mut Vec<i64>,
) {
    debug_assert!(boundary >= 1, "grid must have at least one cell");
    debug_assert!(min_gap >= 1, "merge threshold must be at least one cell");
    scratch.retain(|&c| c > 0 && c < boundary);
    scratch.sort_unstable();
    scratch.dedup();

    kept.clear();
    kept.push(0);
    for &c in scratch.iter() {
        // irgrid-lint: allow(P1): `kept` is re-seeded with 0 immediately above
        if c - kept.last().expect("kept starts non-empty") >= min_gap {
            kept.push(c);
        }
    }
    // Close with the boundary; drop interior cuts that crowd it.
    // irgrid-lint: allow(P1): the `len() > 1` guard keeps `kept` non-empty
    while kept.len() > 1 && boundary - kept.last().expect("non-empty") < min_gap {
        kept.pop();
    }
    kept.push(boundary);
}

/// Locates the nearest cut to `pos`, returning its index (ties go to the
/// lower cut, keeping snapping deterministic).
pub(crate) fn nearest_cut_index(cuts: &[i64], pos: i64) -> usize {
    debug_assert!(!cuts.is_empty());
    match cuts.binary_search(&pos) {
        Ok(i) => i,
        Err(i) => {
            if i == 0 {
                0
            } else if i == cuts.len() {
                cuts.len() - 1
            } else if pos - cuts[i - 1] <= cuts[i] - pos {
                i - 1
            } else {
                i
            }
        }
    }
}

/// Snaps a cell span `[lo, hi]` (hi exclusive, in cells) to cut indices,
/// guaranteeing a non-empty span: returns `(ilo, ihi)` with `ilo < ihi`
/// into `cuts`.
pub(crate) fn snap_span(cuts: &[i64], lo: i64, hi: i64) -> (usize, usize) {
    debug_assert!(cuts.len() >= 2, "cuts always include both boundaries");
    let mut ilo = nearest_cut_index(cuts, lo);
    let mut ihi = nearest_cut_index(cuts, hi);
    if ilo > ihi {
        std::mem::swap(&mut ilo, &mut ihi);
    }
    if ilo == ihi {
        // Collapsed span: widen toward the side the original span leaned.
        if ihi + 1 < cuts.len() {
            ihi += 1;
        } else {
            ilo -= 1;
        }
    }
    (ilo, ihi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_always_present() {
        assert_eq!(merged_cuts(10, [], 2), vec![0, 10]);
        assert_eq!(merged_cuts(1, [], 2), vec![0, 1]);
    }

    #[test]
    fn interior_cuts_kept_when_spaced() {
        assert_eq!(merged_cuts(10, [3, 6], 2), vec![0, 3, 6, 10]);
    }

    #[test]
    fn close_cuts_merge() {
        // 3 and 4 are closer than 2 cells: 4 dropped.
        assert_eq!(merged_cuts(10, [3, 4, 8], 2), vec![0, 3, 8, 10]);
    }

    #[test]
    fn cuts_near_lower_boundary_merge() {
        assert_eq!(merged_cuts(10, [1, 5], 2), vec![0, 5, 10]);
    }

    #[test]
    fn cuts_near_upper_boundary_merge() {
        assert_eq!(merged_cuts(10, [5, 9], 2), vec![0, 5, 10]);
    }

    #[test]
    fn duplicates_dedup() {
        assert_eq!(merged_cuts(10, [5, 5, 5], 1), vec![0, 5, 10]);
    }

    #[test]
    fn out_of_range_cuts_ignored() {
        assert_eq!(merged_cuts(10, [-3, 0, 10, 14, 5], 2), vec![0, 5, 10]);
    }

    #[test]
    fn min_gap_one_keeps_all_distinct() {
        assert_eq!(merged_cuts(10, [1, 2, 3], 1), vec![0, 1, 2, 3, 10]);
    }

    #[test]
    fn gaps_respect_threshold() {
        let cuts = merged_cuts(100, (1..100).step_by(3), 5);
        for pair in cuts.windows(2) {
            let gap = pair[1] - pair[0];
            assert!(gap >= 1, "gap {gap}");
        }
        // All interior gaps except possibly the last respect min_gap.
        for pair in cuts[..cuts.len() - 1].windows(2) {
            assert!(
                pair[1] - pair[0] >= 5,
                "interior gap {} too small",
                pair[1] - pair[0]
            );
        }
    }

    #[test]
    fn nearest_cut_basics() {
        let cuts = [0, 4, 9, 15];
        assert_eq!(nearest_cut_index(&cuts, 0), 0);
        assert_eq!(nearest_cut_index(&cuts, 4), 1);
        assert_eq!(nearest_cut_index(&cuts, 6), 1); // tie 4 vs 9? |6-4|=2,|9-6|=3 -> 4
        assert_eq!(nearest_cut_index(&cuts, 7), 2);
        assert_eq!(nearest_cut_index(&cuts, 100), 3);
        assert_eq!(nearest_cut_index(&cuts, -5), 0);
        // Exact tie goes low: 2 is equidistant from 0 and 4.
        assert_eq!(nearest_cut_index(&cuts, 2), 0);
    }

    #[test]
    fn snap_span_never_collapses() {
        let cuts = [0, 4, 9, 15];
        assert_eq!(snap_span(&cuts, 3, 10), (1, 2));
        // Span entirely inside one interval: widened.
        let (a, b) = snap_span(&cuts, 5, 6);
        assert!(a < b);
        // Span at the very top.
        let (a, b) = snap_span(&cuts, 15, 15);
        assert_eq!((a, b), (2, 3));
        // Span at the very bottom.
        let (a, b) = snap_span(&cuts, 0, 0);
        assert_eq!((a, b), (0, 1));
    }
}
