//! Incremental (delta) evaluation of the Irregular-Grid model.
//!
//! The retained [`CongestionEvaluator`](super::CongestionEvaluator)
//! rebuilds the whole map per call: every range is re-scored even though
//! a simulated-annealing move perturbs one or two modules. The expensive
//! part of a rebuild is not the bookkeeping — cut merging and totals
//! accumulation are microseconds — it is the per-range *scoring* (Simpson
//! integration per IR cell). [`IrDeltaEvaluator`] makes scoring
//! incremental:
//!
//! * **Relative-signature block memo.** A range's scored block (its
//!   per-cell probabilities over the snapped span) depends only on the
//!   span's *shape*: the net type and the cut offsets relative to the
//!   span origin. Translating a range — the common case under repacking,
//!   where whole subtrees shift — reuses its block verbatim. Blocks are
//!   memoized in a `BTreeMap` (deterministic iteration; `HashMap` is
//!   banned by lint rule D1) keyed by that signature, as `Arc<[i64]>` of
//!   **Q32-quantized** probabilities.
//! * **Integer totals.** Per-cell totals are `i64` sums of quantized
//!   blocks (see [`crate::num::quantize_probability`]). Integer addition
//!   commutes, so incremental subtract/add updates are bit-identical to
//!   a from-scratch rebuild — the exactness the delta API demands.
//! * **Double-buffered commit/undo.** The session keeps a *committed*
//!   and a *proposed* snapshot. `commit` is a pointer swap; `undo` drops
//!   the proposal in O(1). No journal, no replay.
//! * **Cheap re-merge.** Cutlines are global state — one moved range can
//!   cascade merges arbitrarily far — so each proposal re-derives the
//!   merged cut set (O(R log R) over ~1400 raw cuts, microseconds).
//!   When the merged cuts come out unchanged, old contributions are
//!   subtracted and new ones added only for the ranges that actually
//!   moved; when the cut set shifts, all (mostly memo-hit) blocks are
//!   re-accumulated — still integer adds, still exact.
//!
//! * **Closed-form exit integrals.** Block and memo keys change
//!   whenever the cut pattern does — which under annealing is *every
//!   move* — so the block memo alone would degenerate to full Simpson
//!   scoring per proposal (and the cut patterns a real run produces
//!   never recur, so no cache keyed on them can help). Instead the
//!   Theorem-1 exit integrals are evaluated in closed form: the
//!   variable-variance normal-CDF antiderivative
//!   [`ExitCdf`](super::approx::ExitCdf) turns every cell of every cut
//!   pattern into two `erf` evaluations, O(cells) per block with no
//!   quadrature loop at all.
//!
//! Scoring structure (corridors, the `g1 + g2` exact threshold,
//! Theorem-1 row/column exit sweeps, pin override, clamp) is the
//! retained evaluator's. Cell values are not bit-identical to the
//! Simpson-integrated `f64` pipeline — `ExitCdf` and Simpson are two
//! quadratures of the same Theorem-1 density, agreeing to well inside
//! the normal approximation's own deviation from exact route counts —
//! but they are *pure functions of the floorplan*, so a fresh session
//! reproduces a warm session's map bit for bit, which is the exactness
//! the delta API contracts.
//!
//! The evaluator is serial: `IrregularGridModel::with_threads` is
//! ignored here (the scoring work a proposal leaves after memoization is
//! too small to fan out).

use std::collections::BTreeMap;
use std::sync::Arc;

use irgrid_geom::{Point, Rect};

use crate::num::{dequantize_total, quantize_probability, LnFactorials};
use crate::routing::{NetType, RoutingRange};
use crate::score::top_area_fraction_mean_in_place;
use crate::UnitGrid;

use super::approx::{ExitCdf, ExitKind, ExitProfile};
use super::cutlines::{merged_cuts_into, snap_span};
use super::exact::block_probability_exact;
use super::{Evaluator, IrCongestionMap, IrregularGridModel};

/// Signature tag for corridor ranges (all-ones block; only the span's
/// cell dimensions matter).
const KIND_CORRIDOR: i64 = 2;

/// Default cap on memoized blocks. At ~50 cells × 16 B per block plus
/// key overhead this bounds the memo near 100 MB worst case; in practice
/// an ami49 run stabilizes around a few thousand entries.
const DEFAULT_MEMO_CAPACITY: usize = 65_536;

fn span_len(lo: usize, hi: usize) -> i64 {
    (hi - lo) as i64 // irgrid-lint: allow(C1): IR spans hold < 2^32 cut intervals, far inside i64
}

/// FNV-1a over a snapshot's exact cut vectors, Q32 totals, and cost
/// bit pattern — the bit-identity contract collapsed to 64 bits.
fn snapshot_fingerprint(snap: &Snapshot) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: [u8; 8]| {
        for byte in bytes {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(u64::from(snap.valid).to_le_bytes());
    eat(snap.cost.to_bits().to_le_bytes());
    for slice in [&snap.x_cuts, &snap.y_cuts, &snap.totals] {
        eat(u64::try_from(slice.len()).unwrap_or(u64::MAX).to_le_bytes());
        for &value in slice {
            eat(value.to_le_bytes());
        }
    }
    hash
}

/// One fully evaluated floorplan: merged cuts, per-range snapped spans
/// and scored blocks, integer per-cell totals, and the resulting cost.
#[derive(Debug, Default)]
struct Snapshot {
    x_cuts: Vec<i64>,
    y_cuts: Vec<i64>,
    /// Row-major Q32 totals, `(x_cuts.len() - 1) × (y_cuts.len() - 1)`.
    totals: Vec<i64>,
    ranges: Vec<RoutingRange>,
    /// Per-range snapped span `(ix1, ix2, iy1, iy2)` into the cut vectors.
    spans: Vec<(usize, usize, usize, usize)>,
    /// Per-range scored block over its span (shared with the memo).
    blocks: Vec<Arc<[i64]>>,
    cost: f64,
    valid: bool,
}

/// The incremental Irregular-Grid evaluation session — the
/// [`DeltaCongestionSession`](crate::DeltaCongestionSession)
/// implementation minted by
/// [`IrregularGridModel::delta_session`](crate::DeltaCongestion::delta_session).
///
/// # Examples
///
/// ```
/// use irgrid_core::{DeltaCongestion, DeltaCongestionSession, IrregularGridModel};
/// use irgrid_geom::{Point, Rect, Um};
///
/// let chip = Rect::from_origin_size(Point::ORIGIN, Um(600), Um(600));
/// let a = vec![(Point::new(Um(90), Um(90)), Point::new(Um(510), Um(510)))];
/// let b = vec![(Point::new(Um(90), Um(510)), Point::new(Um(510), Um(90)))];
/// let model = IrregularGridModel::new(Um(30));
///
/// let mut session = model.delta_session();
/// let base = session.rebase(&chip, &a);
/// let proposed = session.propose(&chip, &b);
/// assert_eq!(session.undo(), base); // rejected: committed state kept
/// assert_eq!(session.propose(&chip, &b), proposed);
/// session.commit();
/// // Bit-identical to a from-scratch build of the same floorplan.
/// assert_eq!(model.delta_session().rebase(&chip, &b), proposed);
/// ```
#[derive(Debug)]
pub struct IrDeltaEvaluator {
    model: IrregularGridModel,
    lf: LnFactorials,
    memo: BTreeMap<Vec<i64>, Arc<[i64]>>,
    memo_capacity: usize,
    committed: Snapshot,
    proposed: Snapshot,
    pending: bool,
    // Reusable scratch (steady-state proposals allocate only on memo miss).
    raw_cuts: Vec<i64>,
    key: Vec<i64>,
    xs: Vec<i64>,
    ys: Vec<i64>,
    fblock: Vec<f64>,
    pairs: Vec<(f64, f64)>,
}

impl IrDeltaEvaluator {
    /// Creates a session with no committed state; the first
    /// [`rebase`](Self::rebase) (or `propose`) performs a full build.
    #[must_use]
    pub fn new(model: IrregularGridModel) -> IrDeltaEvaluator {
        IrDeltaEvaluator {
            model,
            lf: LnFactorials::up_to(0),
            memo: BTreeMap::new(),
            memo_capacity: DEFAULT_MEMO_CAPACITY,
            committed: Snapshot::default(),
            proposed: Snapshot::default(),
            pending: false,
            raw_cuts: Vec::new(),
            key: Vec::new(),
            xs: Vec::new(),
            ys: Vec::new(),
            fblock: Vec::new(),
            pairs: Vec::new(),
        }
    }

    /// The model this session was built from.
    #[must_use]
    pub fn model(&self) -> &IrregularGridModel {
        &self.model
    }

    /// The committed floorplan's cost (0 before the first rebase).
    #[must_use]
    pub fn cost(&self) -> f64 {
        self.committed.cost
    }

    /// The committed Q32 per-cell totals (row-major), with their cut
    /// vectors — the exact integers the bit-identity contract is stated
    /// over.
    #[must_use]
    pub fn quantized(&self) -> (&[i64], &[i64], &[i64]) {
        (
            &self.committed.x_cuts,
            &self.committed.y_cuts,
            &self.committed.totals,
        )
    }

    /// Materializes the committed state as an [`IrCongestionMap`]
    /// (dequantized totals; exact, since Q32 totals stay below 2⁵³).
    ///
    /// # Panics
    ///
    /// Panics if nothing has been committed yet.
    #[must_use]
    pub fn congestion_map(&self) -> IrCongestionMap {
        assert!(
            self.committed.valid,
            "congestion_map before the first rebase/commit"
        );
        IrCongestionMap {
            pitch: self.model.pitch,
            x_cuts: self.committed.x_cuts.clone(),
            y_cuts: self.committed.y_cuts.clone(),
            totals: self
                .committed
                .totals
                .iter()
                .map(|&t| dequantize_total(t))
                .collect(),
            top_fraction: f64::from(self.model.top_fraction_permille) / 1000.0,
        }
    }

    /// Whether a committed state exists (i.e. a `rebase` or `commit`
    /// has happened). Before that, [`cost`](Self::cost) is a default 0
    /// and [`committed_fingerprint`](Self::committed_fingerprint) covers
    /// an empty snapshot.
    #[must_use]
    pub fn has_committed(&self) -> bool {
        self.committed.valid
    }

    /// An FNV-1a fingerprint of the committed snapshot: the exact cut
    /// vectors, Q32 totals, and the cost's bit pattern. Two sessions
    /// with equal fingerprints committed bit-identical maps — this is
    /// the hook a checkpointing layer uses to verify that a restored
    /// session replayed to the same state it persisted.
    #[must_use]
    pub fn committed_fingerprint(&self) -> u64 {
        snapshot_fingerprint(&self.committed)
    }

    /// The fingerprint [`committed_fingerprint`](Self::committed_fingerprint)
    /// would report after a [`commit`](crate::DeltaCongestionSession::commit)
    /// of the current proposal. Meaningful only while a proposal is
    /// pending; otherwise it covers whatever the last proposal built.
    /// A checkpointing layer persists this *before* committing so a
    /// restored session can be verified against it.
    #[must_use]
    pub fn proposed_fingerprint(&self) -> u64 {
        snapshot_fingerprint(&self.proposed)
    }

    /// Builds `self.proposed` from the given floorplan and returns its
    /// cost. Uses the committed snapshot only as a subtract/add base
    /// when the merged cut sets coincide — the result is independent of
    /// it either way.
    fn build_proposal(&mut self, chip: &Rect, segments: &[(Point, Point)]) -> f64 {
        let grid = UnitGrid::new(chip, self.model.pitch);
        let min_gap = if self.model.merge_lines { 2 } else { 1 };

        self.proposed.ranges.clear();
        self.proposed.ranges.extend(
            segments
                .iter()
                .map(|&(a, b)| RoutingRange::from_segment(&grid, a, b)),
        );

        self.raw_cuts.clear();
        for range in &self.proposed.ranges {
            self.raw_cuts.push(range.x0());
            self.raw_cuts.push(range.x0() + range.g1());
        }
        merged_cuts_into(
            grid.cols(),
            &mut self.raw_cuts,
            min_gap,
            &mut self.proposed.x_cuts,
        );
        self.raw_cuts.clear();
        for range in &self.proposed.ranges {
            self.raw_cuts.push(range.y0());
            self.raw_cuts.push(range.y0() + range.g2());
        }
        merged_cuts_into(
            grid.rows(),
            &mut self.raw_cuts,
            min_gap,
            &mut self.proposed.y_cuts,
        );

        let lf_bound = grid.cols() + grid.rows() + 2;
        // irgrid-lint: allow(C1): cols + rows + 2 is positive and far below usize::MAX
        self.lf.ensure_up_to(lf_bound as usize);

        // Per-range snapped spans and (memoized) scored blocks.
        self.proposed.spans.clear();
        self.proposed.blocks.clear();
        for i in 0..self.proposed.ranges.len() {
            let range = self.proposed.ranges[i];
            let (ix1, ix2) = snap_span(&self.proposed.x_cuts, range.x0(), range.x0() + range.g1());
            let (iy1, iy2) = snap_span(&self.proposed.y_cuts, range.y0(), range.y0() + range.g2());
            self.proposed.spans.push((ix1, ix2, iy1, iy2));

            let corridor = range.g1() == 1 || range.g2() == 1;
            self.key.clear();
            if corridor {
                self.key.push(KIND_CORRIDOR);
                self.key.push(span_len(ix1, ix2));
                self.key.push(span_len(iy1, iy2));
            } else {
                self.key.push(match range.net_type() {
                    NetType::TypeI => 0,
                    NetType::TypeII => 1,
                });
                self.key.push(span_len(ix1, ix2));
                let x0 = self.proposed.x_cuts[ix1];
                for j in ix1 + 1..=ix2 {
                    self.key.push(self.proposed.x_cuts[j] - x0);
                }
                let y0 = self.proposed.y_cuts[iy1];
                for j in iy1 + 1..=iy2 {
                    self.key.push(self.proposed.y_cuts[j] - y0);
                }
            }

            let block = if let Some(hit) = self.memo.get(&self.key) {
                Arc::clone(hit)
            } else {
                let scored: Arc<[i64]> = if corridor {
                    let cells = (ix2 - ix1) * (iy2 - iy1);
                    std::iter::repeat(quantize_probability(1.0))
                        .take(cells)
                        .collect()
                } else {
                    self.xs.clear();
                    self.xs.push(0);
                    let x0 = self.proposed.x_cuts[ix1];
                    for j in ix1 + 1..=ix2 {
                        self.xs.push(self.proposed.x_cuts[j] - x0);
                    }
                    self.ys.clear();
                    self.ys.push(0);
                    let y0 = self.proposed.y_cuts[iy1];
                    for j in iy1 + 1..=iy2 {
                        self.ys.push(self.proposed.y_cuts[j] - y0);
                    }
                    score_block(
                        &self.model,
                        range.net_type(),
                        &self.xs,
                        &self.ys,
                        &self.lf,
                        &mut self.fblock,
                    );
                    self.fblock
                        .iter()
                        .map(|&p| quantize_probability(p))
                        .collect()
                };
                // Deterministic overflow policy: clear and restart. Blocks
                // are pure functions of their key, so dropping the memo
                // never changes a result, only re-scores it.
                if self.memo.len() >= self.memo_capacity {
                    self.memo.clear();
                }
                self.memo.insert(self.key.clone(), Arc::clone(&scored));
                scored
            };
            self.proposed.blocks.push(block);
        }

        // Accumulate integer totals. When the merged cut sets (and the
        // range count) are unchanged, diff against the committed totals:
        // subtract the old block and add the new one for exactly the
        // ranges that moved. Integer adds commute, so this equals the
        // full re-accumulation bit for bit.
        let ir_cols = self.proposed.x_cuts.len() - 1;
        let ir_rows = self.proposed.y_cuts.len() - 1;
        let same_grid = self.committed.valid
            && self.proposed.x_cuts == self.committed.x_cuts
            && self.proposed.y_cuts == self.committed.y_cuts
            && self.proposed.ranges.len() == self.committed.ranges.len();
        self.proposed.totals.clear();
        if same_grid {
            self.proposed
                .totals
                .extend_from_slice(&self.committed.totals);
            for i in 0..self.proposed.ranges.len() {
                if self.proposed.ranges[i] == self.committed.ranges[i] {
                    continue;
                }
                apply_block(
                    &mut self.proposed.totals,
                    ir_cols,
                    self.committed.spans[i],
                    &self.committed.blocks[i],
                    -1,
                );
                apply_block(
                    &mut self.proposed.totals,
                    ir_cols,
                    self.proposed.spans[i],
                    &self.proposed.blocks[i],
                    1,
                );
            }
        } else {
            self.proposed.totals.resize(ir_cols * ir_rows, 0);
            for i in 0..self.proposed.ranges.len() {
                apply_block(
                    &mut self.proposed.totals,
                    ir_cols,
                    self.proposed.spans[i],
                    &self.proposed.blocks[i],
                    1,
                );
            }
        }

        // Cost: identical arithmetic to `IrCongestionMap::cost` over the
        // dequantized densities (dequantization is exact).
        self.pairs.clear();
        for j in 0..ir_rows {
            for i in 0..ir_cols {
                let dx = self.proposed.x_cuts[i + 1] - self.proposed.x_cuts[i];
                let dy = self.proposed.y_cuts[j + 1] - self.proposed.y_cuts[j];
                // irgrid-lint: allow(C1): cell areas are below 2^53, exact in f64
                let area = (dx * dy) as f64;
                self.pairs.push((
                    dequantize_total(self.proposed.totals[j * ir_cols + i]) / area,
                    area,
                ));
            }
        }
        let cost = top_area_fraction_mean_in_place(
            &mut self.pairs,
            f64::from(self.model.top_fraction_permille) / 1000.0,
        );
        self.proposed.cost = cost;
        self.proposed.valid = true;
        cost
    }
}

impl crate::DeltaCongestionSession for IrDeltaEvaluator {
    fn rebase(&mut self, chip: &Rect, segments: &[(Point, Point)]) -> f64 {
        let cost = self.build_proposal(chip, segments);
        std::mem::swap(&mut self.committed, &mut self.proposed);
        self.pending = false;
        cost
    }

    fn propose(&mut self, chip: &Rect, segments: &[(Point, Point)]) -> f64 {
        let cost = self.build_proposal(chip, segments);
        self.pending = true;
        cost
    }

    fn commit(&mut self) {
        if self.pending {
            std::mem::swap(&mut self.committed, &mut self.proposed);
            self.pending = false;
        }
    }

    fn undo(&mut self) -> f64 {
        self.pending = false;
        self.committed.cost
    }
}

/// Adds (`sign = 1`) or removes (`sign = -1`) one scored block into the
/// row-major totals grid at its snapped span.
fn apply_block(
    totals: &mut [i64],
    ir_cols: usize,
    span: (usize, usize, usize, usize),
    block: &[i64],
    sign: i64,
) {
    let (ix1, ix2, iy1, iy2) = span;
    let ncols = ix2 - ix1;
    for (jy, row) in (iy1..iy2).enumerate() {
        let base = row * ir_cols + ix1;
        let brow = jy * ncols;
        for jx in 0..ncols {
            totals[base + jx] += sign * block[brow + jx];
        }
    }
}

/// Scores one snapped range in span-local coordinates: `xs`/`ys` are the
/// cumulative cut offsets (`xs[0] = 0`, `xs.last() = g1`), `out` receives
/// the per-cell probabilities row-major. Same exit-term structure,
/// exact-threshold path, pin override, and clamp as the retained
/// evaluator's `accumulate_range`, restated over the whole span (delta
/// blocks are never band-restricted) with pins mapped to the span's
/// corner cells (pins sit at the snapped range's corners by
/// construction) — except that each approximate cell integral is the
/// closed-form [`ExitCdf`] mass (two `erf` evaluations) instead of a
/// Simpson pass. The closed form depends on nothing but `(g1, g2, exit)`
/// and the cell bounds, so scoring a brand-new cut pattern — which under
/// annealing is every move — costs O(cells) with no quadrature and no
/// caching, and a fresh session reproduces a warm session's values
/// bit for bit by construction.
fn score_block(
    model: &IrregularGridModel,
    net_type: NetType,
    xs: &[i64],
    ys: &[i64],
    lf: &LnFactorials,
    out: &mut Vec<f64>,
) {
    let ncols = xs.len() - 1;
    let nrows = ys.len() - 1;
    let g1 = xs[ncols];
    let g2 = ys[nrows];
    let snapped = RoutingRange::from_cells(0, 0, g1, g2, net_type);
    out.clear();
    out.resize(ncols * nrows, 0.0);

    // Pin IR cells: local pin coordinates 0 and g1-1 (resp. g2-1) fall in
    // the first and last cut interval of the span.
    let pins = match net_type {
        NetType::TypeI => [(0usize, 0usize), (ncols - 1, nrows - 1)],
        NetType::TypeII => [(0, nrows - 1), (ncols - 1, 0)],
    };
    let is_pin = |jx: usize, jy: usize| pins.contains(&(jx, jy));

    let use_exact = model.evaluator == Evaluator::Exact || g1 + g2 <= model.exact_threshold;
    if use_exact {
        for jy in 0..nrows {
            let y1 = ys[jy];
            let y2 = ys[jy + 1] - 1;
            for jx in 0..ncols {
                let x1 = xs[jx];
                let x2 = xs[jx + 1] - 1;
                out[jy * ncols + jx] = if is_pin(jx, jy) {
                    1.0
                } else {
                    block_probability_exact(&snapped, lf, x1, x2, y1, y2)
                };
            }
        }
        return;
    }

    fn unitf(v: i64) -> f64 {
        v as f64 // irgrid-lint: allow(C1): unit-grid offsets are small integers, exact in f64
    }

    let correction = if model.approx.continuity_correction {
        0.5
    } else {
        0.0
    };
    let mirrored = |y1: i64, y2: i64| match net_type {
        NetType::TypeI => (y1, y2),
        NetType::TypeII => (g2 - 1 - y2, g2 - 1 - y1),
    };

    let base_intervals = model.approx.simpson_intervals;
    // Row sweep: exits upward through each row's top edge. A cell over
    // unit cells `x1..=x2` integrates `[x1 - c, x2 + c]`; with the
    // continuity correction adjacent cells share their half-integer
    // boundary, so the sweep costs one CDF evaluation per cut. Rows on
    // which the closed form degenerates (extreme exits) fall back to the
    // same adaptive Simpson pass the float evaluator uses — still a pure
    // function of the floorplan, just slower, and rare (one unit row per
    // span edge).
    for jy in 0..nrows {
        let y1 = ys[jy];
        let y2 = ys[jy + 1] - 1;
        let (_, my2) = mirrored(y1, y2);
        if my2 >= g2 - 1 {
            continue; // touches the top boundary: no routes leave upward
        }
        let cdf = ExitCdf::new(g1, g2, my2);
        if cdf.kind() == ExitKind::Zero {
            continue;
        }
        let row = jy * ncols;
        if cdf.kind() == ExitKind::Quad {
            let profile = ExitProfile::new(g1, g2, my2);
            for jx in 0..ncols {
                let a = unitf(xs[jx]) - correction;
                let b = unitf(xs[jx + 1] - 1) + correction;
                out[row + jx] = profile.integral(a, b, base_intervals);
            }
        } else if correction > 0.0 {
            let mut lo = cdf.below(unitf(xs[0]) - correction);
            for jx in 0..ncols {
                let hi = cdf.below(unitf(xs[jx + 1] - 1) + correction);
                out[row + jx] = (hi - lo).max(0.0);
                lo = hi;
            }
        } else {
            for jx in 0..ncols {
                out[row + jx] = cdf.mass(unitf(xs[jx]), unitf(xs[jx + 1] - 1));
            }
        }
    }
    // Column sweep: exits rightward through each column's right edge
    // (the axes swap). Type II mirroring reverses the row order, so the
    // shared-boundary chain walks `jy` downward there — either way each
    // cut is evaluated once.
    for jx in 0..ncols {
        let x2 = xs[jx + 1] - 1;
        if x2 >= g1 - 1 {
            continue; // touches the right boundary
        }
        let cdf = ExitCdf::new(g2, g1, x2);
        if cdf.kind() == ExitKind::Zero {
            continue;
        }
        if cdf.kind() == ExitKind::Quad {
            let profile = ExitProfile::new(g2, g1, x2);
            for jy in 0..nrows {
                let (my1, my2) = mirrored(ys[jy], ys[jy + 1] - 1);
                out[jy * ncols + jx] += profile.integral(
                    unitf(my1) - correction,
                    unitf(my2) + correction,
                    base_intervals,
                );
            }
        } else if correction > 0.0 {
            // `mirrored` is monotone in the mirrored coordinate: walk
            // cells in ascending `my` order so adjacent cells share
            // their half-integer boundary.
            let jys: &mut dyn Iterator<Item = usize> = match net_type {
                NetType::TypeI => &mut (0..nrows),
                NetType::TypeII => &mut (0..nrows).rev(),
            };
            let mut lo = cdf.below(-correction);
            for jy in jys {
                let (_, my2) = mirrored(ys[jy], ys[jy + 1] - 1);
                let hi = cdf.below(unitf(my2) + correction);
                out[jy * ncols + jx] += (hi - lo).max(0.0);
                lo = hi;
            }
        } else {
            for jy in 0..nrows {
                let (my1, my2) = mirrored(ys[jy], ys[jy + 1] - 1);
                out[jy * ncols + jx] += cdf.mass(unitf(my1) - correction, unitf(my2) + correction);
            }
        }
    }
    // Pin override and clamp, matching the retained evaluator's commit
    // pass cell for cell.
    for jy in 0..nrows {
        for jx in 0..ncols {
            let cell = &mut out[jy * ncols + jx];
            *cell = if is_pin(jx, jy) {
                1.0
            } else {
                cell.clamp(0.0, 1.0)
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CongestionModel, DeltaCongestionSession};
    use irgrid_geom::Um;

    fn chip(w: i64, h: i64) -> Rect {
        Rect::from_origin_size(Point::ORIGIN, Um(w), Um(h))
    }

    fn pt(x: i64, y: i64) -> Point {
        Point::new(Um(x), Um(y))
    }

    /// Corridor + type II + exact-threshold mix (the evaluator tests'
    /// fixture).
    fn crossing_segments() -> Vec<(Point, Point)> {
        vec![
            (pt(30, 30), pt(840, 600)),
            (pt(60, 750), pt(780, 90)),   // type II
            (pt(240, 30), pt(300, 870)),  // near-vertical
            (pt(15, 450), pt(885, 450)),  // corridor
            (pt(90, 90), pt(150, 150)),   // small: exact-threshold path
            (pt(200, 200), pt(200, 200)), // degenerate: zero-length
        ]
    }

    fn fresh_rebase(
        model: IrregularGridModel,
        chip: &Rect,
        segments: &[(Point, Point)],
    ) -> IrDeltaEvaluator {
        let mut session = IrDeltaEvaluator::new(model);
        session.rebase(chip, segments);
        session
    }

    fn assert_bit_identical(a: &IrDeltaEvaluator, b: &IrDeltaEvaluator, context: &str) {
        assert_eq!(a.cost().to_bits(), b.cost().to_bits(), "cost ({context})");
        assert_eq!(a.quantized(), b.quantized(), "map ({context})");
    }

    #[test]
    fn warm_session_matches_fresh_rebase_through_move_churn() {
        let model = IrregularGridModel::new(Um(30));
        let the_chip = chip(900, 900);
        let mut segments = crossing_segments();
        let mut warm = IrDeltaEvaluator::new(model);
        warm.rebase(&the_chip, &segments);

        for step in 0..30 {
            // Move one endpoint deterministically; every 7th move is
            // re-proposed after an undo (reject/undo chains).
            let k = step % segments.len();
            let old = segments[k];
            segments[k].0 = pt(
                (old.0.x.0 + 90 * (1 + step as i64)) % 870,
                (old.0.y.0 + 150) % 870,
            );
            let proposed = warm.propose(&the_chip, &segments);
            if step % 7 == 3 {
                assert_eq!(warm.undo(), warm.cost());
                let again = warm.propose(&the_chip, &segments);
                assert_eq!(proposed.to_bits(), again.to_bits(), "re-propose after undo");
            }
            if step % 3 == 0 {
                // Reject: restore the segment list too.
                warm.undo();
                segments[k] = old;
            } else {
                warm.commit();
            }
            let reference = fresh_rebase(model, &the_chip, &segments);
            assert_bit_identical(&warm, &reference, &format!("step {step}"));
        }
    }

    #[test]
    fn fast_path_on_unchanged_cuts_is_exact() {
        // Moving a segment entirely inside its IR cell structure keeps
        // the merged cuts identical, exercising the subtract/add path.
        let model = IrregularGridModel::new(Um(30));
        let the_chip = chip(900, 900);
        let mut segments = crossing_segments();
        let mut warm = IrDeltaEvaluator::new(model);
        warm.rebase(&the_chip, &segments);
        // Swap the two endpoints of the type II segment: same range
        // boundaries, same cuts, different nothing — then genuinely move it.
        segments[1] = (segments[1].1, segments[1].0);
        warm.propose(&the_chip, &segments);
        warm.commit();
        assert_bit_identical(
            &warm,
            &fresh_rebase(model, &the_chip, &segments),
            "endpoint swap",
        );
        segments[1].0 = pt(75, 735);
        warm.propose(&the_chip, &segments);
        warm.commit();
        assert_bit_identical(
            &warm,
            &fresh_rebase(model, &the_chip, &segments),
            "small move",
        );
    }

    #[test]
    fn memo_overflow_clears_deterministically() {
        let model = IrregularGridModel::new(Um(30));
        let the_chip = chip(900, 900);
        let mut tiny = IrDeltaEvaluator::new(model);
        tiny.memo_capacity = 2;
        let mut segments = crossing_segments();
        tiny.rebase(&the_chip, &segments);
        for step in 0..10 {
            segments[0].1 = pt(840 - 30 * step, 600 - 45 * step);
            tiny.propose(&the_chip, &segments);
            tiny.commit();
            assert!(tiny.memo.len() <= 3, "memo grew past its cap + 1 insert");
            assert_bit_identical(
                &tiny,
                &fresh_rebase(model, &the_chip, &segments),
                &format!("capped step {step}"),
            );
        }
    }

    #[test]
    fn quantized_cost_tracks_float_evaluator() {
        // Not bit-identical to the f64 pipeline: a different accumulator
        // (Q32 integers) and a different quadrature (closed-form ExitCdf
        // antiderivatives instead of per-cell adaptive Simpson). Both
        // effects are far below the model's own approximation error;
        // 1e-4 bounds them comfortably.
        for model in [
            IrregularGridModel::new(Um(30)),
            IrregularGridModel::new(Um(30)).with_evaluator(Evaluator::Exact),
            IrregularGridModel::new(Um(30)).without_line_merging(),
        ] {
            let segments = crossing_segments();
            let float_cost = model.evaluate(&chip(900, 900), &segments);
            let mut session = IrDeltaEvaluator::new(model);
            let quant_cost = session.rebase(&chip(900, 900), &segments);
            assert!(
                (float_cost - quant_cost).abs() < 1e-4,
                "float {float_cost} vs quantized {quant_cost}"
            );
        }
    }

    #[test]
    fn map_matches_float_map_to_quadrature_error() {
        // Same cuts exactly; per-cell totals agree to quantization plus
        // quadrature error (the delta path integrates exit terms with
        // the closed-form ExitCdf, not per-cell Simpson; see approx.rs).
        let model = IrregularGridModel::new(Um(30));
        let segments = crossing_segments();
        let float_map = model.congestion_map(&chip(900, 900), &segments);
        let mut session = IrDeltaEvaluator::new(model);
        session.rebase(&chip(900, 900), &segments);
        let delta_map = session.congestion_map();
        assert_eq!(float_map.x_cuts(), delta_map.x_cuts());
        assert_eq!(float_map.y_cuts(), delta_map.y_cuts());
        for j in 0..float_map.ir_rows() {
            for i in 0..float_map.ir_cols() {
                let f = float_map.total(i, j);
                let d = delta_map.total(i, j);
                // The closed-form exit integrals deviate from adaptive
                // Simpson by up to ~0.02 per exit term in pathological
                // shapes; on this fixture the observed worst cell is
                // ~3e-4. 2e-3 absolute leaves margin while still
                // catching structural regressions.
                assert!(
                    (f - d).abs() <= 2e-3,
                    "cell ({i},{j}): float {f} vs delta {d}"
                );
            }
        }
    }

    #[test]
    fn empty_and_degenerate_floorplans() {
        let model = IrregularGridModel::new(Um(30));
        let mut session = IrDeltaEvaluator::new(model);
        assert_eq!(session.rebase(&chip(300, 300), &[]), 0.0);
        // A floorplan of only coincident-pin (zero-length) segments.
        let degenerate = vec![(pt(50, 50), pt(50, 50)); 4];
        let cost = session.propose(&chip(300, 300), &degenerate);
        session.commit();
        assert_bit_identical(
            &session,
            &fresh_rebase(model, &chip(300, 300), &degenerate),
            "degenerate",
        );
        assert!(cost.is_finite());
    }

    #[test]
    fn undo_without_proposal_is_a_noop() {
        let model = IrregularGridModel::new(Um(30));
        let mut session = IrDeltaEvaluator::new(model);
        assert_eq!(session.undo(), 0.0);
        let base = session.rebase(&chip(900, 900), &crossing_segments());
        assert_eq!(session.undo(), base);
        session.commit(); // also a no-op
        assert_eq!(session.cost(), base);
    }

    #[test]
    fn chip_resize_between_proposals() {
        // Chip growth changes the grid extent (different boundary cut),
        // forcing the full re-accumulation path.
        let model = IrregularGridModel::new(Um(30));
        let segments = crossing_segments();
        let mut warm = IrDeltaEvaluator::new(model);
        warm.rebase(&chip(900, 900), &segments);
        warm.propose(&chip(990, 930), &segments);
        warm.commit();
        assert_bit_identical(
            &warm,
            &fresh_rebase(model, &chip(990, 930), &segments),
            "resized chip",
        );
    }
}
