//! Formula 3: exact block-crossing probabilities.
//!
//! The probability that a net's route passes through an IR-grid is the
//! number of monotone routes visiting at least one of the block's cells,
//! divided by the total route count. Because routes are monotone, each
//! crossing route leaves the block exactly once — through the block's top
//! edge or right edge for a type I net (bottom/right for type II) — so the
//! crossing count is a sum over the exit cells only (the paper's gray
//! cells in figure 6).
//!
//! Note on the paper's worked example: figure 6 quotes 245/252 for the
//! block `{2 ≤ x ≤ 4, 2 ≤ y ≤ 5}` of a 6×6 range, but both this formula
//! and exhaustive path counting give **246**/252 (the example's term list
//! omits one exit term); the tests below pin the brute-force value.

use crate::num::LnFactorials;
use crate::routing::{NetType, RoutingRange};

/// The exact Formula 3 probability that the net crosses the block
/// `[x1..=x2] × [y1..=y2]` in range-local cell coordinates.
///
/// The block is clipped to the range; blocks containing a pin cell return
/// exactly 1 (Algorithm step 3.1). The result is clamped to `[0, 1]`
/// against floating-point drift.
///
/// # Panics
///
/// Panics if the block is inverted (`x1 > x2` or `y1 > y2`) or entirely
/// outside the range.
#[must_use]
pub fn block_probability_exact(
    range: &RoutingRange,
    lf: &LnFactorials,
    x1: i64,
    x2: i64,
    y1: i64,
    y2: i64,
) -> f64 {
    assert!(
        x1 <= x2 && y1 <= y2,
        "inverted block [{x1},{x2}]x[{y1},{y2}]"
    );
    let x1 = x1.max(0);
    let y1 = y1.max(0);
    let x2 = x2.min(range.g1() - 1);
    let y2 = y2.min(range.g2() - 1);
    assert!(
        x1 <= x2 && y1 <= y2,
        "block lies outside the {}x{} range",
        range.g1(),
        range.g2()
    );

    // Pin blocks are certain (step 3.1).
    if range
        .pin_cells()
        .iter()
        .any(|&(px, py)| (x1..=x2).contains(&px) && (y1..=y2).contains(&py))
    {
        return 1.0;
    }
    // Single-row/column corridors: every route crosses every cell.
    if range.g1() == 1 || range.g2() == 1 {
        return 1.0;
    }

    let ln_total = range.ln_total_routes(lf);
    let mut p = 0.0;
    match range.net_type() {
        NetType::TypeI => {
            // Exits upward from the top row.
            for x in x1..=x2 {
                let t = range.ln_ta(lf, x, y2) + range.ln_tb(lf, x, y2 + 1) - ln_total;
                p += t.exp();
            }
            // Exits rightward from the right column.
            for y in y1..=y2 {
                let t = range.ln_ta(lf, x2, y) + range.ln_tb(lf, x2 + 1, y) - ln_total;
                p += t.exp();
            }
        }
        NetType::TypeII => {
            // Exits downward from the bottom row.
            for x in x1..=x2 {
                let t = range.ln_ta(lf, x, y1) + range.ln_tb(lf, x, y1 - 1) - ln_total;
                p += t.exp();
            }
            // Exits rightward from the right column.
            for y in y1..=y2 {
                let t = range.ln_ta(lf, x2, y) + range.ln_tb(lf, x2 + 1, y) - ln_total;
                p += t.exp();
            }
        }
    }
    p.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force oracle: routes crossing the block = total routes −
    /// routes avoiding every block cell, counted by dynamic programming in
    /// exact `u128` arithmetic.
    fn brute_force(range: &RoutingRange, x1: i64, x2: i64, y1: i64, y2: i64) -> f64 {
        let (g1, g2) = (range.g1(), range.g2());
        let blocked = |x: i64, y: i64| (x1..=x2).contains(&x) && (y1..=y2).contains(&y);
        // Walk from the first pin; direction depends on type.
        let (start, _end, dy): ((i64, i64), (i64, i64), i64) = match range.net_type() {
            NetType::TypeI => ((0, 0), (g1 - 1, g2 - 1), 1),
            NetType::TypeII => ((0, g2 - 1), (g1 - 1, 0), -1),
        };
        let idx = |x: i64, y: i64| (y * g1 + x) as usize;
        let mut avoid = vec![0u128; (g1 * g2) as usize];
        let mut total = vec![0u128; (g1 * g2) as usize];
        total[idx(start.0, start.1)] = 1;
        if !blocked(start.0, start.1) {
            avoid[idx(start.0, start.1)] = 1;
        }
        // Process cells in route order.
        let ys: Vec<i64> = if dy == 1 {
            (0..g2).collect()
        } else {
            (0..g2).rev().collect()
        };
        for &y in &ys {
            for x in 0..g1 {
                if (x, y) == start {
                    continue;
                }
                let from_left = if x > 0 {
                    (total[idx(x - 1, y)], avoid[idx(x - 1, y)])
                } else {
                    (0, 0)
                };
                let prev_y = y - dy;
                let from_below = if (0..g2).contains(&prev_y) {
                    (total[idx(x, prev_y)], avoid[idx(x, prev_y)])
                } else {
                    (0, 0)
                };
                total[idx(x, y)] = from_left.0 + from_below.0;
                avoid[idx(x, y)] = if blocked(x, y) {
                    0
                } else {
                    from_left.1 + from_below.1
                };
            }
        }
        let end = match range.net_type() {
            NetType::TypeI => (g1 - 1, g2 - 1),
            NetType::TypeII => (g1 - 1, 0),
        };
        let t = total[idx(end.0, end.1)];
        let a = avoid[idx(end.0, end.1)];
        (t - a) as f64 / t as f64
    }

    #[test]
    fn paper_figure6_example_corrected() {
        // 6x6 range, type I, block {2..4} x {2..5}: the paper quotes
        // 245/252 but its own formula (and exhaustive counting) gives
        // 246/252.
        let lf = LnFactorials::up_to(64);
        let range = RoutingRange::from_cells(0, 0, 6, 6, NetType::TypeI);
        let exact = block_probability_exact(&range, &lf, 2, 4, 2, 5);
        let brute = brute_force(&range, 2, 4, 2, 5);
        assert!((exact - 246.0 / 252.0).abs() < 1e-10, "exact = {exact}");
        assert!((exact - brute).abs() < 1e-10);
    }

    #[test]
    fn matches_brute_force_type_i() {
        let lf = LnFactorials::up_to(128);
        let range = RoutingRange::from_cells(0, 0, 9, 7, NetType::TypeI);
        for x1 in 0..9 {
            for x2 in x1..9 {
                for y1 in 0..7 {
                    for y2 in y1..7 {
                        let exact = block_probability_exact(&range, &lf, x1, x2, y1, y2);
                        let brute = brute_force(&range, x1, x2, y1, y2);
                        assert!(
                            (exact - brute).abs() < 1e-9,
                            "block [{x1},{x2}]x[{y1},{y2}]: {exact} vs {brute}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn matches_brute_force_type_ii() {
        let lf = LnFactorials::up_to(128);
        let range = RoutingRange::from_cells(0, 0, 8, 6, NetType::TypeII);
        for x1 in 0..8 {
            for x2 in x1..8 {
                for y1 in 0..6 {
                    for y2 in y1..6 {
                        let exact = block_probability_exact(&range, &lf, x1, x2, y1, y2);
                        let brute = brute_force(&range, x1, x2, y1, y2);
                        assert!(
                            (exact - brute).abs() < 1e-9,
                            "block [{x1},{x2}]x[{y1},{y2}]: {exact} vs {brute}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn full_range_is_certain() {
        let lf = LnFactorials::up_to(64);
        for net_type in [NetType::TypeI, NetType::TypeII] {
            let range = RoutingRange::from_cells(0, 0, 7, 5, net_type);
            assert_eq!(block_probability_exact(&range, &lf, 0, 6, 0, 4), 1.0);
        }
    }

    #[test]
    fn pin_blocks_are_certain() {
        let lf = LnFactorials::up_to(64);
        let range = RoutingRange::from_cells(0, 0, 7, 5, NetType::TypeI);
        assert_eq!(block_probability_exact(&range, &lf, 0, 0, 0, 0), 1.0);
        assert_eq!(block_probability_exact(&range, &lf, 6, 6, 4, 4), 1.0);
        // Type II pins.
        let range2 = RoutingRange::from_cells(0, 0, 7, 5, NetType::TypeII);
        assert_eq!(block_probability_exact(&range2, &lf, 0, 0, 4, 4), 1.0);
        assert_eq!(block_probability_exact(&range2, &lf, 6, 6, 0, 0), 1.0);
    }

    #[test]
    fn monotone_in_block_size() {
        let lf = LnFactorials::up_to(128);
        let range = RoutingRange::from_cells(0, 0, 10, 8, NetType::TypeI);
        let small = block_probability_exact(&range, &lf, 3, 4, 3, 4);
        let bigger = block_probability_exact(&range, &lf, 3, 5, 3, 5);
        let biggest = block_probability_exact(&range, &lf, 2, 6, 2, 6);
        assert!(small <= bigger && bigger <= biggest);
        assert!(small > 0.0 && biggest <= 1.0);
    }

    #[test]
    fn corridor_blocks_certain() {
        let lf = LnFactorials::up_to(64);
        let row = RoutingRange::from_cells(0, 0, 9, 1, NetType::TypeI);
        assert_eq!(block_probability_exact(&row, &lf, 3, 5, 0, 0), 1.0);
    }

    #[test]
    fn clips_blocks_to_range() {
        let lf = LnFactorials::up_to(64);
        let range = RoutingRange::from_cells(0, 0, 6, 6, NetType::TypeI);
        let clipped = block_probability_exact(&range, &lf, 2, 40, 2, 40);
        let manual = block_probability_exact(&range, &lf, 2, 5, 2, 5);
        assert_eq!(clipped, manual);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_disjoint_block() {
        let lf = LnFactorials::up_to(64);
        let range = RoutingRange::from_cells(0, 0, 6, 6, NetType::TypeI);
        let _ = block_probability_exact(&range, &lf, 9, 12, 0, 3);
    }

    #[test]
    fn single_cell_blocks_match_formula2() {
        // A 1x1 block's crossing probability is Formula 2's cell
        // probability.
        let lf = LnFactorials::up_to(64);
        for net_type in [NetType::TypeI, NetType::TypeII] {
            let range = RoutingRange::from_cells(0, 0, 8, 6, net_type);
            for x in 0..8 {
                for y in 0..6 {
                    let block = block_probability_exact(&range, &lf, x, x, y, y);
                    let cell = range.cell_probability(&lf, x, y);
                    assert!(
                        (block - cell).abs() < 1e-9,
                        "{net_type:?} ({x},{y}): {block} vs {cell}"
                    );
                }
            }
        }
    }
}
