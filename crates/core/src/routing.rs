//! Discretized routing ranges and the Formula 1/2 route-count machinery.

use irgrid_geom::Point;

use crate::num::LnFactorials;
use crate::UnitGrid;

/// The pin orientation of a 2-pin net (paper §2, figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetType {
    /// One pin is lower-left of the other: in range-local coordinates the
    /// pins sit at `(0, 0)` and `(g1-1, g2-1)`.
    TypeI,
    /// One pin is upper-left of the other: pins at `(0, g2-1)` and
    /// `(g1-1, 0)`.
    TypeII,
}

/// A 2-pin net's routing range, discretized on the unit grid.
///
/// The routing range is the bounding box of the two pins (§2); on the
/// grid it covers `g1 × g2` unit cells whose lower-left cell sits at chip
/// cell `(x0, y0)`. Probabilities are expressed in *local* coordinates
/// `0 <= x < g1`, `0 <= y < g2` with the origin at the range's lower-left
/// cell, exactly as in Definition 1.
///
/// # Examples
///
/// ```
/// use irgrid_core::{NetType, RoutingRange, UnitGrid};
/// use irgrid_geom::{Point, Rect, Um};
///
/// let chip = Rect::from_origin_size(Point::ORIGIN, Um(300), Um(300));
/// let grid = UnitGrid::new(&chip, Um(30));
/// let range = RoutingRange::from_segment(
///     &grid,
///     Point::new(Um(0), Um(240)),
///     Point::new(Um(240), Um(0)),
/// );
/// assert_eq!(range.net_type(), NetType::TypeII);
/// assert_eq!((range.g1(), range.g2()), (9, 9));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RoutingRange {
    x0: i64,
    y0: i64,
    g1: i64,
    g2: i64,
    net_type: NetType,
}

impl RoutingRange {
    /// Discretizes the segment `a`–`b` on `grid`.
    ///
    /// Degenerate segments (pins in the same cell, row, or column) yield
    /// ranges with `g1 == 1` and/or `g2 == 1`; the probability formulas
    /// handle them uniformly (every cell of a corridor has probability 1).
    #[must_use]
    pub fn from_segment(grid: &UnitGrid, a: Point, b: Point) -> RoutingRange {
        let (ax, ay) = grid.cell_of(a);
        let (bx, by) = grid.cell_of(b);
        let x0 = ax.min(bx);
        let y0 = ay.min(by);
        let g1 = (ax - bx).abs() + 1;
        let g2 = (ay - by).abs() + 1;
        // Type II iff the pins are anti-diagonal: one upper-left of the
        // other. Aligned pins (same row/column) are treated as type I; the
        // two types coincide there.
        let net_type = if (ax - bx) * (ay - by) < 0 {
            NetType::TypeII
        } else {
            NetType::TypeI
        };
        RoutingRange {
            x0,
            y0,
            g1,
            g2,
            net_type,
        }
    }

    /// Builds a range directly from grid-cell coordinates (used by the
    /// Irregular-Grid model after cutting-line merging shifts range
    /// boundaries).
    ///
    /// # Panics
    ///
    /// Panics if `g1` or `g2` is not positive.
    #[must_use]
    pub fn from_cells(x0: i64, y0: i64, g1: i64, g2: i64, net_type: NetType) -> RoutingRange {
        assert!(
            g1 > 0 && g2 > 0,
            "range must cover at least one cell, got {g1}x{g2}"
        );
        RoutingRange {
            x0,
            y0,
            g1,
            g2,
            net_type,
        }
    }

    /// Chip-grid column of the range's leftmost cell.
    #[must_use]
    pub fn x0(&self) -> i64 {
        self.x0
    }

    /// Chip-grid row of the range's bottom cell.
    #[must_use]
    pub fn y0(&self) -> i64 {
        self.y0
    }

    /// Number of columns covered (`g1` in the paper).
    #[must_use]
    pub fn g1(&self) -> i64 {
        self.g1
    }

    /// Number of rows covered (`g2` in the paper).
    #[must_use]
    pub fn g2(&self) -> i64 {
        self.g2
    }

    /// The net's pin orientation.
    #[must_use]
    pub fn net_type(&self) -> NetType {
        self.net_type
    }

    /// The two pin cells in local coordinates.
    #[must_use]
    pub fn pin_cells(&self) -> [(i64, i64); 2] {
        match self.net_type {
            NetType::TypeI => [(0, 0), (self.g1 - 1, self.g2 - 1)],
            NetType::TypeII => [(0, self.g2 - 1), (self.g1 - 1, 0)],
        }
    }

    /// Whether local cell `(x, y)` lies inside the range.
    #[must_use]
    pub fn contains_local(&self, x: i64, y: i64) -> bool {
        (0..self.g1).contains(&x) && (0..self.g2).contains(&y)
    }

    /// `ln Ta(x, y)`: log route count from the first pin to local cell
    /// `(x, y)` (Formula 1); `-inf` outside the range.
    #[must_use]
    pub fn ln_ta(&self, lf: &LnFactorials, x: i64, y: i64) -> f64 {
        if !self.contains_local(x, y) {
            return f64::NEG_INFINITY;
        }
        match self.net_type {
            NetType::TypeI => lf.ln_binomial((x + y) as usize, y as usize),
            NetType::TypeII => {
                let dy = self.g2 - 1 - y;
                lf.ln_binomial((x + dy) as usize, x as usize)
            }
        }
    }

    /// `ln Tb(x, y)`: log route count from local cell `(x, y)` to the
    /// second pin (Formula 1); `-inf` outside the range.
    #[must_use]
    pub fn ln_tb(&self, lf: &LnFactorials, x: i64, y: i64) -> f64 {
        if !self.contains_local(x, y) {
            return f64::NEG_INFINITY;
        }
        match self.net_type {
            NetType::TypeI => {
                let n = self.g1 + self.g2 - 2 - (x + y);
                let k = self.g2 - 1 - y;
                lf.ln_binomial(n as usize, k as usize)
            }
            NetType::TypeII => {
                let dx = self.g1 - 1 - x;
                lf.ln_binomial((dx + y) as usize, dx as usize)
            }
        }
    }

    /// `ln` of the total route count between the pins.
    #[must_use]
    pub fn ln_total_routes(&self, lf: &LnFactorials) -> f64 {
        // Both types: C(g1 + g2 - 2, g1 - 1) monotone staircases.
        lf.ln_binomial((self.g1 + self.g2 - 2) as usize, (self.g1 - 1) as usize)
    }

    /// Formula 2: the probability that the net's route passes through
    /// local cell `(x, y)`. Zero outside the range; exactly 1 at pin
    /// cells and everywhere in single-row/column corridors.
    ///
    /// The table must cover `g1 + g2` (checked by the caller constructing
    /// it from the grid dimensions).
    #[must_use]
    pub fn cell_probability(&self, lf: &LnFactorials, x: i64, y: i64) -> f64 {
        if !self.contains_local(x, y) {
            return 0.0;
        }
        let ln_p = self.ln_ta(lf, x, y) + self.ln_tb(lf, x, y) - self.ln_total_routes(lf);
        ln_p.exp()
    }

    /// The largest factorial argument any probability evaluation on this
    /// range can need.
    #[must_use]
    pub fn max_factorial_arg(&self) -> usize {
        (self.g1 + self.g2) as usize
    }

    /// [`cell_probability`](Self::cell_probability) computed without any
    /// shared table: every binomial is rebuilt from `ln_gamma`, matching
    /// the arithmetic cost profile of the 2002 fixed-grid baseline (see
    /// [`CellArithmetic`](crate::CellArithmetic)). Identical results to
    /// within float rounding.
    #[must_use]
    pub fn cell_probability_gamma(&self, x: i64, y: i64) -> f64 {
        use crate::num::ln_binomial;
        if !self.contains_local(x, y) {
            return 0.0;
        }
        let (g1, g2) = (self.g1, self.g2);
        let (ln_ta, ln_tb) = match self.net_type {
            NetType::TypeI => (
                ln_binomial((x + y) as u64, y as u64),
                ln_binomial((g1 + g2 - 2 - (x + y)) as u64, (g2 - 1 - y) as u64),
            ),
            NetType::TypeII => {
                let dy = g2 - 1 - y;
                let dx = g1 - 1 - x;
                (
                    ln_binomial((x + dy) as u64, x as u64),
                    ln_binomial((dx + y) as u64, dx as u64),
                )
            }
        };
        let ln_total = ln_binomial((g1 + g2 - 2) as u64, (g1 - 1) as u64);
        (ln_ta + ln_tb - ln_total).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::num::binomial_u128;
    use irgrid_geom::{Rect, Um};

    fn grid() -> UnitGrid {
        let chip = Rect::from_origin_size(Point::ORIGIN, Um(3000), Um(3000));
        UnitGrid::new(&chip, Um(30))
    }

    fn pt(x: i64, y: i64) -> Point {
        Point::new(Um(x), Um(y))
    }

    #[test]
    fn from_segment_types() {
        let g = grid();
        // Lower-left to upper-right: type I.
        let r = RoutingRange::from_segment(&g, pt(0, 0), pt(300, 300));
        assert_eq!(r.net_type(), NetType::TypeI);
        assert_eq!((r.g1(), r.g2()), (11, 11));
        // Order-independent.
        let r2 = RoutingRange::from_segment(&g, pt(300, 300), pt(0, 0));
        assert_eq!(r, r2);
        // Upper-left to lower-right: type II.
        let r3 = RoutingRange::from_segment(&g, pt(0, 300), pt(300, 0));
        assert_eq!(r3.net_type(), NetType::TypeII);
        // Aligned pins: type I by convention.
        assert_eq!(
            RoutingRange::from_segment(&g, pt(0, 90), pt(300, 90)).net_type(),
            NetType::TypeI
        );
    }

    #[test]
    fn pin_cells_have_probability_one() {
        let lf = LnFactorials::up_to(64);
        for net_type in [NetType::TypeI, NetType::TypeII] {
            let r = RoutingRange::from_cells(0, 0, 7, 5, net_type);
            for (px, py) in r.pin_cells() {
                let p = r.cell_probability(&lf, px, py);
                assert!((p - 1.0).abs() < 1e-12, "{net_type:?} pin ({px},{py}): {p}");
            }
        }
    }

    #[test]
    fn corridor_cells_have_probability_one() {
        let lf = LnFactorials::up_to(64);
        let row = RoutingRange::from_cells(0, 0, 9, 1, NetType::TypeI);
        for x in 0..9 {
            assert!((row.cell_probability(&lf, x, 0) - 1.0).abs() < 1e-12);
        }
        let col = RoutingRange::from_cells(0, 0, 1, 9, NetType::TypeI);
        for y in 0..9 {
            assert!((col.cell_probability(&lf, 0, y) - 1.0).abs() < 1e-12);
        }
        let cell = RoutingRange::from_cells(0, 0, 1, 1, NetType::TypeI);
        assert!((cell.cell_probability(&lf, 0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_is_zero() {
        let lf = LnFactorials::up_to(64);
        let r = RoutingRange::from_cells(0, 0, 4, 4, NetType::TypeI);
        assert_eq!(r.cell_probability(&lf, -1, 0), 0.0);
        assert_eq!(r.cell_probability(&lf, 4, 0), 0.0);
        assert_eq!(r.cell_probability(&lf, 0, 4), 0.0);
    }

    #[test]
    fn route_counts_match_exact_binomials_type_i() {
        // Figure 6 of the paper: a 7x7 range with pins at (0,0) and (6,6);
        // Ta(x, y) = C(x+y, y).
        let lf = LnFactorials::up_to(64);
        let r = RoutingRange::from_cells(0, 0, 7, 7, NetType::TypeI);
        for x in 0..7i64 {
            for y in 0..7i64 {
                let expected = binomial_u128((x + y) as u64, y as u64) as f64;
                let got = r.ln_ta(&lf, x, y).exp();
                assert!(
                    (got - expected).abs() / expected < 1e-10,
                    "Ta({x},{y}) = {got}, want {expected}"
                );
            }
        }
        // Total routes C(12, 6) = 924... for 7x7: C(12,6) = 924.
        assert!((r.ln_total_routes(&lf).exp() - 924.0).abs() < 1e-6);
    }

    #[test]
    fn diagonal_probabilities_sum_to_one_type_i() {
        // Every monotone path crosses each anti-diagonal exactly once, so
        // probabilities on a diagonal sum to 1.
        let lf = LnFactorials::up_to(128);
        let r = RoutingRange::from_cells(0, 0, 9, 6, NetType::TypeI);
        for d in 0..(9 + 6 - 1) {
            let sum: f64 = (0..9).map(|x| r.cell_probability(&lf, x, d - x)).sum();
            assert!((sum - 1.0).abs() < 1e-10, "diagonal {d}: {sum}");
        }
    }

    #[test]
    fn diagonal_probabilities_sum_to_one_type_ii() {
        // For type II the paths run upper-left to lower-right; the
        // invariant diagonals are x - y = const shifted, i.e. cells with
        // x + (g2-1-y) = d.
        let lf = LnFactorials::up_to(128);
        let r = RoutingRange::from_cells(0, 0, 9, 6, NetType::TypeII);
        for d in 0..(9 + 6 - 1) {
            let sum: f64 = (0..9)
                .filter_map(|x| {
                    let y = 6 - 1 - (d - x);
                    ((0..6).contains(&y)).then(|| r.cell_probability(&lf, x, y))
                })
                .sum();
            assert!((sum - 1.0).abs() < 1e-10, "diagonal {d}: {sum}");
        }
    }

    #[test]
    fn type_ii_is_vertical_mirror_of_type_i() {
        let lf = LnFactorials::up_to(64);
        let ti = RoutingRange::from_cells(0, 0, 8, 5, NetType::TypeI);
        let tii = RoutingRange::from_cells(0, 0, 8, 5, NetType::TypeII);
        for x in 0..8 {
            for y in 0..5 {
                let a = ti.cell_probability(&lf, x, y);
                let b = tii.cell_probability(&lf, x, 5 - 1 - y);
                assert!((a - b).abs() < 1e-12, "mirror mismatch at ({x},{y})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn from_cells_rejects_empty() {
        let _ = RoutingRange::from_cells(0, 0, 0, 3, NetType::TypeI);
    }
}
