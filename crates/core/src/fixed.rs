//! The fixed-size-grid probabilistic congestion model (§3).
//!
//! A reimplementation of the model of Sham & Young [4] (probabilistic
//! analysis after Lou et al. [3]): the chip is divided into fixed-size
//! square grids; for every 2-pin net the crossing probability of each grid
//! in its routing range is computed from monotone route counts
//! (Formula 2); per-grid probabilities are summed over nets and the
//! floorplan is scored by the average of the top 10 % most congested
//! grids.
//!
//! With a small pitch (10 µm in the paper) this model doubles as the
//! **judging model** that independently scores solutions produced by any
//! floorplanner (§5).

use irgrid_geom::{Point, Rect, Um};

use crate::num::LnFactorials;
use crate::score::top_fraction_mean;
use crate::{CongestionModel, RoutingRange, UnitGrid};

/// The fixed-size-grid congestion model.
///
/// # Examples
///
/// ```
/// use irgrid_core::{CongestionModel, FixedGridModel};
/// use irgrid_geom::{Point, Rect, Um};
///
/// let chip = Rect::from_origin_size(Point::ORIGIN, Um(300), Um(300));
/// let segments = vec![(Point::new(Um(0), Um(0)), Point::new(Um(270), Um(270)))];
/// let model = FixedGridModel::new(Um(30));
/// let map = model.congestion_map(&chip, &segments);
/// // The corner grids on the net's diagonal are certain to be crossed.
/// assert!((map.value(0, 0) - 1.0).abs() < 1e-9);
/// assert!(model.evaluate(&chip, &segments) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedGridModel {
    pitch: Um,
    top_fraction_permille: u32,
    arithmetic: CellArithmetic,
}

/// How per-cell binomials are evaluated — a timing-fidelity knob for the
/// Table 5 reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CellArithmetic {
    /// Amortized: one `ln(n!)` table per map, three lookups per binomial.
    /// This is the fast modern implementation and the default.
    #[default]
    TableLookup,
    /// Era-faithful: every binomial recomputed from `ln_gamma` as the
    /// 2002 baseline describes, with no cross-cell caching. Same results,
    /// ~an order of magnitude slower — used when reproducing the paper's
    /// runtime comparison against the 2004-era baseline.
    PerCellGamma,
}

impl FixedGridModel {
    /// Creates the model with the given grid pitch and the paper's top-10 %
    /// scoring fraction.
    ///
    /// # Panics
    ///
    /// Panics if `pitch` is not positive.
    #[must_use]
    pub fn new(pitch: Um) -> FixedGridModel {
        assert!(pitch > Um::ZERO, "grid pitch must be positive, got {pitch}");
        FixedGridModel {
            pitch,
            top_fraction_permille: 100,
            arithmetic: CellArithmetic::TableLookup,
        }
    }

    /// Selects the per-cell arithmetic (see [`CellArithmetic`]).
    #[must_use]
    pub fn with_arithmetic(mut self, arithmetic: CellArithmetic) -> FixedGridModel {
        self.arithmetic = arithmetic;
        self
    }

    /// The paper's judging model: a 10×10 µm² fixed grid (§5).
    #[must_use]
    pub fn judging() -> FixedGridModel {
        FixedGridModel::new(Um(10))
    }

    /// Overrides the scoring fraction (default 10 %).
    ///
    /// # Panics
    ///
    /// Panics if `permille` is 0 or greater than 1000.
    #[must_use]
    pub fn with_top_fraction_permille(mut self, permille: u32) -> FixedGridModel {
        assert!(
            permille > 0 && permille <= 1000,
            "permille must be in 1..=1000, got {permille}"
        );
        self.top_fraction_permille = permille;
        self
    }

    /// The grid pitch.
    #[must_use]
    pub fn pitch(&self) -> Um {
        self.pitch
    }

    /// Computes the full congestion map of a floorplan.
    ///
    /// `segments` are the 2-pin nets after MST decomposition (see
    /// `irgrid_floorplan::two_pin_segments`); pins outside the chip are
    /// clamped to the boundary grid cells.
    ///
    /// # Panics
    ///
    /// Panics if `chip` is degenerate or not at the origin.
    #[must_use]
    pub fn congestion_map(&self, chip: &Rect, segments: &[(Point, Point)]) -> FixedCongestionMap {
        let grid = UnitGrid::new(chip, self.pitch);
        let mut values = vec![0.0f64; grid.cell_count()];
        let cols = grid.cols();

        // irgrid-lint: allow(C1): grid dimensions are positive and far below 2^31
        let max_arg = (grid.cols() + grid.rows() + 2) as usize;
        let lf = LnFactorials::up_to(max_arg);

        for &(a, b) in segments {
            let range = RoutingRange::from_segment(&grid, a, b);
            for y in 0..range.g2() {
                let row_base = (range.y0() + y) * cols + range.x0();
                for x in 0..range.g1() {
                    // irgrid-lint: allow(C1): row-major index, non-negative and < cell_count
                    values[(row_base + x) as usize] += match self.arithmetic {
                        CellArithmetic::TableLookup => range.cell_probability(&lf, x, y),
                        CellArithmetic::PerCellGamma => range.cell_probability_gamma(x, y),
                    };
                }
            }
        }

        FixedCongestionMap {
            grid,
            values,
            top_fraction: f64::from(self.top_fraction_permille) / 1000.0,
        }
    }
}

impl CongestionModel for FixedGridModel {
    fn evaluate(&self, chip: &Rect, segments: &[(Point, Point)]) -> f64 {
        self.congestion_map(chip, segments).cost()
    }

    fn name(&self) -> String {
        format!("fixed-grid {}x{}", self.pitch, self.pitch)
    }
}

impl crate::RetainedCongestion for FixedGridModel {
    type Session = crate::StatelessSession<FixedGridModel>;

    fn session(&self) -> Self::Session {
        crate::StatelessSession::new(*self)
    }
}

impl crate::DeltaCongestion for FixedGridModel {
    type DeltaSession = crate::StatelessDeltaSession<FixedGridModel>;

    fn delta_session(&self) -> Self::DeltaSession {
        crate::StatelessDeltaSession::new(*self)
    }
}

/// The per-grid congestion values produced by [`FixedGridModel`].
#[derive(Debug, Clone)]
pub struct FixedCongestionMap {
    grid: UnitGrid,
    values: Vec<f64>,
    top_fraction: f64,
}

impl FixedCongestionMap {
    /// The underlying grid.
    #[must_use]
    pub fn grid(&self) -> &UnitGrid {
        &self.grid
    }

    /// The congestion value `f(x, y) = Σᵢ Pᵢ(x, y)` of one grid cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range.
    #[must_use]
    pub fn value(&self, x: i64, y: i64) -> f64 {
        assert!(
            (0..self.grid.cols()).contains(&x) && (0..self.grid.rows()).contains(&y),
            "cell ({x}, {y}) outside {}x{} grid",
            self.grid.cols(),
            self.grid.rows()
        );
        // irgrid-lint: allow(C1): row-major index, asserted in range just above
        self.values[(y * self.grid.cols() + x) as usize]
    }

    /// All cell values in row-major order.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of grid cells (reported in Table 5 as "# of grid").
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.values.len()
    }

    /// The floorplan congestion cost: mean of the top 10 % (or configured
    /// fraction) most congested grids.
    #[must_use]
    pub fn cost(&self) -> f64 {
        top_fraction_mean(&self.values, self.top_fraction)
    }

    /// The maximum cell congestion.
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max) // irgrid-lint: allow(D2): max is order-independent
    }

    /// Total congestion mass: `Σ f(x, y)`. For one net this equals the
    /// expected number of grids its route crosses, a useful invariant in
    /// tests.
    #[must_use]
    pub fn total_mass(&self) -> f64 {
        self.values.iter().sum() // irgrid-lint: allow(D2): serial in-order sum over the dense row-major Vec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip(w: i64, h: i64) -> Rect {
        Rect::from_origin_size(Point::ORIGIN, Um(w), Um(h))
    }

    fn pt(x: i64, y: i64) -> Point {
        Point::new(Um(x), Um(y))
    }

    #[test]
    fn single_diagonal_net() {
        let model = FixedGridModel::new(Um(30));
        let map = model.congestion_map(&chip(300, 300), &[(pt(0, 0), pt(270, 270))]);
        // Pins at cells (0,0) and (9,9): probability 1 at both.
        assert!((map.value(0, 0) - 1.0).abs() < 1e-9);
        assert!((map.value(9, 9) - 1.0).abs() < 1e-9);
        // The anti-diagonal corner is reachable only by the single
        // all-up-then-all-right staircase: probability 1/C(18,9).
        assert!((map.value(0, 9) - 1.0 / 48_620.0).abs() < 1e-12);
        // Center cells are the least certain on their diagonal.
        assert!(map.value(4, 4) < 1.0);
        assert!(map.value(4, 4) > 0.0);
    }

    #[test]
    fn mass_equals_expected_crossed_cells() {
        // For one net, sum over the diagonals: each of the g1+g2-1
        // diagonals contributes exactly 1.
        let model = FixedGridModel::new(Um(30));
        let map = model.congestion_map(&chip(300, 300), &[(pt(0, 0), pt(270, 270))]);
        let expected = (10 + 10 - 1) as f64;
        assert!(
            (map.total_mass() - expected).abs() < 1e-8,
            "mass {} vs {expected}",
            map.total_mass()
        );
    }

    #[test]
    fn superposition_of_nets() {
        let model = FixedGridModel::new(Um(30));
        let seg = (pt(0, 0), pt(270, 270));
        let one = model.congestion_map(&chip(300, 300), &[seg]);
        let two = model.congestion_map(&chip(300, 300), &[seg, seg]);
        for (a, b) in one.values().iter().zip(two.values()) {
            assert!((2.0 * a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn type_ii_net_fills_its_corners() {
        let model = FixedGridModel::new(Um(30));
        let map = model.congestion_map(&chip(300, 300), &[(pt(0, 270), pt(270, 0))]);
        assert!((map.value(0, 9) - 1.0).abs() < 1e-9);
        assert!((map.value(9, 0) - 1.0).abs() < 1e-9);
        // The off-pin corners are reachable by exactly one staircase each.
        assert!((map.value(0, 0) - 1.0 / 48_620.0).abs() < 1e-12);
        assert!((map.value(9, 9) - 1.0 / 48_620.0).abs() < 1e-12);
    }

    #[test]
    fn aligned_net_is_a_certain_corridor() {
        let model = FixedGridModel::new(Um(30));
        let map = model.congestion_map(&chip(300, 300), &[(pt(15, 45), pt(255, 45))]);
        for x in 0..9 {
            assert!((map.value(x, 1) - 1.0).abs() < 1e-9, "x = {x}");
        }
        assert_eq!(map.value(0, 0), 0.0);
    }

    #[test]
    fn cost_tracks_concentration() {
        let model = FixedGridModel::new(Um(30));
        // Ten overlapping nets through one corridor vs ten spread nets.
        let hot: Vec<(Point, Point)> = (0..10).map(|_| (pt(15, 45), pt(255, 45))).collect();
        let spread: Vec<(Point, Point)> = (0..10)
            .map(|i| (pt(15, 15 + 30 * i), pt(255, 15 + 30 * i)))
            .collect();
        let hot_cost = model.evaluate(&chip(300, 300), &hot);
        let spread_cost = model.evaluate(&chip(300, 300), &spread);
        assert!(
            hot_cost > spread_cost,
            "hot {hot_cost} must exceed spread {spread_cost}"
        );
    }

    #[test]
    fn empty_segments_score_zero() {
        let model = FixedGridModel::new(Um(30));
        assert_eq!(model.evaluate(&chip(300, 300), &[]), 0.0);
    }

    #[test]
    fn judging_model_pitch() {
        assert_eq!(FixedGridModel::judging().pitch(), Um(10));
    }

    #[test]
    fn pins_outside_chip_are_clamped() {
        let model = FixedGridModel::new(Um(30));
        let map = model.congestion_map(&chip(300, 300), &[(pt(-50, -50), pt(500, 500))]);
        assert!((map.value(0, 0) - 1.0).abs() < 1e-9);
        assert!((map.value(9, 9) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "pitch must be positive")]
    fn zero_pitch_rejected() {
        let _ = FixedGridModel::new(Um(0));
    }

    #[test]
    fn arithmetic_modes_agree() {
        let chip = chip(600, 600);
        let segments = vec![
            (pt(30, 30), pt(540, 420)),
            (pt(60, 510), pt(480, 90)),
            (pt(120, 150), pt(120, 450)),
        ];
        let table = FixedGridModel::new(Um(30)).congestion_map(&chip, &segments);
        let gamma = FixedGridModel::new(Um(30))
            .with_arithmetic(CellArithmetic::PerCellGamma)
            .congestion_map(&chip, &segments);
        for (a, b) in table.values().iter().zip(gamma.values()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn name_mentions_pitch() {
        assert_eq!(FixedGridModel::new(Um(50)).name(), "fixed-grid 50umx50um");
    }
}
