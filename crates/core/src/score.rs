//! Congestion scoring: the "top 10 % most congested" metrics.
//!
//! The fixed-grid model scores a floorplan as the *average of the top 10 %
//! most congested grids* (§3). The Irregular-Grid model scores the
//! *average congestion of the top 10 % most congested area units* (§4.3,
//! Algorithm step 5): IR-grids differ in size, so their totals are first
//! converted to per-area densities and then area-weighted.

/// Mean of the largest `fraction` of `values` (the fixed-grid score).
///
/// At least one value is always taken for a non-empty input; an empty
/// input scores 0 (an empty chip is uncongested).
///
/// # Panics
///
/// Panics if `fraction` is not in `(0, 1]`.
///
/// # Examples
///
/// ```
/// use irgrid_core::score::top_fraction_mean;
///
/// let cells = vec![0.0, 1.0, 2.0, 10.0, 4.0, 0.5, 0.2, 0.1, 3.0, 0.3];
/// // Top 10% of 10 cells = the single largest.
/// assert_eq!(top_fraction_mean(&cells, 0.1), 10.0);
/// ```
#[must_use]
pub fn top_fraction_mean(values: &[f64], fraction: f64) -> f64 {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0, 1], got {fraction}"
    );
    if values.is_empty() {
        return 0.0;
    }
    let take = ((values.len() as f64 * fraction).ceil() as usize).clamp(1, values.len());
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    // irgrid-lint: allow(D2): serial in-order sum over the sorted top slice; one fixed order
    sorted[..take].iter().sum::<f64>() / take as f64
}

/// Area-weighted mean density over the most congested `fraction` of the
/// total area (the Irregular-Grid score).
///
/// `cells` holds `(density, area)` pairs. Cells are taken in decreasing
/// density order until `fraction` of the total area is covered; the last
/// cell is taken partially so exactly the target area is averaged.
///
/// # Panics
///
/// Panics if `fraction` is not in `(0, 1]` or any area is negative.
///
/// # Examples
///
/// ```
/// use irgrid_core::score::top_area_fraction_mean;
///
/// // One hot small cell (density 10, area 1) in a cool chip (area 9).
/// let cells = vec![(10.0, 1.0), (0.0, 9.0)];
/// // Top 10% of area (= 1.0) is exactly the hot cell.
/// assert_eq!(top_area_fraction_mean(&cells, 0.1), 10.0);
/// // Top 20% of area averages the hot cell with an equal amount of cool.
/// assert_eq!(top_area_fraction_mean(&cells, 0.2), 5.0);
/// ```
#[must_use]
pub fn top_area_fraction_mean(cells: &[(f64, f64)], fraction: f64) -> f64 {
    let mut sorted = cells.to_vec();
    top_area_fraction_mean_in_place(&mut sorted, fraction)
}

/// [`top_area_fraction_mean`] sorting the caller's buffer in place, so a
/// retained evaluator can score without allocating. Identical result
/// (same stable sort, same accumulation order).
///
/// # Panics
///
/// Panics if `fraction` is not in `(0, 1]` or any area is negative.
#[must_use]
pub fn top_area_fraction_mean_in_place(cells: &mut [(f64, f64)], fraction: f64) -> f64 {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0, 1], got {fraction}"
    );
    let total_area: f64 = cells
        .iter()
        .map(|&(_, a)| {
            assert!(a >= 0.0, "cell areas must be non-negative, got {a}");
            a
        })
        .sum(); // irgrid-lint: allow(D2): serial in-order area sum over the caller's slice
    if total_area <= 0.0 {
        return 0.0;
    }
    let target = total_area * fraction;
    cells.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut remaining = target;
    let mut weighted = 0.0;
    for &(density, area) in cells.iter() {
        let take = area.min(remaining);
        weighted += density * take;
        remaining -= take;
        if remaining <= 0.0 {
            break;
        }
    }
    weighted / target
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_fraction_takes_at_least_one() {
        assert_eq!(top_fraction_mean(&[3.0, 1.0], 0.1), 3.0);
    }

    #[test]
    fn top_fraction_full_is_plain_mean() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((top_fraction_mean(&v, 1.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn top_fraction_empty_is_zero() {
        assert_eq!(top_fraction_mean(&[], 0.1), 0.0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn top_fraction_rejects_zero_fraction() {
        let _ = top_fraction_mean(&[1.0], 0.0);
    }

    #[test]
    fn top_fraction_is_monotone_in_values() {
        let low = [1.0, 1.0, 1.0, 1.0, 1.0];
        let high = [1.0, 1.0, 1.0, 1.0, 9.0];
        assert!(top_fraction_mean(&high, 0.2) > top_fraction_mean(&low, 0.2));
    }

    #[test]
    fn area_weighted_partial_last_cell() {
        // density 4 on area 2, density 1 on area 8; top 30% area = 3:
        // 2 units of density 4 + 1 unit of density 1 -> (8 + 1)/3 = 3.
        let cells = [(4.0, 2.0), (1.0, 8.0)];
        assert!((top_area_fraction_mean(&cells, 0.3) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn area_weighted_uniform_matches_density() {
        let cells = [(2.5, 1.0), (2.5, 5.0), (2.5, 0.5)];
        assert!((top_area_fraction_mean(&cells, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn area_weighted_empty_or_zero_area() {
        assert_eq!(top_area_fraction_mean(&[], 0.1), 0.0);
        assert_eq!(top_area_fraction_mean(&[(5.0, 0.0)], 0.1), 0.0);
    }

    #[test]
    fn area_weighted_equal_cells_reduces_to_top_fraction() {
        // With equal areas the two metrics agree when the fraction selects
        // whole cells.
        let densities = [5.0, 1.0, 3.0, 2.0];
        let cells: Vec<(f64, f64)> = densities.iter().map(|&d| (d, 1.0)).collect();
        assert!(
            (top_area_fraction_mean(&cells, 0.5) - top_fraction_mean(&densities, 0.5)).abs()
                < 1e-12
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn area_weighted_rejects_negative_area() {
        let _ = top_area_fraction_mean(&[(1.0, -1.0)], 0.1);
    }
}
