//! # The mathematics of the congestion models
//!
//! This module contains no code — it is the workspace's annotated
//! derivation of the formulas implemented in [`crate::routing`],
//! [`crate::fixed`] and [`crate::irregular`], written for readers who
//! want to audit the implementation against the paper (Hsieh & Hsieh,
//! *A New Effective Congestion Model in Floorplan Design*, DATE 2004).
//!
//! ## 1. The route ensemble (§2)
//!
//! A 2-pin net routes along a *shortest* Manhattan path inside the
//! bounding box of its pins (over-the-cell, multi-bend). On a grid where
//! the bounding box covers `g1 × g2` cells, every shortest path is a
//! monotone staircase taking `g1 - 1` horizontal and `g2 - 1` vertical
//! unit steps, so the ensemble has
//!
//! ```text
//! T = C(g1 + g2 - 2, g1 - 1)
//! ```
//!
//! members, each assumed equally likely. Pins lower-left/upper-right of
//! each other give a **type I** net; upper-left/lower-right give
//! **type II** (a vertical mirror image — the implementation evaluates
//! type II by mirroring, and the tests verify the symmetry).
//!
//! ## 2. Per-cell probabilities (Formula 1/2, [`RoutingRange::cell_probability`])
//!
//! The number of monotone prefixes from the first pin to cell `(x, y)`
//! (local coordinates, origin at the range's lower-left cell) is
//! `Ta(x, y) = C(x + y, y)` for type I, and the suffix count `Tb` is the
//! same binomial from the mirrored corner. Since prefix and suffix are
//! chosen independently,
//!
//! ```text
//! P(net crosses (x, y)) = Ta(x, y) · Tb(x, y) / T        (Formula 2)
//! ```
//!
//! Useful invariants (all property-tested):
//!
//! * `P = 1` at both pin cells and everywhere in a single-row/column
//!   corridor;
//! * every route crosses each anti-diagonal `x + y = d` exactly once, so
//!   per-diagonal probabilities sum to 1;
//! * summing over the whole range gives `g1 + g2 - 1`, the number of
//!   cells any route crosses.
//!
//! Binomials overflow `u64` beyond ~60-cell ranges, so production code
//! works in log space with a cached `ln(n!)` table
//! ([`crate::num::LnFactorials`]); an exact `u128` binomial is kept as
//! the test oracle.
//!
//! ## 3. Block-crossing probabilities (Formula 3, [`crate::irregular::block_probability_exact`])
//!
//! For a rectangular block `[x1..x2] × [y1..y2]` of cells, a monotone
//! route crosses the block iff it visits at least one block cell, and it
//! *leaves* the block exactly once — upward through the top row or
//! rightward through the right column (type I). Summing the exit events:
//!
//! ```text
//! P(cross) = [ Σₓ Ta(x, y2)·Tb(x, y2+1)  +  Σ_y Ta(x2, y)·Tb(x2+1, y) ] / T
//! ```
//!
//! Blocks containing a pin are crossed with probability 1 and never
//! evaluated (Algorithm step 3.1). The paper's figure 6 works this out
//! for a 6×6 range and block `{2..4}×{2..5}`; its term list totals
//! 245/252, but the formula — and exhaustive path counting — give
//! **246**/252 (one exit term is missing from the paper's list). The
//! test suite pins the brute-force value.
//!
//! ## 4. The Theorem 1 approximation ([`crate::irregular::block_probability_approx`])
//!
//! Each exit term, normalized by `T`, is a hypergeometric-like function
//! of the exit coordinate. Hypergeometric ≈ binomial ≈ normal, so §4.4
//! approximates the summand at continuous `x` by
//!
//! ```text
//! f(x) = (g2-1)/(g1+g2-2) · φ(x; μ(x), σ(x))
//! μ(x)  = (g1-1)·q,   q = (x + y2)/(g1 + g2 - 3)
//! σ²(x) = (g2-2)/(g1+g2-4) · (g1-1) · q(1-q)
//! ```
//!
//! and replaces the sum by a definite integral evaluated with Simpson's
//! rule — a constant amount of work per block regardless of its size.
//! Two implementation details matter (both ablated in the bench suite):
//!
//! * **continuity correction**: the sum over integers `x1..x2`
//!   corresponds to the integral over `[x1-½, x2+½]`; taking the paper's
//!   literal bounds makes one-cell-wide blocks integrate to zero;
//! * **peak localization**: `μ(x)` is affine in `x`, so the integrand is
//!   a near-Gaussian bump centered on the stationary point
//!   `x* = (g1-1)·y2/(g2-2)` with effective width
//!   `σ_eff = σ(x*)·(g1+g2-3)/(g2-2)`. Clipping the integration window
//!   to `±8·σ_eff` and scaling the Simpson interval count to the clipped
//!   width keeps wide blocks (full-height strips) accurate while staying
//!   O(1).
//!
//! §4.5's degenerate points (`q ∉ (0, 1)`, the four cells adjacent to
//! the pins) are guarded to zero; the Irregular-Grid construction
//! guarantees they share an IR-grid with their pin (scored 1) because
//! cutting lines closer than twice the pitch are merged.
//!
//! ## 5. The Irregular-Grid (§4.2, [`crate::IrregularGridModel`])
//!
//! Each routing range contributes its four boundary lines as cutting
//! lines; together with the chip boundary they partition the chip into
//! IR-grids. After merging close lines (step 2), every net's snapped
//! range is a whole number of IR-grids, each scored with one Theorem 1
//! evaluation. Since IR-grids differ in area, the per-grid total
//! `F(I) = Σᵢ Pᵢ(I)` is normalized to a *density* per unit cell, and the
//! floorplan score is the area-weighted mean density of the top 10 %
//! most congested area (Algorithm step 5).
//!
//! ## 6. Baselines
//!
//! * [`crate::FixedGridModel`] (§3, after Sham & Young): Formula 2 on a
//!   uniform grid; the 10 µm configuration is the paper's judging model.
//! * [`crate::LzShapeModel`] (Lou et al.): same idea but the ensemble is
//!   restricted to 1-bend (L) and 2-bend (Z) routes — `g1 + g2 - 2`
//!   routes hugging the range boundary.
//!
//! [`RoutingRange::cell_probability`]: crate::RoutingRange::cell_probability

// This module is documentation-only.
