//! Q32 fixed-point quantization for the delta congestion accumulator.
//!
//! Incremental evaluation must be bit-identical to a from-scratch
//! rebuild, but floating-point addition is not associative: subtracting a
//! range's old contribution and re-adding its new one visits cells in a
//! different order than a rebuild would, so `f64` accumulation drifts.
//! The delta evaluator therefore accumulates per-cell probabilities as
//! integers: each probability `p ∈ [0, 1]` is quantized once to
//! `round(p · 2³²)` and the per-cell totals are `i64` sums of those
//! integers. Integer addition is associative and commutative, so *any*
//! insertion/removal order reproduces the rebuild totals exactly — no
//! tolerance band and no periodic resynchronization.
//!
//! Headroom: a cell crossed by `n` ranges totals at most `n · 2³²`,
//! which `i64` holds for `n` up to ~2³⁰ — far beyond any floorplan
//! netlist. Dequantization divides by the power-of-two scale, which is
//! exact for every total below 2⁵³ (ami49 peaks near 2⁴²).

/// Fractional bits of the quantized probability representation.
pub const PROBABILITY_FRACTION_BITS: u32 = 32;

/// `2³²` as an `f64`; exact, since powers of two are representable.
// irgrid-lint: allow(C1): 1 << 32 fits u64 and is exactly representable in f64
const SCALE: f64 = (1u64 << PROBABILITY_FRACTION_BITS) as f64;

/// Quantizes a probability to Q32 fixed point, clamping to `[0, 1]`
/// first (scoring kernels can overshoot 1 by an ulp).
///
/// The result is in `0..=2³²`; quantization is deterministic (`round`
/// ties away from zero, the IEEE default for `f64::round`).
#[must_use]
pub fn quantize_probability(p: f64) -> i64 {
    let clamped = if p.is_finite() {
        p.clamp(0.0, 1.0)
    } else {
        0.0
    };
    // irgrid-lint: allow(C1): clamped·2³² is in [0, 2³²] ⊂ i64 after round
    (clamped * SCALE).round() as i64
}

/// Converts an `i64` sum of quantized probabilities back to `f64`.
///
/// Exact (hence deterministic) whenever `|total| < 2⁵³`: the division by
/// a power of two only changes the exponent.
#[must_use]
pub fn dequantize_total(total: i64) -> f64 {
    // irgrid-lint: allow(C1): totals stay far below 2⁵³, where i64→f64 is exact
    (total as f64) / SCALE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_are_exact() {
        assert_eq!(quantize_probability(0.0), 0);
        assert_eq!(quantize_probability(1.0), 1i64 << 32);
        assert_eq!(dequantize_total(0), 0.0);
        assert_eq!(dequantize_total(1i64 << 32), 1.0);
    }

    #[test]
    fn out_of_range_inputs_clamp() {
        assert_eq!(quantize_probability(-0.25), 0);
        assert_eq!(quantize_probability(1.0 + 1e-12), 1i64 << 32);
        assert_eq!(quantize_probability(f64::NAN), 0);
        assert_eq!(quantize_probability(f64::INFINITY), 0);
    }

    #[test]
    fn roundtrip_error_bounded_by_half_ulp() {
        for k in 0..=1000 {
            let p = f64::from(k) / 1000.0;
            let q = quantize_probability(p);
            assert!((dequantize_total(q) - p).abs() <= 0.5 / (SCALE));
        }
    }

    #[test]
    fn sums_are_order_independent() {
        // The whole point: permuting additions/subtractions cannot change
        // an integer total, unlike f64.
        let parts: Vec<i64> = (0..50)
            .map(|k| quantize_probability(f64::from(k).sin().abs()))
            .collect();
        let forward: i64 = parts.iter().sum();
        let backward: i64 = parts.iter().rev().sum();
        assert_eq!(forward, backward);
        let mut with_churn = forward;
        for &p in &parts {
            with_churn -= p;
            with_churn += p;
        }
        assert_eq!(with_churn, forward);
    }
}
