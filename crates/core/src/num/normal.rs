//! The normal probability density and cumulative distribution.

/// The normal density `φ(x; μ, σ)`.
///
/// Returns 0 when `sigma` is not finite and positive — in the Theorem 1
/// integrand a collapsed variance marks a point adjacent to a pin, whose
/// IR-grid is scored as probability 1 elsewhere (Algorithm step 3.1), so
/// contributing nothing here is the correct behaviour.
///
/// # Examples
///
/// ```
/// use irgrid_core::num::normal_pdf;
///
/// let peak = normal_pdf(0.0, 0.0, 1.0);
/// assert!((peak - 0.398_942_280_401).abs() < 1e-9);
/// assert_eq!(normal_pdf(0.0, 0.0, 0.0), 0.0);
/// ```
#[must_use]
pub fn normal_pdf(x: f64, mu: f64, sigma: f64) -> f64 {
    if !(sigma.is_finite() && sigma > 0.0) {
        return 0.0;
    }
    let z = (x - mu) / sigma;
    (-0.5 * z * z).exp() / (sigma * (2.0 * std::f64::consts::PI).sqrt())
}

/// The error function `erf(x)`, via the Abramowitz & Stegun 7.1.26
/// rational approximation (maximum absolute error `1.5e-7` — three
/// orders of magnitude below the Theorem 1 normal approximation's own
/// deviation from the exact route counts).
///
/// Only elementary arithmetic and `exp` are used, so evaluation is
/// deterministic for a given platform's libm, matching the rest of the
/// congestion pipeline.
///
/// # Examples
///
/// ```
/// use irgrid_core::num::erf;
///
/// assert_eq!(erf(0.0), 0.0);
/// assert!((erf(1.0) - 0.842_700_792_9).abs() < 2e-7);
/// assert!((erf(-1.0) + erf(1.0)).abs() < 1e-15); // odd
/// ```
#[must_use]
pub fn erf(x: f64) -> f64 {
    erf_with_gauss(x).0
}

/// `(erf(x), exp(−x²))` for the price of a single `exp`.
///
/// The A&S rational approximation of `erf` already evaluates `exp(−x²)`
/// internally; integrators built on normal-CDF antiderivatives (the
/// delta evaluator's `ExitCdf`) need both values at every cell boundary,
/// so sharing the exponential halves the transcendental count on the
/// hottest loop in the codebase.
///
/// # Examples
///
/// ```
/// use irgrid_core::num::{erf, erf_with_gauss};
///
/// let (e, g) = erf_with_gauss(1.25);
/// assert_eq!(e, erf(1.25));
/// assert_eq!(g, (-1.25f64 * 1.25).exp());
/// ```
#[must_use]
pub fn erf_with_gauss(x: f64) -> (f64, f64) {
    const P: f64 = 0.327_591_1;
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    if x == 0.0 {
        // The A&S coefficients sum to 1 only approximately; pin the odd
        // function's root so erf(0) = 0 and Φ(0) = 1/2 hold exactly.
        return (0.0, 1.0);
    }
    let ax = x.abs();
    let gauss = (-ax * ax).exp();
    let t = 1.0 / (1.0 + P * ax);
    let poly = t * (A1 + t * (A2 + t * (A3 + t * (A4 + t * A5))));
    let magnitude = 1.0 - poly * gauss;
    let signed = if x < 0.0 { -magnitude } else { magnitude };
    (signed, gauss)
}

/// Tabulated `(erf(x), exp(−x²))` with linear interpolation — the fast
/// path of [`erf_with_gauss`] for inner loops that evaluate millions of
/// antiderivative boundaries per floorplan move.
///
/// The table samples [`erf_with_gauss`] on `|x| ∈ [0, 6.5]` at step
/// `1/128`; linear interpolation keeps the absolute error under `2e-5`
/// (bounded by `h²·max|f''|/8`: `≈7.4e-6` for `erf`, `≈1.5e-5` for the
/// Gaussian), three orders of magnitude below the congestion model's
/// own approximation error. Beyond the cutoff `erf` has saturated and the Gaussian has
/// underflowed to 0 at f64 precision, so the tails are exact. The table
/// is a pure function of nothing, so results are deterministic and
/// identical across sessions.
///
/// # Examples
///
/// ```
/// use irgrid_core::num::{erf_gauss_lut, erf_with_gauss};
///
/// let (e, g) = erf_gauss_lut(0.8);
/// let (ee, eg) = erf_with_gauss(0.8);
/// assert!((e - ee).abs() < 1e-5 && (g - eg).abs() < 2e-5);
/// assert_eq!(erf_gauss_lut(9.0), (1.0, 0.0));
/// ```
#[must_use]
pub fn erf_gauss_lut(x: f64) -> (f64, f64) {
    /// Samples per unit of `|x|`.
    const STEP_INV: f64 = 128.0;
    /// Cutoff beyond which `erf(x) = 1` and `exp(−x²) = 0` to f64
    /// round-off (`exp(−6.5²) · poly < 1e-19`).
    const CUTOFF: f64 = 6.5;
    const LEN: usize = (6.5 * 128.0) as usize + 2; // irgrid-lint: allow(C1): exact small constant product
    static TABLE: std::sync::OnceLock<Vec<(f64, f64)>> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        (0..LEN)
            .map(|i| erf_with_gauss(i as f64 / STEP_INV)) // irgrid-lint: allow(C1): table index, exact in f64
            .collect()
    });
    let ax = x.abs();
    if ax >= CUTOFF {
        return (x.signum(), 0.0);
    }
    let u = ax * STEP_INV;
    let i = u as usize; // irgrid-lint: allow(C1): u ∈ [0, 832) by the cutoff, truncation intended
    let frac = u - i as f64; // irgrid-lint: allow(C1): table index, exact in f64
    let (e0, g0) = table[i];
    let (e1, g1) = table[i + 1];
    let erf_ax = e0 + (e1 - e0) * frac;
    let gauss = g0 + (g1 - g0) * frac;
    (if x < 0.0 { -erf_ax } else { erf_ax }, gauss)
}

/// The standard normal cumulative distribution `Φ(z)`.
///
/// # Examples
///
/// ```
/// use irgrid_core::num::normal_cdf;
///
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-15);
/// assert!((normal_cdf(1.959_963_985) - 0.975).abs() < 1e-6);
/// assert!(normal_cdf(-9.0) < 1e-7 && normal_cdf(9.0) > 1.0 - 1e-7);
/// ```
#[must_use]
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::num::simpson;

    #[test]
    fn integrates_to_one() {
        let mass = simpson(-8.0, 8.0, 512, |x| normal_pdf(x, 0.0, 1.0));
        assert!((mass - 1.0).abs() < 1e-10, "mass {mass}");
    }

    #[test]
    fn symmetric_about_mean() {
        for d in [0.1, 0.5, 1.7] {
            assert!((normal_pdf(3.0 + d, 3.0, 2.0) - normal_pdf(3.0 - d, 3.0, 2.0)).abs() < 1e-15);
        }
    }

    #[test]
    fn scales_with_sigma() {
        // Peak height is 1/(sigma*sqrt(2*pi)).
        assert!(normal_pdf(0.0, 0.0, 0.5) > normal_pdf(0.0, 0.0, 1.0));
    }

    #[test]
    fn degenerate_sigma_is_zero() {
        assert_eq!(normal_pdf(1.0, 1.0, 0.0), 0.0);
        assert_eq!(normal_pdf(1.0, 1.0, -2.0), 0.0);
        assert_eq!(normal_pdf(1.0, 1.0, f64::NAN), 0.0);
    }

    #[test]
    fn cdf_matches_integrated_pdf() {
        // Φ(b) − Φ(a) against a fine Simpson pass over the density.
        for (a, b) in [(-1.0, 1.0), (0.3, 2.4), (-3.5, -0.2), (-6.0, 6.0)] {
            let quad = simpson(a, b, 2048, |x| normal_pdf(x, 0.0, 1.0));
            let cdf = normal_cdf(b) - normal_cdf(a);
            assert!((quad - cdf).abs() < 1e-6, "[{a},{b}]: {quad} vs {cdf}");
        }
    }

    #[test]
    fn lut_tracks_exact_erf_pair() {
        let mut x = -8.0;
        while x <= 8.0 {
            let (le, lg) = erf_gauss_lut(x);
            let (ee, eg) = erf_with_gauss(x);
            assert!((le - ee).abs() < 1e-5, "erf lut at {x}: {le} vs {ee}");
            assert!((lg - eg).abs() < 2e-5, "gauss lut at {x}: {lg} vs {eg}");
            x += 0.003;
        }
        // Odd/even symmetry is exact.
        let (ep, gp) = erf_gauss_lut(1.234);
        let (en, gn) = erf_gauss_lut(-1.234);
        assert_eq!(ep, -en);
        assert_eq!(gp, gn);
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let mut prev = 0.0;
        let mut z = -10.0;
        while z <= 10.0 {
            let p = normal_cdf(z);
            assert!((0.0..=1.0).contains(&p), "Φ({z}) = {p}");
            assert!(p >= prev, "Φ not monotone at {z}");
            prev = p;
            z += 0.125;
        }
    }
}
