//! The normal probability density.

/// The normal density `φ(x; μ, σ)`.
///
/// Returns 0 when `sigma` is not finite and positive — in the Theorem 1
/// integrand a collapsed variance marks a point adjacent to a pin, whose
/// IR-grid is scored as probability 1 elsewhere (Algorithm step 3.1), so
/// contributing nothing here is the correct behaviour.
///
/// # Examples
///
/// ```
/// use irgrid_core::num::normal_pdf;
///
/// let peak = normal_pdf(0.0, 0.0, 1.0);
/// assert!((peak - 0.398_942_280_401).abs() < 1e-9);
/// assert_eq!(normal_pdf(0.0, 0.0, 0.0), 0.0);
/// ```
#[must_use]
pub fn normal_pdf(x: f64, mu: f64, sigma: f64) -> f64 {
    if !(sigma.is_finite() && sigma > 0.0) {
        return 0.0;
    }
    let z = (x - mu) / sigma;
    (-0.5 * z * z).exp() / (sigma * (2.0 * std::f64::consts::PI).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::num::simpson;

    #[test]
    fn integrates_to_one() {
        let mass = simpson(-8.0, 8.0, 512, |x| normal_pdf(x, 0.0, 1.0));
        assert!((mass - 1.0).abs() < 1e-10, "mass {mass}");
    }

    #[test]
    fn symmetric_about_mean() {
        for d in [0.1, 0.5, 1.7] {
            assert!((normal_pdf(3.0 + d, 3.0, 2.0) - normal_pdf(3.0 - d, 3.0, 2.0)).abs() < 1e-15);
        }
    }

    #[test]
    fn scales_with_sigma() {
        // Peak height is 1/(sigma*sqrt(2*pi)).
        assert!(normal_pdf(0.0, 0.0, 0.5) > normal_pdf(0.0, 0.0, 1.0));
    }

    #[test]
    fn degenerate_sigma_is_zero() {
        assert_eq!(normal_pdf(1.0, 1.0, 0.0), 0.0);
        assert_eq!(normal_pdf(1.0, 1.0, -2.0), 0.0);
        assert_eq!(normal_pdf(1.0, 1.0, f64::NAN), 0.0);
    }
}
