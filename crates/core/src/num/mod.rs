//! Numeric substrate for the congestion models.
//!
//! The probabilistic models need three ingredients:
//!
//! * **binomial coefficients** — route counts `Ta`/`Tb` are binomials
//!   (Formula 1). Counts overflow `u64` beyond ~60×60-cell ranges, so all
//!   production code works with *log* binomials built on a cached
//!   log-factorial table; an exact `u128` binomial is kept as the oracle
//!   for tests;
//! * **the normal density** — the Theorem 1 approximation replaces the
//!   hypergeometric-like `h(x, r, R, Q)` with a normal-like function;
//! * **Simpson's rule** — the paper evaluates Theorem 1's definite
//!   integrals "by Simpson's rule of integration in constant time";
//! * **Q32 quantization** — the delta evaluator accumulates per-cell
//!   probabilities as integers so incremental updates are bit-identical
//!   to a from-scratch rebuild (float addition is not associative).

mod binomial;
mod normal;
mod quantize;
mod simpson;

pub use binomial::{binomial_f64, binomial_u128, ln_binomial, ln_gamma, LnFactorials};
pub use normal::{erf, erf_gauss_lut, erf_with_gauss, normal_cdf, normal_pdf};
pub use quantize::{dequantize_total, quantize_probability, PROBABILITY_FRACTION_BITS};
pub use simpson::simpson;
