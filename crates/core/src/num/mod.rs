//! Numeric substrate for the congestion models.
//!
//! The probabilistic models need three ingredients:
//!
//! * **binomial coefficients** — route counts `Ta`/`Tb` are binomials
//!   (Formula 1). Counts overflow `u64` beyond ~60×60-cell ranges, so all
//!   production code works with *log* binomials built on a cached
//!   log-factorial table; an exact `u128` binomial is kept as the oracle
//!   for tests;
//! * **the normal density** — the Theorem 1 approximation replaces the
//!   hypergeometric-like `h(x, r, R, Q)` with a normal-like function;
//! * **Simpson's rule** — the paper evaluates Theorem 1's definite
//!   integrals "by Simpson's rule of integration in constant time".

mod binomial;
mod normal;
mod simpson;

pub use binomial::{binomial_f64, binomial_u128, ln_binomial, ln_gamma, LnFactorials};
pub use normal::normal_pdf;
pub use simpson::simpson;
