//! Composite Simpson integration.

/// Integrates `f` over `[a, b]` with composite Simpson's rule on
/// `intervals` sub-intervals (rounded up to even).
///
/// The paper evaluates the Theorem 1 integrals "by Simpson's rule of
/// integration in constant time": the interval count is a fixed small
/// constant independent of the routing-range size, keeping the per-IR-grid
/// cost O(1).
///
/// Degenerate input (`a == b`) integrates to 0; `a > b` gives the signed
/// (negative) integral, matching the usual convention.
///
/// # Panics
///
/// Panics if `intervals` is zero.
///
/// # Examples
///
/// ```
/// use irgrid_core::num::simpson;
///
/// let cube = simpson(0.0, 2.0, 8, |x| x * x * x);
/// // Simpson is exact for cubics.
/// assert!((cube - 4.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn simpson(a: f64, b: f64, intervals: usize, f: impl Fn(f64) -> f64) -> f64 {
    assert!(intervals > 0, "need at least one interval");
    let n = intervals + intervals % 2; // force even
    if a == b {
        return 0.0;
    }
    let h = (b - a) / n as f64; // irgrid-lint: allow(C1): interval counts are small (≤ thousands), exact in f64
    let mut acc = f(a) + f(b);
    for i in 1..n {
        let weight = if i % 2 == 1 { 4.0 } else { 2.0 };
        acc += weight * f(a + h * i as f64); // irgrid-lint: allow(C1): i < intervals + 1, exact in f64
    }
    acc * h / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_polynomials_up_to_cubic() {
        for (f, expected) in [
            (Box::new(|_x: f64| 1.0) as Box<dyn Fn(f64) -> f64>, 3.0),
            (Box::new(|x: f64| x), 4.5),
            (Box::new(|x: f64| x * x), 9.0),
            (Box::new(|x: f64| x * x * x), 20.25),
        ] {
            let got = simpson(0.0, 3.0, 2, &f);
            assert!((got - expected).abs() < 1e-12, "got {got}, want {expected}");
        }
    }

    #[test]
    fn converges_on_transcendentals() {
        let coarse = simpson(0.0, std::f64::consts::PI, 4, f64::sin);
        let fine = simpson(0.0, std::f64::consts::PI, 64, f64::sin);
        assert!((fine - 2.0).abs() < 1e-6);
        assert!((fine - 2.0).abs() < (coarse - 2.0).abs());
    }

    #[test]
    fn odd_interval_count_rounded_up() {
        // 3 intervals is treated as 4; result must still be exact for x².
        let got = simpson(0.0, 1.0, 3, |x| x * x);
        assert!((got - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_interval_is_zero() {
        assert_eq!(simpson(2.0, 2.0, 8, |x| x), 0.0);
    }

    #[test]
    fn reversed_bounds_negate() {
        let forward = simpson(0.0, 1.0, 8, |x| x * x);
        let backward = simpson(1.0, 0.0, 8, |x| x * x);
        assert!((forward + backward).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one interval")]
    fn zero_intervals_rejected() {
        let _ = simpson(0.0, 1.0, 0, |x| x);
    }
}
