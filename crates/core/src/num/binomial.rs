//! Binomial coefficients, exact and in log space.

/// Exact binomial coefficient in `u128`.
///
/// Used as the test oracle for the log-space implementations; route counts
/// in production code use [`LnFactorials`] instead because realistic
/// routing ranges overflow even `u128` (C(250, 125) ≈ 10⁷⁴).
///
/// Returns 0 for `k > n`, matching the route-count convention that
/// positions outside a routing range have no routes.
///
/// # Panics
///
/// Panics on internal overflow — callers must keep `n` small enough
/// (`C(128, 64)` overflows; the tests stay below `n = 100`).
///
/// # Examples
///
/// ```
/// use irgrid_core::num::binomial_u128;
///
/// assert_eq!(binomial_u128(12, 6), 924);
/// assert_eq!(binomial_u128(5, 9), 0);
/// ```
#[must_use]
pub fn binomial_u128(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result
            .checked_mul(u128::from(n - i))
            // irgrid-lint: allow(P1): overflow is a documented caller-contract violation; the message redirects to ln_binomial
            .expect("binomial overflow: use ln_binomial for large arguments");
        result /= u128::from(i + 1);
    }
    result
}

/// Natural log of the gamma function, via the Lanczos approximation
/// (g = 7, n = 9), accurate to ~15 significant digits for positive
/// arguments.
///
/// # Panics
///
/// Panics if `x <= 0` (the congestion models only evaluate positive
/// arguments).
///
/// # Examples
///
/// ```
/// use irgrid_core::num::ln_gamma;
///
/// // Γ(5) = 24.
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
/// ```
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    // Lanczos coefficients for g = 7.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy near zero.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64); // irgrid-lint: allow(C1): i < COEFFS.len() = 9, exact in f64
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln C(n, k)`; `-inf` when `k > n` (zero routes).
///
/// # Examples
///
/// ```
/// use irgrid_core::num::ln_binomial;
///
/// assert!((ln_binomial(12, 6) - 924f64.ln()).abs() < 1e-10);
/// assert_eq!(ln_binomial(3, 5), f64::NEG_INFINITY);
/// ```
#[must_use]
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    // irgrid-lint: allow(C1): route counts are grid spans (< 2^32), exact in f64
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// `C(n, k)` as `f64` (may be `inf` for huge arguments; used where the
/// result is immediately normalized).
#[must_use]
pub fn binomial_f64(n: u64, k: u64) -> f64 {
    ln_binomial(n, k).exp()
}

/// A cached table of `ln(i!)` for `0 <= i <= n`, the workhorse behind every
/// per-cell probability: `ln C(n, k) = lf[n] - lf[k] - lf[n-k]` becomes
/// three array reads.
///
/// # Examples
///
/// ```
/// use irgrid_core::num::LnFactorials;
///
/// let lf = LnFactorials::up_to(20);
/// assert!((lf.ln_binomial(12, 6) - 924f64.ln()).abs() < 1e-10);
/// ```
#[derive(Debug, Clone)]
pub struct LnFactorials {
    table: Vec<f64>,
}

impl LnFactorials {
    /// Builds the table for arguments up to `n` inclusive.
    #[must_use]
    pub fn up_to(n: usize) -> LnFactorials {
        let mut table = Vec::with_capacity(n + 1);
        table.push(0.0); // ln 0! = 0
        let mut acc = 0.0;
        for i in 1..=n {
            acc += (i as f64).ln(); // irgrid-lint: allow(C1): table arguments are grid spans (< 2^32), exact in f64
            table.push(acc);
        }
        LnFactorials { table }
    }

    /// Largest supported argument.
    #[must_use]
    pub fn max_n(&self) -> usize {
        self.table.len() - 1
    }

    /// Grows the table so arguments up to `n` inclusive are supported.
    ///
    /// The table only ever extends (the prefix is an accumulation, so
    /// existing entries are already final); a table that is large enough
    /// is left untouched, making this free in an evaluator's steady
    /// state.
    pub fn ensure_up_to(&mut self, n: usize) {
        // irgrid-lint: allow(P1): the constructor always seeds the table with ln 0! = 0
        let mut acc = *self.table.last().expect("table holds at least ln 0!");
        for i in self.table.len()..=n {
            acc += (i as f64).ln(); // irgrid-lint: allow(C1): table arguments are grid spans (< 2^32), exact in f64
            self.table.push(acc);
        }
    }

    /// `ln(n!)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the table size.
    #[must_use]
    pub fn ln_factorial(&self, n: usize) -> f64 {
        self.table[n]
    }

    /// `ln C(n, k)`; `-inf` when `k > n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the table size.
    #[must_use]
    pub fn ln_binomial(&self, n: usize, k: usize) -> f64 {
        if k > n {
            return f64::NEG_INFINITY;
        }
        self.table[n] - self.table[k] - self.table[n - k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_values() {
        assert_eq!(binomial_u128(0, 0), 1);
        assert_eq!(binomial_u128(1, 0), 1);
        assert_eq!(binomial_u128(1, 1), 1);
        assert_eq!(binomial_u128(6, 3), 20);
        assert_eq!(binomial_u128(10, 4), 210);
        assert_eq!(binomial_u128(52, 5), 2_598_960);
        assert_eq!(binomial_u128(4, 7), 0);
    }

    #[test]
    fn pascal_identity_exact() {
        for n in 1..60u64 {
            for k in 1..n {
                assert_eq!(
                    binomial_u128(n, k),
                    binomial_u128(n - 1, k - 1) + binomial_u128(n - 1, k),
                    "C({n},{k})"
                );
            }
        }
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        let mut fact = 1.0f64;
        for n in 1..30 {
            fact *= n as f64;
            assert!(
                (ln_gamma(n as f64 + 1.0) - fact.ln()).abs() < 1e-9,
                "n = {n}"
            );
        }
    }

    #[test]
    fn ln_gamma_reflection_region() {
        // Γ(0.5) = sqrt(pi).
        let expected = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive argument")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn ln_binomial_matches_exact() {
        for n in 0..90u64 {
            for k in 0..=n {
                let exact = binomial_u128(n, k) as f64;
                let approx = binomial_f64(n, k);
                assert!(
                    (approx - exact).abs() / exact < 1e-10,
                    "C({n},{k}): {approx} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn table_matches_ln_gamma() {
        let lf = LnFactorials::up_to(500);
        assert_eq!(lf.max_n(), 500);
        for n in [0usize, 1, 2, 10, 100, 500] {
            assert!(
                (lf.ln_factorial(n) - ln_gamma(n as f64 + 1.0)).abs() < 1e-8,
                "n = {n}"
            );
        }
        for (n, k) in [(500usize, 250usize), (300, 7), (42, 42), (10, 0)] {
            assert!(
                (lf.ln_binomial(n, k) - ln_binomial(n as u64, k as u64)).abs() < 1e-8,
                "C({n},{k})"
            );
        }
        assert_eq!(lf.ln_binomial(3, 9), f64::NEG_INFINITY);
    }

    #[test]
    fn grown_table_matches_fresh_table() {
        let mut grown = LnFactorials::up_to(10);
        grown.ensure_up_to(4); // no-op: already large enough
        assert_eq!(grown.max_n(), 10);
        grown.ensure_up_to(300);
        assert_eq!(grown.max_n(), 300);
        let fresh = LnFactorials::up_to(300);
        for n in 0..=300usize {
            // Bit-identical: growth appends the same accumulation.
            assert_eq!(
                grown.ln_factorial(n).to_bits(),
                fresh.ln_factorial(n).to_bits(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn symmetry() {
        let lf = LnFactorials::up_to(100);
        for n in 0..=100usize {
            for k in 0..=n {
                // Equal up to the float rounding of the two subtraction
                // orders.
                let d = (lf.ln_binomial(n, k) - lf.ln_binomial(n, n - k)).abs();
                assert!(d < 1e-12, "C({n},{k}) asymmetry {d}");
            }
        }
    }
}
