//! Per-cell congestion-map analysis.
//!
//! The paper compares models by their scalar floorplan scores; this
//! module compares them *spatially*: rasterize any congestion map onto
//! its unit grid and measure per-cell agreement (correlation, mean
//! absolute error, hotspot overlap). The `repro heatmap` experiment uses
//! it to show that the Irregular-Grid model reproduces the fixed-grid
//! congestion *picture*, not just its top-10 % summary.

use irgrid_geom::{Point, Rect};

use crate::{
    FixedCongestionMap, FixedGridModel, IrCongestionMap, IrregularGridModel, LzCongestionMap,
    LzShapeModel, SpatialCongestion,
};

/// A congestion map rasterized onto its unit grid: `cols × rows` values
/// in row-major order, one per pitch² cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Raster {
    cols: usize,
    rows: usize,
    values: Vec<f64>,
}

impl Raster {
    /// Builds a raster from explicit values.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != cols * rows`.
    #[must_use]
    pub fn new(cols: usize, rows: usize, values: Vec<f64>) -> Raster {
        assert_eq!(
            values.len(),
            cols * rows,
            "raster dimensions disagree with value count"
        );
        Raster { cols, rows, values }
    }

    /// Grid columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Grid rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Cell values, row-major.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Rasterizes a fixed-grid map (an identity re-labelling: its cells
    /// already are unit cells).
    #[must_use]
    pub fn from_fixed(map: &FixedCongestionMap) -> Raster {
        Raster {
            cols: map.grid().cols() as usize,
            rows: map.grid().rows() as usize,
            values: map.values().to_vec(),
        }
    }

    /// Rasterizes an L/Z-shape map.
    #[must_use]
    pub fn from_lz(map: &LzCongestionMap) -> Raster {
        Raster {
            cols: map.grid().cols() as usize,
            rows: map.grid().rows() as usize,
            values: map.values().to_vec(),
        }
    }

    /// Rasterizes an Irregular-Grid map: every unit cell of an IR-grid
    /// receives the IR-grid's density (per-unit-cell congestion), so the
    /// raster is directly comparable with a fixed-grid raster at the same
    /// pitch.
    #[must_use]
    pub fn from_ir(map: &IrCongestionMap) -> Raster {
        // irgrid-lint: allow(P1): cut arrays end with the chip boundary by construction
        let cols = *map.x_cuts().last().expect("cuts include the boundary") as usize;
        // irgrid-lint: allow(P1): cut arrays end with the chip boundary by construction
        let rows = *map.y_cuts().last().expect("cuts include the boundary") as usize;
        let mut values = vec![0.0f64; cols * rows];
        for j in 0..map.ir_rows() {
            let (y0, y1) = (map.y_cuts()[j] as usize, map.y_cuts()[j + 1] as usize);
            for i in 0..map.ir_cols() {
                let (x0, x1) = (map.x_cuts()[i] as usize, map.x_cuts()[i + 1] as usize);
                let density = map.density(i, j);
                for y in y0..y1 {
                    for x in x0..x1 {
                        values[y * cols + x] = density;
                    }
                }
            }
        }
        Raster { cols, rows, values }
    }

    /// Downsamples by an integer factor, averaging `factor × factor`
    /// blocks (partial edge blocks average their covered cells). Use to
    /// align rasters of different pitches, e.g. a 10 µm judging raster
    /// onto a 30 µm grid with `factor = 3`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    #[must_use]
    pub fn downsample(&self, factor: usize) -> Raster {
        assert!(factor > 0, "downsample factor must be positive");
        let cols = self.cols.div_ceil(factor);
        let rows = self.rows.div_ceil(factor);
        let mut values = vec![0.0f64; cols * rows];
        for by in 0..rows {
            for bx in 0..cols {
                let mut sum = 0.0;
                let mut count = 0usize;
                for y in (by * factor)..((by + 1) * factor).min(self.rows) {
                    for x in (bx * factor)..((bx + 1) * factor).min(self.cols) {
                        sum += self.values[y * self.cols + x];
                        count += 1;
                    }
                }
                values[by * cols + bx] = if count == 0 { 0.0 } else { sum / count as f64 };
            }
        }
        Raster { cols, rows, values }
    }
}

impl SpatialCongestion for FixedGridModel {
    fn raster(&self, chip: &Rect, segments: &[(Point, Point)]) -> Raster {
        Raster::from_fixed(&self.congestion_map(chip, segments))
    }
}

impl SpatialCongestion for LzShapeModel {
    fn raster(&self, chip: &Rect, segments: &[(Point, Point)]) -> Raster {
        Raster::from_lz(&self.congestion_map(chip, segments))
    }
}

impl SpatialCongestion for IrregularGridModel {
    fn raster(&self, chip: &Rect, segments: &[(Point, Point)]) -> Raster {
        Raster::from_ir(&self.congestion_map(chip, segments))
    }
}

/// Per-cell agreement between two rasters of identical dimensions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapComparison {
    /// Pearson correlation of cell values.
    pub pearson: f64,
    /// Mean absolute difference after scaling `b` to `a`'s mean (the
    /// models use different units; scale-free comparison).
    pub scaled_mae: f64,
    /// Jaccard overlap of the two maps' top-`fraction` hotspot cell sets.
    pub hotspot_jaccard: f64,
}

/// Compares two rasters cell by cell.
///
/// # Panics
///
/// Panics if the rasters' dimensions differ or `fraction` is not in
/// `(0, 1]`.
#[must_use]
pub fn compare(a: &Raster, b: &Raster, fraction: f64) -> MapComparison {
    assert_eq!(
        (a.cols, a.rows),
        (b.cols, b.rows),
        "rasters must share dimensions"
    );
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0, 1], got {fraction}"
    );
    let n = a.values.len() as f64;
    let (ma, mb) = (
        a.values.iter().sum::<f64>() / n, // irgrid-lint: allow(D2): diagnostic mean over a dense raster; serial in-order
        b.values.iter().sum::<f64>() / n, // irgrid-lint: allow(D2): diagnostic mean over a dense raster; serial in-order
    );

    // Pearson.
    let mut num = 0.0;
    let (mut va, mut vb) = (0.0, 0.0);
    for (&x, &y) in a.values.iter().zip(&b.values) {
        num += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    let pearson = if va <= 0.0 || vb <= 0.0 {
        0.0
    } else {
        num / (va.sqrt() * vb.sqrt())
    };

    // Scale-free MAE: rescale b to a's mean.
    let scale = if mb.abs() < f64::MIN_POSITIVE {
        0.0
    } else {
        ma / mb
    };
    let scaled_mae = a
        .values
        .iter()
        .zip(&b.values)
        .map(|(&x, &y)| (x - y * scale).abs())
        .sum::<f64>() // irgrid-lint: allow(D2): diagnostic MAE over zipped dense rasters; serial in-order
        / n;

    // Hotspot overlap.
    let top_set = |r: &Raster| -> Vec<usize> {
        let take = ((r.values.len() as f64 * fraction).ceil() as usize).clamp(1, r.values.len());
        let mut idx: Vec<usize> = (0..r.values.len()).collect();
        idx.sort_by(|&i, &j| r.values[j].total_cmp(&r.values[i]));
        let mut top = idx[..take].to_vec();
        top.sort_unstable();
        top
    };
    let (ta, tb) = (top_set(a), top_set(b));
    let mut inter = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < ta.len() && j < tb.len() {
        match ta[i].cmp(&tb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = ta.len() + tb.len() - inter;
    let hotspot_jaccard = if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    };

    MapComparison {
        pearson,
        scaled_mae,
        hotspot_jaccard,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FixedGridModel, IrregularGridModel, LzShapeModel};
    use irgrid_geom::{Point, Rect, Um};

    fn chip() -> Rect {
        Rect::from_origin_size(Point::ORIGIN, Um(600), Um(600))
    }

    fn segments() -> Vec<(Point, Point)> {
        vec![
            (Point::new(Um(90), Um(90)), Point::new(Um(510), Um(510))),
            (Point::new(Um(90), Um(510)), Point::new(Um(510), Um(90))),
            (Point::new(Um(120), Um(300)), Point::new(Um(480), Um(330))),
        ]
    }

    #[test]
    fn identical_rasters_agree_perfectly() {
        let map = FixedGridModel::new(Um(30)).congestion_map(&chip(), &segments());
        let r = Raster::from_fixed(&map);
        let c = compare(&r, &r, 0.1);
        assert!((c.pearson - 1.0).abs() < 1e-12);
        assert_eq!(c.scaled_mae, 0.0);
        assert_eq!(c.hotspot_jaccard, 1.0);
    }

    #[test]
    fn ir_raster_covers_unit_grid() {
        let map = IrregularGridModel::new(Um(30)).congestion_map(&chip(), &segments());
        let r = Raster::from_ir(&map);
        assert_eq!(r.cols(), 20);
        assert_eq!(r.rows(), 20);
        // Mass consistency: sum of per-cell densities = sum of F(I)
        // (density × area summed over cells of each IR-grid).
        let raster_mass: f64 = r.values().iter().sum();
        let ir_mass: f64 = (0..map.ir_rows())
            .flat_map(|j| (0..map.ir_cols()).map(move |i| (i, j)))
            .map(|(i, j)| map.total(i, j))
            .sum();
        assert!((raster_mass - ir_mass).abs() < 1e-9);
    }

    #[test]
    fn ir_tracks_fixed_grid_spatially() {
        let fixed = FixedGridModel::new(Um(30)).congestion_map(&chip(), &segments());
        let ir = IrregularGridModel::new(Um(30)).congestion_map(&chip(), &segments());
        let c = compare(&Raster::from_fixed(&fixed), &Raster::from_ir(&ir), 0.1);
        assert!(c.pearson > 0.5, "spatial correlation {}", c.pearson);
        assert!(
            c.hotspot_jaccard > 0.2,
            "hotspot overlap {}",
            c.hotspot_jaccard
        );
    }

    #[test]
    fn lz_raster_has_fixed_dimensions() {
        let lz = LzShapeModel::new(Um(30)).congestion_map(&chip(), &segments());
        let r = Raster::from_lz(&lz);
        assert_eq!((r.cols(), r.rows()), (20, 20));
    }

    #[test]
    fn downsample_averages_blocks() {
        let r = Raster::new(4, 2, vec![1.0, 3.0, 0.0, 8.0, 5.0, 7.0, 0.0, 0.0]);
        let d = r.downsample(2);
        assert_eq!((d.cols(), d.rows()), (2, 1));
        assert_eq!(d.values(), &[4.0, 2.0]);
    }

    #[test]
    fn downsample_partial_edges() {
        let r = Raster::new(3, 3, vec![1.0; 9]);
        let d = r.downsample(2);
        assert_eq!((d.cols(), d.rows()), (2, 2));
        assert!(d.values().iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn downsample_aligns_judging_raster() {
        let fine = FixedGridModel::new(Um(10)).congestion_map(&chip(), &segments());
        let coarse = FixedGridModel::new(Um(30)).congestion_map(&chip(), &segments());
        let down = Raster::from_fixed(&fine).downsample(3);
        let c = compare(&Raster::from_fixed(&coarse), &down, 0.1);
        assert!(c.pearson > 0.7, "cross-pitch correlation {}", c.pearson);
    }

    #[test]
    fn anti_correlated_maps_score_low() {
        let a = Raster::new(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let b = Raster::new(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let c = compare(&a, &b, 0.5);
        assert!(c.pearson < 0.0);
        assert_eq!(c.hotspot_jaccard, 0.0);
    }

    #[test]
    #[should_panic(expected = "share dimensions")]
    fn mismatched_dims_rejected() {
        let a = Raster::new(2, 2, vec![0.0; 4]);
        let b = Raster::new(4, 1, vec![0.0; 4]);
        let _ = compare(&a, &b, 0.1);
    }

    #[test]
    #[should_panic(expected = "dimensions disagree")]
    fn bad_raster_construction_rejected() {
        let _ = Raster::new(3, 3, vec![0.0; 8]);
    }
}
