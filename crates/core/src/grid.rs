//! The unit routing grid: the chip discretized at a fixed pitch.

use irgrid_geom::{Point, Rect, Um};

/// The chip area divided into `cols × rows` square cells of side `pitch`
/// — the paper's evaluation grid (§3). The Irregular-Grid model also uses
/// this as the *unit* grid underlying its probability formulas: IR-grids
/// are unions of whole unit cells.
///
/// Cell `(i, j)` covers `[i·p, (i+1)·p) × [j·p, (j+1)·p)` with the chip's
/// lower-left corner at the origin. The last column/row may extend past
/// the chip edge when the chip dimensions are not pitch multiples.
///
/// # Examples
///
/// ```
/// use irgrid_core::UnitGrid;
/// use irgrid_geom::{Point, Rect, Um};
///
/// let chip = Rect::from_origin_size(Point::ORIGIN, Um(100), Um(70));
/// let grid = UnitGrid::new(&chip, Um(30));
/// assert_eq!(grid.cols(), 4);
/// assert_eq!(grid.rows(), 3);
/// assert_eq!(grid.cell_of(Point::new(Um(95), Um(69))), (3, 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitGrid {
    pitch: Um,
    cols: i64,
    rows: i64,
}

impl UnitGrid {
    /// Discretizes `chip` (which must have its lower-left corner at the
    /// origin, as produced by the packer) at the given pitch.
    ///
    /// # Panics
    ///
    /// Panics if the pitch is not positive, the chip is degenerate, or the
    /// chip's lower-left corner is not the origin.
    #[must_use]
    pub fn new(chip: &Rect, pitch: Um) -> UnitGrid {
        assert!(pitch > Um::ZERO, "grid pitch must be positive, got {pitch}");
        assert!(
            chip.ll() == Point::ORIGIN,
            "chip must sit at the origin, got {chip}"
        );
        assert!(
            !chip.is_degenerate(),
            "chip must have positive area, got {chip}"
        );
        UnitGrid {
            pitch,
            cols: chip.width().div_ceil(pitch),
            rows: chip.height().div_ceil(pitch),
        }
    }

    /// Cell side length.
    #[must_use]
    pub fn pitch(&self) -> Um {
        self.pitch
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> i64 {
        self.cols
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> i64 {
        self.rows
    }

    /// Total cell count.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        (self.cols * self.rows) as usize
    }

    /// The cell containing `p`, clamped into the grid (points on the top
    /// or right chip boundary belong to the last cell).
    #[must_use]
    pub fn cell_of(&self, p: Point) -> (i64, i64) {
        let cx = p.x.div_floor(self.pitch).clamp(0, self.cols - 1);
        let cy = p.y.div_floor(self.pitch).clamp(0, self.rows - 1);
        (cx, cy)
    }

    /// The rectangle of cell `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range.
    #[must_use]
    pub fn cell_rect(&self, i: i64, j: i64) -> Rect {
        assert!(
            (0..self.cols).contains(&i) && (0..self.rows).contains(&j),
            "cell ({i}, {j}) outside {}x{} grid",
            self.cols,
            self.rows
        );
        Rect::from_origin_size(
            Point::new(self.pitch * i, self.pitch * j),
            self.pitch,
            self.pitch,
        )
    }

    /// The extent actually covered by the grid (may exceed the chip by up
    /// to one pitch in each axis).
    #[must_use]
    pub fn extent(&self) -> Rect {
        Rect::from_origin_size(
            Point::ORIGIN,
            self.pitch * self.cols,
            self.pitch * self.rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip(w: i64, h: i64) -> Rect {
        Rect::from_origin_size(Point::ORIGIN, Um(w), Um(h))
    }

    #[test]
    fn dimensions_round_up() {
        let g = UnitGrid::new(&chip(100, 70), Um(30));
        assert_eq!((g.cols(), g.rows()), (4, 3));
        assert_eq!(g.cell_count(), 12);
        assert_eq!(g.extent(), chip(120, 90));
    }

    #[test]
    fn exact_multiple_dimensions() {
        let g = UnitGrid::new(&chip(90, 60), Um(30));
        assert_eq!((g.cols(), g.rows()), (3, 2));
        assert_eq!(g.extent(), chip(90, 60));
    }

    #[test]
    fn cell_of_interior_and_boundaries() {
        let g = UnitGrid::new(&chip(90, 90), Um(30));
        assert_eq!(g.cell_of(Point::new(Um(0), Um(0))), (0, 0));
        assert_eq!(g.cell_of(Point::new(Um(29), Um(30))), (0, 1));
        // Top-right chip corner clamps into the last cell.
        assert_eq!(g.cell_of(Point::new(Um(90), Um(90))), (2, 2));
    }

    #[test]
    fn cell_rect_roundtrip() {
        let g = UnitGrid::new(&chip(90, 90), Um(30));
        let r = g.cell_rect(1, 2);
        assert_eq!(
            r,
            Rect::from_origin_size(Point::new(Um(30), Um(60)), Um(30), Um(30))
        );
        assert_eq!(g.cell_of(r.ll()), (1, 2));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn cell_rect_rejects_out_of_range() {
        let _ = UnitGrid::new(&chip(90, 90), Um(30)).cell_rect(3, 0);
    }

    #[test]
    #[should_panic(expected = "pitch must be positive")]
    fn rejects_zero_pitch() {
        let _ = UnitGrid::new(&chip(90, 90), Um(0));
    }

    #[test]
    #[should_panic(expected = "origin")]
    fn rejects_offset_chip() {
        let off = Rect::from_origin_size(Point::new(Um(5), Um(0)), Um(90), Um(90));
        let _ = UnitGrid::new(&off, Um(30));
    }
}
