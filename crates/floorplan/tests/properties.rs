//! Property-based tests for the floorplanning substrate.

use irgrid_floorplan::{
    pack, pack_with_shapes, soft_shapes, two_pin_segments, FloorplanRepr, PinPlacer, PolishExpr,
    SequencePair,
};
use irgrid_geom::{Rect, Um, UmArea};
use irgrid_netlist::{Circuit, Module, ModuleId, Net};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A random circuit with 2..=12 modules and a few random nets.
fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (2usize..=12).prop_flat_map(|n| {
        let modules = prop::collection::vec((5i64..400, 5i64..400), n..=n);
        let nets = prop::collection::vec(prop::collection::vec(0..n as u32, 2..=4.min(n)), 0..8);
        (modules, nets).prop_map(move |(dims, net_members)| {
            let modules: Vec<Module> = dims
                .iter()
                .enumerate()
                .map(|(i, &(w, h))| Module::new(format!("m{i}"), Um(w), Um(h)).expect("positive"))
                .collect();
            let nets: Vec<Net> = net_members
                .into_iter()
                .enumerate()
                .filter_map(|(i, members)| {
                    Net::new(format!("n{i}"), members.into_iter().map(ModuleId).collect()).ok()
                })
                .collect();
            Circuit::new("prop", modules, nets).expect("validated parts")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn perturbed_expressions_stay_valid(circuit in arb_circuit(), seed in 0u64..1000, steps in 1usize..60) {
        let mut expr = PolishExpr::initial(circuit.modules().len());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..steps {
            expr.perturb_random(&mut rng);
            prop_assert!(expr.is_valid(), "invalid after perturbation: {expr}");
        }
    }

    #[test]
    fn packing_invariants(circuit in arb_circuit(), seed in 0u64..1000) {
        let mut expr = PolishExpr::initial(circuit.modules().len());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..10 {
            expr.perturb_random(&mut rng);
        }
        let placement = pack(&expr, &circuit);
        // No overlap, everything inside the chip.
        prop_assert!(placement.check_consistency().is_none());
        // Chip area bounded below by module area and above by the
        // degenerate single-row packing.
        prop_assert!(placement.area() >= circuit.total_module_area());
        let (mut wsum, mut hmax) = (Um::ZERO, Um::ZERO);
        for m in circuit.modules() {
            let (w, h) = (m.width().max(m.height()), m.width().min(m.height()));
            wsum += w;
            hmax = hmax.max(h);
        }
        prop_assert!(placement.area() <= wsum * hmax.max(wsum), "area unreasonably large");
        // Every module keeps its area through rotation.
        let placed: UmArea = circuit
            .modules_with_ids()
            .map(|(id, _)| placement.module_rect(id).area())
            .sum();
        prop_assert_eq!(placed, circuit.total_module_area());
    }

    #[test]
    fn packing_is_deterministic(circuit in arb_circuit()) {
        let expr = PolishExpr::initial(circuit.modules().len());
        prop_assert_eq!(pack(&expr, &circuit), pack(&expr, &circuit));
    }

    #[test]
    fn pins_and_segments_consistent(circuit in arb_circuit(), pitch in 5i64..60) {
        let expr = PolishExpr::initial(circuit.modules().len());
        let placement = pack(&expr, &circuit);
        let placer = PinPlacer::new(Um(pitch));
        let chip = placement.chip();
        let segments = two_pin_segments(&circuit, &placement, &placer);
        let max_segments: usize = circuit.nets().iter().map(|n| n.degree() - 1).sum();
        prop_assert!(segments.len() <= max_segments);
        for (a, b) in segments {
            prop_assert!(chip.contains(a), "segment endpoint {a} outside chip");
            prop_assert!(chip.contains(b), "segment endpoint {b} outside chip");
            prop_assert!(a != b, "degenerate segment survived filtering");
        }
    }

    #[test]
    fn sequence_pairs_stay_valid_and_overlap_free(
        circuit in arb_circuit(),
        seed in 0u64..1000,
        steps in 1usize..50,
    ) {
        let mut sp = <SequencePair as FloorplanRepr>::initial(circuit.modules().len());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..steps {
            FloorplanRepr::perturb(&mut sp, &mut rng);
            prop_assert!(sp.is_valid());
        }
        let placement = sp.place(&circuit);
        prop_assert!(placement.check_consistency().is_none());
        prop_assert!(placement.area() >= circuit.total_module_area());
        // Placed module areas are preserved through orientation choices.
        let placed: UmArea = circuit
            .modules_with_ids()
            .map(|(id, _)| placement.module_rect(id).area())
            .sum();
        prop_assert_eq!(placed, circuit.total_module_area());
    }

    #[test]
    fn soft_shapes_have_requested_count_and_area(
        area in 100i128..10_000_000,
        ar_lo in 0.2f64..1.0,
        spread in 1.0f64..8.0,
        count in 1usize..12,
    ) {
        let ar_hi = ar_lo * spread;
        let shapes = soft_shapes(UmArea(area), ar_lo, ar_hi, count);
        prop_assert_eq!(shapes.len(), count);
        for &(w, h) in &shapes {
            prop_assert!(w.0 > 0 && h.0 > 0);
            let realized = (w * h).0 as f64;
            // Rounding keeps areas within one strip of micrometers.
            let tolerance = (w.0.max(h.0) as f64) + 1.0;
            prop_assert!(
                (realized - area as f64).abs() <= tolerance,
                "shape {w} x {h} area {realized} vs target {area}"
            );
        }
    }

    #[test]
    fn soft_packing_respects_candidates(
        areas in prop::collection::vec(1_000i128..100_000, 2..6),
        seed in 0u64..100,
    ) {
        let candidates: Vec<Vec<(Um, Um)>> = areas
            .iter()
            .map(|&a| soft_shapes(UmArea(a), 0.5, 2.0, 5))
            .collect();
        let mut expr = PolishExpr::initial(candidates.len());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..8 {
            expr.perturb_random(&mut rng);
        }
        let placement = pack_with_shapes(&expr, &candidates);
        prop_assert!(placement.check_consistency().is_none());
        for (i, list) in candidates.iter().enumerate() {
            let r = placement.module_rect(ModuleId(i as u32));
            prop_assert!(
                list.contains(&(r.width(), r.height())),
                "module {i} got {} x {} not offered",
                r.width(),
                r.height()
            );
        }
    }

    #[test]
    fn pin_placer_stays_on_module(
        (x0, y0, w, h) in (0i64..500, 0i64..500, 1i64..300, 1i64..300),
        (tx, ty) in (-200i64..900, -200i64..900),
        pitch in 1i64..100,
    ) {
        let module = Rect::from_origin_size(
            irgrid_geom::Point::new(Um(x0), Um(y0)),
            Um(w),
            Um(h),
        );
        let pin = PinPlacer::new(Um(pitch)).pin(&module, irgrid_geom::Point::new(Um(tx), Um(ty)));
        prop_assert!(module.contains(pin), "pin {pin} escaped module {module}");
    }
}
