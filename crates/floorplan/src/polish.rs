//! Normalized Polish expressions (Wong–Liu, DAC 1986).

use std::fmt;

use irgrid_netlist::ModuleId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A slicing cut direction.
///
/// The conventions used throughout this crate:
///
/// * `V` (vertical cut) places the second operand **to the right of** the
///   first: widths add, heights take the max.
/// * `H` (horizontal cut) places the second operand **on top of** the
///   first: heights add, widths take the max.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cut {
    /// Horizontal cut: `a b H` stacks `b` above `a`.
    H,
    /// Vertical cut: `a b V` puts `b` to the right of `a`.
    V,
}

impl Cut {
    /// The other direction.
    #[must_use]
    pub fn complement(self) -> Cut {
        match self {
            Cut::H => Cut::V,
            Cut::V => Cut::H,
        }
    }
}

impl fmt::Display for Cut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Cut::H => "H",
            Cut::V => "V",
        })
    }
}

/// One element of a Polish expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Element {
    /// A module reference.
    Operand(ModuleId),
    /// A slicing operator.
    Operator(Cut),
}

/// One of the three Wong–Liu perturbation moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Move {
    /// M1: swap two adjacent operands (ignoring operators between them).
    SwapOperands,
    /// M2: complement a maximal chain of operators.
    ComplementChain,
    /// M3: swap an adjacent operand/operator pair.
    SwapOperandOperator,
}

/// A normalized Polish expression describing a slicing floorplan.
///
/// Invariants (checked in debug builds after every mutation):
///
/// * exactly `n` operands referencing each module once, `n - 1` operators;
/// * **balloting**: every prefix contains more operands than operators;
/// * **normalized**: no two consecutive operators are equal, so each
///   slicing structure has a unique representation.
///
/// # Examples
///
/// ```
/// use irgrid_floorplan::{Cut, Element, PolishExpr};
/// use irgrid_netlist::ModuleId;
///
/// let expr = PolishExpr::initial(3);
/// assert_eq!(expr.elements().len(), 5); // 3 operands + 2 operators
/// assert!(expr.is_valid());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PolishExpr {
    elements: Vec<Element>,
}

impl PolishExpr {
    /// The canonical initial expression `m0 m1 V m2 H m3 V …` — a spiral
    /// of alternating cuts, which packs less degenerately than a single
    /// long row and is always normalized.
    ///
    /// # Panics
    ///
    /// Panics if `module_count` is zero.
    #[must_use]
    pub fn initial(module_count: usize) -> PolishExpr {
        assert!(module_count > 0, "need at least one module");
        let mut elements = Vec::with_capacity(2 * module_count - 1);
        elements.push(Element::Operand(ModuleId(0)));
        let mut cut = Cut::V;
        for i in 1..module_count {
            elements.push(Element::Operand(ModuleId(i as u32)));
            elements.push(Element::Operator(cut));
            cut = cut.complement();
        }
        let expr = PolishExpr { elements };
        debug_assert!(expr.is_valid());
        expr
    }

    /// Builds an expression from raw elements, validating it.
    ///
    /// Returns `None` if the element sequence is not a valid normalized
    /// Polish expression over modules `0..n`.
    #[must_use]
    pub fn from_elements(elements: Vec<Element>) -> Option<PolishExpr> {
        let expr = PolishExpr { elements };
        expr.is_valid().then_some(expr)
    }

    /// The element sequence in postfix order.
    #[must_use]
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Number of operands (modules).
    #[must_use]
    pub fn operand_count(&self) -> usize {
        self.elements.len().div_ceil(2)
    }

    /// Checks all structural invariants: operand/operator counts, each
    /// module appearing exactly once, balloting, and normalization.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        if self.elements.is_empty() || self.elements.len() % 2 == 0 {
            return false;
        }
        let n = self.operand_count();
        let mut seen = vec![false; n];
        let mut operands = 0usize;
        let mut operators = 0usize;
        let mut prev_op: Option<Cut> = None;
        for e in &self.elements {
            match *e {
                Element::Operand(id) => {
                    if id.index() >= n || seen[id.index()] {
                        return false;
                    }
                    seen[id.index()] = true;
                    operands += 1;
                    prev_op = None;
                }
                Element::Operator(cut) => {
                    operators += 1;
                    // Balloting: prefix operands must exceed prefix operators.
                    if operands <= operators {
                        return false;
                    }
                    // Normalization: no two consecutive equal operators.
                    if prev_op == Some(cut) {
                        return false;
                    }
                    prev_op = Some(cut);
                }
            }
        }
        operands == n && operators == n - 1
    }

    /// Applies a random perturbation of the given kind, returning the kind
    /// actually applied (M3 can fail when no legal swap exists; the caller
    /// sees `None` and may retry with another move).
    ///
    /// The expression is left unchanged when `None` is returned.
    pub fn perturb<R: Rng>(&mut self, kind: Move, rng: &mut R) -> Option<Move> {
        let applied = match kind {
            Move::SwapOperands => self.move_swap_operands(rng),
            Move::ComplementChain => self.move_complement_chain(rng),
            Move::SwapOperandOperator => self.move_swap_operand_operator(rng),
        };
        debug_assert!(self.is_valid(), "move {kind:?} broke the expression");
        applied.then_some(kind)
    }

    /// Applies a uniformly random move kind (retrying with other kinds if
    /// the first choice has no legal application).
    pub fn perturb_random<R: Rng>(&mut self, rng: &mut R) -> Move {
        // M1 always succeeds for n >= 2; guard the n == 1 corner.
        loop {
            let kind = match rng.gen_range(0..3) {
                0 => Move::SwapOperands,
                1 => Move::ComplementChain,
                _ => Move::SwapOperandOperator,
            };
            if let Some(applied) = self.perturb(kind, rng) {
                return applied;
            }
        }
    }

    /// M1: swap two adjacent operands.
    fn move_swap_operands<R: Rng>(&mut self, rng: &mut R) -> bool {
        let operand_positions: Vec<usize> = self
            .elements
            .iter()
            .enumerate()
            .filter_map(|(i, e)| matches!(e, Element::Operand(_)).then_some(i))
            .collect();
        if operand_positions.len() < 2 {
            return false;
        }
        let k = rng.gen_range(0..operand_positions.len() - 1);
        self.elements
            .swap(operand_positions[k], operand_positions[k + 1]);
        true
    }

    /// M2: complement every operator in a random maximal chain.
    fn move_complement_chain<R: Rng>(&mut self, rng: &mut R) -> bool {
        // Collect maximal runs of consecutive operators.
        let mut chains: Vec<(usize, usize)> = Vec::new();
        let mut start: Option<usize> = None;
        for (i, e) in self.elements.iter().enumerate() {
            match e {
                Element::Operator(_) => {
                    if start.is_none() {
                        start = Some(i);
                    }
                }
                Element::Operand(_) => {
                    if let Some(s) = start.take() {
                        chains.push((s, i));
                    }
                }
            }
        }
        if let Some(s) = start {
            chains.push((s, self.elements.len()));
        }
        if chains.is_empty() {
            return false;
        }
        let (s, e) = chains[rng.gen_range(0..chains.len())];
        for el in &mut self.elements[s..e] {
            if let Element::Operator(cut) = el {
                *cut = cut.complement();
            }
        }
        true
    }

    /// M3: swap a random adjacent operand/operator pair, keeping the
    /// expression normalized and ballot-valid.
    fn move_swap_operand_operator<R: Rng>(&mut self, rng: &mut R) -> bool {
        let candidates = self.swap_operand_operator_candidates();
        if candidates.is_empty() {
            return false;
        }
        let i = candidates[rng.gen_range(0..candidates.len())];
        self.elements.swap(i, i + 1);
        true
    }

    /// Candidate positions `i` where `elements[i]`, `elements[i+1]` are
    /// an operand/operator pair (either order) and swapping them keeps
    /// the expression valid.
    ///
    /// Validity is decided locally in O(1) per pair: a swap moves one
    /// operator across exactly one prefix boundary (so balloting can
    /// only change there) and can only create an equal-operator
    /// adjacency against `elements[i-1]` or `elements[i+2]`. Everything
    /// else — totals, parity, module uniqueness, every other prefix — is
    /// untouched. The old clone-and-revalidate probe made M3 `O(n²)` and
    /// unusable past ~10k modules; the candidate set (and therefore the
    /// RNG stream and every downstream result) is identical, which
    /// `swap_candidates_match_brute_force` pins against the oracle.
    fn swap_operand_operator_candidates(&self) -> Vec<usize> {
        let n = self.elements.len();
        let mut candidates: Vec<usize> = Vec::new();
        // Counts over elements[..=i], maintained incrementally.
        let mut operands = 0usize;
        let mut operators = 0usize;
        for i in 0..n - 1 {
            match self.elements[i] {
                Element::Operand(_) => operands += 1,
                Element::Operator(_) => operators += 1,
            }
            let ok = match (self.elements[i], self.elements[i + 1]) {
                (Element::Operand(_), Element::Operator(cut)) => {
                    // The operator moves left to position i: its prefix
                    // loses the operand it hopped over, so the balloting
                    // margin shrinks by two; the new left neighbour must
                    // not be an equal operator.
                    operands - 1 > operators + 1
                        && (i == 0 || self.elements[i - 1] != Element::Operator(cut))
                }
                (Element::Operator(cut), Element::Operand(_)) => {
                    // The operator moves right: its prefix gains an
                    // operand, so balloting only improves; only the new
                    // right neighbour can break normalization.
                    i + 2 >= n || self.elements[i + 2] != Element::Operator(cut)
                }
                _ => false,
            };
            if ok {
                candidates.push(i);
            }
        }
        candidates
    }

    /// Whether swapping positions `i` and `i + 1` keeps the expression
    /// valid, by brute force: clone, swap, full re-validation. Kept as
    /// the reference oracle for the O(1) local checks above.
    #[cfg(test)]
    fn swap_is_valid(&self, i: usize) -> bool {
        let mut probe = self.clone();
        probe.elements.swap(i, i + 1);
        probe.is_valid()
    }
}

/// `Display` writes the conventional postfix string, e.g. `01V2H`.
impl fmt::Display for PolishExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.elements {
            match e {
                Element::Operand(id) => write!(f, "{}", id.0)?,
                Element::Operator(cut) => write!(f, "{cut}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn swap_candidates_match_brute_force() {
        // The O(1) local validity checks must admit exactly the swaps the
        // clone-and-revalidate oracle admits — same candidate list, same
        // order — on every expression a random walk can reach.
        let mut rng = ChaCha8Rng::seed_from_u64(0x5aa9);
        for &n in &[2usize, 3, 5, 8, 13, 30, 49] {
            let mut expr = PolishExpr::initial(n);
            for step in 0..200 {
                let brute: Vec<usize> = (0..expr.elements.len() - 1)
                    .filter(|&i| {
                        matches!(
                            (&expr.elements[i], &expr.elements[i + 1]),
                            (Element::Operand(_), Element::Operator(_))
                                | (Element::Operator(_), Element::Operand(_))
                        ) && expr.swap_is_valid(i)
                    })
                    .collect();
                assert_eq!(
                    expr.swap_operand_operator_candidates(),
                    brute,
                    "n = {n}, step = {step}, expr = {expr}"
                );
                expr.perturb_random(&mut rng);
            }
        }
    }

    #[test]
    fn initial_is_valid_for_all_sizes() {
        for n in 1..60 {
            let e = PolishExpr::initial(n);
            assert!(e.is_valid(), "n = {n}");
            assert_eq!(e.operand_count(), n);
        }
    }

    #[test]
    #[should_panic(expected = "at least one module")]
    fn initial_rejects_zero() {
        let _ = PolishExpr::initial(0);
    }

    #[test]
    fn from_elements_validates() {
        use Cut::*;
        use Element::*;
        // "0 1 V" is valid.
        assert!(PolishExpr::from_elements(vec![
            Operand(ModuleId(0)),
            Operand(ModuleId(1)),
            Operator(V)
        ])
        .is_some());
        // "0 V 1" violates balloting.
        assert!(PolishExpr::from_elements(vec![
            Operand(ModuleId(0)),
            Operator(V),
            Operand(ModuleId(1))
        ])
        .is_none());
        // "0 1 V 2 V" — wait, consecutive operators must differ only when
        // adjacent; V at positions 2 and 4 are separated by an operand, fine.
        assert!(PolishExpr::from_elements(vec![
            Operand(ModuleId(0)),
            Operand(ModuleId(1)),
            Operator(V),
            Operand(ModuleId(2)),
            Operator(V)
        ])
        .is_some());
        // "0 1 2 V V" has two adjacent V operators: not normalized.
        assert!(PolishExpr::from_elements(vec![
            Operand(ModuleId(0)),
            Operand(ModuleId(1)),
            Operand(ModuleId(2)),
            Operator(V),
            Operator(V)
        ])
        .is_none());
        // Duplicate module.
        assert!(PolishExpr::from_elements(vec![
            Operand(ModuleId(0)),
            Operand(ModuleId(0)),
            Operator(V)
        ])
        .is_none());
    }

    #[test]
    fn moves_preserve_validity() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for n in [2usize, 3, 5, 10, 33, 49] {
            let mut e = PolishExpr::initial(n);
            for _ in 0..500 {
                e.perturb_random(&mut rng);
                assert!(e.is_valid(), "n = {n}, expr = {e}");
            }
        }
    }

    #[test]
    fn m1_swaps_adjacent_operands() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut e = PolishExpr::initial(4);
        let before: Vec<Element> = e.elements().to_vec();
        assert_eq!(
            e.perturb(Move::SwapOperands, &mut rng),
            Some(Move::SwapOperands)
        );
        let after = e.elements();
        let diffs = (0..before.len()).filter(|&i| before[i] != after[i]).count();
        assert_eq!(diffs, 2, "exactly two positions change");
    }

    #[test]
    fn m2_complements_whole_chain() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut e = PolishExpr::initial(2); // "0 1 V"
        assert_eq!(
            e.perturb(Move::ComplementChain, &mut rng),
            Some(Move::ComplementChain)
        );
        assert_eq!(e.elements()[2], Element::Operator(Cut::H));
    }

    #[test]
    fn m3_none_when_no_legal_swap() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        // "0 1 V": swapping either pair breaks balloting or structure.
        let mut e = PolishExpr::initial(2);
        assert_eq!(e.perturb(Move::SwapOperandOperator, &mut rng), None);
        assert!(e.is_valid());
    }

    #[test]
    fn m3_applies_on_larger_expressions() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut e = PolishExpr::initial(5);
        let mut applied = false;
        for _ in 0..50 {
            if e.perturb(Move::SwapOperandOperator, &mut rng).is_some() {
                applied = true;
            }
        }
        assert!(applied, "M3 should be applicable on a 5-module expression");
    }

    #[test]
    fn display_postfix() {
        assert_eq!(PolishExpr::initial(3).to_string(), "01V2H");
    }

    #[test]
    fn perturbation_reaches_many_distinct_expressions() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut e = PolishExpr::initial(6);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            e.perturb_random(&mut rng);
            seen.insert(e.to_string());
        }
        assert!(
            seen.len() > 50,
            "only {} distinct expressions reached",
            seen.len()
        );
    }
}
