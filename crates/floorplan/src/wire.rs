//! Wirelength and 2-pin decomposition of a placed circuit.
//!
//! Per §5 of the paper, multi-pin nets are decomposed into 2-pin nets by a
//! minimum spanning tree; the wirelength objective is the total Manhattan
//! length of those trees, and the congestion models consume the individual
//! 2-pin segments (each segment's bounding box is a routing range).

use irgrid_geom::{Point, Rect, Um};
use irgrid_netlist::{mst, Circuit};

use crate::{PinPlacer, Placement};

/// Computes the pins of every net: `result[net.index()]` holds one point
/// per net member, in member order.
#[must_use]
pub fn net_pins(circuit: &Circuit, placement: &Placement, placer: &PinPlacer) -> Vec<Vec<Point>> {
    circuit
        .nets()
        .iter()
        .map(|net| {
            let members: Vec<Rect> = net
                .pins()
                .iter()
                .map(|&m| placement.module_rect(m))
                .collect();
            placer.place_net(&members)
        })
        .collect()
}

/// Total wirelength: the sum over nets of the Manhattan MST length of the
/// net's pins. This is the paper's wire-length objective.
#[must_use]
pub fn total_wirelength(circuit: &Circuit, placement: &Placement, placer: &PinPlacer) -> Um {
    net_pins(circuit, placement, placer)
        .iter()
        .map(|pins| mst::mst_length(pins))
        .sum::<Um>()
}

/// How multi-pin nets are broken into 2-pin segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Decomposition {
    /// Minimum spanning tree (the paper's choice, §5).
    #[default]
    Mst,
    /// Star from the centroid-nearest pin (cheaper, longer wire; for the
    /// decomposition ablation).
    Star,
}

/// All 2-pin segments of the MST decomposition, across all nets.
///
/// Segments whose endpoints coincide are dropped: a zero-length segment has
/// no routing range and cannot congest anything.
#[must_use]
pub fn two_pin_segments(
    circuit: &Circuit,
    placement: &Placement,
    placer: &PinPlacer,
) -> Vec<(Point, Point)> {
    two_pin_segments_with(circuit, placement, placer, Decomposition::Mst)
}

/// All 2-pin segments under the chosen [`Decomposition`].
#[must_use]
pub fn two_pin_segments_with(
    circuit: &Circuit,
    placement: &Placement,
    placer: &PinPlacer,
    decomposition: Decomposition,
) -> Vec<(Point, Point)> {
    net_pins(circuit, placement, placer)
        .iter()
        .flat_map(|pins| net_segments(pins, decomposition))
        .collect()
}

/// The 2-pin segments of a single net's pins under the chosen
/// [`Decomposition`], with zero-length segments dropped — the per-net
/// building block of [`two_pin_segments_with`], exposed so incremental
/// evaluators can re-decompose only the nets a move touched.
#[must_use]
pub fn net_segments(pins: &[Point], decomposition: Decomposition) -> Vec<(Point, Point)> {
    let raw = match decomposition {
        Decomposition::Mst => mst::decompose(pins),
        Decomposition::Star => mst::star_decompose(pins),
    };
    raw.into_iter().filter(|(a, b)| a != b).collect()
}

/// Total Manhattan length of a segment list. With [`net_segments`]'s
/// output this equals the net's contribution to [`total_wirelength`]
/// exactly (dropped zero-length segments contribute nothing).
#[must_use]
pub fn segments_wirelength(segments: &[(Point, Point)]) -> Um {
    segments
        .iter()
        .map(|(a, b)| a.manhattan_distance(*b))
        .sum::<Um>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pack, PolishExpr};
    use irgrid_geom::Um;
    use irgrid_netlist::{mcnc::McncCircuit, Module, ModuleId, Net};

    fn two_module_circuit() -> Circuit {
        Circuit::new(
            "t",
            vec![
                Module::new("a", Um(100), Um(100)).expect("valid"),
                Module::new("b", Um(50), Um(50)).expect("valid"),
            ],
            vec![Net::new("ab", vec![ModuleId(0), ModuleId(1)]).expect("valid")],
        )
        .expect("valid circuit")
    }

    #[test]
    fn wirelength_positive_for_offset_modules() {
        let c = two_module_circuit();
        let p = pack(&PolishExpr::initial(2), &c);
        let placer = PinPlacer::new(Um(10));
        let wl = total_wirelength(&c, &p, &placer);
        // The modules differ in size, so their facing pins cannot
        // coincide exactly (y-centers differ).
        assert!(wl > Um::ZERO, "offset modules must have wire, got {wl}");
        assert!(wl <= p.chip().width() + p.chip().height());
    }

    #[test]
    fn abutting_equal_modules_may_have_zero_wire() {
        // Two identical abutting modules: the facing pins coincide and the
        // MST collapses — a documented, expected degenerate case.
        let c = Circuit::new(
            "t",
            vec![
                Module::new("a", Um(100), Um(100)).expect("valid"),
                Module::new("b", Um(100), Um(100)).expect("valid"),
            ],
            vec![Net::new("ab", vec![ModuleId(0), ModuleId(1)]).expect("valid")],
        )
        .expect("valid circuit");
        let p = pack(&PolishExpr::initial(2), &c);
        let placer = PinPlacer::new(Um(10));
        assert_eq!(total_wirelength(&c, &p, &placer), Um::ZERO);
        assert!(two_pin_segments(&c, &p, &placer).is_empty());
    }

    #[test]
    fn segments_match_pin_count() {
        let c = McncCircuit::Apte.circuit();
        let p = pack(&PolishExpr::initial(c.modules().len()), &c);
        let placer = PinPlacer::new(Um(60));
        let segments = two_pin_segments(&c, &p, &placer);
        // An n-pin net yields at most n-1 segments (fewer if pins coincide).
        let max_segments: usize = c.nets().iter().map(|n| n.degree() - 1).sum();
        assert!(segments.len() <= max_segments);
        assert!(!segments.is_empty());
        // No degenerate segments survive.
        assert!(segments.iter().all(|(a, b)| a != b));
    }

    #[test]
    fn wirelength_equals_segment_sum() {
        let c = McncCircuit::Hp.circuit();
        let p = pack(&PolishExpr::initial(c.modules().len()), &c);
        let placer = PinPlacer::new(Um(30));
        let wl = total_wirelength(&c, &p, &placer);
        let seg_sum: Um = two_pin_segments(&c, &p, &placer)
            .iter()
            .map(|(a, b)| a.manhattan_distance(*b))
            .sum();
        assert_eq!(wl, seg_sum);
    }

    #[test]
    fn star_decomposition_gives_more_or_equal_wire() {
        let c = McncCircuit::Ami33.circuit();
        let p = pack(&PolishExpr::initial(c.modules().len()), &c);
        let placer = PinPlacer::new(Um(30));
        let wire_of = |d: Decomposition| -> i64 {
            two_pin_segments_with(&c, &p, &placer, d)
                .iter()
                .map(|(a, b)| a.manhattan_distance(*b).0)
                .sum()
        };
        assert!(wire_of(Decomposition::Star) >= wire_of(Decomposition::Mst));
    }

    #[test]
    fn per_net_segments_compose_to_the_global_list() {
        let c = McncCircuit::Apte.circuit();
        let p = pack(&PolishExpr::initial(c.modules().len()), &c);
        let placer = PinPlacer::new(Um(60));
        for d in [Decomposition::Mst, Decomposition::Star] {
            let global = two_pin_segments_with(&c, &p, &placer, d);
            let composed: Vec<(Point, Point)> = net_pins(&c, &p, &placer)
                .iter()
                .flat_map(|pins| net_segments(pins, d))
                .collect();
            assert_eq!(global, composed);
        }
    }

    #[test]
    fn per_net_wirelength_sums_to_total() {
        let c = McncCircuit::Hp.circuit();
        let p = pack(&PolishExpr::initial(c.modules().len()), &c);
        let placer = PinPlacer::new(Um(30));
        let total = total_wirelength(&c, &p, &placer);
        let per_net: Um = net_pins(&c, &p, &placer)
            .iter()
            .map(|pins| segments_wirelength(&net_segments(pins, Decomposition::Mst)))
            .sum();
        assert_eq!(total, per_net);
    }

    #[test]
    fn net_segments_drops_degenerates() {
        let pins = vec![Point::new(Um(5), Um(5)), Point::new(Um(5), Um(5))];
        assert!(net_segments(&pins, Decomposition::Mst).is_empty());
        assert_eq!(segments_wirelength(&[]), Um::ZERO);
    }

    #[test]
    fn pins_lie_on_their_modules() {
        let c = McncCircuit::Ami33.circuit();
        let p = pack(&PolishExpr::initial(c.modules().len()), &c);
        let placer = PinPlacer::new(Um(30));
        for (net, pins) in c.nets().iter().zip(net_pins(&c, &p, &placer)) {
            assert_eq!(net.degree(), pins.len());
            for (&module, &pin) in net.pins().iter().zip(&pins) {
                assert!(
                    p.module_rect(module).contains(pin),
                    "pin {pin} off module {module}"
                );
            }
        }
    }
}
