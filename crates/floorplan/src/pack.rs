//! Slicing-tree packing with shape lists.
//!
//! Each leaf (module) offers a list of candidate shapes; internal nodes
//! combine child shape lists and prune dominated shapes (Stockmeyer's
//! optimal-orientation algorithm). The root shape of minimum area is
//! selected and positions are assigned top-down.
//!
//! Two entry points:
//!
//! * [`pack`] — hard modules: each leaf offers its two 90°-rotations
//!   (what the paper's benchmarks use);
//! * [`pack_with_shapes`] — arbitrary per-module shape candidates,
//!   enabling *soft* modules via [`soft_shapes`] (the Wong–Liu
//!   shape-curve extension).

use irgrid_geom::{Point, Rect, Um, UmArea};
use irgrid_netlist::{Circuit, ModuleId};

use crate::{Cut, Element, Placement, PolishExpr};

/// One realizable shape of a subtree, with back-pointers to the child
/// shapes that realize it.
#[derive(Debug, Clone, Copy)]
struct Shape {
    w: Um,
    h: Um,
    /// Chosen shape index in the left child (leaves: index into the
    /// candidate list).
    left_choice: u32,
    /// Chosen shape index in the right child (unused for leaves).
    right_choice: u32,
}

#[derive(Debug)]
enum Node {
    Leaf(ModuleId),
    Internal { cut: Cut, left: usize, right: usize },
}

/// Packs a Polish expression into a [`Placement`] of minimum chip area,
/// allowing each hard module its two 90° orientations.
///
/// Among root shapes the minimum-area one is chosen (ties broken toward
/// the squarer shape, which keeps aspect ratios reasonable for
/// congestion estimation).
///
/// # Panics
///
/// Panics if the expression's operand count differs from the circuit's
/// module count (the two always travel together in the annealer).
#[must_use]
pub fn pack(expr: &PolishExpr, circuit: &Circuit) -> Placement {
    assert_eq!(
        expr.operand_count(),
        circuit.modules().len(),
        "expression and circuit disagree on module count"
    );
    let candidates: Vec<Vec<(Um, Um)>> = circuit
        .modules()
        .iter()
        .map(|m| {
            if m.width() == m.height() {
                vec![(m.width(), m.height())]
            } else {
                vec![(m.width(), m.height()), (m.height(), m.width())]
            }
        })
        .collect();
    let (rects, chip) = pack_impl(expr, &candidates);
    let rotated = circuit
        .modules_with_ids()
        .map(|(id, m)| rects[id.index()].width() != m.width())
        .collect();
    Placement::from_parts(rects, rotated, chip)
}

/// Packs with arbitrary per-module shape candidates.
///
/// `candidates[i]` lists the `(width, height)` shapes module `i` may
/// take; use [`soft_shapes`] to generate candidates for soft modules.
/// The returned placement reports no rotations (shape choice subsumes
/// orientation); the chosen dimensions are in the module rectangles.
///
/// # Panics
///
/// Panics if the candidate-list count differs from the expression's
/// operand count, any list is empty, or any dimension is not positive.
#[must_use]
pub fn pack_with_shapes(expr: &PolishExpr, candidates: &[Vec<(Um, Um)>]) -> Placement {
    assert_eq!(
        expr.operand_count(),
        candidates.len(),
        "expression and shape lists disagree on module count"
    );
    let (rects, chip) = pack_impl(expr, candidates);
    let rotated = vec![false; candidates.len()];
    Placement::from_parts(rects, rotated, chip)
}

/// Generates `count` discrete shape candidates for a soft module of the
/// given area, with aspect ratios (width/height) log-spaced over
/// `[ar_min, ar_max]`.
///
/// Dimensions are rounded to integer micrometers (minimum 1), so the
/// realized areas differ from `area` by at most one row/column of
/// micrometers.
///
/// # Panics
///
/// Panics if `area` is not positive, the ratio range is invalid, or
/// `count` is zero.
///
/// # Examples
///
/// ```
/// use irgrid_floorplan::soft_shapes;
/// use irgrid_geom::UmArea;
///
/// let shapes = soft_shapes(UmArea(10_000), 0.5, 2.0, 5);
/// assert_eq!(shapes.len(), 5);
/// // The middle candidate is square-ish.
/// assert_eq!(shapes[2], (irgrid_geom::Um(100), irgrid_geom::Um(100)));
/// ```
#[must_use]
pub fn soft_shapes(area: UmArea, ar_min: f64, ar_max: f64, count: usize) -> Vec<(Um, Um)> {
    assert!(
        area > UmArea::ZERO,
        "soft module area must be positive, got {area}"
    );
    assert!(
        ar_min > 0.0 && ar_min <= ar_max,
        "invalid aspect-ratio range [{ar_min}, {ar_max}]"
    );
    assert!(count > 0, "need at least one shape candidate");
    let area = area.0 as f64;
    (0..count)
        .map(|i| {
            let t = if count == 1 {
                0.5
            } else {
                i as f64 / (count - 1) as f64
            };
            let ar = (ar_min.ln() + t * (ar_max.ln() - ar_min.ln())).exp();
            let w = (area * ar).sqrt().round().max(1.0) as i64;
            let h = (area / w as f64).round().max(1.0) as i64;
            (Um(w), Um(h))
        })
        .collect()
}

/// Shared packing core over explicit leaf shape candidates.
fn pack_impl(expr: &PolishExpr, candidates: &[Vec<(Um, Um)>]) -> (Vec<Rect>, Rect) {
    // Build the slicing tree from the postfix expression.
    let mut nodes: Vec<Node> = Vec::with_capacity(expr.elements().len());
    let mut shapes: Vec<Vec<Shape>> = Vec::with_capacity(expr.elements().len());
    let mut stack: Vec<usize> = Vec::new();

    for element in expr.elements() {
        match *element {
            Element::Operand(id) => {
                let list = &candidates[id.index()];
                assert!(!list.is_empty(), "module {id} has no shape candidates");
                let leaf_shapes: Vec<Shape> = list
                    .iter()
                    .enumerate()
                    .map(|(i, &(w, h))| {
                        assert!(
                            w > Um::ZERO && h > Um::ZERO,
                            "module {id} candidate {i} has non-positive dims {w} x {h}"
                        );
                        Shape {
                            w,
                            h,
                            left_choice: i as u32,
                            right_choice: 0,
                        }
                    })
                    .collect();
                nodes.push(Node::Leaf(id));
                shapes.push(prune(leaf_shapes));
                stack.push(nodes.len() - 1);
            }
            Element::Operator(cut) => {
                // irgrid-lint: allow(P1): the balloting property of a normalized Polish expression guarantees two operands per operator
                let right = stack.pop().expect("balloting guarantees a right child");
                // irgrid-lint: allow(P1): the balloting property of a normalized Polish expression guarantees two operands per operator
                let left = stack.pop().expect("balloting guarantees a left child");
                let mut combined = Vec::with_capacity(shapes[left].len() * shapes[right].len());
                for (li, ls) in shapes[left].iter().enumerate() {
                    for (ri, rs) in shapes[right].iter().enumerate() {
                        let (w, h) = match cut {
                            Cut::V => (ls.w + rs.w, ls.h.max(rs.h)),
                            Cut::H => (ls.w.max(rs.w), ls.h + rs.h),
                        };
                        combined.push(Shape {
                            w,
                            h,
                            left_choice: li as u32,
                            right_choice: ri as u32,
                        });
                    }
                }
                nodes.push(Node::Internal { cut, left, right });
                shapes.push(prune(combined));
                stack.push(nodes.len() - 1);
            }
        }
    }

    // irgrid-lint: allow(P1): PolishExpr construction rejects empty expressions
    let root = stack.pop().expect("non-empty expression has a root");
    debug_assert!(stack.is_empty(), "valid expression leaves exactly one root");

    // Pick the minimum-area root shape (ties: most square).
    let best = shapes[root]
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| (s.w * s.h, (s.w - s.h).abs()))
        .map(|(i, _)| i)
        // irgrid-lint: allow(P1): prune() always returns at least one shape
        .expect("shape lists are never empty");

    // Assign positions top-down. For leaves, `left_choice` holds the
    // chosen candidate index; the *pruned* list stores original-list
    // back-pointers, so the chosen dims are in the pruned Shape itself.
    let n = candidates.len();
    let mut rects = vec![Rect::from_origin_size(Point::ORIGIN, Um(1), Um(1)); n];
    let root_shape = shapes[root][best];
    assign(&nodes, &shapes, root, best, Point::ORIGIN, &mut rects);
    let chip = Rect::from_origin_size(Point::ORIGIN, root_shape.w, root_shape.h);
    (rects, chip)
}

/// Keeps only non-dominated shapes, sorted by increasing width (and hence
/// strictly decreasing height).
fn prune(mut list: Vec<Shape>) -> Vec<Shape> {
    list.sort_by_key(|s| (s.w, s.h));
    let mut pruned: Vec<Shape> = Vec::with_capacity(list.len());
    for s in list {
        // Same width: the earlier (smaller-height) entry dominates.
        if let Some(last) = pruned.last() {
            if last.w == s.w {
                continue;
            }
            if last.h <= s.h {
                // Wider and at least as tall: dominated.
                continue;
            }
        }
        pruned.push(s);
    }
    pruned
}

fn assign(
    nodes: &[Node],
    shapes: &[Vec<Shape>],
    node: usize,
    shape_idx: usize,
    origin: Point,
    rects: &mut [Rect],
) {
    let shape = shapes[node][shape_idx];
    match nodes[node] {
        Node::Leaf(id) => {
            rects[id.index()] = Rect::from_origin_size(origin, shape.w, shape.h);
        }
        Node::Internal { cut, left, right } => {
            let ls = shapes[left][shape.left_choice as usize];
            assign(
                nodes,
                shapes,
                left,
                shape.left_choice as usize,
                origin,
                rects,
            );
            let right_origin = match cut {
                Cut::V => Point::new(origin.x + ls.w, origin.y),
                Cut::H => Point::new(origin.x, origin.y + ls.h),
            };
            assign(
                nodes,
                shapes,
                right,
                shape.right_choice as usize,
                right_origin,
                rects,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irgrid_netlist::Module;

    fn circuit(dims: &[(i64, i64)]) -> Circuit {
        let modules = dims
            .iter()
            .enumerate()
            .map(|(i, &(w, h))| Module::new(format!("m{i}"), Um(w), Um(h)).expect("valid"))
            .collect();
        Circuit::new("t", modules, vec![]).expect("valid circuit")
    }

    #[test]
    fn single_module_fills_chip() {
        let c = circuit(&[(30, 20)]);
        let p = pack(&PolishExpr::initial(1), &c);
        // Either orientation is optimal; chip must exactly wrap the module.
        assert_eq!(p.area().0, 600);
        assert_eq!(p.module_rect(ModuleId(0)), p.chip());
        assert!(p.check_consistency().is_none());
    }

    #[test]
    fn two_modules_rotation_minimizes_area() {
        // 10x20 and 20x10 side by side: with rotation both become 10x20
        // (or 20x10) and pack perfectly into 20x20 = 400.
        let c = circuit(&[(10, 20), (20, 10)]);
        let p = pack(&PolishExpr::initial(2), &c);
        assert_eq!(p.area().0, 400, "rotation should give a perfect packing");
        assert!(p.check_consistency().is_none());
    }

    #[test]
    fn vertical_cut_places_side_by_side() {
        use crate::Element::*;
        let c = circuit(&[(10, 10), (10, 10)]);
        let expr = PolishExpr::from_elements(vec![
            Operand(ModuleId(0)),
            Operand(ModuleId(1)),
            Operator(Cut::V),
        ])
        .expect("valid");
        let p = pack(&expr, &c);
        assert_eq!(p.chip().width(), Um(20));
        assert_eq!(p.chip().height(), Um(10));
        let r0 = p.module_rect(ModuleId(0));
        let r1 = p.module_rect(ModuleId(1));
        assert_eq!(r0.ll().x, Um(0));
        assert_eq!(r1.ll().x, Um(10), "second operand goes to the right");
    }

    #[test]
    fn horizontal_cut_stacks() {
        use crate::Element::*;
        let c = circuit(&[(10, 10), (10, 10)]);
        let expr = PolishExpr::from_elements(vec![
            Operand(ModuleId(0)),
            Operand(ModuleId(1)),
            Operator(Cut::H),
        ])
        .expect("valid");
        let p = pack(&expr, &c);
        assert_eq!(p.chip().width(), Um(10));
        assert_eq!(p.chip().height(), Um(20));
        assert_eq!(
            p.module_rect(ModuleId(1)).ll().y,
            Um(10),
            "second operand on top"
        );
    }

    #[test]
    fn packing_is_consistent_for_benchmarks() {
        use irgrid_netlist::mcnc::McncCircuit;
        for bench in McncCircuit::ALL {
            let c = bench.circuit();
            let p = pack(&PolishExpr::initial(c.modules().len()), &c);
            assert!(p.check_consistency().is_none(), "{bench}");
            assert!(p.area() >= c.total_module_area(), "{bench}");
        }
    }

    #[test]
    fn area_lower_bound_holds_under_perturbation() {
        use rand::SeedableRng;
        let c = circuit(&[(10, 30), (25, 15), (40, 5), (12, 12), (7, 21)]);
        let mut expr = PolishExpr::initial(5);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(21);
        for _ in 0..200 {
            expr.perturb_random(&mut rng);
            let p = pack(&expr, &c);
            assert!(p.check_consistency().is_none(), "expr {expr}");
            assert!(p.area() >= c.total_module_area());
        }
    }

    #[test]
    #[should_panic(expected = "disagree on module count")]
    fn pack_rejects_mismatched_sizes() {
        let c = circuit(&[(10, 10)]);
        let _ = pack(&PolishExpr::initial(2), &c);
    }

    #[test]
    fn prune_removes_dominated() {
        let raw = vec![
            Shape {
                w: Um(10),
                h: Um(10),
                left_choice: 0,
                right_choice: 0,
            },
            Shape {
                w: Um(12),
                h: Um(10),
                left_choice: 1,
                right_choice: 0,
            }, // dominated
            Shape {
                w: Um(12),
                h: Um(8),
                left_choice: 2,
                right_choice: 0,
            },
            Shape {
                w: Um(12),
                h: Um(9),
                left_choice: 3,
                right_choice: 0,
            }, // same w, taller
        ];
        let pruned = prune(raw);
        assert_eq!(pruned.len(), 2);
        assert_eq!(pruned[0].w, Um(10));
        assert_eq!(pruned[1].h, Um(8));
    }

    #[test]
    fn soft_shapes_span_the_ratio_range() {
        let shapes = soft_shapes(UmArea(40_000), 0.25, 4.0, 7);
        assert_eq!(shapes.len(), 7);
        // Ratios ascend from ~0.25 to ~4.
        let first = shapes[0].0.as_f64() / shapes[0].1.as_f64();
        let last = shapes[6].0.as_f64() / shapes[6].1.as_f64();
        assert!((first - 0.25).abs() < 0.05, "first ratio {first}");
        assert!((last - 4.0).abs() < 0.5, "last ratio {last}");
        // Areas stay close to the target.
        for &(w, h) in &shapes {
            let area = (w * h).0 as f64;
            assert!((area - 40_000.0).abs() / 40_000.0 < 0.02, "{w} x {h}");
        }
    }

    #[test]
    fn soft_packing_beats_hard_packing() {
        // Three soft modules of equal area pack (near-)perfectly, while
        // fixed square shapes leave dead space in a 3-module slicing
        // floorplan of uneven structure.
        let areas = [UmArea(10_000), UmArea(20_000), UmArea(30_000)];
        let soft: Vec<Vec<(Um, Um)>> = areas.iter().map(|&a| soft_shapes(a, 0.2, 5.0, 9)).collect();
        let hard: Vec<Vec<(Um, Um)>> = areas
            .iter()
            .map(|&a| {
                let side = ((a.0 as f64).sqrt().round()) as i64;
                vec![(Um(side), Um(side))]
            })
            .collect();
        let expr = PolishExpr::initial(3);
        let soft_area = pack_with_shapes(&expr, &soft).area();
        let hard_area = pack_with_shapes(&expr, &hard).area();
        assert!(
            soft_area < hard_area,
            "soft {soft_area} should beat hard {hard_area}"
        );
        // And soft packing approaches the lower bound.
        let lower: i128 = 60_000;
        assert!(
            soft_area.0 < lower * 11 / 10,
            "soft packing {soft_area} more than 10% above the bound"
        );
    }

    #[test]
    fn pack_with_shapes_consistency() {
        let candidates = vec![
            vec![(Um(30), Um(20)), (Um(20), Um(30))],
            vec![(Um(10), Um(60)), (Um(60), Um(10)), (Um(25), Um(24))],
        ];
        let p = pack_with_shapes(&PolishExpr::initial(2), &candidates);
        assert!(p.check_consistency().is_none());
        // Chosen shapes come from the candidate lists.
        let r0 = p.module_rect(ModuleId(0));
        assert!(candidates[0].contains(&(r0.width(), r0.height())));
        let r1 = p.module_rect(ModuleId(1));
        assert!(candidates[1].contains(&(r1.width(), r1.height())));
    }

    #[test]
    #[should_panic(expected = "no shape candidates")]
    fn empty_candidate_list_rejected() {
        let _ = pack_with_shapes(&PolishExpr::initial(1), &[vec![]]);
    }

    #[test]
    #[should_panic(expected = "non-positive dims")]
    fn bad_candidate_dims_rejected() {
        let _ = pack_with_shapes(&PolishExpr::initial(1), &[vec![(Um(0), Um(5))]]);
    }
}
