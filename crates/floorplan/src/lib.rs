//! Slicing floorplans for the `irgrid` workspace.
//!
//! The DATE 2004 paper embeds its congestion model in "a floorplanner
//! based on simulated annealing algorithm with normalized Polish
//! expression" — the classic Wong–Liu formulation (DAC 1986). This crate
//! provides that substrate:
//!
//! * [`PolishExpr`] — normalized Polish expressions with the balloting
//!   invariant and the three Wong–Liu perturbation moves (M1/M2/M3);
//! * [`pack`](fn@pack) — slicing-tree packing with 90° module rotation via
//!   Stockmeyer-style shape lists, producing a [`Placement`];
//! * [`PinPlacer`] — the intersection-to-intersection pin placement of
//!   Sham & Young (ISPD 2002), which the paper reuses: pins sit on module
//!   boundaries at routing-grid intersections;
//! * wirelength — total Manhattan MST length over all nets (§5).
//!
//! # Examples
//!
//! ```
//! use irgrid_floorplan::{pack, PolishExpr};
//! use irgrid_netlist::mcnc::McncCircuit;
//!
//! let circuit = McncCircuit::Apte.circuit();
//! let expr = PolishExpr::initial(circuit.modules().len());
//! let placement = pack(&expr, &circuit);
//! // Every module fits in the chip and none overlap.
//! assert!(placement.chip().area() >= circuit.total_module_area());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pack;
mod pins;
mod placement;
mod polish;
mod repr;
mod seqpair;
mod wire;

pub use pack::{pack, pack_with_shapes, soft_shapes};
pub use pins::PinPlacer;
pub use placement::Placement;
pub use polish::{Cut, Element, Move, PolishExpr};
pub use repr::FloorplanRepr;
pub use seqpair::SequencePair;
pub use wire::{
    net_pins, net_segments, segments_wirelength, total_wirelength, two_pin_segments,
    two_pin_segments_with, Decomposition,
};
